"""XKMS key management — the paper's §7 integration and §9 future work.

"The XKMS based Key Management could be used to convey key
registrations and information requests to any 'trusted source (trust
server)' and to convey responses back from the server" (§7); extending
the prototype with XML-based key management is the paper's stated
future work (§9).

This walkthrough runs the full key lifecycle over the simulated
network:

1. a studio registers its signing key with the trust server (X-KRSS,
   authenticated by a shared registration secret) — over the TLS-like
   channel;
2. a player verifies a downloaded application whose KeyInfo carries
   only a ``ds:KeyName``, resolving the key through XKMS Locate
   (X-KISS);
3. the studio's key is compromised; the binding is revoked;
4. the player's Validate check now reports the binding Invalid, and a
   strict player refuses the (still cryptographically intact)
   application.

Run:  python examples/xkms_key_management.py
"""

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.disc import ApplicationManifest
from repro.dsig import Signer, Verifier
from repro.network import Channel, ContentServer, DownloadClient
from repro.primitives import DeterministicRandomSource
from repro.primitives.rsa import generate_keypair
from repro.xkms import TrustServer, XKMSClient
from repro.xmlcore import parse_element


def main() -> None:
    rng = DeterministicRandomSource(b"xkms-example")

    # Infrastructure: a root CA (for the TLS endpoint) and the trust
    # server, exposed as a network service.
    root_ca = CertificateAuthority.create_root("CN=BD Root CA", rng=rng)
    server_identity = SigningIdentity.create(
        "CN=trust.bda.example", root_ca, rng=rng,
    )
    player_trust = TrustStore(roots=[root_ca.certificate])

    trust_server = TrustServer(
        registration_secrets={"org.contoso.": b"contoso-reg-secret"},
    )
    content_server = ContentServer(identity=server_identity)
    content_server.publish_service("xkms", trust_server.handle_xml)
    network = DownloadClient(content_server, Channel(),
                             trust_store=player_trust)

    def xkms_transport(request_xml: str) -> str:
        # Key management rides the mutually authenticated channel (§7).
        return network.call("xkms", request_xml, secure=True)

    xkms = XKMSClient(xkms_transport)

    # 1. The studio registers its signing key.
    studio_key = generate_keypair(1024, rng)
    result = xkms.register("org.contoso.signing-2006",
                           studio_key.public_key(),
                           b"contoso-reg-secret")
    print("register:", result.result_major)

    # An unauthorized party cannot hijack the name space.
    hijack = xkms.register("org.contoso.signing-2006",
                           generate_keypair(1024, rng).public_key(),
                           b"wrong-secret")
    print("hijack attempt:", hijack.result_major)

    # 2. The studio signs an application naming only the key.
    app = ApplicationManifest("bonus")
    app.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="100" height="100"/></layout>'
    ))
    app.add_script("var ok = true;")
    manifest_element = app.to_element()
    signer = Signer(studio_key, key_name="org.contoso.signing-2006")
    signature = signer.sign_enveloped(manifest_element)

    # The player resolves the KeyName through XKMS Locate...
    verifier = Verifier(key_locator=xkms.locate)
    report = verifier.verify(signature)
    print(f"verify via XKMS Locate: valid={report.valid} "
          f"(key source: {report.key_source})")

    # ...and checks the binding's live status through Validate.
    print("binding currently valid:",
          xkms.validate("org.contoso.signing-2006"))

    # 3. Key compromise: the studio revokes the binding.
    revocation = xkms.revoke("org.contoso.signing-2006",
                             b"contoso-reg-secret")
    print("\nrevocation:", revocation.result_major)

    # 4. The signature still verifies cryptographically — but the
    # binding is dead, and a Validate-checking player refuses it.
    report = verifier.verify(signature)
    still_valid = xkms.validate("org.contoso.signing-2006")
    print(f"after revocation: core signature valid={report.valid}, "
          f"binding valid={still_valid}")
    execute = report.valid and still_valid
    print("player executes application:", execute)
    assert not execute


if __name__ == "__main__":
    main()
