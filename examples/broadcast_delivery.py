"""Broadcast delivery of a signed application (Fig 1's second path).

"The movie companies distribute the HD content via optical discs as
medium **or via HD broadcast** ..." — this walkthrough pushes the same
signed+encrypted application package used for downloads through a
DSM-CC-style object carousel instead:

1. the head-end publishes the package on a carousel;
2. a receiver tunes in mid-cycle through a noisy channel (a burst of
   corrupted sections at tune-in time);
3. CRC checks drop the damaged sections, the next cycle fills the gaps;
4. the assembled package goes through the exact same verification
   pipeline as a downloaded one — transport independence in action.

Run:  python examples/broadcast_delivery.py
"""

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.core import AuthoringPipeline, PlaybackPipeline
from repro.disc import ApplicationManifest
from repro.network import ActiveTamperer, Channel
from repro.network.broadcast import (
    Carousel, CarouselReceiver, broadcast_until_received,
)
from repro.primitives import DeterministicRandomSource
from repro.primitives.rsa import generate_keypair
from repro.xmlcore import parse_element


def main() -> None:
    rng = DeterministicRandomSource(b"broadcast-demo")
    root_ca = CertificateAuthority.create_root("CN=BD Root CA", rng=rng)
    studio = SigningIdentity.create("CN=Contoso Studios", root_ca,
                                    rng=rng)
    trust = TrustStore(roots=[root_ca.certificate])
    device_key = generate_keypair(1024, rng)

    # The same package a content server would host (Fig 9 pipeline).
    app = ApplicationManifest("live-extras")
    app.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="1920" height="1080"/>'
        "</layout>"
    ))
    app.add_script('player.log("extras delivered over the air");')
    package = AuthoringPipeline(
        studio, recipient_key=device_key.public_key(), rng=rng,
    ).build_package(app, encrypt_ids=(app.code_id,))
    print(f"package: {len(package.data)} bytes (signed, code encrypted)")

    # Head-end side.
    carousel = Carousel()
    carousel.publish("apps/live-extras.pkg", package.data)
    cycle = carousel.one_cycle()
    print(f"carousel cycle: {len(cycle)} sections")

    # Receiver side: tune in mid-cycle over a noisy channel.
    noise = {"sections": 0}

    def tune_in_burst(message: bytes) -> bool:
        noise["sections"] += 1
        return noise["sections"] <= 4   # interference at tune-in

    channel = Channel([ActiveTamperer(predicate=tune_in_burst,
                                      offset=64)])
    receiver = CarouselReceiver()
    delivered = broadcast_until_received(
        carousel, receiver, "apps/live-extras.pkg",
        channel=channel, start_offset=3,
    )
    print(f"assembled after {receiver.sections_received} sections "
          f"({receiver.sections_dropped} dropped to CRC)")
    assert delivered == package.data

    # Same pipeline as the download path — transport independence.
    playback = PlaybackPipeline(trust_store=trust,
                                device_key=device_key)
    application = playback.open_package(delivered)
    print(f"verified: trusted={application.trusted}, "
          f"signer={application.signer_subject}")
    print("script:", application.manifest.scripts[0].source.strip())


if __name__ == "__main__":
    main()
