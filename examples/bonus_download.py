"""Downloaded bonus content: the end-to-end scenario of Figs 1, 3 and 9.

A studio packages a bonus application — signed with its certificate
chain, code encrypted for one specific player — and publishes it on a
content server.  The player downloads it over the TLS-like secure
channel, verifies the signature against its root store, decrypts the
code with its device key and executes it.

Then every adversary from the threat model has a go:

* a passive wiretap (sees nothing useful, twice over);
* a man-in-the-middle on the TLS channel (handshake/record MACs fail);
* a server-side tamperer (XMLDSig bars the application — this is what
  TLS alone cannot stop);
* a rogue player (cannot decrypt a package keyed to another device).

Run:  python examples/bonus_download.py
"""

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.core import AuthoringPipeline
from repro.disc import ApplicationManifest
from repro.errors import ApplicationRejectedError, ChannelSecurityError
from repro.network import (
    ActiveTamperer, Channel, ContentServer, DownloadClient,
    PassiveWiretap,
)
from repro.permissions import PERM_RETURN_CHANNEL, PermissionRequestFile
from repro.player import DiscPlayer
from repro.primitives import DeterministicRandomSource
from repro.primitives.rsa import generate_keypair
from repro.threat import inject_script
from repro.xmlcore import parse_element


def main() -> None:
    rng = DeterministicRandomSource(b"bonus-download")

    # --- the fixed cast -------------------------------------------------------
    root_ca = CertificateAuthority.create_root("CN=BD Root CA", rng=rng)
    studio = SigningIdentity.create("CN=Contoso Studios", root_ca,
                                    rng=rng)
    server_identity = SigningIdentity.create(
        "CN=content.contoso.example", root_ca, rng=rng,
    )
    trust = TrustStore(roots=[root_ca.certificate])
    device_key = generate_keypair(1024, rng)

    # --- studio side: package and publish (Fig 9 left) --------------------------
    bonus = ApplicationManifest("directors-cut")
    bonus.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<root-layout width="1920" height="1080"/>'
        '<region regionName="main" width="1920" height="1080"/>'
        "</layout>"
    ))
    bonus.add_script(
        'player.log("director commentary enabled");'
        'var t = network.get("cdn.contoso.example", "/titles.txt");'
        'player.log("streaming: " + t);'
    )
    prf = PermissionRequestFile("directors-cut", "org.contoso")
    prf.request(PERM_RETURN_CHANNEL, hosts=("cdn.contoso.example",))

    package = AuthoringPipeline(
        studio, recipient_key=device_key.public_key(), rng=rng,
    ).build_package(bonus, permission_file=prf,
                    encrypt_ids=(bonus.code_id,))
    print(f"package: {len(package.data)} bytes, signed={package.signed}, "
          f"encrypted regions={package.encrypted_ids}")

    server = ContentServer(identity=server_identity)
    server.publish("/apps/directors-cut.pkg", package.data)

    # --- player side: download, verify, decrypt, execute (Fig 9 right) ------------
    def cdn_fetch(host, path):
        return b"Director's Cut Extras Vol. 1"

    player = DiscPlayer(trust, device_key=device_key,
                        network_fetch=cdn_fetch)
    wiretap = PassiveWiretap()
    client = DownloadClient(server, Channel([wiretap]),
                            trust_store=trust)
    application = player.download_application(
        client, "/apps/directors-cut.pkg", secure=True,
    )
    print(f"verified: trusted={application.trusted}, "
          f"signer={application.signer_subject}")
    session = player.run_application(application)
    for line in session.console:
        print("  app:", line)
    print("wiretap saw the script?",
          wiretap.saw_plaintext(b"director commentary"))

    # --- adversaries ----------------------------------------------------------------
    print("\n-- adversary: man-in-the-middle on TLS --")
    mitm = ActiveTamperer(predicate=lambda m: m[:1] == b"\x05",
                          offset=50)
    try:
        player.download_application(
            DownloadClient(server, Channel([mitm]), trust_store=trust),
            "/apps/directors-cut.pkg", secure=True,
        )
    except ChannelSecurityError as exc:
        print("caught:", exc)

    print("\n-- adversary: tampering at rest on the server --")
    evil_server = ContentServer(identity=server_identity)
    evil_server.publish("/apps/directors-cut.pkg",
                        inject_script(package.data, "exfiltrate()"))
    try:
        player.download_application(
            DownloadClient(evil_server, Channel(), trust_store=trust),
            "/apps/directors-cut.pkg", secure=True,
        )
    except ApplicationRejectedError as exc:
        print("caught:", str(exc)[:80], "...")

    print("\n-- adversary: another player replays the package --")
    rogue_player = DiscPlayer(trust,
                              device_key=generate_keypair(1024, rng))
    try:
        rogue_player.download_application(
            DownloadClient(server, Channel(), trust_store=trust),
            "/apps/directors-cut.pkg", secure=True,
        )
    except ApplicationRejectedError as exc:
        print("caught:", str(exc)[:80], "...")


if __name__ == "__main__":
    main()
