"""Studio disc authoring: master, sign and play back a complete disc.

The content-creator half of the paper's Fig 1: a studio authors a disc
with an A/V feature and an interactive menu, signs it at track level
(Fig 4) including the transport streams, and a player authenticates it
at insertion.  A tampered copy of the same disc fails authentication.

Run:  python examples/studio_authoring.py
"""

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.core import ProtectionLevel, sign_disc_image
from repro.disc import ApplicationManifest, DiscAuthor
from repro.dsig import Signer
from repro.permissions import PERM_LOCAL_STORAGE, PermissionRequestFile
from repro.player import DiscPlayer
from repro.primitives import DeterministicRandomSource
from repro.threat import corrupt_stream
from repro.xmlcore import parse_element

MENU_SCRIPT = """
var visits = storage.read("visits");
if (visits == null) visits = 0;
visits = visits + 1;
storage.write("visits", visits);
player.log("welcome back, visit #" + visits);
function onChapter(n) { return "jump to chapter " + n; }
"""


def author_disc(studio: SigningIdentity, rng) -> "DiscAuthor":
    author = DiscAuthor("The Great Reproduction", rng=rng)

    # Feature film: three chapters as separate clips.
    chapters = [
        author.add_clip(duration, packets_per_second=50)
        for duration in (90.0, 45.0, 60.0)
    ]
    author.add_feature("main-feature", chapters)

    # The interactive menu application.
    menu = ApplicationManifest("menu")
    menu.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<root-layout width="1920" height="1080"/>'
        '<region regionName="main" width="1920" height="880"/>'
        '<region regionName="chapters" top="880" width="1920" '
        'height="200"/></layout>'
    ))
    menu.add_submarkup("timing", parse_element(
        '<seq xmlns="urn:bda:bdmv:interactive-cluster">'
        '<video src="bd://BDMV/STREAM/00001.m2ts" region="main"/>'
        '<video src="bd://BDMV/STREAM/00002.m2ts" region="main"/>'
        "</seq>"
    ))
    menu.add_script(MENU_SCRIPT)
    author.add_application(menu)

    # The menu asks for local storage via a permission request file.
    prf = PermissionRequestFile("menu", "org.contoso")
    prf.request(PERM_LOCAL_STORAGE, quota_bytes=8192)
    author.add_aux_file("BDMV/AUXDATA/menu.prf", prf.to_xml().encode())
    return author


def main() -> None:
    rng = DeterministicRandomSource(b"studio-authoring")
    root_ca = CertificateAuthority.create_root("CN=BD Root CA", rng=rng)
    studio = SigningIdentity.create("CN=Contoso Studios", root_ca,
                                    rng=rng)

    image = author_disc(studio, rng).master()
    print(f"mastered: {image}")

    result = sign_disc_image(
        image, Signer(studio.key, identity=studio),
        level=ProtectionLevel.TRACK, include_streams=True,
    )
    print(f"signed {len(result.markup.target_ids)} tracks "
          f"and {len(result.stream_uris)} streams")

    # --- consumer side -----------------------------------------------------------
    player = DiscPlayer(TrustStore(roots=[root_ca.certificate]))
    session = player.insert_disc(image)
    print(f"\ndisc authenticated: {session.authenticated}")

    playback = player.play_title("main-feature")
    print(f"played '{playback.playlist}': {playback.duration_s:.0f}s, "
          f"{playback.total_packets} TS packets")

    for _ in range(2):
        app = player.launch_disc_application("menu")
        print("menu said:", app.console[0])
    print("event dispatch:", app.dispatch("onChapter", 2.0))

    # --- the pirate copy ----------------------------------------------------------
    tampered = corrupt_stream(image, "00002", offset=5000)
    pirate_session = DiscPlayer(
        TrustStore(roots=[root_ca.certificate])
    ).insert_disc(tampered)
    print(f"\ntampered copy authenticated: {pirate_session.authenticated}")
    failing = [
        uri for uri, report in pirate_session.signature_reports.items()
        if not report.valid
    ]
    print(f"failing signatures: {failing}")


if __name__ == "__main__":
    main()
