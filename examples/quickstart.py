"""Quickstart: sign, verify, encrypt and decrypt a disc application.

A five-minute tour of the public API:

1. build a tiny PKI (root CA + studio identity) and a player trust
   store;
2. author an application manifest (markup + script);
3. sign it (XMLDSig, enveloped) and verify it — then watch tampering
   get caught;
4. encrypt the code part (XMLEnc) and decrypt it back.

Run:  python examples/quickstart.py
"""

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.disc import ApplicationManifest
from repro.dsig import Signer, Verifier
from repro.primitives import DeterministicRandomSource, SymmetricKey
from repro.xmlcore import DSIG_NS, parse_element, serialize
from repro.xmlenc import Decryptor, Encryptor


def main() -> None:
    rng = DeterministicRandomSource(b"quickstart")

    # 1. A tiny PKI: the disc association root signs the studio's key.
    root_ca = CertificateAuthority.create_root("CN=BD Root CA", rng=rng)
    studio = SigningIdentity.create("CN=Contoso Studios", root_ca,
                                    rng=rng)
    # The player ships with the root certificate installed.
    player_trust = TrustStore(roots=[root_ca.certificate])

    # 2. An interactive application: markup (layout) + code (script).
    manifest = ApplicationManifest("quickstart-menu")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<root-layout width="1920" height="1080"/>'
        '<region regionName="main" width="1920" height="1080"/>'
        "</layout>"
    ))
    manifest.add_script('player.log("hello from the disc");')
    manifest_element = manifest.to_element()
    print("== manifest ==")
    print(serialize(manifest_element, pretty=True))

    # 3. Sign (enveloped: the signature lives inside the manifest).
    signer = Signer(studio.key, identity=studio)
    signature = signer.sign_enveloped(manifest_element)
    verifier = Verifier(trust_store=player_trust,
                        require_trusted_key=True)
    report = verifier.verify(signature)
    print(f"signature valid: {report.valid} "
          f"(signed by {report.signer_subject})")

    # ... tamper with the script and verify again.
    script_el = manifest_element.find("script")
    script_el.children[0].data = 'player.log("EVIL");'
    report = verifier.verify(signature)
    print(f"after tampering:  valid={report.valid} "
          f"({report.references[0].error})")
    script_el.children[0].data = 'player.log("hello from the disc");'
    print(f"after restoring:  valid={verifier.verify(signature).valid}")

    # 4. Encrypt the code part under a named disc key.
    disc_key = SymmetricKey(rng.read(16))
    manifest_element.remove(signature)  # fresh unsigned copy for clarity
    code_el = manifest_element.find("code")
    Encryptor(rng=rng).encrypt_element(code_el, disc_key,
                                       key_name="disc-key-1")
    assert manifest_element.find("script") is None
    print("\n== encrypted manifest (code hidden) ==")
    print(serialize(manifest_element, pretty=True)[:400], "...")

    Decryptor(keys={"disc-key-1": disc_key}).decrypt_in_place(
        manifest_element
    )
    assert manifest_element.find("script") is not None
    print("\ncode decrypted back:",
          manifest_element.find("script").text_content().strip())


if __name__ == "__main__":
    main()
