"""Regenerate the committed example artifacts under examples/artifacts/.

The artifacts are the `repro audit` quickstart corpus: a cleanly
signed application manifest (RSA-2048, SHA-256, enveloped) and a small
disc-image directory whose cluster is signed and whose permission
request file is matched by a shipped XACML policy.  CI audits them and
expects zero findings, so keep this script deterministic (fixed seed)
and re-run it whenever authoring defaults change:

    PYTHONPATH=src python examples/make_artifacts.py
"""

import os

from repro.certs import CertificateAuthority, SigningIdentity
from repro.disc import ApplicationManifest
from repro.disc.hierarchy import InteractiveCluster
from repro.dsig import Signer, algorithms
from repro.permissions import PermissionRequestFile
from repro.primitives import DeterministicRandomSource
from repro.xacml.model import (
    ACTION, Effect, Match, Policy, RESOURCE, Rule, SUBJECT, Target,
)
from repro.xmlcore import parse_element, serialize

ARTIFACTS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "artifacts")

LAYOUT = (
    '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
    '<root-layout width="1920" height="1080"/>'
    '<region regionName="main" width="1920" height="1080"/>'
    "</layout>"
)


def strong_signer(rng) -> Signer:
    """A signer the auditor has nothing to say about."""
    root_ca = CertificateAuthority.create_root(
        "CN=Example Root CA", key_bits=2048, rng=rng,
    )
    studio = SigningIdentity.create(
        "CN=Example Studios", root_ca, key_bits=2048, rng=rng,
    )
    return Signer(
        studio.key, identity=studio,
        signature_method=algorithms.RSA_SHA256,
        digest_method=algorithms.SHA256,
    )


def write(path: str, text: str) -> None:
    full = os.path.join(ARTIFACTS, path)
    os.makedirs(os.path.dirname(full), exist_ok=True)
    with open(full, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {full}")


def make_signed_manifest(signer: Signer) -> None:
    manifest = ApplicationManifest("example-menu")
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.add_script('player.log("hello from the example disc");')
    root = manifest.to_element()
    signer.sign_enveloped(root)
    write("signed_manifest.xml", serialize(root, xml_declaration=True))


def make_disc(signer: Signer) -> None:
    manifest = ApplicationManifest("example-app")
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.add_script("var state = 0;")
    cluster = InteractiveCluster(title="Example Disc")
    cluster.add_application_track(manifest)
    cluster_el = cluster.to_element()
    signer.sign_enveloped(cluster_el)
    write("disc/BDMV/CLUSTER/cluster.xml",
          serialize(cluster_el, xml_declaration=True))

    request = PermissionRequestFile(app_id="example-app",
                                    org_id="example-org")
    request.request("network", hosts=("content.example",))
    write("disc/BDMV/AUXDATA/permissions.xml", request.to_xml())

    policy = Policy(
        policy_id="example-disc-policy",
        description="Grants the example application its network claim.",
    )
    policy.add_rule(Rule(
        "permit-network", Effect.PERMIT,
        target=Target(matches=[
            Match(SUBJECT, "app-id", "example-app"),
            Match(RESOURCE, "permission", "network"),
            Match(ACTION, "action-id", "use"),
        ]),
    ))
    write("disc/BDMV/AUXDATA/policy.xml", policy.to_xml())


def main() -> None:
    rng = DeterministicRandomSource(b"example-artifacts")
    signer = strong_signer(rng)
    make_signed_manifest(signer)
    make_disc(signer)


if __name__ == "__main__":
    main()
