"""The high-scores scenario from §4 of the paper.

"A Player, for instance, can encrypt and store the high scores of a
game in a local storage while keeping the general application markup
unencrypted.  When the game is being executed, the player needs to
decrypt only the scores, which can be done in parallel to the
execution of the markup."

This example shows both halves:

* **partial markup encryption** — the game's score table inside the
  manifest is content-encrypted while the rest of the markup stays
  readable (Fig 8);
* **encrypted local storage** — the running game persists new high
  scores through the engine's ``storage.writeSecure``, and the raw
  storage bytes never contain the score.

Run:  python examples/game_highscores.py
"""

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.core import AuthoringPipeline, PlaybackPipeline
from repro.disc import ApplicationManifest
from repro.permissions import PERM_LOCAL_STORAGE, PermissionRequestFile
from repro.player import InteractiveApplicationEngine, LocalStorage
from repro.primitives import DeterministicRandomSource, SymmetricKey
from repro.primitives.rsa import generate_keypair
from repro.xmlcore import parse_element, serialize
from repro.xmlenc import Decryptor, Encryptor

GAME_SCRIPT = """
// Read the previous best (decrypted transparently by the player).
var best = storage.read("best");
if (best == null) best = 0;
player.log("previous best: " + best);

function gameOver(score) {
    if (score > best) {
        best = score;
        storage.writeSecure("best", best);
        player.log("new high score: " + best);
    }
    return best;
}
"""


def main() -> None:
    rng = DeterministicRandomSource(b"high-scores")
    root_ca = CertificateAuthority.create_root("CN=BD Root CA", rng=rng)
    studio = SigningIdentity.create("CN=Pinball Games", root_ca, rng=rng)
    trust = TrustStore(roots=[root_ca.certificate])
    device_key = generate_keypair(1024, rng)

    # --- partial markup encryption (Fig 8) -------------------------------------
    scores_markup = parse_element(
        '<scores xmlns="urn:bda:bdmv:interactive-cluster" Id="score-table">'
        '<entry player="AAA" value="12000"/>'
        '<entry player="BBB" value="9000"/></scores>'
    )
    game = ApplicationManifest("pinball")
    game.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<root-layout width="1920" height="1080"/>'
        '<region regionName="main" width="1920" height="1080"/>'
        "</layout>"
    ))
    game.add_submarkup("scores", scores_markup)
    game.add_script(GAME_SCRIPT)

    manifest_element = game.to_element()
    disc_key = SymmetricKey(rng.read(16))
    table = manifest_element.get_element_by_id("score-table")
    Encryptor(rng=rng).encrypt_content(table, disc_key,
                                       key_name="disc-key")
    print("== shipped manifest: table element visible, rows hidden ==")
    print(serialize(manifest_element.get_element_by_id("score-table"),
                    pretty=True)[:320], "...\n")

    Decryptor(keys={"disc-key": disc_key}).decrypt_in_place(
        manifest_element
    )
    rows = manifest_element.get_element_by_id("score-table") \
        .findall("entry")
    print("decrypted rows:", [(r.get("player"), r.get("value"))
                              for r in rows])

    # --- encrypted local storage at run time --------------------------------------
    prf = PermissionRequestFile("pinball", "org.pinball")
    prf.request(PERM_LOCAL_STORAGE, quota_bytes=4096)
    package = AuthoringPipeline(
        studio, recipient_key=device_key.public_key(), rng=rng,
    ).build_package(game, permission_file=prf)

    storage = LocalStorage()
    storage_key = SymmetricKey(rng.read(16))  # player-internal secret
    engine = InteractiveApplicationEngine(
        PlaybackPipeline(trust_store=trust, device_key=device_key),
        storage=storage, storage_key=storage_key,
    )
    application = engine.load_package(package.data)
    session = engine.execute(application)
    print("\nfirst run:", session.console)
    print("gameOver(4200) ->", session.dispatch("gameOver", 4200.0))
    print("gameOver(1000) ->", session.dispatch("gameOver", 1000.0))

    # The raw storage slot is ciphertext — the score never hits disk
    # in the clear.
    raw = storage.read("pinball", "best")
    print(f"\nraw storage bytes ({len(raw)}B):", raw[:24].hex(), "...")
    print("contains '4200'?", b"4200" in raw)

    # Second execution resumes from the protected slot.
    session2 = engine.execute(engine.load_package(package.data))
    print("second run:", session2.console)


if __name__ == "__main__":
    main()
