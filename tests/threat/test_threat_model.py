"""The STRIDE catalogue and each threat's executable mitigation check.

Each test here is the *demonstration* that a catalogued threat is
actually mitigated by the mechanism the catalogue names — the threat
model is code, not prose.
"""

import pytest

from repro.errors import (
    ApplicationRejectedError, ChannelSecurityError, ScriptRuntimeError,
    XMLSyntaxError,
)
from repro.threat import (
    ENTITY_BOMB, RUNAWAY_SCRIPT, THREAT_CATALOG, Requirement,
    StrideCategory, coverage_report, threats_by_category,
    threats_by_requirement,
)


# -- catalogue structure -------------------------------------------------------

def test_catalog_ids_unique():
    ids = [t.threat_id for t in THREAT_CATALOG]
    assert len(ids) == len(set(ids))


def test_every_stride_category_covered():
    report = coverage_report()
    assert set(report) == {c.value for c in StrideCategory}
    assert all(count >= 1 for count in report.values())


def test_every_requirement_covered():
    """§3.1's four requirement buckets all appear in the model."""
    for requirement in Requirement:
        assert threats_by_requirement(requirement)


def test_every_threat_names_mitigations():
    for threat in THREAT_CATALOG:
        assert threat.mitigations, f"{threat.threat_id} has no mitigation"
        assert all(m.startswith("repro.") for m in threat.mitigations)


def test_category_lookup():
    tampering = threats_by_category(StrideCategory.TAMPERING)
    assert {t.threat_id for t in tampering} >= {"T02", "T03"}


def test_mitigation_references_resolve():
    """Every referenced module path must import (first two components)."""
    import importlib
    for threat in THREAT_CATALOG:
        for mitigation in threat.mitigations:
            module_path = ".".join(mitigation.split(" ")[0]
                                   .split(".")[:2])
            importlib.import_module(module_path)


# -- executable mitigations ---------------------------------------------------------

def test_t10_runaway_script_mitigated():
    from repro.markup import run_script
    with pytest.raises(ScriptRuntimeError, match="budget"):
        run_script(RUNAWAY_SCRIPT, max_instructions=10_000)


def test_t11_entity_bomb_mitigated():
    from repro.xmlcore import parse_document
    with pytest.raises(XMLSyntaxError, match="security"):
        parse_document(ENTITY_BOMB)


def test_t02_tampering_mitigated(pki, trust_store, manifest):
    from repro.dsig import Signer, Verifier
    signature = Signer(pki.studio.key,
                       identity=pki.studio).sign_enveloped(manifest)
    manifest.find("script").children[0].data = "var hacked = 1;"
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    assert not verifier.verify(signature).valid


def test_t01_spoofing_mitigated(pki, trust_store, manifest):
    from repro.dsig import Signer, Verifier
    signature = Signer(pki.attacker.key,
                       identity=pki.attacker).sign_enveloped(manifest)
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    assert not verifier.verify(signature).valid


def test_t04_wiretap_mitigated(pki, trust_store):
    from repro.certs import SigningIdentity
    from repro.network import Channel, PassiveWiretap, SecureClient, \
        SecureServer, secure_transfer
    from repro.primitives.random import DeterministicRandomSource
    identity = SigningIdentity.create(
        "CN=server", pki.root,
        rng=DeterministicRandomSource(b"t04-ident"),
    )
    wiretap = PassiveWiretap()
    secure_transfer(SecureClient(trust_store), SecureServer(identity),
                    Channel([wiretap]), b"VERBOSE-MARKUP-SOURCE")
    assert not wiretap.saw_plaintext(b"VERBOSE-MARKUP-SOURCE")


def test_t05_at_rest_mitigated(rng):
    from repro.player import LocalStorage
    from repro.primitives.keys import SymmetricKey
    storage = LocalStorage()
    key = SymmetricKey(rng.read(16))
    storage.write_encrypted("game", "scores", b"top:9999", key)
    assert b"9999" not in storage.read("game", "scores")


def test_t06_key_management_mitigated(pki, rng):
    from repro.primitives.rsa import generate_keypair
    from repro.xkms import RESULT_REFUSED, TrustServer, XKMSClient
    server = TrustServer(registration_secrets={"": b"s3cret"})
    client = XKMSClient(server.handle_xml)
    key = generate_keypair(1024, rng)
    # Illegal registration (no valid secret) is refused.
    assert client.register("stolen-name", key.public_key(),
                           b"guess").result_major == RESULT_REFUSED


def test_t08_storage_corruption_mitigated(pki, trust_store, rng):
    """An untrusted app cannot touch local storage at all."""
    from repro.core import PlaybackPipeline
    from repro.permissions import PermissionRequestFile, \
        PERM_LOCAL_STORAGE
    pipeline = PlaybackPipeline(trust_store=trust_store,
                                require_signature=False)
    prf = PermissionRequestFile("mal", "org.evil")
    prf.request(PERM_LOCAL_STORAGE)
    grants = pipeline.permission_policy.decide(prf, trusted=False)
    assert not grants.has(PERM_LOCAL_STORAGE)


def test_t12_rogue_server_mitigated(pki, trust_store):
    from repro.certs import SigningIdentity
    from repro.network import Channel, SecureClient, SecureServer, \
        establish
    from repro.primitives.random import DeterministicRandomSource
    rogue = SigningIdentity.create(
        "CN=server", pki.rogue_root,
        rng=DeterministicRandomSource(b"t12-rogue"),
    )
    with pytest.raises(ChannelSecurityError):
        establish(SecureClient(trust_store), SecureServer(rogue),
                  Channel())


def test_t13_signature_wrapping_mitigated(pki, trust_store, rng):
    """T13: injected unsigned content on an authentic disc is barred."""
    from repro.core import ProtectionLevel, sign_disc_image
    from repro.disc import ApplicationManifest, DiscAuthor
    from repro.dsig import Signer
    from repro.player import DiscPlayer
    from repro.threat import inject_wrapped_manifest
    from repro.xmlcore import parse_element

    author = DiscAuthor("T13 Disc", rng=rng)
    clip = author.add_clip(2.0, packets_per_second=25)
    author.add_feature("main", [clip])
    manifest = ApplicationManifest("menu")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="1" height="1"/></layout>'
    ))
    manifest.add_script('player.log("legit");')
    author.add_application(manifest)
    image = author.master()
    sign_disc_image(image, Signer(pki.studio.key, identity=pki.studio),
                    level=ProtectionLevel.MANIFEST)

    attacked = inject_wrapped_manifest(image, "menu")
    player = DiscPlayer(trust_store)
    session = player.insert_disc(attacked)
    # The wrapping attack leaves every signature intact...
    assert session.authenticated
    # ...but the injected manifest is not covered and must not run.
    with pytest.raises(ApplicationRejectedError, match="wrapping"):
        player.launch_disc_application("menu")

    # The legitimate disc still launches fine.
    clean_player = DiscPlayer(trust_store)
    clean_player.insert_disc(image)
    assert clean_player.launch_disc_application("menu").console == \
        ["legit"]
