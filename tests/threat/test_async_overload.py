"""Overload + network chaos over the async XKMS transport (S4).

The composed adversary run: a fleet of seeded sessions drives a tight
overload shield while drop/delay/truncation faults chew on the wire.
The invariants under attack are exactly the PR's acceptance criteria:

* every operation ends in a *typed* ``ReproError`` outcome or success
  — zero untyped exceptions, zero tracebacks;
* zero hangs — the virtual-clock driver turns a stall into a typed
  deadlock error, so mere completion of ``clock.run`` proves liveness;
* every shed is *answered* with a structured fault frame (never a
  silent drop) and leaves exactly one degradation-log event;
* the same seeds replay to the identical outcome census.
"""

import asyncio
import random

import pytest

from repro.errors import ReproError, ServiceOverloadError, TimeoutError
from repro.network import AsyncChannel, AsyncServiceClient, AsyncServiceServer
from repro.resilience import (
    AdmissionController, AIMDLimiter, CircuitBreaker, DegradationLog,
    DelayFault, DropFault, FaultSchedule, OverloadShield, RetryPolicy,
    TenantPolicy, TruncateFault, VirtualClock,
)
from repro.primitives import generate_keypair
from repro.primitives.random import DeterministicRandomSource
from repro.xkms import AsyncTrustService, AsyncXKMSClient, busy_fault_payload
from repro.xkms.client import MuxXKMSTransport
from repro.xkms.messages import reset_request_ids

SECRET = b"chaos-secret"
SESSIONS = 48
OPS = 2


@pytest.fixture(scope="module")
def fleet_key():
    return generate_keypair(
        512, DeterministicRandomSource(b"overload-chaos")).public_key()


def chaos_run(seed: int, fleet_key):
    """One seeded chaos fleet; returns (census, probes) for invariants."""
    reset_request_ids()
    clock = VirtualClock()
    service = AsyncTrustService(
        2, clock=clock, registration_secrets={"": SECRET})
    for k in range(8):
        service.register_binding(f"key-{k}", fleet_key)

    degradation = DegradationLog()
    shield = OverloadShield(
        clock,
        admission=AdmissionController(
            clock, TenantPolicy(max_concurrent=4, max_queued=4)),
        limiter=AIMDLimiter(initial_limit=8.0, target_latency_s=0.2),
        degradation=degradation,
        component="xkms-chaos",
    )

    async def handler(payload, context):
        await clock.asleep(0.05)
        return await service.handle_request(payload, context)

    server = AsyncServiceServer(
        handler, clock=clock, shield=shield,
        fault_encoder=busy_fault_payload)
    adversaries = [
        DropFault(schedule=FaultSchedule.probability(0.08, seed=seed)),
        DelayFault(schedule=FaultSchedule.probability(0.15,
                                                      seed=seed + 1),
                   delay_s=0.4, clock=clock),
        TruncateFault(schedule=FaultSchedule.every(37, offset=11)),
    ]
    channel = AsyncChannel(adversaries, clock=clock)
    mux = AsyncServiceClient(channel, clock=clock)
    retry = RetryPolicy(max_attempts=2, base_delay=0.2, clock=clock,
                        seed=seed)
    breaker = CircuitBreaker(failure_threshold=12, cooldown=1.0,
                             clock=clock)

    outcomes: list[tuple[int, int, str]] = []

    async def session(index: int):
        rng = random.Random(f"{seed}:{index}")
        client = AsyncXKMSClient(
            MuxXKMSTransport(mux, tenant=("player", "kiosk")[index % 2]),
            clock=clock, retry_policy=retry, circuit_breaker=breaker,
            default_timeout_s=2.0)
        await clock.asleep(rng.uniform(0.0, 1.0))
        for op in range(OPS):
            name = f"key-{rng.randrange(8)}"
            try:
                if rng.random() < 0.5:
                    await client.validate(name, fleet_key)
                else:
                    await client.locate(name)
            except ReproError as exc:
                outcomes.append((index, op, type(exc).__name__))
            except BaseException as exc:  # noqa: BLE001 - the invariant
                outcomes.append((index, op, f"UNTYPED:{type(exc).__name__}"))
            else:
                outcomes.append((index, op, "ok"))
            await clock.asleep(rng.uniform(0.0, 0.2))

    async def main():
        serving = asyncio.ensure_future(server.serve(channel))
        await asyncio.gather(*[session(i) for i in range(SESSIONS)])
        channel.close()
        await mux.aclose()
        await asyncio.gather(serving, return_exceptions=True)

    clock.run(main())  # completing at all proves zero hangs
    return {
        "outcomes": sorted(outcomes),
        "sheds": shield.stats.sheds,
        "sheds_answered": server.stats.sheds_answered,
        "degradation_events": len(
            degradation.for_component("xkms-chaos")),
        "dropped": channel.dropped,
        "internal_errors": server.stats.internal_errors,
        "garbage_frames": mux.stats.garbage_frames,
        "timeouts": mux.stats.timeouts,
        "makespan": clock.now(),
    }


def test_chaos_only_typed_outcomes_and_structured_sheds(fleet_key):
    probe = chaos_run(1337, fleet_key)
    census = [kind for _, _, kind in probe["outcomes"]]
    assert len(census) == SESSIONS * OPS
    # Invariant 1: zero untyped escapes.
    assert not [k for k in census if k.startswith("UNTYPED:")]
    # The chaos actually bit: faults fired and some requests failed.
    assert probe["dropped"] > 0
    assert any(kind != "ok" for kind in census)
    assert any(kind == "ok" for kind in census)
    # Invariant 2: a shed is an answered fault frame, not a silence.
    assert probe["sheds_answered"] == probe["sheds"]
    # Invariant 3: each shed logged exactly one degradation event.
    assert probe["degradation_events"] == probe["sheds"]
    # Handler bugs would be counted (and answered); there were none.
    assert probe["internal_errors"] == 0


def test_chaos_census_is_seed_deterministic(fleet_key):
    first = chaos_run(7, fleet_key)
    second = chaos_run(7, fleet_key)
    assert first == second
    different = chaos_run(8, fleet_key)
    assert different["outcomes"] != first["outcomes"]


def test_truncated_answers_degrade_to_typed_timeouts(fleet_key):
    """A truncated response matches no stream: the caller's deadline
    turns the loss into a typed TimeoutError, never a hang."""
    reset_request_ids()
    clock = VirtualClock()
    service = AsyncTrustService(
        1, clock=clock, registration_secrets={"": SECRET})
    service.register_binding("key-0", fleet_key)

    async def handler(payload, context):
        return await service.handle_request(payload, context)

    server = AsyncServiceServer(handler, clock=clock,
                                fault_encoder=busy_fault_payload)
    # Truncate every server->client answer (odd messages on the wire).
    channel = AsyncChannel(
        [TruncateFault(schedule=FaultSchedule.every(2, offset=1),
                       keep_bytes=4)],
        clock=clock)
    mux = AsyncServiceClient(channel, clock=clock)
    client = AsyncXKMSClient(
        MuxXKMSTransport(mux, tenant="player"), clock=clock,
        default_timeout_s=1.0)

    async def main():
        serving = asyncio.ensure_future(server.serve(channel))
        with pytest.raises(TimeoutError):
            await client.locate("key-0")
        channel.close()
        await mux.aclose()
        await asyncio.gather(serving, return_exceptions=True)

    clock.run(main())
    assert mux.stats.garbage_frames == 1
    assert mux.stats.timeouts == 1
    assert clock.now() == 1.0


def test_overload_with_faults_still_answers_every_shed(fleet_key):
    """Saturate a one-slot service through a lossy link: every shed
    that the server decides still goes out as a structured fault."""
    reset_request_ids()
    clock = VirtualClock()
    service = AsyncTrustService(
        1, clock=clock, registration_secrets={"": SECRET})
    service.register_binding("key-0", fleet_key)
    degradation = DegradationLog()
    shield = OverloadShield(
        clock,
        admission=AdmissionController(
            clock, TenantPolicy(max_concurrent=1, max_queued=1)),
        degradation=degradation, component="xkms-chaos")

    async def handler(payload, context):
        await clock.asleep(0.5)
        return await service.handle_request(payload, context)

    server = AsyncServiceServer(handler, clock=clock, shield=shield,
                                fault_encoder=busy_fault_payload)
    channel = AsyncChannel(
        [DropFault(schedule=FaultSchedule.probability(0.2, seed=5))],
        clock=clock)
    mux = AsyncServiceClient(channel, clock=clock)

    results = []

    async def burst(index: int):
        client = AsyncXKMSClient(
            MuxXKMSTransport(mux, tenant="player"), clock=clock,
            default_timeout_s=2.0)
        try:
            await client.locate("key-0")
        except (ServiceOverloadError, TimeoutError) as exc:
            results.append(type(exc).__name__)
        else:
            results.append("ok")

    async def main():
        serving = asyncio.ensure_future(server.serve(channel))
        await asyncio.gather(*[burst(i) for i in range(12)])
        channel.close()
        await mux.aclose()
        await asyncio.gather(serving, return_exceptions=True)

    clock.run(main())
    assert len(results) == 12
    assert server.stats.sheds_answered == shield.stats.sheds
    assert len(degradation.for_component("xkms-chaos")) == \
        shield.stats.sheds
    assert results.count("ok") >= 1
