"""Deterministic threaded stress tests for the shared security state.

The CON3xx analyzer proves lock discipline statically; these tests
hammer the same objects dynamically: barrier-started verifier threads
over one shared tree and trust store, a mutator thread revoking and
adding intermediates mid-flight, and a provider-swap thread flipping
the late-bound crypto provider — asserting *exact* counter outcomes
(no lost updates), verdicts identical to the sequential path, and no
torn breaker/log state.  Thread interleavings are inherently
nondeterministic; determinism here means every assertion is an exact
invariant that must hold under *any* interleaving, across three
pinned shuffle seeds.
"""

from __future__ import annotations

import random
import threading
from types import SimpleNamespace

import pytest

from repro.certs import TrustStore
from repro.core import verify_signatures
from repro.dsig import Signer, Verifier
from repro.errors import CircuitOpenError
from repro.perf import metrics
from repro.perf.batch import BatchVerifier
from repro.perf.cache import C14NDigestCache
from repro.primitives.provider import get_provider
from repro.resilience.degradation import DegradationLog
from repro.resilience.retry import STATE_OPEN, CircuitBreaker
from repro.xmlcore import parse_element

SEEDS = [20050902, 7, 31337]

CLUSTER_XML = """\
<cluster xmlns="urn:bda:bdmv:interactive-cluster" Id="cluster-1">
  <track Id="track-1" kind="av"><clip ref="00001"/></track>
  <track Id="track-2" kind="av"><clip ref="00002"/></track>
  <track Id="track-3" kind="application">
    <script Id="script-3">var x = 1;</script>
  </track>
</cluster>
"""


def _run_all(workers):
    """Start *workers* behind a common barrier and join them all."""
    barrier = threading.Barrier(len(workers))
    errors = []

    def wrap(fn):
        def run():
            barrier.wait()
            try:
                fn()
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)
        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_verify_hammer_with_live_mutations(pki, seed):
    """Verifier threads + trust mutator + provider swapper, one store.

    Verdicts must equal the sequential baseline on every iteration,
    and the generation stamp must count every mutation exactly.
    """
    cluster = parse_element(CLUSTER_XML)
    signer = Signer(pki.studio.key, identity=pki.studio)
    for uri in ("#track-1", "#track-2", "#track-3"):
        signer.sign_detached(uri, parent=cluster)

    store = TrustStore(roots=[pki.root.certificate])
    verifier = Verifier(trust_store=store, require_trusted_key=True,
                        cache=C14NDigestCache())
    sequential = verify_signatures(cluster, verifier)
    assert all(report.valid for report in sequential.values())

    generation_before = store.generation
    rounds, mutations = 4, 16
    rng = random.Random(seed)

    def verify_worker():
        batch = BatchVerifier(verifier, max_workers=2)
        for _ in range(rounds):
            outcome = batch.verify_all(cluster)
            assert set(outcome.reports) == set(sequential)
            for uri, report in outcome.reports.items():
                assert report.valid == sequential[uri].valid

    def mutator_worker():
        ops = (["intermediate"] * mutations
               + ["revoke"] * mutations)
        rng.shuffle(ops)
        serial = 0
        for op in ops:
            if op == "intermediate":
                store.add_intermediate(pki.intermediate.certificate)
            else:
                serial += 1
                # Unrelated issuer: never on the studio chain.
                store.crl.revoke_entry("CN=Nobody Special", serial)

    def swap_worker():
        for index in range(mutations):
            verifier.provider = get_provider("pure") if index % 2 \
                else None
            store.provider = get_provider("pure") if index % 2 \
                else None

    _run_all([verify_worker, verify_worker, verify_worker,
              mutator_worker, swap_worker])

    # Exact mutation accounting: no lost generation bumps.
    generation_after = store.generation
    assert generation_after[0] == generation_before[0] + mutations
    assert generation_after[1] == generation_before[1] + mutations
    assert verifier.provider is get_provider()
    # The tree was never mutated, so verdicts still match afterwards.
    after = verify_signatures(cluster, verifier)
    assert {u: r.valid for u, r in after.items()} == \
        {u: r.valid for u, r in sequential.items()}


@pytest.mark.parametrize("seed", SEEDS)
def test_circuit_breaker_hammer_counts_every_failure(seed):
    """N threads x M failures: exact counts, exactly one opening."""
    threads, failures = 8, 25
    breaker = CircuitBreaker(failure_threshold=threads * failures + 1)
    rng = random.Random(seed)
    jitter = [rng.random() for _ in range(threads)]

    def failure_worker(index):
        def run():
            for _ in range(failures):
                if jitter[index] > 0.5:
                    breaker.before_call()
                breaker.record_failure()
        return run

    _run_all([failure_worker(i) for i in range(threads)])
    assert breaker.consecutive_failures == threads * failures
    assert breaker.times_opened == 0  # threshold is one above the total

    breaker.record_failure()  # the straw: exactly one transition
    assert breaker.state == STATE_OPEN
    assert breaker.times_opened == 1
    with pytest.raises(CircuitOpenError):
        breaker.before_call()
    assert breaker.short_circuits == 1


def test_degradation_log_hammer_loses_no_events():
    threads, events = 8, 50
    log = DegradationLog()

    def recorder(index):
        def run():
            for count in range(events):
                log.record("xkms", f"thread-{index}", "timeout",
                           detail=str(count))
        return run

    _run_all([recorder(i) for i in range(threads)])
    assert len(log.events) == threads * events
    for index in range(threads):
        mine = [e for e in log.events if e.resource == f"thread-{index}"]
        assert sorted(int(e.detail) for e in mine) == list(range(events))


def test_signature_memo_single_flight_dedups_concurrent_misses():
    """Eight simultaneous identical misses: one compute, seven dedups."""
    workers = 8
    cache = C14NDigestCache()
    key = SimpleNamespace(n=0xC0FFEE, e=65537)
    go = threading.Event()
    computed = []
    results = []
    results_lock = threading.Lock()

    def compute():
        go.wait()
        computed.append(1)
        return True

    def worker():
        verdict = cache.signature_verification(
            "rsa-sha256", key, b"octets", b"signature", compute)
        with results_lock:
            results.append(verdict)

    metrics.push_registry()
    try:
        barrier = threading.Barrier(workers)

        def gated():
            barrier.wait()
            worker()

        threads = [threading.Thread(target=gated)
                   for _ in range(workers)]
        for thread in threads:
            thread.start()
        # Every thread is past the barrier and inside
        # signature_verification (or about to be) before the leader's
        # compute is released; followers park on the in-flight event.
        threading.Event().wait(0.5)
        go.set()
        for thread in threads:
            thread.join()

        assert results == [True] * workers
        assert len(computed) == 1
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["perf.cache.sigverify.miss"] == 1
        assert snapshot["counters"][
            "perf.cache.singleflight.dedup"] == workers - 1
    finally:
        metrics.pop_registry()


def test_single_flight_leader_failure_hands_over():
    """A leader whose compute raises must not wedge the followers."""
    cache = C14NDigestCache()
    key = SimpleNamespace(n=0xDECAF, e=3)

    def boom():
        raise ValueError("transient")

    with pytest.raises(ValueError):
        cache.signature_verification("rsa-sha1", key, b"o", b"s", boom)
    # The in-flight ledger is clean: the next caller computes normally.
    assert cache.signature_verification(
        "rsa-sha1", key, b"o", b"s", lambda: True) is True
