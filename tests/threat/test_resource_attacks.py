"""Resource-attack corpus: DoS payloads against every entry point.

The paper's STRIDE row for Denial of Service, made executable: each
test crafts one attack artifact (attribute flood, giant text,
reference bomb, decrypt bomb, hostile package) and asserts the stack
contains it — a typed error, an invalid verification report or a
recorded degradation, never a crash and never ``trusted=True``.
"""

import pytest

from repro.core import AuthoringPipeline, PlaybackPipeline
from repro.disc import ApplicationManifest
from repro.errors import (
    ApplicationRejectedError, ReproError, ResourceLimitExceeded,
)
from repro.network import Channel, ContentServer, DownloadClient
from repro.permissions import PermissionRequestFile
from repro.player import DiscPlayer
from repro.primitives.keys import SymmetricKey
from repro.resilience import (
    REASON_RESOURCE, ResourceGuard, ResourceLimits,
)
from repro.xmlcore import DSIG_NS, element, parse_element
from repro.xmlenc import Decryptor, Encryptor

LAYOUT = (
    '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
    '<region regionName="main" width="1920" height="1080"/></layout>'
)


def signed_package(pki, device_key, rng) -> bytes:
    manifest = ApplicationManifest("corpus-app")
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.add_script('player.log("running");')
    prf = PermissionRequestFile("corpus-app", "org.studio")
    pipeline = AuthoringPipeline(
        pki.studio, recipient_key=device_key.public_key(), rng=rng,
    )
    return pipeline.build_package(manifest, permission_file=prf).data


@pytest.fixture()
def device_key(pki, rng):
    from repro.certs import SigningIdentity
    return SigningIdentity.create("CN=Corpus Player", pki.root,
                                  rng=rng).key


# -- parser-level attack artifacts -------------------------------------------


def test_attribute_flood_artifact_refused():
    attrs = " ".join(f'a{i}="v{i}"' for i in range(1000))
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        parse_element(f'<cluster {attrs}/>')
    assert excinfo.value.limit_name == "max_attributes_per_element"


def test_giant_text_artifact_refused():
    limits = ResourceLimits.default().replace(max_text_bytes=10_000)
    with pytest.raises(ResourceLimitExceeded):
        parse_element(f"<script>{'A' * 50_000}</script>",
                      guard=ResourceGuard(limits))


# -- many-Reference signatures -----------------------------------------------


def test_reference_bomb_yields_invalid_report_not_crash(pki, trust_store,
                                                        device_key, rng):
    """A signature naming a flood of references must be refused before
    the verifier dereferences and digests each one."""
    from repro.dsig import Verifier

    root = parse_element(signed_package(pki, device_key, rng),
                         guard=ResourceGuard.unlimited())
    signature = next(root.iter("Signature", DSIG_NS))
    signed_info = signature.first_child("SignedInfo", DSIG_NS)
    reference = signed_info.first_child("Reference", DSIG_NS)
    for _ in range(100):
        signed_info.append(reference.copy())

    guard = ResourceGuard()   # default: 64 references max
    verifier = Verifier(trust_store=trust_store,
                        require_trusted_key=True, guard=guard)
    report = verifier.verify(signature)
    assert not report.valid
    assert "refusing signature" in (report.error or "")
    assert guard.trips[0].limit_name == "max_references_per_signature"


# -- decrypt expansion bombs -------------------------------------------------


def test_decrypt_bomb_trips_plaintext_quota(rng):
    doc = element("package", None)
    blob = element("blob", None)
    blob.append_text("A" * 30_000)
    doc.append(blob)
    key = SymmetricKey(b"corpus-aes-key!!")
    Encryptor(rng=rng).encrypt_element(blob, key, key_name="k")

    limits = ResourceLimits.default().replace(
        max_decrypt_output_bytes=10_000,
    )
    guard = ResourceGuard(limits)
    decryptor = Decryptor(keys={"k": key}, guard=guard)
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        decryptor.decrypt_in_place(doc)
    assert excinfo.value.limit_name == "max_decrypt_output_bytes"
    assert guard.within_limits()


def test_decrypt_bomb_barred_by_pipeline_with_degradation(
        pki, trust_store, device_key, rng):
    """Through the full pipeline: an encrypted package whose plaintext
    busts the quota is barred and the decision is on the log."""
    manifest = ApplicationManifest("bomb-app")
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.add_script('player.log("' + "A" * 20_000 + '");')
    pipeline = AuthoringPipeline(
        pki.studio, recipient_key=device_key.public_key(), rng=rng,
    )
    package = pipeline.build_package(
        manifest,
        permission_file=PermissionRequestFile("bomb-app", "org.studio"),
        encrypt_ids=(manifest.code_id,),
    ).data

    player_pipeline = PlaybackPipeline(
        trust_store=trust_store, device_key=device_key,
        limits=ResourceLimits.default().replace(
            max_decrypt_output_bytes=5_000,
        ),
    )
    with pytest.raises(ApplicationRejectedError, match="decrypt"):
        player_pipeline.open_package(package)
    events = player_pipeline.degradation.for_component("package")
    assert events and events[-1].reason == REASON_RESOURCE


# -- hostile packages at the pipeline ----------------------------------------


@pytest.mark.parametrize("bomb,kind", [
    ((("<package>" + "<a>" * 500) + ("</a>" * 500 + "</package>")
      ).encode(), "depth"),
    (("<package>" + "<i/>" * 3000 + "</package>").encode(), "nodes"),
])
def test_package_bomb_barred_with_resource_reason(trust_store, device_key,
                                                  bomb, kind):
    pipeline = PlaybackPipeline(
        trust_store=trust_store, device_key=device_key,
        limits=ResourceLimits.default().replace(max_node_count=2000),
    )
    with pytest.raises(ApplicationRejectedError, match="resource"):
        pipeline.open_package(bomb)
    events = pipeline.degradation.for_component("package")
    assert events and events[-1].reason == REASON_RESOURCE


# -- player-level graceful degradation ---------------------------------------


def test_optional_bomb_download_degrades_playback_continues(
        pki, trust_store, device_key, rng):
    """The whole story: a hostile server feeds a resource bomb; the
    optional download is barred (None, logged), playback continues,
    and the legitimate application still runs trusted."""
    server = ContentServer()
    depth_bomb = (("<package>" + "<a>" * 500)
                  + ("</a>" * 500 + "</package>")).encode()
    server.publish("/apps/bomb.pkg", depth_bomb)
    server.publish("/apps/good.pkg", signed_package(pki, device_key, rng))
    client = DownloadClient(server, Channel())
    player = DiscPlayer(trust_store, device_key=device_key)

    barred = player.download_application(client, "/apps/bomb.pkg",
                                         secure=False, optional=True)
    assert barred is None
    events = player.degradation.for_component("download")
    assert events and events[-1].resource == "/apps/bomb.pkg"

    good = player.download_application(client, "/apps/good.pkg",
                                       secure=False)
    assert good is not None and good.trusted
    session = player.run_application(good)
    assert session.console == ["running"]


def test_mandatory_bomb_download_raises_typed_error(trust_store,
                                                    device_key):
    server = ContentServer()
    server.publish("/apps/bomb.pkg",
                   ("<p>" + "<a>" * 500 + "</a>" * 500 + "</p>").encode())
    client = DownloadClient(server, Channel())
    player = DiscPlayer(trust_store, device_key=device_key)
    with pytest.raises(ReproError):
        player.download_application(client, "/apps/bomb.pkg",
                                    secure=False)


def test_bomb_never_executes_with_trust(trust_store, device_key):
    """Even when quotas are raised enough to parse it, an unsigned
    bomb package stays untrusted/barred — resource limits never
    substitute for signature policy."""
    pipeline = PlaybackPipeline(
        trust_store=trust_store, device_key=device_key,
        limits=ResourceLimits.unlimited(),
    )
    bomb = ("<applicationPackage>" + "<a>" * 500 + "</a>" * 500
            + "</applicationPackage>").encode()
    with pytest.raises(ApplicationRejectedError, match="unsigned"):
        pipeline.open_package(bomb)
