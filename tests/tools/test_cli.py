"""The command-line tools, driven through their main() entry point."""

import pytest

from repro.tools import main
from repro.tools.keystore import (
    certificates_from_xml, certificates_to_xml, private_key_from_xml,
    private_key_to_xml, public_key_from_xml, public_key_to_xml,
)

APP_XML = (
    '<manifest xmlns="urn:bda:bdmv:interactive-cluster" Id="m1">'
    '<markup Id="mk1"><region name="main"/></markup>'
    '<code Id="c1"><script>go()</script></code></manifest>'
)

KEY_HEX = "000102030405060708090a0b0c0d0e0f"


@pytest.fixture
def workspace(tmp_path):
    """A CA, a studio identity, and an unsigned document on disk."""
    ca_key = tmp_path / "ca.key"
    ca_cert = tmp_path / "ca.cert"
    studio_key = tmp_path / "studio.key"
    chain = tmp_path / "studio.chain"
    document = tmp_path / "app.xml"
    document.write_text(APP_XML)
    assert main(["ca-init", "--name", "CN=Test Root", "--seed", "root",
                 "--key-out", str(ca_key),
                 "--cert-out", str(ca_cert)]) == 0
    assert main(["keygen", "--seed", "studio", "-o",
                 str(studio_key)]) == 0
    assert main(["issue", "--ca-key", str(ca_key), "--ca-cert",
                 str(ca_cert), "--subject", "CN=Studio",
                 "--subject-key", str(studio_key), "-o",
                 str(chain)]) == 0
    return tmp_path


def test_sign_and_verify_roundtrip(workspace):
    signed = workspace / "signed.xml"
    assert main(["sign", str(workspace / "app.xml"),
                 "--key", str(workspace / "studio.key"),
                 "--chain", str(workspace / "studio.chain"),
                 "-o", str(signed)]) == 0
    assert main(["verify", str(signed),
                 "--roots", str(workspace / "ca.cert")]) == 0


def test_verify_detects_tampering(workspace):
    signed = workspace / "signed.xml"
    main(["sign", str(workspace / "app.xml"),
          "--key", str(workspace / "studio.key"),
          "--chain", str(workspace / "studio.chain"), "-o", str(signed)])
    bad = workspace / "bad.xml"
    bad.write_text(signed.read_text().replace("go()", "evil()"))
    assert main(["verify", str(bad),
                 "--roots", str(workspace / "ca.cert")]) == 1


def test_verify_without_signature(workspace):
    assert main(["verify", str(workspace / "app.xml")]) == 2


def test_verify_untrusted_without_roots(workspace):
    """Self-asserted KeyValue verifies without --roots but fails with."""
    unsigned = workspace / "app.xml"
    signed = workspace / "kv.xml"
    assert main(["sign", str(unsigned),
                 "--key", str(workspace / "studio.key"),
                 "-o", str(signed)]) == 0  # no chain: bare KeyValue
    assert main(["verify", str(signed)]) == 0
    assert main(["verify", str(signed),
                 "--roots", str(workspace / "ca.cert")]) == 1


def test_encrypt_decrypt_cycle(workspace):
    document = workspace / "app.xml"
    encrypted = workspace / "enc.xml"
    assert main(["encrypt", str(document), "--target-id", "c1",
                 "--key-hex", KEY_HEX, "--key-name", "disc",
                 "--seed", "iv", "-o", str(encrypted)]) == 0
    assert "go()" not in encrypted.read_text()
    decrypted = workspace / "dec.xml"
    assert main(["decrypt", str(encrypted), "--key-hex", KEY_HEX,
                 "--key-name", "disc", "-o", str(decrypted)]) == 0
    assert "go()" in decrypted.read_text()


def test_encrypt_unknown_target(workspace):
    assert main(["encrypt", str(workspace / "app.xml"),
                 "--target-id", "ghost", "--key-hex", KEY_HEX]) == 2


def test_decrypt_wrong_key_fails(workspace):
    document = workspace / "app.xml"
    encrypted = workspace / "enc.xml"
    main(["encrypt", str(document), "--target-id", "c1",
          "--key-hex", KEY_HEX, "--key-name", "disc", "--seed", "iv",
          "-o", str(encrypted)])
    wrong = "ff" * 16
    assert main(["decrypt", str(encrypted), "--key-hex", wrong,
                 "--key-name", "disc",
                 "-o", str(workspace / "x.xml")]) == 2


def test_c14n_command(workspace, capsys):
    assert main(["c14n", str(workspace / "app.xml")]) == 0
    out = capsys.readouterr().out
    assert out.startswith("<manifest")
    assert "<region name=\"main\"></region>" in out


def test_c14n_variants_agree(workspace, tmp_path, capsys):
    a = tmp_path / "a.xml"
    b = tmp_path / "b.xml"
    a.write_text('<r b="2" a="1"/>')
    b.write_text("<r a='1'  b=\"2\" ></r>")
    main(["c14n", str(a)])
    out_a = capsys.readouterr().out
    main(["c14n", str(b)])
    out_b = capsys.readouterr().out
    assert out_a == out_b


def test_inspect_command(workspace, capsys):
    signed = workspace / "signed.xml"
    main(["sign", str(workspace / "app.xml"),
          "--key", str(workspace / "studio.key"),
          "--chain", str(workspace / "studio.chain"), "-o", str(signed)])
    main(["encrypt", str(signed), "--target-id", "c1",
          "--key-hex", KEY_HEX])
    assert main(["inspect", str(signed)]) == 0
    out = capsys.readouterr().out
    assert "signatures: 1" in out
    assert "encrypted regions: 1" in out


def test_missing_file_error(tmp_path, capsys):
    assert main(["verify", str(tmp_path / "missing.xml")]) == 2


def test_keystore_roundtrips(pki):
    key = pki.studio.key
    again = private_key_from_xml(private_key_to_xml(key))
    assert again == key
    public = key.public_key()
    assert public_key_from_xml(public_key_to_xml(public)) == public
    bundle = certificates_to_xml(pki.studio.chain)
    certificates = certificates_from_xml(bundle)
    assert [c.subject for c in certificates] == \
        [c.subject for c in pki.studio.chain]


def test_keystore_rejects_wrong_files(pki):
    from repro.errors import KeyError_
    with pytest.raises(KeyError_):
        private_key_from_xml("<NotAKey/>")
    with pytest.raises(KeyError_):
        public_key_from_xml("<NotAKey/>")
    with pytest.raises(KeyError_):
        certificates_from_xml("<Junk/>")


MANIFEST_XML = (
    '<manifest xmlns="urn:bda:bdmv:interactive-cluster" Id="m1" '
    'name="cli-app"><markup Id="mk1">'
    '<submarkup kind="layout" Id="sm1">'
    '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
    '<region regionName="main" width="1" height="1"/></layout>'
    '</submarkup></markup>'
    '<code Id="c1"><script Id="s1" language="ecmascript">'
    'player.log("cli");</script></code></manifest>'
)


@pytest.fixture
def package_workspace(workspace):
    """Extends the CA workspace with a player key pair + manifest."""
    from repro.tools.keystore import (
        private_key_from_xml, public_key_to_xml,
    )
    player_key = workspace / "player.key"
    assert main(["keygen", "--seed", "player", "-o",
                 str(player_key)]) == 0
    key = private_key_from_xml(player_key.read_bytes())
    (workspace / "player.pub").write_text(
        public_key_to_xml(key.public_key())
    )
    (workspace / "manifest.xml").write_text(MANIFEST_XML)
    return workspace


def test_package_and_open_roundtrip(package_workspace):
    ws = package_workspace
    assert main(["package", str(ws / "manifest.xml"),
                 "--key", str(ws / "studio.key"),
                 "--chain", str(ws / "studio.chain"),
                 "--recipient-key", str(ws / "player.pub"),
                 "--encrypt-code", "--seed", "pkg",
                 "-o", str(ws / "app.pkg")]) == 0
    # The encrypted package hides the script.
    assert b"player.log" not in (ws / "app.pkg").read_bytes()
    assert main(["open-package", str(ws / "app.pkg"),
                 "--roots", str(ws / "ca.cert"),
                 "--device-key", str(ws / "player.key"),
                 "-o", str(ws / "opened.xml")]) == 0
    assert "player.log" in (ws / "opened.xml").read_text()


def test_open_package_bars_tampering(package_workspace):
    ws = package_workspace
    main(["package", str(ws / "manifest.xml"),
          "--key", str(ws / "studio.key"),
          "--chain", str(ws / "studio.chain"),
          "--recipient-key", str(ws / "player.pub"),
          "--seed", "pkg", "-o", str(ws / "app.pkg")])
    tampered = (ws / "app.pkg").read_bytes().replace(
        b"cli-app", b"bad-app",
    )
    (ws / "bad.pkg").write_bytes(tampered)
    assert main(["open-package", str(ws / "bad.pkg"),
                 "--roots", str(ws / "ca.cert"),
                 "--device-key", str(ws / "player.key")]) == 1


def test_open_package_without_device_key(package_workspace):
    ws = package_workspace
    main(["package", str(ws / "manifest.xml"),
          "--key", str(ws / "studio.key"),
          "--chain", str(ws / "studio.chain"),
          "--recipient-key", str(ws / "player.pub"),
          "--encrypt-code", "--seed", "pkg",
          "-o", str(ws / "app.pkg")])
    # Without the device key, the decryption transform fails → barred.
    assert main(["open-package", str(ws / "app.pkg"),
                 "--roots", str(ws / "ca.cert")]) == 1
