"""The ``durable`` CLI subcommand and the ``chaos --crash`` sweep."""

import pytest

from repro.resilience.durable import DurableStore
from repro.tools import main


@pytest.fixture
def state_dir(tmp_path):
    """A real on-disk durable directory with committed records."""
    directory = str(tmp_path / "state")
    store = DurableStore(directory)
    store.set("licenses", "disc-1", b"license-blob")
    store.set("licenses", "disc-2", b"other-blob")
    store.set("scores", "game", b"120")
    store.commit()
    return directory


def test_inspect_clean_directory(state_dir, capsys):
    assert main(["durable", "inspect", state_dir]) == 0
    out = capsys.readouterr().out
    assert "'licenses': 2 key(s)" in out
    assert "'scores': 1 key(s)" in out
    assert "tail: clean" in out


def test_verify_clean_directory(state_dir):
    assert main(["durable", "verify", state_dir]) == 0


def test_verify_fails_on_torn_tail(state_dir, capsys):
    journal = f"{state_dir}/{DurableStore.JOURNAL_NAME}"
    with open(journal, "ab") as handle:
        handle.write(b"\x40\x00\x00\x00torn-frame")
    assert main(["durable", "verify", state_dir]) == 1
    assert "torn byte(s)" in capsys.readouterr().out
    # inspect reports the same tail but stays exit 0 (read-only look).
    assert main(["durable", "inspect", state_dir]) == 0


def test_verify_does_not_repair(state_dir):
    journal = f"{state_dir}/{DurableStore.JOURNAL_NAME}"
    with open(journal, "ab") as handle:
        handle.write(b"\x40\x00\x00\x00torn-frame")
    with open(journal, "rb") as handle:
        before = handle.read()
    main(["durable", "verify", state_dir])
    with open(journal, "rb") as handle:
        assert handle.read() == before


def test_compact_shrinks_and_preserves(state_dir, capsys):
    store = DurableStore(state_dir)
    for i in range(10):
        store.set("scores", "game", str(i).encode())
        store.commit()
    assert main(["durable", "compact", state_dir]) == 0
    assert "compacted" in capsys.readouterr().out
    reopened = DurableStore(state_dir)
    assert reopened.get("scores", "game") == b"9"
    assert reopened.get("licenses", "disc-1") == b"license-blob"
    assert reopened.recovery.snapshot_seq > 0


def test_compact_repairs_torn_tail_first(state_dir, capsys):
    journal = f"{state_dir}/{DurableStore.JOURNAL_NAME}"
    with open(journal, "ab") as handle:
        handle.write(b"\x40\x00\x00\x00torn-frame")
    assert main(["durable", "compact", state_dir]) == 0
    assert "repaired" in capsys.readouterr().out
    assert main(["durable", "verify", state_dir]) == 0


def test_integrity_key_roundtrip(tmp_path, capsys):
    directory = str(tmp_path / "keyed")
    key = b"\x01\x02" * 16
    store = DurableStore(directory, integrity_key=key)
    store.set("ns", "k", b"v")
    store.commit()
    hexkey = key.hex()
    assert main(["durable", "verify", directory,
                 "--integrity-key-hex", hexkey]) == 0
    # Without the key the checksums read as tampering (typed error,
    # surfaced by main() as a failure exit).
    assert main(["durable", "verify", directory]) != 0


def test_chaos_crash_sweep(capsys):
    assert main(["chaos", "--crash", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "crash-chaos seed=7" in out
    assert "all crash recoveries verified" in out
