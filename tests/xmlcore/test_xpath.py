"""XPath-lite evaluation."""

import pytest

from repro.errors import XPathError
from repro.xmlcore import find_all, find_first, parse_document

DOC = parse_document("""\
<cluster xmlns="urn:disc" xmlns:x="urn:ext">
  <track Id="t1" type="av">
    <playlist name="main"><item dur="10"/><item dur="20"/></playlist>
  </track>
  <track Id="t2" type="app">
    <manifest Id="m1">
      <markup><x:widget kind="menu"/></markup>
      <code><script>go()</script></code>
    </manifest>
  </track>
</cluster>
""")


def test_absolute_path():
    tracks = find_all(DOC, "/cluster/track")
    assert [t.get("Id") for t in tracks] == ["t1", "t2"]


def test_descendant_axis():
    assert find_first(DOC, "//manifest").get("Id") == "m1"
    assert len(find_all(DOC, "//item")) == 2


def test_attribute_selection():
    assert find_all(DOC, "//playlist/@name") == ["main"]
    assert find_all(DOC, "//item/@dur") == ["10", "20"]


def test_positional_predicate():
    assert find_all(DOC, "//item[2]/@dur") == ["20"]
    assert find_all(DOC, "//item[9]") == []


def test_attribute_predicates():
    assert find_first(DOC, "//track[@type='app']").get("Id") == "t2"
    assert len(find_all(DOC, "//track[@type]")) == 2
    assert find_all(DOC, "//track[@type='game']") == []


def test_child_text_predicate():
    assert find_first(DOC, "//code[script='go()']") is not None
    assert find_first(DOC, "//code[script='stop()']") is None


def test_id_function():
    assert find_first(DOC, "id('m1')").local == "manifest"
    assert find_all(DOC, "id('nope')") == []
    assert find_first(DOC, "id('t2')/manifest/markup") is not None


def test_wildcard():
    assert len(find_all(DOC, "/cluster/*")) == 2
    assert len(find_all(DOC, "//manifest/*")) == 2


def test_prefixed_name_requires_mapping():
    hits = find_all(DOC, "//x:widget", {"x": "urn:ext"})
    assert len(hits) == 1
    with pytest.raises(XPathError):
        find_all(DOC, "//x:widget")


def test_unprefixed_matches_any_namespace():
    # widget is in urn:ext but matches its local name.
    assert find_first(DOC, "//widget") is not None


def test_relative_from_element():
    track = find_first(DOC, "//track[@Id='t2']")
    assert find_first(track, "manifest/code/script") is not None
    assert find_all(track, "playlist") == []


def test_dot_and_parent():
    manifest = find_first(DOC, "//manifest")
    assert find_all(manifest, ".") == [manifest]
    assert find_first(manifest, "..").get("Id") == "t2"


def test_absolute_from_element_context():
    script = find_first(DOC, "//script")
    assert find_all(script, "/cluster/track") != []


def test_malformed_expressions():
    for bad in ["//[", "///x", "[1]"]:
        with pytest.raises(XPathError):
            find_all(DOC, bad)


def test_unsupported_predicate():
    with pytest.raises(XPathError):
        find_all(DOC, "//track[position()>1]")
