"""Tree manipulation and plain serialization round trips."""

import pytest

from repro.errors import NamespaceError, XMLError
from repro.xmlcore import (
    C14N, canonicalize, element, parse_element, serialize,
    serialize_bytes,
)
from repro.xmlcore.tree import Comment, Document, Element, Text


def test_element_builder():
    node = element(
        "app:manifest", "urn:app", nsmap={"app": "urn:app"},
        attrs={"Id": "m1"}, text="body",
    )
    assert node.qname == "app:manifest"
    assert node.get("Id") == "m1"
    assert node.text_content() == "body"


def test_append_reparents():
    a = Element("a")
    b = Element("b")
    child = Element("c")
    a.append(child)
    b.append(child)
    assert child.parent is b
    assert not a.children


def test_replace_and_insert():
    root = parse_element("<r><a/><b/><c/></r>")
    a, b, c = root.child_elements()
    new = Element("x")
    root.replace(b, new)
    assert [e.local for e in root.child_elements()] == ["a", "x", "c"]
    assert b.parent is None
    root.insert(0, Element("first"))
    assert root.child_elements()[0].local == "first"


def test_attribute_name_forms():
    root = parse_element('<r xmlns:p="urn:p" plain="1" p:scoped="2"/>')
    assert root.get("plain") == "1"
    assert root.get("p:scoped") == "2"
    assert root.get("{urn:p}scoped") == "2"
    assert root.get("missing") is None
    assert root.get("missing", "dflt") == "dflt"
    root.set("{urn:p}other", "3")
    assert root.get("p:other") == "3"
    assert root.delete_attr("plain")
    assert not root.delete_attr("plain")


def test_set_with_unbound_prefix_fails():
    root = Element("r")
    with pytest.raises(NamespaceError):
        root.set("nope:attr", "x")


def test_in_scope_namespaces_and_resolution():
    root = parse_element(
        '<r xmlns="urn:d" xmlns:a="urn:a"><c xmlns:b="urn:b"/></r>'
    )
    child = root.child_elements()[0]
    scope = child.in_scope_namespaces()
    assert scope[None] == "urn:d"
    assert scope["a"] == "urn:a"
    assert scope["b"] == "urn:b"
    assert child.resolve_prefix("a") == "urn:a"
    assert child.resolve_prefix("nope") is None
    assert child.prefix_for("urn:b") == "b"


def test_get_element_by_id():
    root = parse_element('<r><a Id="one"/><b id="two"/><c ID="three"/></r>')
    assert root.get_element_by_id("one").local == "a"
    assert root.get_element_by_id("two").local == "b"
    assert root.get_element_by_id("three").local == "c"
    assert root.get_element_by_id("nope") is None


def test_iter_and_find():
    root = parse_element(
        '<r xmlns:a="urn:a"><x/><a:x/><y><x/></y></r>'
    )
    assert len(root.findall("x")) == 3
    assert len(root.findall("x", "urn:a")) == 1
    assert root.first_child("y").local == "y"
    assert root.first_child("nope") is None


def test_detached_copy_pins_namespaces():
    root = parse_element('<r xmlns:a="urn:a"><a:c><a:gc/></a:c></r>')
    sub = root.child_elements()[0].detached_copy()
    assert sub.parent is None
    assert canonicalize(sub) == canonicalize(root.child_elements()[0])


def test_document_constraints():
    doc = Document(Element("root"))
    with pytest.raises(XMLError):
        doc.append(Element("second-root"))
    with pytest.raises(XMLError):
        doc.append(Text("loose text"))
    doc.append(Comment("fine"))
    assert doc.root.local == "root"
    with pytest.raises(XMLError):
        Document().root


def test_serializer_roundtrip_preserves_canonical_form():
    source = (
        '<r xmlns="urn:d" xmlns:a="urn:a" a:x="1">'
        "<c>text &amp; more</c><a:c attr='\"'/>"
        "<!-- note --><?pi data?></r>"
    )
    root = parse_element(source)
    again = parse_element(serialize(root))
    assert canonicalize(again, C14N) == canonicalize(root, C14N)


def test_serializer_auto_declares_missing_namespaces():
    node = element("x:leaf", "urn:x")  # no nsmap declared
    text = serialize(node)
    assert 'xmlns:x="urn:x"' in text
    assert parse_element(text).ns_uri == "urn:x"


def test_serialize_bytes_has_declaration():
    payload = serialize_bytes(Element("r"))
    assert payload.startswith(b"<?xml")


def test_pretty_print_reparses_equal():
    root = parse_element(
        "<cluster><track><playlist/></track><track/></cluster>"
    )
    pretty = serialize(root, pretty=True)
    assert "\n" in pretty
    reparsed = parse_element(pretty)
    assert len(reparsed.findall("track")) == 2


def test_cdata_preserved_by_serializer():
    root = parse_element("<r><![CDATA[a < b]]></r>")
    assert "<![CDATA[a < b]]>" in serialize(root)


def test_text_content_concatenation():
    root = parse_element("<r>a<b>b</b>c<d><e>d</e></d></r>")
    assert root.text_content() == "abcd"
