"""Streaming C14N differential fuzz: chunked output must be
byte-identical to the whole-tree canonicalization.

The streaming serializer (``canonicalize_into`` / ``digest_canonical``)
is the hot path for reference digests, so any divergence from
``canonicalize()`` would silently produce wrong digests.  These tests
drive both implementations over fixed-seed random documents covering
every algorithm, inclusive-prefix lists, namespace shenanigans and the
guard-tripped truncation behaviour.
"""

import random

import pytest

from repro.errors import ResourceLimitExceeded
from repro.resilience.limits import ResourceGuard, ResourceLimits
from repro.xmlcore import (
    C14N, C14N_WITH_COMMENTS, EXC_C14N, EXC_C14N_WITH_COMMENTS,
    canonicalize, parse_document,
)
from repro.xmlcore.c14n import canonicalize_into, digest_canonical
from repro.primitives.provider import get_provider

ALGORITHMS = (C14N, C14N_WITH_COMMENTS, EXC_C14N, EXC_C14N_WITH_COMMENTS)

_TEXT_POOL = (
    "plain", "with <angle>", "amp & semi;", "tab\tnewline\n",
    "café 日本語", "]] almost", "x" * 200, "",
)
_URI_POOL = ("urn:a", "urn:b", "urn:c", "http://example.org/x", "")
_PREFIX_POOL = (None, "p", "q", "r")


def _random_element(rng: random.Random, depth: int) -> str:
    """Render one random element (as markup text) with *depth* levels."""
    prefix = rng.choice(_PREFIX_POOL)
    name = rng.choice(("node", "item", "data", "sub"))
    qname = f"{prefix}:{name}" if prefix else name
    attrs = []
    for index in range(rng.randrange(0, 4)):
        attrs.append(f'a{index}="{rng.randrange(100)}"')
    decls: dict[str | None, str] = {}
    for _ in range(rng.randrange(0, 3)):
        decl_prefix = rng.choice(_PREFIX_POOL)
        uri = rng.choice(_URI_POOL)
        if decl_prefix is None or uri:
            decls[decl_prefix] = uri
    # Ensure any prefix used by the tag itself is declared here.
    if prefix:
        decls[prefix] = f"urn:tag-{prefix}"
    for decl_prefix, uri in decls.items():
        if decl_prefix is None:
            attrs.append(f'xmlns="{uri}"')
        else:
            attrs.append(f'xmlns:{decl_prefix}="{uri}"')
    head = " ".join([qname] + sorted(attrs))
    if depth <= 0 or rng.random() < 0.25:
        return f"<{head}>{rng.choice(_TEXT_POOL)}</{qname}>"
    children = "".join(
        _random_element(rng, depth - 1)
        for _ in range(rng.randrange(1, 4))
    )
    comment = "<!-- c -->" if rng.random() < 0.3 else ""
    pi = "<?pi data?>" if rng.random() < 0.2 else ""
    return f"<{head}>{comment}{children}{pi}</{qname}>"


def _random_document(seed: int):
    rng = random.Random(seed)
    markup = _random_element(rng, depth=4)
    return parse_document(
        "<!-- head -->" + markup.replace("&", "&amp;").replace(
            "<angle>", "&lt;angle&gt;"
        ) + "<?tail pi?>"
    )


def _collect(node, algorithm, prefixes=(), guard=None) -> bytes:
    chunks: list[bytes] = []
    canonicalize_into(node, chunks.append, algorithm, prefixes,
                      guard=guard)
    return b"".join(chunks)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", range(12))
def test_stream_identical_to_whole_tree(seed, algorithm):
    document = _random_document(seed)
    assert _collect(document, algorithm) == canonicalize(
        document, algorithm
    )


@pytest.mark.parametrize("algorithm", (EXC_C14N, EXC_C14N_WITH_COMMENTS))
@pytest.mark.parametrize("prefixes", [("p",), ("p", "q"), ("r", "#default")])
@pytest.mark.parametrize("seed", range(6))
def test_stream_identical_with_inclusive_prefixes(seed, algorithm,
                                                  prefixes):
    document = _random_document(seed)
    assert _collect(document, algorithm, prefixes) == canonicalize(
        document, algorithm, prefixes
    )


@pytest.mark.parametrize("seed", range(8))
def test_stream_subtree_identical(seed):
    document = _random_document(seed)
    # Canonicalize an interior element (namespace context inherited).
    target = document.root
    descendants = list(target.iter())
    rng = random.Random(seed * 7 + 1)
    node = rng.choice(descendants)
    for algorithm in ALGORITHMS:
        assert _collect(node, algorithm) == canonicalize(node, algorithm)


@pytest.mark.parametrize("seed", range(6))
def test_streamed_digest_matches_whole_tree_digest(seed):
    document = _random_document(seed)
    provider = get_provider()
    for algorithm in ALGORITHMS:
        expected = provider.digest(
            "sha256", canonicalize(document, algorithm)
        )
        assert digest_canonical(
            document, "sha256", algorithm
        ) == expected


@pytest.mark.parametrize("limit", [1, 7, 64, 301, 1000])
def test_guard_trip_yields_strict_prefix(limit):
    document = _random_document(99)
    full = canonicalize(document)
    if len(full) <= limit:
        pytest.skip("document smaller than the quota under test")
    guard = ResourceGuard(
        ResourceLimits.default().replace(max_c14n_output_bytes=limit)
    )
    chunks: list[bytes] = []
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        canonicalize_into(document, chunks.append, C14N, guard=guard)
    assert excinfo.value.limit_name == "max_c14n_output_bytes"
    emitted = b"".join(chunks)
    # Check-before-commit: everything already handed to the sink is a
    # strict prefix of the true canonical form, and the guard only
    # accounted for what was actually emitted.
    assert full.startswith(emitted)
    assert len(emitted) < len(full)
    assert guard.c14n_output_bytes == len(emitted)


def test_stream_returns_octet_count():
    document = _random_document(3)
    chunks: list[bytes] = []
    total = canonicalize_into(document, chunks.append)
    assert total == sum(len(c) for c in chunks)
    assert total == len(canonicalize(document))
