"""XML name classes, QName splitting, and escaping rules."""

import pytest

from repro.errors import NamespaceError
from repro.xmlcore.escape import escape_attribute, escape_text
from repro.xmlcore.names import (
    is_name_char, is_name_start_char, is_valid_name, is_xml_char,
    is_xml_whitespace, split_qname,
)


@pytest.mark.parametrize("name", ["a", "_x", "xml-ish", "a.b", "A1",
                                  "héllo", "名前"])
def test_valid_names(name):
    assert is_valid_name(name)


@pytest.mark.parametrize("name", ["", "1a", "-x", ".y", "a b", "a<b"])
def test_invalid_names(name):
    assert not is_valid_name(name)


def test_name_start_vs_continue():
    assert not is_name_start_char("1")
    assert is_name_char("1")
    assert not is_name_start_char("-")
    assert is_name_char("-")
    assert is_name_start_char("_")


def test_whitespace_class():
    for ch in " \t\r\n":
        assert is_xml_whitespace(ch)
    assert not is_xml_whitespace("x")


def test_xml_char_validity():
    assert is_xml_char("\t")
    assert is_xml_char("A")
    assert is_xml_char("\U0001F600")
    assert not is_xml_char("\x00")
    assert not is_xml_char("\x0b")
    assert not is_xml_char("￾")


def test_split_qname():
    assert split_qname("local") == (None, "local")
    assert split_qname("p:local") == ("p", "local")
    for bad in [":x", "p:", "a:b:c"]:
        with pytest.raises(NamespaceError):
            split_qname(bad)


def test_text_escaping():
    assert escape_text("a&b<c>d\re") == "a&amp;b&lt;c&gt;d&#xD;e"
    assert escape_text("plain") == "plain"
    # Quotes and tabs are NOT escaped in text nodes (C14N §2.3).
    assert escape_text('say "hi"\t') == 'say "hi"\t'


def test_attribute_escaping():
    assert escape_attribute('a&b<c"d') == "a&amp;b&lt;c&quot;d"
    assert escape_attribute("tab\tlf\ncr\r") == \
        "tab&#x9;lf&#xA;cr&#xD;"
    # '>' is NOT escaped in attribute values (C14N §2.3).
    assert escape_attribute("a>b") == "a>b"
