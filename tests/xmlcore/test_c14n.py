"""Canonical XML 1.0 and Exclusive C14N behaviour.

Includes the property the paper hinges on (Fig 6): syntactic variants
of semantically equivalent markup canonicalize to identical octets.
"""

import pytest

from repro.errors import CanonicalizationError
from repro.xmlcore import (
    C14N, C14N_WITH_COMMENTS, EXC_C14N, EXC_C14N_WITH_COMMENTS,
    canonicalize, parse_document,
)
from repro.xmlcore.tree import Element, Text


def c14n(text, algorithm=C14N):
    return canonicalize(parse_document(text), algorithm).decode()


def test_attribute_order_normalized():
    a = c14n('<r b="2" a="1" c="3"/>')
    b = c14n('<r c="3" a="1" b="2"/>')
    assert a == b == '<r a="1" b="2" c="3"></r>'


def test_namespaced_attribute_sorting():
    # Sort key is (namespace URI, local name); unqualified first.
    out = c14n('<r xmlns:z="urn:a" xmlns:y="urn:b" z="0" y:k="b" z:k="a"/>')
    assert out == (
        '<r xmlns:y="urn:b" xmlns:z="urn:a" z="0" z:k="a" y:k="b"></r>'
    )


def test_namespace_declaration_sorting():
    out = c14n('<r xmlns:b="urn:b" xmlns:a="urn:a" xmlns="urn:d"/>')
    assert out == '<r xmlns="urn:d" xmlns:a="urn:a" xmlns:b="urn:b"></r>'


def test_empty_element_expanded():
    assert c14n("<r/>") == "<r></r>"


def test_whitespace_in_tags_normalized():
    assert c14n('<r  a = "1"   ></r  >') == '<r a="1"></r>'


def test_quote_style_normalized():
    assert c14n("<r a='1'/>") == c14n('<r a="1"/>')


def test_entity_and_cdata_expansion():
    assert c14n("<r>&#65;<![CDATA[<x>]]></r>") == "<r>A&lt;x&gt;</r>"


def test_special_character_escaping():
    out = c14n('<r a="&quot;&amp;&#9;">text &amp; <![CDATA[>]]>&#13;</r>')
    assert out == '<r a="&quot;&amp;&#x9;">text &amp; &gt;&#xD;</r>'


def test_redundant_ns_redeclaration_suppressed():
    out = c14n('<r xmlns:a="urn:a"><c xmlns:a="urn:a"><a:d/></c></r>')
    assert out == '<r xmlns:a="urn:a"><c><a:d></a:d></c></r>'


def test_changed_ns_redeclaration_kept():
    out = c14n('<r xmlns:a="urn:a"><c xmlns:a="urn:b"><a:d/></c></r>')
    assert out == '<r xmlns:a="urn:a"><c xmlns:a="urn:b"><a:d></a:d></c></r>'


def test_inclusive_renders_unused_inherited_namespaces():
    # C14N 1.0 (unlike exclusive) renders all in-scope namespaces.
    doc = parse_document('<r xmlns:u="urn:unused"><c/></r>')
    sub = doc.root.child_elements()[0]
    assert canonicalize(sub, C14N) == b'<c xmlns:u="urn:unused"></c>'
    assert canonicalize(sub, EXC_C14N) == b"<c></c>"


def test_default_ns_undeclaration():
    out = c14n('<r xmlns="urn:d"><c xmlns=""><gc/></c></r>')
    assert out == '<r xmlns="urn:d"><c xmlns=""><gc></gc></c></r>'


def test_subtree_default_undeclaration_against_context():
    doc = parse_document('<r xmlns="urn:d"><c xmlns=""><gc/></c></r>')
    sub = doc.root.child_elements()[0]
    # Standalone, the apex has no default ns in scope: nothing to undo.
    assert canonicalize(sub, C14N) == b"<c><gc></gc></c>"


def test_xml_attribute_inheritance_on_subtree():
    doc = parse_document(
        '<r xml:lang="fr" xml:space="preserve">'
        '<c xml:lang="en"><gc a="1"/></c></r>'
    )
    inner = doc.root.find("gc")
    out = canonicalize(inner, C14N).decode()
    # Nearest xml:lang (en) and the root's xml:space are inherited.
    assert out == '<gc a="1" xml:lang="en" xml:space="preserve"></gc>'


def test_exclusive_does_not_inherit_xml_attributes():
    doc = parse_document('<r xml:lang="fr"><c/></r>')
    sub = doc.root.child_elements()[0]
    assert canonicalize(sub, EXC_C14N) == b"<c></c>"


def test_exclusive_inclusive_prefix_list():
    doc = parse_document(
        '<r xmlns:keep="urn:keep" xmlns:drop="urn:drop"><c/></r>'
    )
    sub = doc.root.child_elements()[0]
    out = canonicalize(sub, EXC_C14N, inclusive_prefixes=("keep",))
    assert out == b'<c xmlns:keep="urn:keep"></c>'


def test_comments_variants():
    text = "<!--a--><r><!--b--><c/></r><!--c-->"
    without = c14n(text, C14N)
    with_ = c14n(text, C14N_WITH_COMMENTS)
    assert "<!--" not in without
    assert with_ == "<!--a-->\n<r><!--b--><c></c></r>\n<!--c-->"


def test_pi_newline_placement():
    out = c14n("<?before b?><r/><?after a?>")
    assert out == "<?before b?>\n<r></r>\n<?after a?>"


def test_pi_without_data():
    out = c14n("<r><?flag?></r>")
    assert out == "<r><?flag?></r>"


def test_syntactic_variants_identical():
    """Fig 6's premise: variants hash identically only after C14N."""
    variants = [
        '<m a="1" b="2"><x>v</x></m>',
        "<m b='2' a='1'><x>v</x></m>",
        '<m  a="1"  b="2" ><x >v</x ></m >',
        '<m a="1" b="2"><x>&#118;</x></m>',
    ]
    outputs = {c14n(v) for v in variants}
    assert len(outputs) == 1
    raw = {v.encode() for v in variants}
    assert len(raw) == 4  # genuinely different bytes before C14N


def test_unbound_prefix_raises():
    node = Element("leaf", "urn:x", prefix="x")  # no declaration anywhere
    with pytest.raises(CanonicalizationError):
        canonicalize(node)


def test_unknown_algorithm_rejected():
    with pytest.raises(CanonicalizationError):
        canonicalize(Element("r"), "urn:not-a-c14n")


def test_text_node_cannot_be_canonicalized():
    with pytest.raises(CanonicalizationError):
        canonicalize(Text("loose"))


def test_idempotence_on_parse_of_canonical_output():
    source = (
        '<r xmlns="urn:d" xmlns:a="urn:a" a:k="v">'
        "<c>text</c><a:c/><?pi d?></r>"
    )
    once = canonicalize(parse_document(source))
    twice = canonicalize(parse_document(once))
    assert once == twice


def test_exclusive_with_comments():
    text = "<r><!--keep--><c/></r>"
    out = c14n(text, EXC_C14N_WITH_COMMENTS)
    assert "<!--keep-->" in out
