"""The iterative parser under resource quotas.

The satellite bugfix behind the tentpole: the old recursive-descent
element parser hit Python's recursion limit (a raw RecursionError — an
untyped crash) on ~1000-deep documents.  The parser now runs on an
explicit work stack, so depth is a *policy* decision enforced by the
ResourceGuard, and a 10k-deep document parses fine when the quota
allows it.
"""

import pytest

from repro.errors import ResourceLimitExceeded, XMLSyntaxError
from repro.resilience import ResourceGuard, ResourceLimits
from repro.xmlcore import parse_element, serialize


def nested(depth: int, payload: str = "") -> str:
    return ("<a>" * depth) + payload + ("</a>" * depth)


# -- the RecursionError regression -------------------------------------------


def test_10k_deep_document_is_refused_typed_not_recursion_error():
    """Default quotas refuse it with a typed error — and the refusal
    must not itself blow the Python stack."""
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        parse_element(nested(10_000))
    assert excinfo.value.limit_name == "max_element_depth"


def test_10k_deep_document_parses_under_a_raised_quota():
    """Depth is now policy, not a Python-stack limit: the same
    document parses when the guard allows it (the old recursive
    parser died with RecursionError around depth ~1000)."""
    guard = ResourceGuard(ResourceLimits(max_element_depth=20_000))
    root = parse_element(nested(10_000, "x"), guard=guard)
    depth = 0
    node = root
    while node.child_elements():
        node = node.child_elements()[0]
        depth += 1
    assert depth == 10_000 - 1
    assert node.text_content() == "x"
    assert guard.node_count >= 10_000


def test_deep_document_round_trips():
    """Past the default quota but within what the (recursive)
    serializer handles: the depth policy lives in the guard, and an
    accepted tree still round-trips."""
    guard = ResourceGuard(ResourceLimits(max_element_depth=500))
    root = parse_element(nested(400, "payload"), guard=guard)
    text = serialize(root)
    reparsed = parse_element(
        text, guard=ResourceGuard(ResourceLimits(max_element_depth=500))
    )
    assert serialize(reparsed) == text


def test_depth_at_exactly_the_quota_is_allowed():
    guard = ResourceGuard(ResourceLimits(max_element_depth=50))
    parse_element(nested(50), guard=guard)
    with pytest.raises(ResourceLimitExceeded):
        parse_element(nested(51),
                      guard=ResourceGuard(ResourceLimits(
                          max_element_depth=50)))


# -- the other parser quotas -------------------------------------------------


def test_attribute_flood_refused():
    attrs = " ".join(f'a{i}="v"' for i in range(300))
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        parse_element(f"<doc {attrs}/>")
    assert excinfo.value.limit_name == "max_attributes_per_element"


def test_giant_text_node_refused():
    guard = ResourceGuard(ResourceLimits(max_text_bytes=100))
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        parse_element(f"<doc>{'x' * 101}</doc>", guard=guard)
    assert excinfo.value.limit_name == "max_text_bytes"


def test_giant_attribute_value_refused():
    guard = ResourceGuard(ResourceLimits(max_text_bytes=100))
    with pytest.raises(ResourceLimitExceeded):
        parse_element(f'<doc a="{"x" * 101}"/>', guard=guard)


def test_giant_cdata_refused():
    guard = ResourceGuard(ResourceLimits(max_text_bytes=100))
    with pytest.raises(ResourceLimitExceeded):
        parse_element(f"<doc><![CDATA[{'x' * 101}]]></doc>",
                      guard=guard)


def test_node_flood_refused_and_counted():
    guard = ResourceGuard(ResourceLimits(max_node_count=100))
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        parse_element("<doc>" + "<i/>" * 200 + "</doc>", guard=guard)
    assert excinfo.value.limit_name == "max_node_count"
    assert guard.within_limits()


def test_oversized_input_refused_before_parsing():
    guard = ResourceGuard(ResourceLimits(max_input_bytes=64))
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        parse_element("<doc>" + "x" * 200 + "</doc>", guard=guard)
    assert excinfo.value.limit_name == "max_input_bytes"


def test_successful_parse_charges_the_node_budget():
    guard = ResourceGuard()
    parse_element("<doc><a/>text<b><c/></b></doc>", guard=guard)
    # doc, a, text, b, c
    assert guard.node_count == 5


def test_parse_without_guard_applies_the_default_quota():
    """Entry points without an explicit guard still get the documented
    CE-device default (LIN106's 'documented default')."""
    with pytest.raises(ResourceLimitExceeded):
        parse_element(nested(500))


def test_unlimited_guard_switches_quotas_off():
    root = parse_element(nested(500, "x"),
                         guard=ResourceGuard.unlimited())
    assert root.local == "a"


def test_malformed_xml_still_raises_syntax_errors():
    """Quota enforcement must not mask well-formedness checking."""
    guard = ResourceGuard()
    with pytest.raises(XMLSyntaxError):
        parse_element("<a><b></a></b>", guard=guard)
    with pytest.raises(XMLSyntaxError):
        parse_element("<a>", guard=guard)
    with pytest.raises(XMLSyntaxError):
        parse_element("<a>]]></a>", guard=guard)
