"""Well-formedness, namespace processing and parser error reporting."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlcore import parse_document, parse_element
from repro.xmlcore.tree import Comment, ProcessingInstruction, Text


def test_basic_document():
    doc = parse_document("<root><child>text</child></root>")
    assert doc.root.local == "root"
    assert doc.root.find("child").text_content() == "text"


def test_xml_declaration_and_doctype_skipped():
    doc = parse_document(
        '<?xml version="1.0" encoding="UTF-8"?>\n'
        "<!DOCTYPE root [<!ELEMENT root ANY>]>\n"
        "<root/>"
    )
    assert doc.root.local == "root"


def test_entity_definitions_rejected():
    with pytest.raises(XMLSyntaxError, match="security"):
        parse_document(
            '<!DOCTYPE r [<!ENTITY bomb "boom">]><r>&bomb;</r>'
        )


def test_predefined_entities():
    root = parse_element("<r>&lt;&gt;&amp;&apos;&quot;</r>")
    assert root.text_content() == "<>&'\""


def test_character_references():
    root = parse_element("<r>&#65;&#x42;&#x1F600;</r>")
    assert root.text_content() == "AB\U0001F600"


def test_undefined_entity_rejected():
    with pytest.raises(XMLSyntaxError, match="undefined entity"):
        parse_element("<r>&nbsp;</r>")


def test_illegal_character_reference_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_element("<r>&#0;</r>")
    with pytest.raises(XMLSyntaxError):
        parse_element("<r>&#x110000;</r>")


def test_cdata_section():
    root = parse_element("<r><![CDATA[<not><parsed> & raw]]></r>")
    text = root.children[0]
    assert isinstance(text, Text) and text.is_cdata
    assert text.data == "<not><parsed> & raw"


def test_comments_and_pis_in_content():
    root = parse_element("<r><!-- note --><?app do-it?></r>")
    assert isinstance(root.children[0], Comment)
    pi = root.children[1]
    assert isinstance(pi, ProcessingInstruction)
    assert pi.target == "app" and pi.data == "do-it"


def test_mismatched_tags():
    with pytest.raises(XMLSyntaxError, match="mismatched end tag"):
        parse_document("<a><b></a></b>")


def test_duplicate_attribute_rejected():
    with pytest.raises(XMLSyntaxError, match="duplicate attribute"):
        parse_element('<r a="1" a="2"/>')


def test_namespace_aware_duplicate_rejected():
    with pytest.raises(XMLSyntaxError, match="duplicate attribute"):
        parse_element(
            '<r xmlns:p="urn:x" xmlns:q="urn:x" p:a="1" q:a="2"/>'
        )


def test_same_local_different_ns_allowed():
    root = parse_element(
        '<r xmlns:p="urn:x" xmlns:q="urn:y" p:a="1" q:a="2"/>'
    )
    assert root.get("p:a") == "1"
    assert root.get("q:a") == "2"


def test_undeclared_prefix_rejected():
    with pytest.raises(XMLSyntaxError, match="undeclared prefix"):
        parse_element("<p:root/>")
    with pytest.raises(XMLSyntaxError, match="undeclared prefix"):
        parse_element('<root p:a="1"/>')


def test_namespace_resolution():
    root = parse_element(
        '<r xmlns="urn:d" xmlns:a="urn:a"><a:c/><c/></r>'
    )
    assert root.ns_uri == "urn:d"
    a_child, d_child = root.child_elements()
    assert a_child.ns_uri == "urn:a" and a_child.prefix == "a"
    assert d_child.ns_uri == "urn:d" and d_child.prefix is None


def test_default_ns_does_not_apply_to_attributes():
    root = parse_element('<r xmlns="urn:d" a="1"/>')
    assert root.attrs[0].ns_uri is None


def test_default_namespace_undeclaration():
    root = parse_element('<r xmlns="urn:d"><c xmlns=""><gc/></c></r>')
    child = root.child_elements()[0]
    assert child.ns_uri is None
    assert child.child_elements()[0].ns_uri is None


def test_prefix_undeclaration_rejected_in_xml10():
    with pytest.raises(XMLSyntaxError, match="undeclare"):
        parse_element('<r xmlns:p="urn:x"><c xmlns:p=""/></r>')


def test_attribute_value_normalization():
    root = parse_element('<r a="one\ttwo\nthree"/>')
    assert root.get("a") == "one two three"
    # Character references escape normalization.
    root = parse_element('<r a="one&#x9;two"/>')
    assert root.get("a") == "one\ttwo"


def test_crlf_normalization():
    root = parse_element("<r>line1\r\nline2\rline3</r>")
    assert root.text_content() == "line1\nline2\nline3"


def test_lt_in_attribute_rejected():
    with pytest.raises(XMLSyntaxError, match="'<'"):
        parse_element('<r a="x<y"/>')


def test_cdata_end_in_text_rejected():
    with pytest.raises(XMLSyntaxError, match="]]>"):
        parse_element("<r>data ]]> more</r>")


def test_double_hyphen_in_comment_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_element("<r><!-- bad -- comment --></r>")


def test_error_reports_position():
    try:
        parse_document("<root>\n  <child>\n</root>")
    except XMLSyntaxError as exc:
        assert exc.line == 3
    else:
        pytest.fail("expected a syntax error")


def test_content_after_root_rejected():
    with pytest.raises(XMLSyntaxError, match="after document root"):
        parse_document("<a/><b/>")


def test_trailing_misc_allowed():
    doc = parse_document("<a/><!-- done --><?pi x?>")
    assert len(doc.children) == 3


def test_utf8_bytes_input_with_bom():
    doc = parse_document("﻿<r>héllo</r>".encode("utf-8"))
    assert doc.root.text_content() == "héllo"


def test_invalid_utf8_rejected():
    with pytest.raises(XMLSyntaxError, match="UTF-8"):
        parse_document(b"<r>\xff\xfe</r>")


def test_unterminated_constructs():
    for source in ["<r>", "<r", "<r a='1'", "<r><!-- x", "<r><![CDATA[x",
                   "<r>&amp"]:
        with pytest.raises(XMLSyntaxError):
            parse_document(source)


def test_whitespace_required_between_attributes():
    with pytest.raises(XMLSyntaxError, match="whitespace"):
        parse_element('<r a="1"b="2"/>')


def test_xmlns_prefix_rebinding_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_element('<r xmlns:xmlns="urn:evil"/>')
    with pytest.raises(XMLSyntaxError):
        parse_element('<r xmlns:xml="urn:evil"/>')
