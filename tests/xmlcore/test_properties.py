"""Property-based tests over randomly generated XML trees."""

from hypothesis import given, settings, strategies as st

from repro.xmlcore import (
    C14N, canonicalize, parse_document, serialize,
)
from repro.xmlcore.tree import Document, Element, Text

_names = st.sampled_from(
    ["track", "manifest", "markup", "code", "script", "clip", "region"]
)
_attr_names = st.sampled_from(["Id", "type", "name", "dur", "lang"])
_texts = st.text(
    alphabet=st.characters(
        codec="utf-8",
        exclude_categories=("Cs", "Cc"),
    ),
    max_size=20,
)
_attr_values = _texts


@st.composite
def elements(draw, depth=0):
    node = Element(draw(_names))
    for name in draw(st.lists(_attr_names, unique=True, max_size=3)):
        node.set(name, draw(_attr_values))
    if depth < 3:
        for child in draw(
            st.lists(elements(depth=depth + 1), max_size=3)
        ):
            node.append(child)
    if draw(st.booleans()):
        node.append(Text(draw(_texts)))
    return node


@settings(max_examples=60, deadline=None)
@given(elements())
def test_serialize_parse_roundtrip_is_canonical_identity(root):
    text = serialize(Document(root), xml_declaration=True)
    reparsed = parse_document(text)
    assert canonicalize(reparsed, C14N) == \
        canonicalize(Document(root.copy()), C14N)


@settings(max_examples=60, deadline=None)
@given(elements())
def test_c14n_idempotent(root):
    once = canonicalize(Document(root), C14N)
    twice = canonicalize(parse_document(once), C14N)
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(elements())
def test_copy_is_deep_and_equal(root):
    clone = root.copy()
    assert clone is not root
    assert canonicalize(clone) == canonicalize(root)
    # Mutating the clone must not affect the original.
    clone.set("Id", "mutated-sentinel")
    assert canonicalize(clone) != canonicalize(root) or \
        root.get("Id") == "mutated-sentinel"


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=200))
def test_parser_total_on_arbitrary_text(blob):
    """Robustness: the parser either parses or raises XMLSyntaxError —
    never any other exception (a player parses hostile downloads)."""
    from repro.errors import XMLSyntaxError
    from repro.xmlcore import parse_document
    try:
        parse_document(blob)
    except XMLSyntaxError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=200))
def test_parser_total_on_arbitrary_bytes(blob):
    from repro.errors import XMLSyntaxError
    from repro.xmlcore import parse_document
    try:
        parse_document(blob)
    except XMLSyntaxError:
        pass
