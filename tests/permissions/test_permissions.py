"""MHP-style permission request files and platform grant policy."""

import pytest

from repro.errors import PermissionDeniedError, PolicyError
from repro.permissions import (
    ALL_PERMISSIONS, PERM_LOCAL_STORAGE, PERM_NETWORK,
    PERM_OVERLAY_GRAPHICS, PERM_RETURN_CHANNEL, PERM_TUNING,
    PermissionEntry, PermissionRequestFile, PlatformPermissionPolicy,
)


def sample_request() -> PermissionRequestFile:
    prf = PermissionRequestFile("0x4001", "org.contoso")
    prf.request(PERM_LOCAL_STORAGE, quota_bytes=4096)
    prf.request(PERM_RETURN_CHANNEL,
                hosts=("content.contoso.example", "cdn.contoso.example"))
    prf.request(PERM_TUNING)
    return prf


def test_unknown_permission_rejected():
    with pytest.raises(PolicyError):
        PermissionEntry("fly-to-the-moon")


def test_xml_roundtrip():
    prf = sample_request()
    again = PermissionRequestFile.from_xml(prf.to_xml())
    assert again.app_id == "0x4001"
    assert again.org_id == "org.contoso"
    assert again.entries == prf.entries
    assert again.requested(PERM_LOCAL_STORAGE).quota_bytes == 4096
    assert again.requested(PERM_NETWORK) is None


def test_value_false_entries_ignored():
    xml = (
        '<permissionrequestfile xmlns="urn:dvb:mhp:2003:permissions" '
        'appid="a" orgid="o">'
        '<local-storage value="false"/>'
        '<return-channel value="true"/></permissionrequestfile>'
    )
    prf = PermissionRequestFile.from_xml(xml)
    assert prf.requested("local-storage") is None
    assert prf.requested("return-channel") is not None


def test_trusted_application_gets_requested_grants():
    policy = PlatformPermissionPolicy()
    grants = policy.decide(sample_request(), trusted=True)
    assert grants.has(PERM_LOCAL_STORAGE)
    assert grants.has(PERM_RETURN_CHANNEL)
    assert grants.has(PERM_TUNING)
    assert grants.has(PERM_OVERLAY_GRAPHICS)  # default grant


def test_untrusted_application_denied_sensitive_grants():
    policy = PlatformPermissionPolicy()
    grants = policy.decide(sample_request(), trusted=False)
    assert not grants.has(PERM_LOCAL_STORAGE)
    assert not grants.has(PERM_RETURN_CHANNEL)
    assert grants.has(PERM_OVERLAY_GRAPHICS)  # defaults survive


def test_unrequested_permissions_not_granted():
    policy = PlatformPermissionPolicy()
    grants = policy.decide(sample_request(), trusted=True)
    assert not grants.has(PERM_NETWORK)


def test_platform_caps_storage_quota():
    policy = PlatformPermissionPolicy(max_storage_quota=1024)
    prf = PermissionRequestFile("a", "o")
    prf.request(PERM_LOCAL_STORAGE, quota_bytes=10_000_000)
    grants = policy.decide(prf, trusted=True)
    assert grants.grant(PERM_LOCAL_STORAGE).quota_bytes == 1024


def test_non_grantable_silently_refused():
    policy = PlatformPermissionPolicy(
        grantable=(PERM_LOCAL_STORAGE,),
    )
    grants = policy.decide(sample_request(), trusted=True)
    assert grants.has(PERM_LOCAL_STORAGE)
    assert not grants.has(PERM_TUNING)


def test_grant_checks():
    policy = PlatformPermissionPolicy()
    grants = policy.decide(sample_request(), trusted=True)
    grants.check(PERM_LOCAL_STORAGE, bytes_needed=100)
    grants.check(PERM_RETURN_CHANNEL, host="cdn.contoso.example")
    with pytest.raises(PermissionDeniedError, match="no 'network'"):
        grants.check(PERM_NETWORK)
    with pytest.raises(PermissionDeniedError, match="does not cover"):
        grants.check(PERM_RETURN_CHANNEL, host="evil.example")
    with pytest.raises(PermissionDeniedError, match="quota"):
        grants.check(PERM_LOCAL_STORAGE, bytes_needed=10_000_000)


def test_unqualified_host_grant_covers_all():
    policy = PlatformPermissionPolicy()
    prf = PermissionRequestFile("a", "o")
    prf.request(PERM_RETURN_CHANNEL)  # no hosts qualifier
    grants = policy.decide(prf, trusted=True)
    grants.check(PERM_RETURN_CHANNEL, host="anywhere.example")


def test_all_permissions_constant_consistent():
    for name in ALL_PERMISSIONS:
        PermissionEntry(name)  # none raise
