"""Full-system integration: the paper's Figs 1, 3 and 9 as one test suite.

Studio authors and signs a disc; a player authenticates it, plays the
feature and runs the menu application; the studio then publishes a
signed+encrypted bonus application which the player downloads over the
TLS-like channel, verifies, decrypts and executes — with adversaries on
every path.
"""

import pytest

from repro.certs import SigningIdentity
from repro.core import (
    AuthoringPipeline, ProtectionLevel, sign_disc_image,
)
from repro.disc import ApplicationManifest, DiscAuthor
from repro.dsig import Signer
from repro.errors import ApplicationRejectedError, ChannelSecurityError
from repro.network import (
    ActiveTamperer, Channel, ContentServer, DownloadClient,
    PassiveWiretap,
)
from repro.permissions import (
    PERM_LOCAL_STORAGE, PERM_RETURN_CHANNEL, PermissionRequestFile,
)
from repro.player import DiscPlayer
from repro.primitives.random import DeterministicRandomSource
from repro.primitives.rsa import generate_keypair
from repro.xmlcore import parse_element

LAYOUT = (
    '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
    '<root-layout width="1920" height="1080"/>'
    '<region regionName="main" width="1920" height="880"/>'
    '<region regionName="menu" top="880" width="1920" height="200"/>'
    "</layout>"
)

MENU_SCRIPT = """
var launches = storage.read("launches");
if (launches == null) launches = 0;
launches = launches + 1;
storage.write("launches", launches);
player.log("menu launch #" + launches);
function onSelect(item) { return "selected:" + item; }
"""

BONUS_SCRIPT = """
player.log("deleted scenes unlocked on " + player.model);
var teaser = network.get("cdn.studio.example", "/teasers/next.txt");
player.log(teaser);
"""


@pytest.fixture(scope="module")
def world(pki):
    """The fixed cast: device key, disc, content server."""
    rng = DeterministicRandomSource(b"integration-world")
    device_key = generate_keypair(1024, rng)

    # --- studio authors the disc ------------------------------------------------
    author = DiscAuthor("Blockbuster", rng=rng)
    feature = author.add_clip(30.0, packets_per_second=25)
    trailer = author.add_clip(5.0, packets_per_second=25)
    author.add_feature("main-feature", [trailer, feature])
    menu = ApplicationManifest("menu")
    menu.add_submarkup("layout", parse_element(LAYOUT))
    menu.add_submarkup("timing", parse_element(
        '<seq xmlns="urn:bda:bdmv:interactive-cluster">'
        '<video src="bd://BDMV/STREAM/00001.m2ts" region="main"/>'
        "</seq>"
    ))
    menu.add_script(MENU_SCRIPT)
    author.add_application(menu)
    prf = PermissionRequestFile("menu", "org.studio")
    prf.request(PERM_LOCAL_STORAGE, quota_bytes=4096)
    author.add_aux_file("BDMV/AUXDATA/menu.prf", prf.to_xml().encode())
    image = author.master()
    sign_disc_image(image, Signer(pki.studio.key, identity=pki.studio),
                    level=ProtectionLevel.TRACK)

    # --- studio publishes the bonus app -------------------------------------------
    bonus = ApplicationManifest("deleted-scenes")
    bonus.add_submarkup("layout", parse_element(LAYOUT))
    bonus.add_script(BONUS_SCRIPT)
    bonus_prf = PermissionRequestFile("deleted-scenes", "org.studio")
    bonus_prf.request(PERM_RETURN_CHANNEL,
                      hosts=("cdn.studio.example",))
    pipeline = AuthoringPipeline(
        pki.studio, recipient_key=device_key.public_key(), rng=rng,
    )
    package = pipeline.build_package(
        bonus, permission_file=bonus_prf,
        encrypt_ids=(bonus.code_id,),
    )

    identity = SigningIdentity.create(
        "CN=content.studio.example", pki.root,
        rng=DeterministicRandomSource(b"integration-server"),
    )
    server = ContentServer(identity=identity)
    server.publish("/apps/deleted-scenes.pkg", package.data)
    return {
        "device_key": device_key, "image": image, "server": server,
        "package": package,
    }


def make_player(pki, world, **kwargs):
    def network_fetch(host, path):
        if host == "cdn.studio.example" and path == "/teasers/next.txt":
            return b"Coming soon: Blockbuster II"
        raise KeyError(f"{host}{path}")

    return DiscPlayer(pki.trust_store(), device_key=world["device_key"],
                      network_fetch=network_fetch, **kwargs)


def test_disc_flow(pki, world):
    player = make_player(pki, world)
    session = player.insert_disc(world["image"])
    assert session.authenticated

    playback = player.play_title("main-feature")
    assert playback.duration_s == 35.0
    assert [item.src for item in playback.items] == [
        "bd://BDMV/STREAM/00002.m2ts", "bd://BDMV/STREAM/00001.m2ts",
    ]

    first = player.launch_disc_application("menu")
    assert first.trusted
    assert first.console == ["menu launch #1"]
    assert first.timeline  # SMIL timing scheduled
    second = player.launch_disc_application("menu")
    assert second.console == ["menu launch #2"]  # storage persisted
    assert second.dispatch("onSelect", "chapter-3") == \
        "selected:chapter-3"


def test_download_flow_clean_channel(pki, world):
    player = make_player(pki, world)
    wiretap = PassiveWiretap()
    client = DownloadClient(world["server"], Channel([wiretap]),
                            trust_store=pki.trust_store())
    application = player.download_application(
        client, "/apps/deleted-scenes.pkg", secure=True,
    )
    assert application.trusted
    assert application.signer_subject == "CN=Contoso Studios"
    # TLS hid the transfer AND XMLEnc hid the script inside the package.
    assert not wiretap.saw_plaintext(b"deleted scenes unlocked")

    session = player.run_application(application)
    assert session.console == [
        "deleted scenes unlocked on RBD-1000",
        "Coming soon: Blockbuster II",
    ]
    assert session.network_ops == ["get:cdn.studio.example/teasers/next.txt"]


def test_download_flow_insecure_channel_still_protected(pki, world):
    """Without TLS the package is still signed+encrypted — XML security
    is persistent (§4); only the transfer itself is observable."""
    player = make_player(pki, world)
    wiretap = PassiveWiretap()
    client = DownloadClient(world["server"], Channel([wiretap]),
                            trust_store=pki.trust_store())
    application = player.download_application(
        client, "/apps/deleted-scenes.pkg", secure=False,
    )
    assert application.trusted
    # The wiretap saw the package... but not the encrypted script.
    assert wiretap.saw_plaintext(b"applicationPackage")
    assert not wiretap.saw_plaintext(b"deleted scenes unlocked")


def test_download_flow_mitm_on_tls(pki, world):
    player = make_player(pki, world)
    tamperer = ActiveTamperer(predicate=lambda m: m[:1] == b"\x05",
                              offset=60)
    client = DownloadClient(world["server"], Channel([tamperer]),
                            trust_store=pki.trust_store())
    with pytest.raises(ChannelSecurityError):
        player.download_application(client, "/apps/deleted-scenes.pkg",
                                    secure=True)


def test_download_flow_tampered_at_rest(pki, world):
    """Tampering *on the server* defeats TLS but not XMLDSig (Fig 3)."""
    from repro.threat import inject_script
    player = make_player(pki, world)
    evil_server = ContentServer(identity=world["server"].identity)
    evil_server.publish(
        "/apps/deleted-scenes.pkg",
        inject_script(world["package"].data, "stealEverything()"),
    )
    client = DownloadClient(evil_server, Channel(),
                            trust_store=pki.trust_store())
    with pytest.raises(ApplicationRejectedError):
        player.download_application(client, "/apps/deleted-scenes.pkg",
                                    secure=True)


def test_foreign_player_cannot_decrypt(pki, world, rng):
    """A different device lacks the CEK transport key (content binding)."""
    other_device = generate_keypair(1024, rng)
    other_player = DiscPlayer(pki.trust_store(),
                              device_key=other_device)
    client = DownloadClient(world["server"], Channel(),
                            trust_store=pki.trust_store())
    with pytest.raises(ApplicationRejectedError):
        other_player.download_application(
            client, "/apps/deleted-scenes.pkg", secure=True,
        )
