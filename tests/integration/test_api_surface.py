"""Public API surface sanity: __all__ resolves, docstrings present."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro", "repro.primitives", "repro.xmlcore", "repro.dsig",
    "repro.xmlenc", "repro.certs", "repro.xkms", "repro.xacml",
    "repro.permissions", "repro.disc", "repro.markup", "repro.omadcf",
    "repro.network", "repro.player", "repro.core", "repro.threat",
    "repro.tools",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a module docstring"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_classes_and_functions_documented(package):
    """Every public item exported via __all__ carries a docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, (
        f"{package} exports undocumented items: {undocumented}"
    )


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_reference_flood_refused(pki, manifest):
    """The verifier's reference cap (hostile-download hardening)."""
    from repro.dsig import Signer, Verifier
    signer = Signer(pki.studio.key, include_key_value=True)
    signature = signer.sign_enveloped(manifest)
    verifier = Verifier(max_references=0)
    report = verifier.verify(signature)
    assert not report.valid
    assert "limit" in report.error
    # The default cap does not get in the way of normal signatures.
    assert Verifier().verify(signature).valid
