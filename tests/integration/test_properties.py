"""Cross-cutting property-based tests on the security invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dsig import Signer, Verifier
from repro.primitives.keys import SymmetricKey
from repro.primitives.random import DeterministicRandomSource
from repro.xmlcore import DSIG_NS, canonicalize, parse_element, serialize
from repro.xmlcore.tree import Element, Text
from repro.xmlenc import Decryptor, Encryptor

_names = st.sampled_from(
    ["track", "manifest", "markup", "code", "submarkup", "clip"]
)
_texts = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs", "Cc")),
    max_size=24,
)


@st.composite
def payload_trees(draw, depth=0):
    """Random disc-vocabulary-ish element trees."""
    node = Element(draw(_names))
    for key in draw(st.lists(
        st.sampled_from(["kind", "name", "dur", "ref"]),
        unique=True, max_size=2,
    )):
        node.set(key, draw(_texts))
    if depth < 2:
        for child in draw(st.lists(payload_trees(depth=depth + 1),
                                   max_size=3)):
            node.append(child)
    if draw(st.booleans()):
        node.append(Text(draw(_texts)))
    return node


_slow = settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@_slow
@given(tree=payload_trees())
def test_any_tree_signs_and_verifies(pki, tree):
    """Invariant: sign ∘ verify = true for arbitrary well-formed markup,
    including across a serialize/parse round trip."""
    holder = Element("holder")
    holder.append(tree)
    signer = Signer(pki.studio.key, include_key_value=True)
    signer.sign_enveloped(holder)
    reparsed = parse_element(serialize(holder))
    signature = reparsed.find("Signature", DSIG_NS)
    assert Verifier().verify(signature).valid


@_slow
@given(tree=payload_trees(), flip=st.integers(min_value=0, max_value=7))
def test_any_attribute_tamper_detected(pki, tree, flip):
    """Invariant: any post-signing attribute mutation breaks the
    signature."""
    holder = Element("holder")
    holder.append(tree)
    signer = Signer(pki.studio.key, include_key_value=True)
    signature = signer.sign_enveloped(holder)
    # Mutate some attribute (or add one) outside the signature.
    tree.set("tampered", str(flip))
    assert not Verifier().verify(signature).valid


@_slow
@given(tree=payload_trees(), seed=st.binary(min_size=4, max_size=8))
def test_any_tree_encrypts_and_decrypts(tree, seed):
    """Invariant: decrypt ∘ encrypt = identity on canonical form, even
    through a serialization round trip."""
    holder = Element("holder")
    holder.append(tree)
    original = canonicalize(holder)
    rng = DeterministicRandomSource(seed)
    key = SymmetricKey(rng.read(16))
    Encryptor(rng=rng).encrypt_element(tree, key, key_name="k")
    assert canonicalize(holder) != original
    transported = parse_element(serialize(holder))
    Decryptor(keys={"k": key}).decrypt_in_place(transported)
    assert canonicalize(transported) == original


@_slow
@given(data=st.binary(max_size=512), seed=st.binary(min_size=4,
                                                    max_size=8))
def test_secure_channel_roundtrip_property(pki, trust_store, data, seed):
    """Invariant: the TLS-like channel is transparent to payloads and
    opaque to wiretaps."""
    from repro.certs import SigningIdentity
    from repro.network import (
        Channel, PassiveWiretap, SecureClient, SecureServer,
        secure_transfer,
    )
    identity = SigningIdentity.create(
        "CN=prop-server", pki.root, rng=DeterministicRandomSource(seed),
    )
    wiretap = PassiveWiretap()
    received = secure_transfer(
        SecureClient(trust_store,
                     rng=DeterministicRandomSource(seed + b"c")),
        SecureServer(identity, rng=DeterministicRandomSource(seed + b"s")),
        Channel([wiretap]), data,
    )
    assert received == data
    if len(data) >= 24:
        assert not wiretap.saw_plaintext(data)


@_slow
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=50),
                          st.floats(min_value=0, max_value=50)),
                min_size=1, max_size=6))
def test_smil_seq_schedule_invariants(items):
    """Invariant: seq items are contiguous and ordered; duration is the
    sum of the item durations."""
    from repro.markup import MediaItem, Presentation, TimeContainer
    body = TimeContainer("seq")
    for begin_offset, dur in items:
        body.add(MediaItem("video", "x", dur=dur))
    presentation = Presentation(body=body)
    schedule = presentation.schedule()
    cursor = 0.0
    for item, (_b, dur) in zip(schedule, items):
        assert item.start >= cursor - 1e-9
        assert abs((item.end - item.start) - dur) < 1e-9
        cursor = item.end
    assert abs(presentation.duration() - sum(d for _, d in items)) < 1e-6
