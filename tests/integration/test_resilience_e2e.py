"""End-to-end resilience: faults driven through sign→encrypt→transfer→
verify→play (ISSUE 1 acceptance scenarios).

Every scenario is deterministic under a fixed seed — CI runs this file
with ``REPRO_FAULT_SEED`` pinned so fault patterns, backoff jitter and
outcomes are replayable bit-for-bit.
"""

import os

import pytest

from repro.certs import SigningIdentity
from repro.core import AuthoringPipeline, PlaybackPipeline
from repro.core.package import build_package_element
from repro.disc import ApplicationManifest
from repro.dsig import Signer
from repro.errors import (
    ChannelSecurityError, CircuitOpenError, NetworkError,
    RetryExhaustedError, XKMSError,
)
from repro.network import (
    Channel, ContentServer, DownloadClient, PassiveWiretap, SecureClient,
    SecureServer, establish,
)
from repro.permissions import (
    PERM_LOCAL_STORAGE, PERM_RETURN_CHANNEL, PermissionRequestFile,
)
from repro.player import DiscPlayer, InteractiveApplicationEngine
from repro.primitives.random import DeterministicRandomSource
from repro.primitives.rsa import generate_keypair
from repro.resilience import (
    REASON_RETRY_EXHAUSTED, CircuitBreaker, DropFault,
    FaultSchedule, FlakyService, RetryPolicy, SimulatedClock,
    TruncateFault, flaky_link,
)
from repro.xkms import TrustServer, XKMSClient
from repro.xmlcore import parse_element, serialize_bytes

SEED = int(os.environ.get("REPRO_FAULT_SEED", "20050902"))

LAYOUT = (
    '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
    '<root-layout width="1920" height="1080"/>'
    '<region regionName="main" width="1920" height="1080"/></layout>'
)


@pytest.fixture(scope="module")
def device_key():
    return generate_keypair(
        1024, DeterministicRandomSource(b"resilience-device")
    )


@pytest.fixture(scope="module")
def studio_key():
    return generate_keypair(
        1024, DeterministicRandomSource(b"resilience-studio")
    )


def make_manifest(script='player.log("bonus running");',
                  name="bonus-app") -> ApplicationManifest:
    manifest = ApplicationManifest(name)
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.add_script(script)
    return manifest


def signed_package_bytes(pki, device_key, rng,
                         script='player.log("bonus running");',
                         permissions=()) -> bytes:
    prf = PermissionRequestFile("bonus-app", "org.studio")
    for permission, kwargs in permissions:
        prf.request(permission, **kwargs)
    pipeline = AuthoringPipeline(
        pki.studio, recipient_key=device_key.public_key(), rng=rng,
    )
    return pipeline.build_package(
        make_manifest(script), permission_file=prf,
    ).data


def keyname_package_bytes(studio_key, key_name="studio-signing-key"
                          ) -> bytes:
    """A package whose signature can only resolve through XKMS."""
    prf = PermissionRequestFile("bonus-app", "org.studio")
    prf.request(PERM_LOCAL_STORAGE, quota_bytes=1024)
    package = build_package_element(make_manifest().to_element(), prf)
    signer = Signer(studio_key, key_name=key_name)
    signer.sign_enveloped(package)
    return serialize_bytes(package)


def make_server(pki, package_data: bytes) -> ContentServer:
    identity = SigningIdentity.create(
        "CN=content.studio.example", pki.root,
        rng=DeterministicRandomSource(b"resilience-server"),
    )
    server = ContentServer(identity=identity)
    server.publish("/apps/bonus.pkg", package_data)
    return server


# -- acceptance: download fails twice, succeeds on the third attempt ---------------


def test_download_recovers_under_retry_policy(pki, trust_store,
                                              device_key, rng):
    package_data = signed_package_bytes(pki, device_key, rng)
    server = make_server(pki, package_data)

    def run_once():
        clock = SimulatedClock()
        # Plain roundtrip = 2 transfers; drop the 1st and 2nd attempts'
        # request flight, let the 3rd attempt through.
        drop = DropFault(schedule=FaultSchedule.at(0, 2))
        client = DownloadClient(
            server, Channel([drop]),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5,
                                     seed=SEED, clock=clock),
        )
        player = DiscPlayer(trust_store, device_key=device_key)
        application = player.download_application(client,
                                                  "/apps/bonus.pkg",
                                                  secure=False)
        return application, drop, clock

    application, drop, clock = run_once()
    assert application.trusted
    assert drop.fired == 2
    assert len(clock.sleeps) == 2       # two backoffs before success
    session = InteractiveApplicationEngine(
        PlaybackPipeline(trust_store=trust_store, device_key=device_key)
    ).execute(application)
    assert session.console == ["bonus running"]

    # Deterministic under the fixed seed: an identical rerun produces
    # the identical backoff schedule.
    _, _, clock2 = run_once()
    assert clock2.sleeps == clock.sleeps


def test_flaky_service_recovers_under_retry(pki, trust_store):
    server = ContentServer()
    server.publish_service(
        "quote", FlakyService(lambda text: f"quote:{text}", failures=2),
    )
    client = DownloadClient(
        server, Channel(),
        retry_policy=RetryPolicy(max_attempts=3, seed=SEED,
                                 clock=SimulatedClock()),
    )
    assert client.call("quote", "day") == "quote:day"


def test_truncated_response_detected_and_retried(pki, trust_store,
                                                 device_key, rng):
    package_data = signed_package_bytes(pki, device_key, rng)
    server = make_server(pki, package_data)
    # Truncate the first response (transfer index 1), recover after.
    truncate = TruncateFault(keep_bytes=10,
                             schedule=FaultSchedule.at(1))
    client = DownloadClient(
        server, Channel([truncate]),
        retry_policy=RetryPolicy(max_attempts=2, seed=SEED,
                                 clock=SimulatedClock()),
    )
    assert client.fetch("/apps/bonus.pkg", secure=False) == package_data
    assert truncate.fired == 1


def test_truncated_message_without_policy_raises():
    server = ContentServer()
    server.publish("/r", b"payload-bytes")
    truncate = TruncateFault(keep_bytes=8,
                             schedule=FaultSchedule.at(1))
    client = DownloadClient(server, Channel([truncate]))
    with pytest.raises(NetworkError, match="truncated"):
        client.fetch("/r")


# -- acceptance: unreachable XKMS degrades, does not crash -------------------------


def test_xkms_reachable_yields_trusted_app(trust_store, studio_key):
    trust_server = TrustServer()
    trust_server.register_binding("studio-signing-key",
                                  studio_key.public_key())
    xkms = XKMSClient(trust_server.handle_xml)
    pipeline = PlaybackPipeline(trust_store=trust_store,
                                key_locator=xkms.locate)
    application = pipeline.open_package(
        keyname_package_bytes(studio_key)
    )
    assert application.trusted
    assert not application.degraded


def test_xkms_unreachable_degrades_to_untrusted(trust_store, studio_key):
    clock = SimulatedClock()

    def dead_transport(request_xml: str) -> str:
        raise NetworkError("trust service unreachable")

    xkms = XKMSClient(
        dead_transport,
        retry_policy=RetryPolicy(max_attempts=3, seed=SEED, clock=clock),
    )
    pipeline = PlaybackPipeline(trust_store=trust_store,
                                key_locator=xkms.locate)
    application = pipeline.open_package(
        keyname_package_bytes(studio_key)
    )
    # Playback continues: no exception, but trust is downgraded and the
    # reason is on record.
    assert not application.trusted
    assert application.degraded
    assert application.degradations[0].reason == REASON_RETRY_EXHAUSTED
    assert pipeline.degradation.for_component("xkms")
    # Trust-gated permissions stay denied for the degraded app.
    assert not application.grants.has(PERM_LOCAL_STORAGE)
    # ... and the application still executes.
    engine = InteractiveApplicationEngine(pipeline)
    session = engine.execute(application)
    assert session.console == ["bonus running"]
    assert session.degradations  # carried onto the session


def test_tampered_package_still_barred_even_when_xkms_down(trust_store,
                                                           studio_key):
    """Degradation never launders tampering: a package with a broken
    digest is barred regardless of trust-service availability."""
    from repro.errors import ApplicationRejectedError

    data = keyname_package_bytes(studio_key)
    tampered = data.replace(b"bonus running", b"evil  running")

    def dead_transport(request_xml: str) -> str:
        raise NetworkError("trust service unreachable")

    pipeline = PlaybackPipeline(
        trust_store=trust_store,
        key_locator=XKMSClient(dead_transport).locate,
    )
    with pytest.raises(ApplicationRejectedError):
        pipeline.open_package(tampered)


def test_xkms_substituted_response_rejected_not_degraded(trust_store,
                                                         studio_key):
    """The satellite bugfix: a result with a missing request id is a
    substitution attempt, not an infrastructure failure — but the
    XKMSError surfaces as a degradation (fail closed to untrusted)."""
    from repro.xkms.messages import RESULT_NO_MATCH, XKMSResult

    def evil_transport(request_xml: str) -> str:
        return XKMSResult("Locate", RESULT_NO_MATCH).to_xml()  # no id

    xkms = XKMSClient(evil_transport)
    with pytest.raises(XKMSError, match="does not answer"):
        xkms.locate("studio-signing-key")

    pipeline = PlaybackPipeline(trust_store=trust_store,
                                key_locator=xkms.locate)
    application = pipeline.open_package(
        keyname_package_bytes(studio_key)
    )
    assert not application.trusted  # fails closed


# -- acceptance: dead channel → RetryExhausted, breaker → CircuitOpen --------------


def test_dead_channel_exhausts_then_circuit_short_circuits(pki,
                                                           trust_store):
    server = ContentServer()
    server.publish("/r", b"data")
    channel = Channel()
    channel.close()   # permanently dead
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown=60.0,
                             clock=clock)
    client = DownloadClient(
        server, channel,
        retry_policy=RetryPolicy(max_attempts=5, base_delay=1.0,
                                 jitter=0.1, deadline=4.0, seed=SEED,
                                 clock=clock),
        circuit_breaker=breaker,
    )
    with pytest.raises(RetryExhaustedError) as excinfo:
        client.fetch("/r")
    assert excinfo.value.attempts == 3   # 1s + 2s backoff fit; 4s didn't
    assert clock.now() <= 4.0

    # The breaker tripped; subsequent calls never touch the wire.
    transferred_before = channel.messages_transferred
    with pytest.raises(CircuitOpenError):
        client.fetch("/r")
    assert channel.messages_transferred == transferred_before

    # After the cool-down the half-open probe goes through again (and
    # the channel has recovered).
    channel.reopen()
    clock.advance(60.0)
    assert client.fetch("/r") == b"data"


# -- graceful degradation of optional content --------------------------------------


def test_optional_downloads_barred_disc_keeps_playing(pki, trust_store,
                                                      device_key, rng):
    package_data = signed_package_bytes(pki, device_key, rng)
    server = make_server(pki, package_data)
    server.publish("/bonus/art.png", b"PNG-bytes")
    channel = Channel([flaky_link(100)])   # effectively dead
    good_client = DownloadClient(server, Channel())
    bad_client = DownloadClient(
        server, channel,
        retry_policy=RetryPolicy(max_attempts=2, seed=SEED,
                                 clock=SimulatedClock()),
    )
    player = DiscPlayer(trust_store, device_key=device_key)

    fetched = player.download_bonus_content(
        good_client, ["/bonus/art.png", "/bonus/missing.png"],
        secure=False,
    )
    assert fetched == {"/bonus/art.png": b"PNG-bytes"}
    assert "/bonus/missing.png" in player.degradation.barred_resources()

    # A mandatory application over a dead link raises ...
    with pytest.raises(RetryExhaustedError):
        player.download_application(bad_client, "/apps/bonus.pkg",
                                    secure=False)
    # ... an optional one is barred and playback continues.
    application = player.download_application(
        bad_client, "/apps/bonus.pkg", secure=False, optional=True,
    )
    assert application is None
    degraded = player.degradation.for_component("download")
    assert any(event.reason == REASON_RETRY_EXHAUSTED
               for event in degraded)

    # The disc's own (already loaded) application still runs.
    good_app = player.download_application(good_client,
                                           "/apps/bonus.pkg",
                                           secure=False)
    session = player.run_application(good_app)
    assert session.console == ["bonus running"]


def test_script_network_get_degrades_to_null(pki, trust_store,
                                             device_key, rng):
    """A dead return channel bars the one resource; the app keeps
    running and the script simply sees null."""
    script = (
        'var d = network.get("cdn.studio.example", "/extra");'
        'if (d == null) { player.log("degraded"); }'
        'else { player.log(d); }'
    )
    package_data = signed_package_bytes(
        pki, device_key, rng, script=script,
        permissions=[(PERM_RETURN_CHANNEL,
                      {"hosts": ("cdn.studio.example",)})],
    )

    def dead_fetch(host, path):
        raise RetryExhaustedError("link down", attempts=3)

    engine = InteractiveApplicationEngine(
        PlaybackPipeline(trust_store=trust_store, device_key=device_key),
        network_fetch=dead_fetch,
    )
    session = engine.execute(engine.load_package(package_data))
    assert session.console == ["degraded"]
    assert session.degradations[0].component == "network-api"
    assert session.degradations[0].reason == REASON_RETRY_EXHAUSTED
    assert engine.degradation.degraded


# -- secure channel under faults ---------------------------------------------------


def test_secure_handshake_retries_after_dropped_flight(pki, trust_store):
    identity = SigningIdentity.create(
        "CN=content.studio.example", pki.root,
        rng=DeterministicRandomSource(b"resilience-tls"),
    )
    wiretap = PassiveWiretap()
    channel = Channel([DropFault(schedule=FaultSchedule.at(0)), wiretap])
    client_session, server_session = establish(
        SecureClient(trust_store), SecureServer(identity), channel,
        retry_policy=RetryPolicy(max_attempts=2, seed=SEED,
                                 clock=SimulatedClock()),
    )
    wire = channel.transfer(client_session.seal(b"premium request"))
    assert server_session.open(wire) == b"premium request"
    assert not wiretap.saw_plaintext(b"premium request")


def test_secure_session_detects_duplicated_record(pki, trust_store):
    from repro.resilience import DuplicateFault
    identity = SigningIdentity.create(
        "CN=content.studio.example", pki.root,
        rng=DeterministicRandomSource(b"resilience-tls2"),
    )
    client_session, server_session = establish(
        SecureClient(trust_store), SecureServer(identity), Channel(),
    )
    lossy = Channel([DuplicateFault(schedule=FaultSchedule.at(0))])
    first = lossy.transfer(client_session.seal(b"one"))
    second = lossy.transfer(client_session.seal(b"two"))
    assert server_session.open(first) == b"one"
    with pytest.raises(ChannelSecurityError, match="replay|reorder"):
        server_session.open(second)   # the stale retransmit of "one"


def test_probability_fault_pattern_replays_exactly(pki, trust_store,
                                                   device_key, rng):
    """Seeded random drops produce the same end-to-end outcome twice."""
    package_data = signed_package_bytes(pki, device_key, rng)
    server = make_server(pki, package_data)

    def run():
        drop = DropFault(
            schedule=FaultSchedule.probability(0.4, seed=SEED),
        )
        client = DownloadClient(
            server, Channel([drop]),
            retry_policy=RetryPolicy(max_attempts=6, base_delay=0.1,
                                     seed=SEED, clock=SimulatedClock()),
        )
        try:
            client.fetch("/apps/bonus.pkg", secure=False)
            outcome = "ok"
        except NetworkError as exc:
            outcome = type(exc).__name__
        return outcome, drop.calls, drop.fired

    assert run() == run()
