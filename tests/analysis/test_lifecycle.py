"""Lifecycle-engine behaviour: one mini-program per LIF rule (leaky
and disciplined variants), the deadline-propagation proof over the
real service chain, the incremental cache (including the IR-version
cold-start contract shared by all three call-graph analyzers), and
the clean-repo gate that keeps ``repro.tools lifecycle src`` green."""

import json
import os
import textwrap

import pytest

from repro.analysis import Baseline
from repro.analysis.lifecache import LifecycleCache
from repro.analysis.lifecycle import (
    analyze_modules, analyze_paths, analyze_source,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def life(snippet: str, path: str = "src/repro/example.py"):
    return analyze_source(textwrap.dedent(snippet), path)


def rule_ids(findings) -> set:
    return {finding.rule_id for finding in findings}


# -- LIF401: spawned task without a retained, shut-down handle ---------------


def test_lif401_dropped_handle():
    findings = life("""
    import asyncio

    async def serve(work):
        asyncio.create_task(work())
    """)
    assert rule_ids(findings) == {"LIF401"}
    (finding,) = findings
    assert "without retaining" in finding.message


def test_lif401_unread_local_handle():
    findings = life("""
    import asyncio

    async def serve(work):
        task = asyncio.create_task(work())
        print("spawned")
    """)
    assert rule_ids(findings) == {"LIF401"}
    assert "'task'" in findings[0].message


def test_lif401_awaited_gather_is_clean():
    assert life("""
    import asyncio

    async def serve(work):
        await asyncio.gather(work(), work())
    """) == []


def test_lif401_awaited_local_is_clean():
    assert life("""
    import asyncio

    async def serve(work):
        task = asyncio.create_task(work())
        await task
    """) == []


def test_lif401_returned_handle_is_callers_problem():
    assert life("""
    import asyncio

    def spawn(work):
        return asyncio.ensure_future(work())
    """) == []


OWNED_SPAWN = """
import asyncio

class Server:
    def __init__(self):
        self._tasks = set()

    async def serve(self, work):
        task = asyncio.create_task(work())
        self._tasks.add(task)
"""


def test_lif401_owner_without_shutdown_path():
    findings = life(OWNED_SPAWN)
    assert rule_ids(findings) == {"LIF401"}
    assert "self._tasks" in findings[0].message
    assert "shutdown path" in findings[0].message


def test_lif401_owner_with_shutdown_path_is_clean():
    assert life("""
    import asyncio

    class Server:
        def __init__(self):
            self._tasks = set()

        async def serve(self, work):
            task = asyncio.create_task(work())
            self._tasks.add(task)

        async def aclose(self):
            for task in self._tasks:
                task.cancel()
    """) == []


# -- LIF402: broad except around await swallows CancelledError ---------------


def test_lif402_broad_handler_swallows_cancellation():
    findings = life("""
    async def step(op):
        try:
            await op()
        except Exception:
            return None
    """)
    assert rule_ids(findings) == {"LIF402"}
    assert "CancelledError" in findings[0].message


def test_lif402_clean_with_narrow_reraise_first():
    assert life("""
    import asyncio

    async def step(op):
        try:
            await op()
        except asyncio.CancelledError:
            raise
        except Exception:
            return None
    """) == []


def test_lif402_clean_when_broad_handler_reraises():
    assert life("""
    async def step(op):
        try:
            await op()
        except BaseException:
            raise
    """) == []


def test_lif402_broad_handler_without_await_is_clean():
    assert life("""
    async def step(op):
        try:
            op.prepare()
        except Exception:
            return None
        await op()
    """) == []


# -- LIF403: await while holding a threading lock ----------------------------


def test_lif403_await_under_threading_lock():
    findings = life("""
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()

        async def poke(self, op):
            with self._lock:
                await op()
    """)
    assert rule_ids(findings) == {"LIF403"}
    assert "_lock" in findings[0].message


def test_lif403_async_lock_is_clean():
    assert life("""
    class Box:
        def __init__(self, lock):
            self._alock = lock

        async def poke(self, op):
            async with self._alock:
                await op()
    """) == []


def test_lif403_lock_released_before_await_is_clean():
    assert life("""
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()

        async def poke(self, op):
            with self._lock:
                staged = op.stage()
            await op.run(staged)
    """) == []


# -- LIF404: async call chain drops the propagated Deadline ------------------


#: The seeded deadline-drop: ``fetch`` holds a deadline and reaches
#: the wait through ``exchange`` without filling its deadline slot.
DEADLINE_DROP = """
async def fetch(channel, deadline):
    await exchange(channel)

async def exchange(channel, deadline=None):
    await channel.clock.wait_until(channel.future, deadline.at)
"""


def test_lif404_seeded_deadline_drop_is_flagged():
    findings = life(DEADLINE_DROP)
    assert rule_ids(findings) == {"LIF404"}
    assert "exchange" in findings[0].message
    assert "'deadline'" in findings[0].message


def test_lif404_positional_threading_is_clean():
    assert life(DEADLINE_DROP.replace(
        "await exchange(channel)",
        "await exchange(channel, deadline)")) == []


def test_lif404_keyword_threading_is_clean():
    assert life(DEADLINE_DROP.replace(
        "await exchange(channel)",
        "await exchange(channel, deadline=deadline)")) == []


def test_lif404_crosses_module_boundaries():
    findings = analyze_modules({
        "src/repro/alpha.py": textwrap.dedent("""
        from repro.beta import exchange

        async def fetch(channel, deadline):
            await exchange(channel)
        """),
        "src/repro/beta.py": textwrap.dedent("""
        async def exchange(channel, deadline=None):
            await channel.clock.wait_until(channel.future,
                                           deadline.at)
        """),
    }).findings
    assert rule_ids(findings) == {"LIF404"}
    assert findings[0].location == "src/repro/alpha.py"


def test_lif404_wait_sink_with_underived_bound():
    findings = life("""
    async def fetch(clock, future, deadline, horizon):
        await clock.wait_until(future, horizon)
    """)
    assert rule_ids(findings) == {"LIF404"}
    assert "wait_until" in findings[0].message


def test_lif404_wait_sink_with_derived_bound_is_clean():
    assert life("""
    async def fetch(clock, future, context):
        limit = context.deadline
        await clock.wait_until(future, limit.at)
    """) == []


def test_lif404_bounded_sleep_is_exempt():
    # asleep/sleep are how deadline-clipped backoff is *implemented*;
    # demanding a deadline argument there would flag the protocol.
    assert life("""
    async def backoff(clock, deadline):
        await clock.asleep(0.5)
    """) == []


def test_lif404_caller_without_deadline_is_not_demanded():
    assert life("""
    async def fire_and_wait(channel):
        await exchange(channel)

    async def exchange(channel, deadline=None):
        await channel.clock.wait_until(channel.future, deadline.at)
    """) == []


def test_lif404_real_service_chain_is_proved_not_skipped():
    """The OverloadShield -> AsyncTrustService chain must be *inside*
    the proof (deadline-carrying, transitively waiting) and pass."""
    from repro.analysis.callgraph import Program, extract_module
    from repro.analysis.findings import display_path
    from repro.analysis.lifecycle import LifecycleEngine

    infos = []
    for root, _dirs, files in os.walk(os.path.join(REPO_ROOT, "src")):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = display_path(os.path.join(root, name))
            with open(os.path.join(root, name),
                      encoding="utf-8") as handle:
                infos.append(extract_module(handle.read(), path))
    program = Program(infos)
    paths = {info["module"]: info["path"] for info in infos}
    engine = LifecycleEngine(program, paths)
    findings = engine.run()

    run = "repro.resilience.service:OverloadShield.run"
    dispatch = "repro.network.server:AsyncServiceServer._dispatch"
    assert run in engine.scans and dispatch in engine.scans
    assert engine.scans[run].deadline_names
    assert engine.scans[dispatch].deadline_names
    assert engine._waits(run)  # reaches wait_until via admit()
    assert [f for f in findings if f.rule_id == "LIF404"] == []


# -- LIF405: acquired resource released on an escapable path -----------------


SLOT_BODY = """
async def run(admission, tenant, deadline, op):
    await admission.admit(tenant, deadline)
    return await op()
"""


def test_lif405_slot_never_released():
    findings = life(SLOT_BODY)
    assert rule_ids(findings) == {"LIF405"}
    assert "never calls admission.release()" in findings[0].message


def test_lif405_release_outside_finally():
    findings = life("""
    async def run(admission, tenant, deadline, op):
        await admission.admit(tenant, deadline)
        result = await op()
        admission.release(tenant)
        return result
    """)
    assert rule_ids(findings) == {"LIF405"}
    assert "outside any finally" in findings[0].message


def test_lif405_release_in_finally_is_clean():
    assert life("""
    async def run(admission, tenant, deadline, op):
        await admission.admit(tenant, deadline)
        try:
            return await op()
        finally:
            admission.release(tenant)
    """) == []


def test_lif405_channel_leaked_on_exception_path():
    findings = life("""
    from repro.network.channel import AsyncChannel

    async def probe(clock, op):
        channel = AsyncChannel(clock=clock)
        await op(channel.client)
    """)
    assert rule_ids(findings) == {"LIF405"}
    assert "no close on any path" in findings[0].message


def test_lif405_channel_closed_in_finally_is_clean():
    assert life("""
    from repro.network.channel import AsyncChannel

    async def probe(clock, op):
        channel = AsyncChannel(clock=clock)
        try:
            await op(channel.client)
        finally:
            channel.close()
    """) == []


def test_lif405_returned_channel_escapes_ownership():
    assert life("""
    from repro.network.channel import AsyncChannel

    async def open_channel(clock):
        channel = AsyncChannel(clock=clock)
        return channel
    """) == []


# -- incremental cache -------------------------------------------------------


MODULE_A = "def alpha():\n    return 1\n"
MODULE_B = "def beta():\n    return 2\n"


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "a.py").write_text(MODULE_A)
    (tmp_path / "b.py").write_text(MODULE_B)
    return tmp_path


def test_cache_cold_then_memoized_run(tree, tmp_path):
    cache_path = str(tmp_path / "cache.json")
    cold = LifecycleCache(cache_path)
    analyze_paths([str(tree)], cache=cold)
    assert not cold.run_hit and cold.misses == 2

    warm = LifecycleCache(cache_path)
    result = analyze_paths([str(tree)], cache=warm)
    assert warm.run_hit
    assert result.scanned == 2


def test_cache_invalidates_only_the_changed_module(tree, tmp_path):
    cache_path = str(tmp_path / "cache.json")
    analyze_paths([str(tree)], cache=LifecycleCache(cache_path))

    (tree / "b.py").write_text(MODULE_B + "\ndef gamma():\n    return 3\n")
    edited = LifecycleCache(cache_path)
    analyze_paths([str(tree)], cache=edited)
    assert not edited.run_hit
    assert edited.hits == 1 and edited.misses == 1


def test_lifecycle_and_concurrency_caches_never_collide(tree, tmp_path):
    from repro.analysis.conccache import ConcurrencyCache
    from repro.analysis.concurrency import analyze_paths as conc_paths

    conc_path = str(tmp_path / "conc.json")
    life_path = str(tmp_path / "life.json")
    conc_paths([str(tree)], cache=ConcurrencyCache(conc_path))

    fresh = LifecycleCache(life_path)
    analyze_paths([str(tree)], cache=fresh)
    assert not fresh.run_hit  # separate file, separate spec version


def test_ir_version_bump_cold_starts_every_analyzer_cache_once(
        tree, tmp_path):
    """A callgraph IR bump (e.g. v3 -> v4) must cold-start the taint,
    concurrency and lifecycle caches exactly once each: the stale file
    is discarded at load, and the very next run is warm again."""
    from repro.analysis.conccache import ConcurrencyCache
    from repro.analysis.concurrency import analyze_paths as conc_paths
    from repro.analysis.taint import analyze_paths as taint_paths
    from repro.analysis.taintcache import TaintCache

    cases = [
        (TaintCache, taint_paths, str(tmp_path / "taint.json")),
        (ConcurrencyCache, conc_paths, str(tmp_path / "conc.json")),
        (LifecycleCache, analyze_paths, str(tmp_path / "life.json")),
    ]
    for cache_cls, run, cache_path in cases:
        run([str(tree)], cache=cache_cls(cache_path))
        with open(cache_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["ir_version"] -= 1  # pretend it predates the bump
        with open(cache_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

        stale = cache_cls(cache_path)
        run([str(tree)], cache=stale)
        assert not stale.run_hit, cache_cls.__name__
        assert stale.misses == 2, cache_cls.__name__  # full cold start

        fresh = cache_cls(cache_path)
        run([str(tree)], cache=fresh)
        assert fresh.run_hit, cache_cls.__name__  # cold exactly once


# -- clean-repo gate ---------------------------------------------------------


def test_repo_lifecycle_clean_modulo_baseline():
    """`repro.tools lifecycle src`: nothing above baseline."""
    src = os.path.join(REPO_ROOT, "src")
    baseline_path = os.path.join(REPO_ROOT, "lifecycle-baseline.json")
    result = analyze_paths([src])
    kept = Baseline.load(baseline_path).apply(result)
    assert kept.findings == [], [f.render() for f in kept.findings]
    assert kept.scanned > 100


def test_lifecycle_baseline_is_wellformed_and_justified():
    with open(os.path.join(REPO_ROOT, "lifecycle-baseline.json"),
              encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["version"] == 1
    for entry in payload["findings"]:
        assert entry["fingerprint"]
        assert entry["justification"]
