"""Concurrency-engine behaviour: one mini-program per CON rule
(racy and disciplined variants), root discovery and shared-surface
gating, the incremental cache, and the clean-repo gate that keeps
``repro.tools concurrency src`` green."""

import json
import os
import textwrap

import pytest

from repro.analysis import Baseline
from repro.analysis.conccache import ConcurrencyCache
from repro.analysis.concurrency import (
    analyze_modules, analyze_paths, analyze_source,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

#: fixtures impersonate a shared-surface module; state here is
#: expected to be visible from many contexts at once.
SHARED_PATH = "src/repro/perf/cache.py"


def conc(snippet: str, path: str = SHARED_PATH):
    return analyze_source(textwrap.dedent(snippet), path)


def rule_ids(findings) -> set:
    return {finding.rule_id for finding in findings}


# -- CON301: shared write outside any lock ----------------------------------


CON301_VIOLATION = """
class Registry:
    def __init__(self):
        self.count = 0

    def bump(self):
        self.count = self.count + 1

def main(pool):
    registry = Registry()
    pool.submit(registry.bump)
"""


def test_con301_unlocked_write_from_task_root():
    findings = conc(CON301_VIOLATION)
    assert rule_ids(findings) == {"CON301"}
    (finding,) = findings
    assert "count" in finding.message
    assert "Registry.bump" in finding.detail


def test_con301_clean_when_write_is_locked():
    disciplined = CON301_VIOLATION.replace(
        "        self.count = self.count + 1",
        "        with self._lock:\n"
        "            self.count = self.count + 1",
    )
    assert conc(disciplined) == []


def test_con301_not_minted_off_the_shared_surface():
    # Identical program, but per-context state (xmlcore parse trees
    # are never shared): the allowlist keeps it silent.
    assert conc(CON301_VIOLATION, "src/repro/xmlcore/example.py") == []


def test_con301_constructor_writes_are_pre_publication():
    snippet = """
    class Registry:
        def __init__(self):
            self.count = 0

        def read(self):
            return self.count

    def main(pool):
        registry = Registry()
        pool.submit(registry.read)
    """
    assert conc(snippet) == []


def test_con301_thread_target_is_a_root():
    snippet = """
    import threading

    class Registry:
        def __init__(self):
            self.count = 0

        def bump(self):
            self.count = self.count + 1

    def main():
        registry = Registry()
        threading.Thread(target=registry.bump).start()
    """
    assert rule_ids(conc(snippet)) == {"CON301"}


# -- CON302: check-then-act without a common lock ---------------------------


CON302_VIOLATION = """
class Memo:
    def __init__(self):
        self._entries = {}

    def put(self, key, value):
        if key not in self._entries:
            self._entries[key] = value

def main(pool):
    memo = Memo()
    pool.submit(memo.put)
"""


def test_con302_unlocked_check_then_act():
    findings = conc(CON302_VIOLATION)
    assert "CON302" in rule_ids(findings)
    finding = next(f for f in findings if f.rule_id == "CON302")
    assert "test at line" in finding.detail


def test_con302_clean_when_check_and_act_share_the_lock():
    disciplined = """
    class Memo:
        def __init__(self):
            self._entries = {}

        def put(self, key, value):
            with self._lock:
                if key not in self._entries:
                    self._entries[key] = value

    def main(pool):
        memo = Memo()
        pool.submit(memo.put)
    """
    assert conc(disciplined) == []


# -- CON303: lock-discipline violations -------------------------------------


def test_con303_inconsistent_guards_across_sites():
    snippet = """
    class Counter:
        def __init__(self):
            self.total = 0

        def from_reader(self):
            with self._read_lock:
                self.total = self.total + 1

        def from_writer(self):
            with self._write_lock:
                self.total = self.total + 1

    def main(pool):
        counter = Counter()
        pool.submit(counter.from_reader)
        pool.submit(counter.from_writer)
    """
    findings = conc(snippet)
    assert rule_ids(findings) == {"CON303"}
    (finding,) = findings
    assert "inconsistent" in finding.message


def test_con303_blocking_call_under_lock():
    snippet = """
    import time

    class Flusher:
        def flush(self):
            with self._lock:
                time.sleep(0.1)

    def main(pool):
        flusher = Flusher()
        pool.submit(flusher.flush)
    """
    findings = conc(snippet)
    assert rule_ids(findings) == {"CON303"}
    (finding,) = findings
    assert "blocking" in finding.message


def test_con303_clean_when_blocking_runs_outside_lock():
    snippet = """
    import time

    class Flusher:
        def flush(self):
            with self._lock:
                pending = True
            time.sleep(0.1)

    def main(pool):
        flusher = Flusher()
        pool.submit(flusher.flush)
    """
    assert conc(snippet) == []


def test_con303_reentrant_lock_reacquisition_is_clean():
    snippet = """
    import threading

    class Nested:
        def __init__(self):
            self._lock = threading.RLock()

        def outer(self):
            with self._lock:
                self.inner()

        def inner(self):
            with self._lock:
                return 1

    def main(pool):
        nested = Nested()
        pool.submit(nested.outer)
    """
    assert conc(snippet) == []


def test_con303_nonreentrant_lock_reacquisition_flagged():
    snippet = """
    import threading

    class Nested:
        def __init__(self):
            self._lock = threading.Lock()

        def outer(self):
            with self._lock:
                self.inner()

        def inner(self):
            with self._lock:
                return 1

    def main(pool):
        nested = Nested()
        pool.submit(nested.outer)
    """
    findings = conc(snippet)
    assert rule_ids(findings) == {"CON303"}
    (finding,) = findings
    assert "re-acquired" in finding.message


# -- CON304: blocking calls under async roots -------------------------------


CON304_VIOLATION = """
import time

async def refresh_bindings(service):
    time.sleep(1.0)
    return service.poll()
"""


def test_con304_blocking_sleep_in_async_root():
    findings = conc(CON304_VIOLATION, "src/repro/xkms/example.py")
    assert rule_ids(findings) == {"CON304"}
    (finding,) = findings
    assert "async" in finding.message


def test_con304_asyncio_sleep_is_await_friendly():
    friendly = CON304_VIOLATION.replace("import time", "import asyncio") \
        .replace("time.sleep(1.0)", "asyncio.sleep(1.0)")
    assert conc(friendly, "src/repro/xkms/example.py") == []


def test_con304_blocking_reached_transitively():
    findings = analyze_modules({
        "src/repro/xkms/a.py": textwrap.dedent("""
            from repro.xkms.b import fetch_remote

            async def serve(request):
                return fetch_remote(request)
        """),
        "src/repro/xkms/b.py": textwrap.dedent("""
            import time

            def fetch_remote(request):
                time.sleep(0.5)
                return request
        """),
    }).findings
    assert "CON304" in rule_ids(findings)


# -- roots / surface mechanics ----------------------------------------------


def test_main_only_programs_are_clean():
    snippet = """
    class Registry:
        def __init__(self):
            self.count = 0

        def bump(self):
            self.count = self.count + 1

    def main():
        registry = Registry()
        registry.bump()
    """
    # No executor, no thread, no async, no driver: nothing is shared.
    assert conc(snippet) == []


def test_main_thread_writer_of_root_read_state_is_flagged():
    snippet = """
    class Registry:
        def __init__(self):
            self.count = 0

        def read(self):
            return self.count

        def bump(self):
            self.count = self.count + 1

    def main(pool):
        registry = Registry()
        pool.submit(registry.read)
        registry.bump()
    """
    # The root only reads, but the main thread writes concurrently
    # with that read: still a torn-read hazard.
    assert rule_ids(conc(snippet)) == {"CON301"}


# -- incremental cache -------------------------------------------------------


MODULE_A = "def alpha():\n    return 1\n"
MODULE_B = "def beta():\n    return 2\n"


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "a.py").write_text(MODULE_A)
    (tmp_path / "b.py").write_text(MODULE_B)
    return tmp_path


def test_cache_cold_then_memoized_run(tree, tmp_path):
    cache_path = str(tmp_path / "cache.json")
    cold = ConcurrencyCache(cache_path)
    analyze_paths([str(tree)], cache=cold)
    assert not cold.run_hit and cold.misses == 2

    warm = ConcurrencyCache(cache_path)
    result = analyze_paths([str(tree)], cache=warm)
    assert warm.run_hit
    assert result.scanned == 2


def test_cache_invalidates_only_the_changed_module(tree, tmp_path):
    cache_path = str(tmp_path / "cache.json")
    analyze_paths([str(tree)], cache=ConcurrencyCache(cache_path))

    (tree / "b.py").write_text(MODULE_B + "\ndef gamma():\n    return 3\n")
    edited = ConcurrencyCache(cache_path)
    analyze_paths([str(tree)], cache=edited)
    assert not edited.run_hit
    assert edited.hits == 1 and edited.misses == 1


def test_taint_and_concurrency_caches_never_collide(tree, tmp_path):
    from repro.analysis.taintcache import TaintCache

    taint_path = str(tmp_path / "taint.json")
    conc_path = str(tmp_path / "conc.json")
    from repro.analysis.taint import analyze_paths as taint_paths
    taint_paths([str(tree)], cache=TaintCache(taint_path))

    fresh = ConcurrencyCache(conc_path)
    analyze_paths([str(tree)], cache=fresh)
    assert not fresh.run_hit  # separate file, separate spec version


# -- clean-repo gate ---------------------------------------------------------


def test_repo_concurrency_clean_modulo_baseline():
    """`repro.tools concurrency src`: nothing above baseline."""
    src = os.path.join(REPO_ROOT, "src")
    baseline_path = os.path.join(REPO_ROOT, "concurrency-baseline.json")
    result = analyze_paths([src])
    kept = Baseline.load(baseline_path).apply(result)
    assert kept.findings == [], [f.render() for f in kept.findings]
    assert kept.scanned > 100


def test_concurrency_baseline_is_wellformed_and_justified():
    with open(os.path.join(REPO_ROOT, "concurrency-baseline.json"),
              encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["version"] == 1
    for entry in payload["findings"]:
        assert entry["fingerprint"]
        assert entry["justification"]
