"""Taint-engine behaviour: one mini-program per TNT rule (violating
and sanitized variants), propagation mechanics, and the clean-repo
gate that keeps ``repro.tools taint src`` green."""

import json
import os
import textwrap

import pytest

from repro.analysis import Baseline, analyze_modules, analyze_source
from repro.analysis.taint import analyze_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def taint(snippet: str, path: str = "src/repro/network/example.py"):
    return analyze_source(textwrap.dedent(snippet), path)


def rule_ids(findings) -> set:
    return {finding.rule_id for finding in findings}


# -- TNT201: untrusted bytes -> script execution ----------------------------


TNT201_VIOLATION = """
from repro.xmlcore.parser import parse_element

def handle(client, interp):
    payload = client.fetch("app.xml")
    doc = parse_element(payload)
    interp.run(doc)
"""


def test_tnt201_unverified_parse_reaches_interpreter():
    findings = taint(TNT201_VIOLATION)
    assert rule_ids(findings) == {"TNT201"}
    (finding,) = findings
    assert "script interpreter" in finding.message


def test_tnt201_clean_after_verification():
    sanitized = TNT201_VIOLATION.replace(
        "def handle(client, interp):",
        "def handle(client, interp, verifier):",
    ).replace(
        "    interp.run(doc)",
        "    verifier.verify(doc)\n    interp.run(doc)",
    )
    assert taint(sanitized) == []


def test_tnt201_flows_across_modules_with_trace():
    findings = analyze_modules({
        "src/repro/network/a.py": textwrap.dedent("""
            from repro.network.b import stage_two

            def entry(client, interp):
                payload = client.fetch("x")
                stage_two(payload, interp)
        """),
        "src/repro/network/b.py": textwrap.dedent("""
            from repro.xmlcore.parser import parse_element

            def stage_two(data, interp):
                run_it(parse_element(data), interp)

            def run_it(doc, interp):
                interp.run(doc)
        """),
    }).findings
    assert "TNT201" in rule_ids(findings)
    trace = next(f for f in findings if f.rule_id == "TNT201").detail
    assert "entry" in trace and "->" in trace


# -- TNT202: unverified markup -> playback/output ---------------------------


TNT202_VIOLATION = """
from repro.xmlcore.parser import parse_document

def present(image, engine):
    data = image.read("BDMV/markup.xml")
    doc = parse_document(data)
    engine.execute(doc)
"""


def test_tnt202_unverified_disc_markup_reaches_playback():
    findings = taint(TNT202_VIOLATION, "src/repro/player/example.py")
    assert rule_ids(findings) == {"TNT202"}


def test_tnt202_clean_after_verification():
    sanitized = TNT202_VIOLATION.replace(
        "def present(image, engine):",
        "def present(image, engine, verifier):",
    ).replace(
        "    engine.execute(doc)",
        "    verifier.verify_or_raise(doc)\n    engine.execute(doc)",
    )
    assert taint(sanitized, "src/repro/player/example.py") == []


def test_trusted_wrapper_result_is_verified():
    snippet = """
    def play(pipeline, engine, data):
        application = pipeline.open_package(data)
        engine.execute(application)
    """
    # open_package is only trusted under its resolved qualified name,
    # so mimic the real module layout.
    findings = analyze_modules({
        "src/repro/core/playback_pipeline.py": textwrap.dedent("""
            class PlaybackPipeline:
                def open_package(self, data):
                    return data
        """),
        "src/repro/player/example.py": textwrap.dedent("""
            from repro.core.playback_pipeline import PlaybackPipeline

            def play(engine, data):
                pipeline = PlaybackPipeline()
                application = pipeline.open_package(data)
                engine.execute(application)
        """),
    }).findings
    assert "TNT202" not in rule_ids(findings)


# -- TNT203: secrets -> logs / repr / exception text ------------------------


def test_tnt203_key_bytes_printed():
    snippet = """
    from repro.primitives.keys import SymmetricKey

    def debug_dump(raw):
        key = SymmetricKey(raw)
        print(key.data)
    """
    findings = taint(snippet, "src/repro/primitives/example.py")
    assert rule_ids(findings) == {"TNT203"}


def test_tnt203_key_in_log_and_exception_text():
    snippet = """
    def audit(key, log):
        log.append(f"using key {key.data}")

    def fail(secret_key):
        raise ValueError(f"bad key {secret_key.d}")
    """
    findings = taint(snippet, "src/repro/primitives/example.py")
    assert len(findings) == 2
    assert rule_ids(findings) == {"TNT203"}


def test_tnt203_clean_when_logging_fingerprint():
    snippet = """
    from repro.primitives.keys import SymmetricKey

    def audit(raw, log):
        key = SymmetricKey(raw)
        log.append(f"using key {key.fingerprint()}")
    """
    assert taint(snippet, "src/repro/primitives/example.py") == []


def test_tnt203_signature_output_is_declassified():
    snippet = """
    from repro.primitives.rsa import generate_keypair

    def publish(provider, rng, log):
        key = generate_keypair(1024, rng)
        signature = provider.rsa_sign_digest(key, b"digest", "sha256")
        log.append(f"signature {signature!r}")
    """
    assert taint(snippet, "src/repro/certs/example.py") == []


def test_tnt203_secret_cache_key():
    snippet = """
    def memoize(key, verdict_cache, verdict):
        verdict_cache[key.data] = verdict
    """
    findings = taint(snippet, "src/repro/primitives/example.py")
    assert rule_ids(findings) == {"TNT203"}


def test_tnt203_dataclass_repr_leak_detected_structurally():
    snippet = """
    from dataclasses import dataclass, field

    @dataclass(frozen=True)
    class PrivateKeyPair:
        n: int
        d: int
        data: bytes = field(repr=False)
    """
    findings = taint(snippet, "src/repro/primitives/example.py")
    assert rule_ids(findings) == {"TNT203"}
    (finding,) = findings
    assert ".d" in finding.message and "repr" in finding.message


def test_tnt203_dataclass_clean_with_custom_repr():
    snippet = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class PrivateKeyPair:
        n: int
        d: int

        def __repr__(self):
            return "PrivateKeyPair(<redacted>)"
    """
    assert taint(snippet, "src/repro/primitives/example.py") == []


# -- TNT204: re-parse discards the verification proof -----------------------


TNT204_VIOLATION = """
from repro.xmlcore.parser import parse_element

def relay(client, interp, verifier, serialize):
    doc = parse_element(client.fetch("app.xml"))
    verifier.verify(doc)
    doc2 = parse_element(serialize(doc))
    interp.run(doc2)
"""


def test_tnt204_reparse_after_verify():
    findings = taint(TNT204_VIOLATION)
    assert rule_ids(findings) == {"TNT204"}
    (finding,) = findings
    assert "re-parsed" in finding.message


def test_tnt204_clean_when_verified_doc_used_directly():
    direct = TNT204_VIOLATION.replace(
        "    doc2 = parse_element(serialize(doc))\n"
        "    interp.run(doc2)",
        "    interp.run(doc)",
    )
    assert taint(direct) == []


# -- propagation mechanics --------------------------------------------------


def test_sanitizer_clears_argument_in_place():
    snippet = """
    from repro.xmlcore.parser import parse_element

    def handle(client, interp, verifier):
        doc = parse_element(client.fetch("x"))
        verifier.verify(doc)
        interp.run(doc)

    def still_bad(client, interp, verifier, other):
        doc = parse_element(client.fetch("x"))
        verifier.verify(other)
        interp.run(doc)
    """
    findings = taint(snippet)
    assert len(findings) == 1
    assert findings[0].line > 0


def test_taint_survives_containers_and_fstrings():
    snippet = """
    def leak(key, log):
        parts = [key.data, "x"]
        log.append(f"blob {parts}")
    """
    assert rule_ids(taint(snippet, "src/repro/primitives/e.py")) == \
        {"TNT203"}


def test_tuple_destructuring_is_precise():
    snippet = """
    def serialize(key, emit):
        for name, value in (("n", key.n), ("d", key.d)):
            emit(name, value)
        print(name)
    """
    # `name` never carries the secret, so printing it is clean.
    assert taint(snippet, "src/repro/primitives/e.py") == []


def test_taint_stopper_drops_labels():
    snippet = """
    def size_of(client, interp):
        payload = client.fetch("x")
        interp.run(len(payload))
    """
    assert taint(snippet) == []


def test_untrusted_path_parse_is_source_only_there():
    snippet = """
    from repro.xmlcore.parser import parse_element

    def build(interp):
        interp.run(parse_element("<static/>"))
    """
    assert "TNT201" in rule_ids(taint(
        snippet, "src/repro/network/example.py"))
    assert taint(snippet, "src/repro/disc/manifest_builder.py") == []


# -- clean-repo gate --------------------------------------------------------


def test_repo_taints_clean_modulo_baseline():
    """`repro.tools taint src` on this repo: nothing above baseline."""
    src = os.path.join(REPO_ROOT, "src")
    baseline_path = os.path.join(REPO_ROOT, "taint-baseline.json")
    result = analyze_paths([src])
    kept = Baseline.load(baseline_path).apply(result)
    assert kept.findings == [], [f.render() for f in kept.findings]
    assert kept.scanned > 100


def test_taint_baseline_is_wellformed_and_justified():
    with open(os.path.join(REPO_ROOT, "taint-baseline.json"),
              encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["version"] == 1
    for entry in payload["findings"]:
        assert entry["fingerprint"]
        assert entry["justification"]
