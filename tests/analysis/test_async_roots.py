"""Async concurrency roots (spec v2): ``asyncio.create_task`` /
``ensure_future`` / task-group spawns make their target a task root,
and ``loop.run_in_executor`` makes its callable a *thread* root — so
shared-state races in spawned work are analyzed exactly like
thread-pool submissions, while the executor offload itself stays the
sanctioned remedy for fsync-bearing paths under async roots."""

import textwrap

from repro.analysis.concurrency import analyze_paths, analyze_source

SHARED_PATH = "src/repro/perf/cache.py"


def conc(snippet: str, path: str = SHARED_PATH):
    return analyze_source(textwrap.dedent(snippet), path)


def rule_ids(findings) -> set:
    return {finding.rule_id for finding in findings}


SPAWNED_RACE = """
class Registry:
    def __init__(self):
        self.count = 0

    async def bump(self):
        self.count = self.count + 1

def main(loop):
    registry = Registry()
    asyncio.create_task(registry.bump())
"""


def test_create_task_target_is_a_concurrency_root():
    findings = conc(SPAWNED_RACE)
    assert rule_ids(findings) == {"CON301"}
    (finding,) = findings
    assert "count" in finding.message


def test_ensure_future_target_is_a_concurrency_root():
    findings = conc(SPAWNED_RACE.replace("asyncio.create_task",
                                         "asyncio.ensure_future"))
    assert rule_ids(findings) == {"CON301"}


def test_task_group_start_soon_target_is_a_root():
    snippet = """
    class Registry:
        def __init__(self):
            self.count = 0

        async def bump(self):
            self.count = self.count + 1

    def main(tg):
        registry = Registry()
        tg.start_soon(registry.bump)
    """
    findings = conc(snippet)
    assert rule_ids(findings) == {"CON301"}


def test_run_in_executor_callable_is_a_thread_root():
    snippet = """
    class Registry:
        def __init__(self):
            self.count = 0

        def persist(self):
            self.count = self.count + 1

    def main(loop):
        registry = Registry()
        loop.run_in_executor(None, registry.persist)
    """
    findings = conc(snippet)
    assert rule_ids(findings) == {"CON301"}


def test_spawned_race_clean_when_locked():
    disciplined = SPAWNED_RACE.replace(
        "        self.count = self.count + 1",
        "        with self._lock:\n"
        "            self.count = self.count + 1",
    )
    assert conc(disciplined) == []


def test_run_in_executor_offload_does_not_mint_con304():
    # The executor callable runs on a thread, not the event loop:
    # blocking there is the *remedy* for CON304, not a violation.
    snippet = """
    def flush(handle):
        os.fsync(handle)

    async def serve(loop, handle):
        await loop.run_in_executor(None, flush, handle)
    """
    assert rule_ids(conc(snippet)) == set()


def test_spawned_async_root_still_gated_on_blocking():
    # An async task spawned with create_task remains an async root:
    # blocking inside it stalls the loop and mints CON304.
    snippet = """
    async def worker():
        time.sleep(1)

    def main():
        asyncio.create_task(worker())
    """
    assert "CON304" in rule_ids(conc(snippet))


def test_async_service_modules_are_concurrency_clean():
    """The PR's async stack passes CON301-CON304 with no baseline."""
    result = analyze_paths([
        "src/repro/resilience", "src/repro/network",
        "src/repro/xkms", "src/repro/loadgen",
    ])
    concs = [f for f in result.findings
             if f.rule_id.startswith("CON")]
    assert concs == []
