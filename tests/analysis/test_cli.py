"""The ``repro audit`` / ``repro lint`` command-line surface."""

import json
import os

from repro.tools.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


# -- audit -------------------------------------------------------------------


def test_audit_clean_exits_zero(capsys):
    assert main(["audit", fixture("clean.xml")]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out
    assert "signature coverage" in out


def test_audit_wrapped_fixture_fails_with_rule_id(capsys):
    code = main(["audit", fixture("wrapped_duplicate_id.xml")])
    assert code == 1
    assert "SEC001" in capsys.readouterr().out


def test_audit_fail_on_threshold(capsys):
    weak = fixture("weak_algorithms.xml")  # warnings only
    assert main(["audit", weak]) == 1
    assert main(["audit", "--fail-on", "error", weak]) == 0


def test_audit_json_report(tmp_path, capsys):
    out = str(tmp_path / "report.json")
    code = main(["audit", "--json", out,
                 fixture("wrapped_duplicate_id.xml")])
    assert code == 1
    capsys.readouterr()
    with open(out, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert any(f["rule_id"] == "SEC001" for f in payload["findings"])


def test_audit_rules_catalog(capsys):
    assert main(["audit", "--rules"]) == 0
    out = capsys.readouterr().out
    assert "SEC001" in out and "SEC041" in out
    assert "LIN101" not in out


def test_audit_without_artifacts_is_usage_error(capsys):
    assert main(["audit"]) == 2


def test_audit_baseline_workflow(tmp_path, capsys):
    """--update-baseline accepts today's findings; reruns pass."""
    target = fixture("weak_algorithms.xml")
    baseline = str(tmp_path / "baseline.json")
    assert main(["audit", "--update-baseline", baseline, target]) == 0
    assert main(["audit", "--baseline", baseline, target]) == 0
    out = capsys.readouterr().out
    assert "baseline-suppressed" in out
    # A different finding is NOT covered by that baseline.
    assert main(["audit", "--baseline", baseline,
                 fixture("dangling_reference.xml")]) == 1


# -- lint --------------------------------------------------------------------


def test_lint_repo_passes_with_committed_baseline(capsys):
    src = os.path.join(REPO_ROOT, "src")
    baseline = os.path.join(REPO_ROOT, "analysis-baseline.json")
    assert main(["lint", src, "--baseline", baseline]) == 0
    assert "no findings" in capsys.readouterr().out


def test_lint_flags_seeded_violation(tmp_path, capsys):
    bad = tmp_path / "badtree.py"
    bad.write_text(
        "class Node:\n"
        "    def mark_mutated(self):\n"
        "        pass\n"
        "    def drop(self, child):\n"
        "        self.children.remove(child)\n"
    )
    assert main(["lint", str(bad)]) == 1
    assert "LIN101" in capsys.readouterr().out


def test_lint_rules_catalog(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    assert "LIN101" in out and "LIN105" in out
    assert "SEC001" not in out


# -- taint -------------------------------------------------------------------


def test_taint_repo_passes_with_committed_baseline(tmp_path, capsys):
    src = os.path.join(REPO_ROOT, "src")
    baseline = os.path.join(REPO_ROOT, "taint-baseline.json")
    cache = str(tmp_path / "cache.json")
    assert main(["taint", src, "--baseline", baseline,
                 "--cache", cache]) == 0
    assert "no findings" in capsys.readouterr().out
    # Second invocation hits the run-level cache and agrees.
    assert main(["taint", src, "--baseline", baseline,
                 "--cache", cache, "-v"]) == 0
    assert "warm" in capsys.readouterr().out


def test_taint_flags_seeded_flow(tmp_path, capsys):
    bad = tmp_path / "untrusted" / "relay.py"
    bad.parent.mkdir()
    bad.write_text(
        "from repro.xmlcore.parser import parse_element\n"
        "def handle(client, interp):\n"
        "    interp.run(parse_element(client.fetch('x')))\n"
    )
    assert main(["taint", str(bad.parent), "--no-cache"]) == 1
    assert "TNT201" in capsys.readouterr().out


def test_taint_rules_catalog(capsys):
    assert main(["taint", "--rules"]) == 0
    out = capsys.readouterr().out
    assert "TNT201" in out and "TNT204" in out
    assert "SEC001" not in out


# -- concurrency -------------------------------------------------------------


def test_concurrency_repo_passes_with_committed_baseline(tmp_path,
                                                         capsys):
    src = os.path.join(REPO_ROOT, "src")
    baseline = os.path.join(REPO_ROOT, "concurrency-baseline.json")
    cache = str(tmp_path / "cache.json")
    assert main(["concurrency", src, "--baseline", baseline,
                 "--cache", cache]) == 0
    assert "no findings" in capsys.readouterr().out
    # Second invocation hits the run-level cache and agrees.
    assert main(["concurrency", src, "--baseline", baseline,
                 "--cache", cache, "-v"]) == 0
    assert "warm" in capsys.readouterr().out


def test_concurrency_flags_seeded_async_blocker(tmp_path, capsys):
    bad = tmp_path / "asyncsvc" / "service.py"
    bad.parent.mkdir()
    bad.write_text(
        "import time\n"
        "async def serve(request):\n"
        "    time.sleep(1.0)\n"
        "    return request\n"
    )
    assert main(["concurrency", str(bad.parent), "--no-cache"]) == 1
    assert "CON304" in capsys.readouterr().out


def test_concurrency_rules_catalog(capsys):
    assert main(["concurrency", "--rules"]) == 0
    out = capsys.readouterr().out
    assert "CON301" in out and "CON304" in out
    assert "SEC001" not in out


# -- lifecycle ---------------------------------------------------------------


def test_lifecycle_repo_passes_with_committed_baseline(tmp_path,
                                                       capsys):
    src = os.path.join(REPO_ROOT, "src")
    baseline = os.path.join(REPO_ROOT, "lifecycle-baseline.json")
    cache = str(tmp_path / "cache.json")
    assert main(["lifecycle", src, "--baseline", baseline,
                 "--cache", cache]) == 0
    assert "no findings" in capsys.readouterr().out
    # Second invocation hits the run-level cache and agrees.
    assert main(["lifecycle", src, "--baseline", baseline,
                 "--cache", cache, "-v"]) == 0
    assert "warm" in capsys.readouterr().out


def test_lifecycle_flags_seeded_orphan_task(tmp_path, capsys):
    bad = tmp_path / "asyncsvc" / "spawner.py"
    bad.parent.mkdir()
    bad.write_text(
        "import asyncio\n"
        "async def serve(work):\n"
        "    asyncio.create_task(work())\n"
    )
    assert main(["lifecycle", str(bad.parent), "--no-cache"]) == 1
    assert "LIF401" in capsys.readouterr().out


def test_lifecycle_flags_seeded_deadline_drop(tmp_path, capsys):
    bad = tmp_path / "asyncsvc" / "chain.py"
    bad.parent.mkdir()
    bad.write_text(
        "async def fetch(channel, deadline):\n"
        "    await exchange(channel)\n"
        "async def exchange(channel, deadline=None):\n"
        "    await channel.clock.wait_until(channel.future,\n"
        "                                   deadline.at)\n"
    )
    assert main(["lifecycle", str(bad.parent), "--no-cache"]) == 1
    assert "LIF404" in capsys.readouterr().out


def test_lifecycle_rules_catalog(capsys):
    assert main(["lifecycle", "--rules"]) == 0
    out = capsys.readouterr().out
    assert "LIF401" in out and "LIF405" in out
    assert "SEC001" not in out
