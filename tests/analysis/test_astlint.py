"""One minimal violating snippet per AST rule, plus the clean-repo run."""

import json
import os
import textwrap

import pytest

from repro.analysis import Baseline, lint_paths, lint_source

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def lint(snippet: str, path: str = "src/repro/dsig/example.py"):
    return lint_source(textwrap.dedent(snippet), path)


def rule_ids(findings) -> set:
    return {finding.rule_id for finding in findings}


# -- LIN101: mutators must bump revision stamps -----------------------------


SEEDED_MUTATOR_VIOLATION = """
class Element:
    def __init__(self):
        self.children = []
        self.revision = 0

    def mark_mutated(self):
        self.revision += 1

    def append(self, child):
        self.children.append(child)
        self.mark_mutated()

    def sneaky_remove(self, child):
        # BUG under test: skips the revision bump.
        self.children.remove(child)
"""


def test_lin101_catches_mutator_skipping_revision_bump():
    findings = lint(SEEDED_MUTATOR_VIOLATION, "src/repro/xmlcore/x.py")
    assert rule_ids(findings) == {"LIN101"}
    (finding,) = findings
    assert "sneaky_remove" in finding.message
    assert finding.line > 0


def test_lin101_clean_when_all_mutators_bump():
    clean = SEEDED_MUTATOR_VIOLATION.replace(
        "self.children.remove(child)",
        "self.children.remove(child); self.mark_mutated()",
    )
    assert lint(clean, "src/repro/xmlcore/x.py") == []


def test_lin101_ignores_modules_without_revision_protocol():
    snippet = """
    class Bag:
        def add(self, item):
            self.children.append(item)
    """
    assert lint(snippet, "src/repro/other/bag.py") == []


def test_real_tree_module_passes_lin101():
    tree = os.path.join(REPO_ROOT, "src", "repro", "xmlcore", "tree.py")
    with open(tree, encoding="utf-8") as handle:
        findings = lint_source(handle.read(), tree)
    assert [f for f in findings if f.rule_id == "LIN101"] == []


# -- LIN102: HMAC verdicts never memoized -----------------------------------


def test_lin102_catches_lru_cached_hmac():
    snippet = """
    from functools import lru_cache

    @lru_cache(maxsize=128)
    def hmac_verify(key, data, tag):
        return compute_hmac(key, data) == tag
    """
    assert "LIN102" in rule_ids(lint(snippet))


def test_lin102_catches_hmac_stored_in_cache_table():
    snippet = """
    def check_hmac(key, data, tag):
        verdict = slow_hmac(key, data, tag)
        _verdict_cache[(id(key), data)] = verdict
        return verdict
    """
    assert "LIN102" in rule_ids(lint(snippet))


def test_lin102_allows_uncached_hmac():
    snippet = """
    def hmac_verify(key, data, tag):
        return constant_time_equal(compute_hmac(key, data), tag)
    """
    assert lint(snippet) == []


# -- LIN103: constant-time comparisons in crypto paths ----------------------


def test_lin103_catches_digest_equality():
    snippet = """
    def check(reference, actual_digest):
        return actual_digest == reference.digest_value
    """
    assert "LIN103" in rule_ids(lint(snippet))


def test_lin103_ignores_non_crypto_paths():
    snippet = """
    def check(reference, actual_digest):
        return actual_digest == reference.digest_value
    """
    assert lint(snippet, "src/repro/disc/example.py") == []


def test_lin103_allows_algorithm_name_comparison():
    snippet = """
    def pick(signature_method):
        if signature_method == RSA_SHA256:
            return "rsa"
    """
    assert lint(snippet) == []


def test_lin103_allows_literal_comparison():
    snippet = """
    def empty(sig):
        return sig == b""
    """
    assert lint(snippet) == []


# -- LIN104: injected clock in resilience code ------------------------------


def test_lin104_catches_wall_clock():
    snippet = """
    import time

    def backoff(attempt):
        time.sleep(2 ** attempt)
    """
    findings = lint(snippet, "src/repro/resilience/retry_example.py")
    assert "LIN104" in rule_ids(findings)


def test_lin104_allows_injected_clock():
    snippet = """
    def backoff(clock, attempt):
        clock.sleep(2 ** attempt)
    """
    path = "src/repro/resilience/retry_example.py"
    assert lint(snippet, path) == []


def test_lin104_does_not_apply_outside_resilience():
    snippet = """
    import time

    def stamp():
        return time.time()
    """
    assert lint(snippet, "src/repro/tools/example.py") == []


# -- LIN105: raw primitives only via the provider ---------------------------


def test_lin105_catches_raw_primitive_import():
    snippet = """
    from repro.primitives.rsa import rsa_sign
    """
    assert "LIN105" in rule_ids(lint(snippet))


def test_lin105_catches_from_package_import():
    snippet = """
    from repro.primitives import aes
    """
    assert "LIN105" in rule_ids(lint(snippet))


def test_lin105_allows_provider_and_utilities():
    snippet = """
    from repro.primitives.provider import get_provider
    from repro.primitives.encoding import b64encode
    from repro.primitives.hmac import constant_time_equal
    from repro.primitives.keys import RSAPublicKey
    """
    assert lint(snippet) == []


def test_lin105_exempts_provider_internals():
    snippet = """
    from repro.primitives.rsa import rsa_sign
    """
    assert lint(snippet, "src/repro/primitives/provider.py") == []


# -- LIN106: untrusted parse calls carry an explicit guard ------------------


def test_lin106_catches_unguarded_parse_on_untrusted_path():
    snippet = """
    from repro.xmlcore import parse_element

    def handle(payload):
        return parse_element(payload)
    """
    findings = lint(snippet, "src/repro/network/example.py")
    assert rule_ids(findings) == {"LIN106"}
    (finding,) = findings
    assert "guard=" in finding.message
    assert finding.line > 0


@pytest.mark.parametrize("path", [
    "src/repro/xkms/example.py",
    "src/repro/xmlenc/example.py",
    "src/repro/player/example.py",
    "src/repro/core/package.py",
    "src/repro/core/playback_pipeline.py",
    "src/repro/disc/image.py",
    "src/repro/perf/batch.py",
])
def test_lin106_covers_every_untrusted_surface(path):
    snippet = """
    from repro.xmlcore import parse_document

    def handle(payload):
        return parse_document(payload)
    """
    assert "LIN106" in rule_ids(lint(snippet, path))


def test_lin106_clean_with_explicit_guard():
    snippet = """
    from repro.resilience.limits import ResourceGuard
    from repro.xmlcore import parse_element

    def handle(payload, guard):
        parse_element(payload, guard=guard)
        return parse_element(payload, guard=ResourceGuard.default())
    """
    assert lint(snippet, "src/repro/network/example.py") == []


def test_lin106_does_not_apply_to_trusted_paths():
    snippet = """
    from repro.xmlcore import parse_element

    def build():
        return parse_element("<layout/>")
    """
    assert lint(snippet, "src/repro/disc/manifest.py") == []
    assert lint(snippet, "src/repro/dsig/signer.py") == []


# -- LIN107: only typed errors escape untrusted-input modules ---------------


def test_lin107_catches_builtin_raise_on_untrusted_path():
    snippet = """
    def handle(payload):
        if not payload:
            raise ValueError("empty request payload")
        return payload
    """
    findings = lint(snippet, "src/repro/xkms/example.py")
    assert rule_ids(findings) == {"LIN107"}
    (finding,) = findings
    assert "ValueError" in finding.message


def test_lin107_clean_with_typed_error():
    snippet = """
    from repro.errors import XKMSError

    def handle(payload):
        if not payload:
            raise XKMSError("empty request payload")
        return payload
    """
    assert lint(snippet, "src/repro/xkms/example.py") == []


def test_lin107_allows_internally_converted_raises():
    # The timing-parser idiom: a helper raises ValueError inside a try
    # whose handler converts it to the typed error.
    snippet = """
    from repro.errors import MarkupError

    def parse_clock(value):
        try:
            if ":" not in value:
                raise ValueError("not a clock value")
            return value.split(":")
        except ValueError as exc:
            raise MarkupError(f"bad clock value: {exc}") from exc
    """
    assert lint(snippet, "src/repro/markup/example.py") == []


def test_lin107_allows_bare_reraise_and_stub_idiom():
    snippet = """
    from repro.errors import NetworkError

    def relay(frame):
        try:
            return frame.decode()
        except NetworkError:
            raise

    def protocol_hook(self):
        raise NotImplementedError
    """
    assert lint(snippet, "src/repro/network/example.py") == []


def test_lin107_does_not_apply_to_trusted_paths():
    snippet = """
    def check(mode):
        if mode not in ("a", "b"):
            raise ValueError(f"unknown mode {mode!r}")
    """
    assert lint(snippet, "src/repro/dsig/signer.py") == []


# -- LIN108: persistence modules never bare-open for writing ----------------


TORN_WRITE_VIOLATION = """
def save(path, payload):
    with open(path, "wb") as handle:
        handle.write(payload)
"""


def test_lin108_catches_bare_write_open_in_persistence_modules():
    for path in ("src/repro/player/localstorage.py",
                 "src/repro/certs/store.py",
                 "src/repro/xkms/server.py",
                 "src/repro/resilience/degradation.py"):
        findings = lint(TORN_WRITE_VIOLATION, path)
        assert "LIN108" in rule_ids(findings), path


def test_lin108_catches_every_write_mode():
    for mode in ("w", "a", "x", "r+", "wb", "ab", "w+b"):
        snippet = TORN_WRITE_VIOLATION.replace('"wb"', f'"{mode}"')
        findings = lint(snippet, "src/repro/certs/store.py")
        assert "LIN108" in rule_ids(findings), mode


def test_lin108_catches_mode_keyword():
    snippet = """
    def save(path, payload):
        with open(path, mode="w") as handle:
            handle.write(payload)
    """
    findings = lint(snippet, "src/repro/player/localstorage.py")
    assert "LIN108" in rule_ids(findings)


def test_lin108_ignores_read_opens():
    snippet = """
    def load(path):
        with open(path, "rb") as handle:
            return handle.read()

    def load_default(path):
        with open(path) as handle:
            return handle.read()
    """
    assert lint(snippet, "src/repro/player/localstorage.py") == []


def test_lin108_exempts_the_durable_layer_itself():
    assert lint(TORN_WRITE_VIOLATION,
                "src/repro/resilience/durable.py") == []
    assert lint(TORN_WRITE_VIOLATION,
                "src/repro/resilience/crashfs.py") == []


def test_lin108_does_not_apply_outside_persistence_modules():
    assert lint(TORN_WRITE_VIOLATION, "src/repro/tools/cli.py") == []
    assert lint(TORN_WRITE_VIOLATION, "src/repro/dsig/signer.py") == []


def test_lin108_skips_dynamic_modes():
    """Only constant string modes are judged — a variable mode can't
    be proven to write, and a false positive here would push authors
    toward silencing the rule wholesale."""
    snippet = """
    def save(path, payload, mode):
        with open(path, mode) as handle:
            handle.write(payload)
    """
    assert lint(snippet, "src/repro/certs/store.py") == []


def test_real_persistence_modules_pass_lin108():
    for name in ("player/localstorage.py", "certs/store.py",
                 "xkms/server.py"):
        module = os.path.join(REPO_ROOT, "src", "repro", *name.split("/"))
        with open(module, encoding="utf-8") as handle:
            findings = lint_source(handle.read(), module)
        assert [f for f in findings if f.rule_id == "LIN108"] == [], name


# -- clean-repo run ----------------------------------------------------------


def test_repo_lints_clean_modulo_baseline():
    """`repro lint src` on this repo: zero findings after the baseline."""
    src = os.path.join(REPO_ROOT, "src")
    baseline_path = os.path.join(REPO_ROOT, "analysis-baseline.json")
    result = lint_paths([src])
    kept = Baseline.load(baseline_path).apply(result)
    assert kept.findings == [], [f.render() for f in kept.findings]
    assert kept.scanned > 100


def test_baseline_file_is_wellformed():
    with open(os.path.join(REPO_ROOT, "analysis-baseline.json"),
              encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["version"] == 1
    assert all("fingerprint" in entry for entry in payload["findings"])


def test_syntax_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    result = lint_paths([str(bad)])
    assert len(result.findings) == 1
    assert "does not parse" in result.findings[0].message
