"""Incremental-cache behaviour: module-level hash keys, run-level
memoization, and version invalidation."""

import json
import os

from repro.analysis.taint import analyze_paths
from repro.analysis.taintcache import TaintCache, content_hash

VIOLATION = """\
from repro.xmlcore.parser import parse_element

def handle(client, interp):
    interp.run(parse_element(client.fetch("x")))
"""

CLEAN = """\
def handle(payload):
    return len(payload)
"""


def write_tree(root, body=VIOLATION):
    pkg = root / "untrusted"
    pkg.mkdir(exist_ok=True)
    target = pkg / "example.py"
    target.write_text(body)
    (pkg / "other.py").write_text(CLEAN)
    return str(pkg), str(target)


def test_cold_then_warm_run_is_memoized(tmp_path):
    pkg, _ = write_tree(tmp_path)
    cache_path = str(tmp_path / "cache.json")

    cold_cache = TaintCache(cache_path)
    cold = analyze_paths([pkg], cache=cold_cache)
    assert {f.rule_id for f in cold.findings} == {"TNT201"}
    assert cold_cache.run_hit is False
    assert os.path.exists(cache_path)

    warm_cache = TaintCache(cache_path)
    warm = analyze_paths([pkg], cache=warm_cache)
    assert warm_cache.run_hit is True
    assert [f.fingerprint for f in warm.findings] == \
        [f.fingerprint for f in cold.findings]
    assert warm.scanned == cold.scanned


def test_edited_module_misses_and_reruns(tmp_path):
    pkg, target = write_tree(tmp_path)
    cache_path = str(tmp_path / "cache.json")
    analyze_paths([pkg], cache=TaintCache(cache_path))

    with open(target, "w") as handle:
        handle.write(CLEAN)
    cache = TaintCache(cache_path)
    result = analyze_paths([pkg], cache=cache)
    assert cache.run_hit is False
    assert cache.hits == 1 and cache.misses == 1  # other.py unchanged
    assert result.findings == []


def test_version_bump_invalidates_cache(tmp_path):
    pkg, _ = write_tree(tmp_path)
    cache_path = str(tmp_path / "cache.json")
    analyze_paths([pkg], cache=TaintCache(cache_path))

    with open(cache_path) as handle:
        payload = json.load(handle)
    payload["spec_version"] = -1
    with open(cache_path, "w") as handle:
        json.dump(payload, handle)

    cache = TaintCache(cache_path)
    analyze_paths([pkg], cache=cache)
    assert cache.run_hit is False
    assert cache.misses == 2


def test_corrupt_cache_file_is_ignored(tmp_path):
    pkg, _ = write_tree(tmp_path)
    cache_path = str(tmp_path / "cache.json")
    with open(cache_path, "w") as handle:
        handle.write("{not json")
    result = analyze_paths([pkg], cache=TaintCache(cache_path))
    assert {f.rule_id for f in result.findings} == {"TNT201"}


def test_run_history_is_bounded(tmp_path):
    pkg, target = write_tree(tmp_path)
    cache_path = str(tmp_path / "cache.json")
    for index in range(12):
        with open(target, "w") as handle:
            handle.write(CLEAN + f"\nMARKER = {index}\n")
        analyze_paths([pkg], cache=TaintCache(cache_path))
    with open(cache_path) as handle:
        payload = json.load(handle)
    assert len(payload["runs"]) <= 8


def test_content_hash_is_stable():
    assert content_hash(b"abc") == content_hash(b"abc")
    assert content_hash(b"abc") != content_hash(b"abd")
