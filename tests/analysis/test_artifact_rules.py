"""Every artifact rule fires on its fixture — and only there."""

import os

import pytest

from repro.analysis import ArtifactAuditor, Severity, audit_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def rule_ids(result) -> set:
    return {finding.rule_id for finding in result.findings}


# One failing fixture per artifact rule: (target, rules that must fire).
CASES = [
    ("wrapped_duplicate_id.xml", {"SEC001"}),
    ("position_unbound.xml", {"SEC002"}),
    ("enveloped_anomaly.xml", {"SEC003"}),
    ("dangling_reference.xml", {"SEC004"}),
    ("weak_algorithms.xml", {"SEC010", "SEC011"}),
    ("short_rsa_key.xml", {"SEC012"}),
    ("weak_cipher.xml", {"SEC013", "SEC014"}),
    ("unsigned_script.xml", {"SEC020"}),
    ("encrypted_then_signed.xml", {"SEC022"}),
    ("permissions_mismatch", {"SEC030"}),
    ("unsigned_cluster_disc", {"SEC040"}),
    ("broken_disc", {"SEC041"}),
]


@pytest.mark.parametrize("name,expected",
                         CASES, ids=[c[0] for c in CASES])
def test_fixture_triggers_rule(name, expected):
    result = audit_paths([fixture(name)])
    assert expected <= rule_ids(result), (
        f"{name}: wanted {expected}, got {rule_ids(result)}"
    )


def test_clean_fixture_has_zero_findings():
    result = audit_paths([fixture("clean.xml")])
    assert result.findings == []
    assert result.scanned == 1
    assert result.coverage, "a signed document must produce a coverage map"


def test_examples_corpus_is_clean():
    """The committed quickstart artifacts must audit clean (CI gate)."""
    artifacts = os.path.join(REPO_ROOT, "examples", "artifacts")
    if not os.path.isdir(artifacts):
        pytest.skip("examples/artifacts not present")
    result = audit_paths([artifacts])
    assert result.findings == [], [f.render() for f in result.findings]
    assert result.scanned >= 2


def test_wrapping_fixture_severity_is_error():
    result = audit_paths([fixture("wrapped_duplicate_id.xml")])
    assert result.worst() is not None
    assert result.worst() >= Severity.ERROR
    assert result.exceeds(Severity.WARNING)


def test_clean_result_does_not_exceed_any_threshold():
    result = audit_paths([fixture("clean.xml")])
    assert not result.exceeds(Severity.INFO)


def test_coverage_map_names_target():
    result = audit_paths([fixture("clean.xml")])
    entry = result.coverage[0]
    refs = entry["references"]
    assert len(refs) == 1
    assert refs[0]["uri"] == ""
    assert refs[0]["elements"] > 0


def test_min_rsa_bits_is_tunable():
    lax = audit_paths([fixture("short_rsa_key.xml")], min_rsa_bits=512)
    assert "SEC012" not in rule_ids(lax)
    strict = audit_paths([fixture("short_rsa_key.xml")],
                         min_rsa_bits=4096)
    assert "SEC012" in rule_ids(strict)


def test_unparseable_artifact_is_a_finding(tmp_path):
    bad = tmp_path / "garbage.xml"
    bad.write_text("<unclosed>")
    result = audit_paths([str(bad)])
    assert rule_ids(result) == {"SEC041"}


def test_auditor_accumulates_across_documents():
    auditor = ArtifactAuditor()
    auditor.audit_path(fixture("weak_algorithms.xml"))
    auditor.audit_path(fixture("dangling_reference.xml"))
    result = auditor.finish()
    assert {"SEC004", "SEC010", "SEC011"} <= rule_ids(result)
    assert result.scanned == 2


def test_permission_grant_requires_matching_app_id(tmp_path):
    """A Permit for another app must not satisfy this app's claim."""
    src = fixture("permissions_mismatch")
    for name in ("permissions.xml", "policy.xml"):
        with open(os.path.join(src, name), encoding="utf-8") as handle:
            text = handle.read()
        if name == "policy.xml":
            text = text.replace("greedy-app", "some-other-app")
        (tmp_path / name).write_text(text)
    result = audit_paths([str(tmp_path)])
    findings = [f for f in result.findings if f.rule_id == "SEC030"]
    # Both claims now fail: network (wrong subject) and local-storage.
    assert len(findings) == 2
