"""Rule registry, findings model, baseline and reporters."""

import json

import pytest

from repro.analysis import (
    AnalysisResult, Baseline, Finding, Severity, all_rules,
    catalog_lines, get_rule, render_json, render_text, summary_line,
)
from repro.analysis.engine import register


def finding(rule_id="SEC001", location="a.xml", message="boom",
            severity=Severity.ERROR, line=0):
    return Finding(rule_id=rule_id, severity=severity,
                   location=location, message=message, line=line)


# -- registry ----------------------------------------------------------------


def test_registry_has_both_domains():
    artifact_ids = {r.rule_id for r in all_rules("artifact")}
    code_ids = {r.rule_id for r in all_rules("code")}
    assert {"SEC001", "SEC010", "SEC020", "SEC030",
            "SEC040"} <= artifact_ids
    assert {"LIN101", "LIN102", "LIN103", "LIN104",
            "LIN105"} <= code_ids
    assert not artifact_ids & code_ids


def test_rule_ids_are_stable_and_unique():
    everything = all_rules("artifact") + all_rules("code")
    ids = [r.rule_id for r in everything]
    assert len(ids) == len(set(ids))


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):
        register("SEC001", "imposter", Severity.INFO, "artifact", "x")


def test_unknown_domain_rejected():
    with pytest.raises(ValueError):
        register("ZZZ999", "nope", Severity.INFO, "martian", "x")


def test_rule_builds_finding_with_its_severity():
    rule = get_rule("SEC001")
    built = rule.finding("doc.xml", "two Ids")
    assert built.rule_id == "SEC001"
    assert built.severity == rule.severity
    assert built.location == "doc.xml"


def test_catalog_lists_every_rule():
    text = "\n".join(catalog_lines("artifact"))
    for rule in all_rules("artifact"):
        assert rule.rule_id in text


# -- severity / result -------------------------------------------------------


def test_severity_parse_and_order():
    assert Severity.parse("warning") is Severity.WARNING
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    with pytest.raises(ValueError):
        Severity.parse("catastrophic")


def test_exceeds_threshold_semantics():
    result = AnalysisResult(findings=[
        finding(severity=Severity.WARNING),
    ])
    assert result.exceeds(Severity.INFO)
    assert result.exceeds(Severity.WARNING)
    assert not result.exceeds(Severity.ERROR)
    assert not AnalysisResult().exceeds(Severity.INFO)


def test_fingerprint_ignores_line_numbers():
    a = finding(line=10)
    b = finding(line=99)
    assert a.fingerprint == b.fingerprint
    assert finding(message="other").fingerprint != a.fingerprint


# -- baseline ----------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    path = str(tmp_path / "baseline.json")
    known = finding()
    Baseline().save(path, [known])
    loaded = Baseline.load(path)
    result = AnalysisResult(findings=[known, finding(message="new")])
    loaded.apply(result)
    assert [f.message for f in result.findings] == ["new"]
    assert [f.message for f in result.suppressed] == ["boom"]


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError):
        Baseline.load(str(path))


# -- reporters ---------------------------------------------------------------


def test_text_report_mentions_rule_and_location():
    result = AnalysisResult(findings=[finding()], scanned=3)
    text = render_text(result)
    assert "SEC001" in text
    assert "a.xml" in text
    assert "3 target(s)" in text


def test_json_report_is_machine_readable():
    result = AnalysisResult(findings=[finding()], scanned=1)
    payload = json.loads(render_json(result))
    assert payload["findings"][0]["rule_id"] == "SEC001"
    assert payload["scanned"] == 1
    assert payload["worst"] == "ERROR"


def test_summary_line_counts_suppressed():
    result = AnalysisResult(suppressed=[finding()], scanned=2)
    line = summary_line(result)
    assert "no findings" in line
    assert "1 baseline-suppressed" in line
