"""Program-model unit tests: module naming, IR extraction, call
resolution (including package re-exports and function-local imports)."""

import textwrap

from repro.analysis.callgraph import (
    Program, extract_module, module_name_for_path,
)


def module(source: str, path: str) -> dict:
    return extract_module(textwrap.dedent(source), path)


def test_module_name_for_src_layout_paths():
    assert module_name_for_path("src/repro/dsig/verifier.py") == \
        "repro.dsig.verifier"
    assert module_name_for_path("src/repro/xkms/__init__.py") == \
        "repro.xkms"


def test_extract_module_collects_functions_and_methods():
    info = module("""
        def helper(x):
            return x

        class Server:
            def handle(self, request):
                return helper(request)
    """, "src/repro/xkms/server.py")
    names = {f["qname"] for f in info["functions"]}
    assert "repro.xkms.server:helper" in names
    assert "repro.xkms.server:Server.handle" in names


def test_function_local_imports_are_visible():
    info = module("""
        def late(data):
            from repro.core.playback_pipeline import PlaybackPipeline
            return PlaybackPipeline()
    """, "src/repro/tools/cli.py")
    assert info["imports"]["PlaybackPipeline"] == \
        "repro.core.playback_pipeline.PlaybackPipeline"


def test_resolution_chases_package_reexports():
    program = Program([
        module("""
            from repro.xmlcore.parser import parse_element
        """, "src/repro/xmlcore/__init__.py"),
        module("""
            def parse_element(text):
                return text
        """, "src/repro/xmlcore/parser.py"),
        module("""
            from repro.xmlcore import parse_element

            def go(data):
                return parse_element(data)
        """, "src/repro/network/client.py"),
    ])
    assert program.resolve("repro.network.client", "parse_element") == \
        "repro.xmlcore.parser:parse_element"


def test_resolution_uses_tracked_variable_types():
    program = Program([
        module("""
            class Verifier:
                def verify(self, doc):
                    return doc
        """, "src/repro/dsig/verifier.py"),
        module("""
            from repro.dsig.verifier import Verifier

            def go(doc):
                v = Verifier()
                return v.verify(doc)
        """, "src/repro/core/example.py"),
    ])
    assert program.resolve(
        "repro.core.example", "v.verify",
        var_types={"v": ("repro.dsig.verifier", "Verifier")},
    ) == "repro.dsig.verifier:Verifier.verify"


def test_dataclass_plain_repr_fields_recorded():
    info = module("""
        from dataclasses import dataclass, field

        @dataclass
        class Key:
            n: int
            d: int
            data: bytes = field(repr=False)
    """, "src/repro/primitives/example.py")
    cls = info["classes"]["Key"]
    assert cls["dataclass"] is True
    fields = {name for name, _ in cls["plain_repr_fields"]}
    assert fields == {"n", "d"}


def test_class_defining_repr_is_marked():
    info = module("""
        from dataclasses import dataclass

        @dataclass
        class Key:
            d: int

            def __repr__(self):
                return "Key(<redacted>)"
    """, "src/repro/primitives/example.py")
    assert info["classes"]["Key"]["defines_repr"] is True


def test_ir_is_json_serializable():
    import json

    info = module("""
        class C:
            def m(self, x, cache):
                y = [x, f"v={x}"]
                cache[x] = y
                try:
                    return self.helper(y)
                except ValueError as exc:
                    raise RuntimeError(f"bad {exc}")
    """, "src/repro/network/roundtrip.py")
    assert json.loads(json.dumps(info)) == info
