"""The sharded async trust service and its deadline-first client:
key-name routing, generation-keyed validation caching, structured
Sender/Receiver faults, busy answers as typed overload errors, and the
client-side circuit breaker."""

import asyncio

import pytest

from repro.errors import ServiceOverloadError, TimeoutError, XKMSError
from repro.network import (
    AsyncChannel, AsyncServiceClient, AsyncServiceServer,
)
from repro.resilience import (
    AIMDLimiter, CircuitBreaker, Deadline, OverloadShield, RetryPolicy,
    VirtualClock,
)
from repro.network.server import RequestContext
from repro.primitives.rsa import generate_keypair
from repro.xkms import (
    RESULT_RECEIVER_FAULT, RESULT_SENDER_FAULT, AsyncTrustService,
    AsyncXKMSClient, MuxXKMSTransport, XKMSResult, busy_fault_payload,
)

SECRET = b"registration-secret"


@pytest.fixture(scope="module")
def keypair():
    from repro.primitives.random import DeterministicRandomSource
    return generate_keypair(1024, DeterministicRandomSource(b"aio-xkms"))


def make_stack(clock, *, shards=3, breaker=None, retry=None,
               shield=None, cache_capacity=256):
    service = AsyncTrustService(
        shards, clock=clock, registration_secrets={"": SECRET},
        cache_capacity=cache_capacity)
    channel = AsyncChannel(clock=clock)
    server = AsyncServiceServer(
        service.handle_request, clock=clock, shield=shield,
        fault_encoder=busy_fault_payload)
    mux = AsyncServiceClient(channel)
    client = AsyncXKMSClient(
        transport=MuxXKMSTransport(mux, tenant="player"), clock=clock,
        retry_policy=retry, circuit_breaker=breaker)
    return service, channel, server, mux, client


async def shutdown(channel, mux, serving):
    await mux.aclose()
    channel.close()
    await asyncio.gather(serving, return_exceptions=True)


def test_end_to_end_register_locate_validate_revoke(keypair):
    clock = VirtualClock()
    service, channel, server, mux, client = make_stack(clock)
    key = keypair.public_key()

    async def main():
        serving = asyncio.ensure_future(server.serve(channel))
        register = await client.register("studio-1", key, SECRET)
        located = await client.locate("studio-1")
        valid_before = await client.validate("studio-1", key)
        await client.revoke("studio-1", SECRET)
        valid_after = await client.validate("studio-1", key)
        await shutdown(channel, mux, serving)
        return register.success, located, valid_before, valid_after

    success, located, valid_before, valid_after = clock.run(main())
    assert success
    assert located == key
    assert valid_before is True
    assert valid_after is False


def test_bindings_route_to_owning_shard(keypair):
    clock = VirtualClock()
    service = AsyncTrustService(
        4, clock=clock, registration_secrets={"": SECRET})
    key = keypair.public_key()
    names = [f"key-{i}" for i in range(16)]
    for name in names:
        service.register_binding(name, key)
    for name in names:
        index = service.shard_index(name)
        assert service.shards[index].binding(name) is not None
        for other, shard in enumerate(service.shards):
            if other != index:
                assert shard.binding(name) is None
    # All four shards got some share of 16 names.
    assert {service.shard_index(name) for name in names} == {0, 1, 2, 3}


def test_validate_cache_hit_and_generation_invalidation(keypair):
    clock = VirtualClock()
    service, channel, server, mux, client = make_stack(clock)
    key = keypair.public_key()

    async def main():
        serving = asyncio.ensure_future(server.serve(channel))
        await client.register("studio-1", key, SECRET)
        first = await client.validate("studio-1", key)
        second = await client.validate("studio-1", key)
        hits_before_revoke = service.cache_stats.hits
        # Revocation bumps the shard generation: the cached Valid
        # answer is orphaned, never served.
        await client.revoke("studio-1", SECRET)
        after = await client.validate("studio-1", key)
        await shutdown(channel, mux, serving)
        return first, second, hits_before_revoke, after

    first, second, hits, after = clock.run(main())
    assert first is True and second is True
    assert hits == 1
    assert after is False


def test_cached_answer_echoes_fresh_request_id(keypair):
    clock = VirtualClock()
    service = AsyncTrustService(
        1, clock=clock, registration_secrets={"": SECRET})
    service.register_binding("studio-1", keypair.public_key())
    from repro.xkms.messages import KeyBinding, XKMSRequest

    def validate_request():
        return XKMSRequest(
            "Validate", key_name="studio-1",
            binding=KeyBinding("studio-1", keypair.public_key()))

    context = RequestContext(
        "player", Deadline.none(clock), stream_id=1)

    async def main():
        one = XKMSResult.from_xml(
            (await service.handle_request(
                validate_request().to_xml().encode("utf-8"),
                context)).decode("utf-8"))
        request = validate_request()
        two = XKMSResult.from_xml(
            (await service.handle_request(
                request.to_xml().encode("utf-8"),
                context)).decode("utf-8"))
        return one, two, request

    one, two, request = clock.run(main())
    assert service.cache_stats.hits == 1
    # The memoized answer is re-minted for *this* request, not replayed
    # with the original correlation id.
    assert two.request_id == request.request_id
    assert two.request_id != one.request_id


def test_malformed_request_is_a_sender_fault(keypair):
    clock = VirtualClock()
    service = AsyncTrustService(2, clock=clock)
    context = RequestContext(
        "player", Deadline.none(clock), stream_id=1)

    async def main():
        return await service.handle_request(
            b"<not-xkms||garbage", context)

    result = XKMSResult.from_xml(clock.run(main()).decode("utf-8"))
    assert result.result_major == RESULT_SENDER_FAULT
    assert any(entry.startswith("malformed-request:")
               for entry in service.audit_log)


def test_expired_deadline_stops_work_at_checkpoint(keypair):
    clock = VirtualClock()
    service = AsyncTrustService(
        1, clock=clock, registration_secrets={"": SECRET})
    service.register_binding("studio-1", keypair.public_key())
    from repro.xkms.messages import XKMSRequest

    async def main():
        deadline = Deadline.after(clock, 1.0)
        context = RequestContext("player", deadline, stream_id=1)
        clock.advance(2.0)
        payload = XKMSRequest(
            "Locate", key_name="studio-1").to_xml().encode("utf-8")
        with pytest.raises(TimeoutError) as excinfo:
            await service.handle_request(payload, context)
        return str(excinfo.value)

    message = clock.run(main())
    assert "xkms route" in message


def test_busy_fault_surfaces_as_typed_overload(keypair):
    clock = VirtualClock()
    shield = OverloadShield(
        clock, limiter=AIMDLimiter(initial_limit=1.0),
        component="xkms")
    service, channel, server, mux, client = make_stack(
        clock, shield=shield)
    service.register_binding("studio-1", keypair.public_key())

    async def slow_handler(payload, context):
        await clock.asleep(10.0)
        return await service.handle_request(payload, context)

    server.handler = slow_handler

    async def main():
        serving = asyncio.ensure_future(server.serve(channel))
        hog = asyncio.ensure_future(client.locate("studio-1"))
        await clock.asleep(1.0)
        with pytest.raises(ServiceOverloadError) as excinfo:
            await client.locate("studio-1")
        await hog
        await shutdown(channel, mux, serving)
        return excinfo.value

    error = clock.run(main())
    assert error.reason == "busy"
    assert error.tenant == "player"
    assert server.stats.sheds_answered == 1


def test_receiver_fault_payload_is_wellformed_xkms():
    payload = busy_fault_payload(
        ServiceOverloadError("busy", reason="limiter"), frame=None)
    result = XKMSResult.from_xml(payload.decode("utf-8"))
    assert result.result_major == RESULT_RECEIVER_FAULT


def test_breaker_trips_after_repeated_busy_answers(keypair):
    clock = VirtualClock()
    shield = OverloadShield(
        clock, limiter=AIMDLimiter(initial_limit=1.0, min_limit=1.0),
        component="xkms")
    breaker = CircuitBreaker(failure_threshold=2, cooldown=30.0,
                             clock=clock)
    service, channel, server, mux, client = make_stack(
        clock, shield=shield, breaker=breaker)
    service.register_binding("studio-1", keypair.public_key())

    async def never_done(payload, context):
        await clock.asleep(1e6)
        return b""

    server.handler = never_done

    async def main():
        serving = asyncio.ensure_future(server.serve(channel))
        hog = asyncio.ensure_future(
            mux.call(b"<x/>", deadline=Deadline.none(clock)))
        await clock.asleep(1.0)
        for _ in range(2):
            with pytest.raises(ServiceOverloadError):
                await client.locate("studio-1")
        # The breaker is open now: the next call fails fast without
        # touching the wire.
        calls_before = mux.stats.calls
        from repro.errors import CircuitOpenError
        with pytest.raises(CircuitOpenError):
            await client.locate("studio-1")
        hog.cancel()
        await shutdown(channel, mux, serving)
        return calls_before

    calls_before = clock.run(main())
    assert breaker.state == "open"
    assert mux.stats.calls == calls_before


def test_retry_policy_rides_out_a_transient_busy(keypair):
    clock = VirtualClock()
    shield = OverloadShield(
        clock, limiter=AIMDLimiter(initial_limit=1.0),
        component="xkms")
    retry = RetryPolicy(max_attempts=3, base_delay=2.0, jitter=0.0,
                        clock=clock)
    service, channel, server, mux, client = make_stack(
        clock, shield=shield, retry=retry)
    service.register_binding("studio-1", keypair.public_key())

    async def main():
        serving = asyncio.ensure_future(server.serve(channel))
        hog = asyncio.ensure_future(
            mux.call(b"hog", deadline=Deadline.none(clock)))

        async def hog_handler(payload, context):
            if payload == b"hog":
                await clock.asleep(1.5)
                return b"hogged"
            return await service.handle_request(payload, context)

        server.handler = hog_handler
        await clock.asleep(0.5)
        # First attempt sheds (the hog holds the only slot); the 2s
        # backoff outlives the hog, so the retry succeeds.
        key = await client.locate("studio-1", timeout_s=30.0)
        await hog
        await shutdown(channel, mux, serving)
        return key

    assert clock.run(main()) == keypair.public_key()
    assert server.stats.sheds_answered == 1
    assert server.stats.responses >= 1


def test_attempt_timeout_retries_through_a_silent_drop(keypair):
    """A dropped request frame is silent — without a per-attempt
    budget the await would block until the *call* deadline, making
    retry useless against loss.  With ``attempt_timeout`` set the
    first attempt gives up early and the retry lands."""
    from repro.resilience import DropFault, FaultSchedule

    clock = VirtualClock()
    retry = RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0,
                        attempt_timeout=1.0, clock=clock)
    service = AsyncTrustService(
        1, clock=clock, registration_secrets={"": SECRET})
    service.register_binding("studio-1", keypair.public_key())
    channel = AsyncChannel(
        [DropFault(schedule=FaultSchedule.first(1))], clock=clock)
    server = AsyncServiceServer(
        service.handle_request, clock=clock,
        fault_encoder=busy_fault_payload)
    mux = AsyncServiceClient(channel)
    client = AsyncXKMSClient(
        transport=MuxXKMSTransport(mux, tenant="player"), clock=clock,
        retry_policy=retry, default_timeout_s=30.0)

    async def main():
        serving = asyncio.ensure_future(server.serve(channel))
        key = await client.locate("studio-1")
        await shutdown(channel, mux, serving)
        return key

    assert clock.run(main()) == keypair.public_key()
    assert channel.dropped == 1
    # Attempt 1 timed out at 1.0s, backed off 0.5s, attempt 2 landed —
    # nowhere near the 30s call deadline.
    assert 1.5 <= clock.now() < 3.0


def test_unusable_result_xml_is_typed_xkms_error(keypair):
    clock = VirtualClock()

    async def junk_transport(request_xml, deadline):
        return "<<<not xml"

    client = AsyncXKMSClient(transport=junk_transport, clock=clock)

    async def main():
        with pytest.raises(XKMSError) as excinfo:
            await client.locate("studio-1")
        return str(excinfo.value)

    assert "unusable" in clock.run(main())


def test_async_transfer_cancellation_propagates_and_releases_probe():
    """The breaker path around the async wire bare-raises on
    cancellation: the probe slot is released (abandon_probe) and the
    CancelledError is NOT recorded as a service failure."""
    import asyncio

    from repro.resilience.retry import CircuitBreaker

    clock = VirtualClock()

    class CountingBreaker(CircuitBreaker):
        def __init__(self):
            super().__init__(clock=clock)
            self.abandoned = 0
            self.failures_recorded = 0

        def abandon_probe(self):
            self.abandoned += 1
            super().abandon_probe()

        def record_failure(self):
            self.failures_recorded += 1
            super().record_failure()

    async def stuck_transport(request_xml, deadline):
        await clock.asleep(1e6)
        return request_xml

    breaker = CountingBreaker()
    client = AsyncXKMSClient(
        transport=stuck_transport, clock=clock,
        circuit_breaker=breaker,
    )

    async def main():
        transfer = asyncio.ensure_future(client._transfer(
            "<x/>", "locate", client.deadline(100.0)))
        await clock.asleep(1.0)
        assert not transfer.done()
        transfer.cancel()
        await asyncio.gather(transfer, return_exceptions=True)
        return transfer

    transfer = clock.run(main())
    assert transfer.cancelled()
    assert breaker.abandoned == 1
    assert breaker.failures_recorded == 0
