"""XKMS registration state on the durable backend: registrations and
revocations survive power cycles; tampered flash fails typed."""

import pytest

from repro.certs.authority import CertificateAuthority
from repro.errors import DurableStateError
from repro.primitives.random import DeterministicRandomSource
from repro.resilience.crashfs import CrashableFilesystem
from repro.resilience.durable import DurableStore
from repro.xkms.messages import STATUS_INVALID, STATUS_VALID
from repro.xkms.server import TrustServer

DIR = "/flash/xkms"
SECRET = b"registration-shared-secret"


@pytest.fixture(scope="module")
def public_key():
    root = CertificateAuthority.create_root(
        "CN=Durable XKMS Test", key_bits=512,
        rng=DeterministicRandomSource(b"xkms-durable-test"),
    )
    return root.certificate.public_key


def make_server(fs, **kwargs):
    server = TrustServer(registration_secrets={"": SECRET})
    server.attach_durable(DurableStore(DIR, fs=fs, **kwargs))
    return server


def test_registration_survives_reopen(public_key):
    fs = CrashableFilesystem(seed=0)
    make_server(fs).register_binding("disc-signing", public_key)
    reopened = make_server(fs)
    binding = reopened.binding("disc-signing")
    assert binding is not None
    assert binding.status == STATUS_VALID
    assert binding.key.n == public_key.n


def test_revocation_survives_reopen(public_key):
    fs = CrashableFilesystem(seed=0)
    server = make_server(fs)
    server.register_binding("disc-signing", public_key)
    server.revoke_binding("disc-signing")
    reopened = make_server(fs)
    assert reopened.binding("disc-signing").status == STATUS_INVALID


def test_rekey_after_revocation_survives_reopen(public_key):
    fs = CrashableFilesystem(seed=0)
    server = make_server(fs)
    server.register_binding("disc-signing", public_key)
    server.revoke_binding("disc-signing")
    server.register_binding("disc-signing", public_key)
    reopened = make_server(fs)
    assert reopened.binding("disc-signing").status == STATUS_VALID


def test_compaction_preserves_bindings(public_key):
    fs = CrashableFilesystem(seed=0)
    server = make_server(fs)
    server.register_binding("disc-signing", public_key)
    server._durable.compact()
    server.register_binding("app-update", public_key)
    reopened = make_server(fs)
    assert reopened.binding("disc-signing") is not None
    assert reopened.binding("app-update") is not None


def test_attach_records_the_replay_in_the_audit_log(public_key):
    fs = CrashableFilesystem(seed=0)
    make_server(fs).register_binding("disc-signing", public_key)
    reopened = make_server(fs)
    assert any(entry.startswith("durable-attach:")
               for entry in reopened.audit_log)


def test_tampered_persisted_binding_fails_typed(public_key):
    fs = CrashableFilesystem(seed=0)
    make_server(fs).register_binding("disc-signing", public_key)
    # Corrupt the persisted XML *through the store*, so the journal
    # checksums are valid but the payload no longer parses — the
    # replay layer has to catch this, not the journal.
    store = DurableStore(DIR, fs=fs)
    store.set(TrustServer.DURABLE_NAMESPACE, "disc-signing",
              b"<not a key binding>")
    store.commit()
    server = TrustServer(registration_secrets={"": SECRET})
    with pytest.raises(DurableStateError) as excinfo:
        server.attach_durable(DurableStore(DIR, fs=fs))
    assert excinfo.value.kind == "tamper"
