"""XKMS messages, trust server and client."""

import pytest

from repro.errors import XKMSError
from repro.primitives.rsa import generate_keypair
from repro.xkms import (
    KeyBinding, RESULT_NO_MATCH, RESULT_REFUSED, RESULT_SUCCESS,
    STATUS_VALID, TrustServer, XKMSClient, XKMSRequest,
    XKMSResult, authentication_proof,
)

SECRET = b"registration-secret"


@pytest.fixture(scope="module")
def keypair():
    from repro.primitives.random import DeterministicRandomSource
    return generate_keypair(1024, DeterministicRandomSource(b"xkms-key"))


@pytest.fixture
def server():
    return TrustServer(registration_secrets={"": SECRET})


@pytest.fixture
def client(server):
    return XKMSClient(server.handle_xml)


def test_register_locate_validate(server, client, keypair):
    result = client.register("studio-1", keypair.public_key(), SECRET)
    assert result.result_major == RESULT_SUCCESS
    assert client.locate("studio-1") == keypair.public_key()
    assert client.validate("studio-1")
    assert client.validate("studio-1", keypair.public_key())


def test_locate_unknown(client):
    assert client.locate("ghost") is None


def test_register_wrong_secret_refused(server, client, keypair):
    result = client.register("studio-2", keypair.public_key(), b"wrong")
    assert result.result_major == RESULT_REFUSED
    assert client.locate("studio-2") is None


def test_revoke_flow(server, client, keypair):
    client.register("studio-3", keypair.public_key(), SECRET)
    assert client.validate("studio-3")
    result = client.revoke("studio-3", SECRET)
    assert result.result_major == RESULT_SUCCESS
    assert not client.validate("studio-3")
    # Locate still finds the binding; Validate reports it invalid.
    assert client.locate("studio-3") == keypair.public_key()


def test_revoke_needs_secret(server, client, keypair):
    client.register("studio-4", keypair.public_key(), SECRET)
    result = client.revoke("studio-4", b"wrong")
    assert result.result_major == RESULT_REFUSED
    assert client.validate("studio-4")


def test_validate_mismatched_key_reported_invalid(server, client, keypair,
                                                  rng):
    client.register("studio-5", keypair.public_key(), SECRET)
    other = generate_keypair(1024, rng)
    assert not client.validate("studio-5", other.public_key())


def test_prefix_scoped_secrets(keypair):
    server = TrustServer(registration_secrets={"org.contoso.": SECRET})
    client = XKMSClient(server.handle_xml)
    ok = client.register("org.contoso.key1", keypair.public_key(), SECRET)
    assert ok.result_major == RESULT_SUCCESS
    refused = client.register("org.evil.key1", keypair.public_key(),
                              SECRET)
    assert refused.result_major == RESULT_REFUSED


def test_audit_log(server, client, keypair):
    client.register("k", keypair.public_key(), SECRET)
    client.locate("k")
    client.validate("k")
    assert server.audit_log == ["Register:", "Locate:k", "Validate:k"]


def test_request_xml_roundtrip(keypair):
    request = XKMSRequest(
        "Register",
        binding=KeyBinding("name-1", keypair.public_key(),
                           use="encryption"),
        authentication=authentication_proof(SECRET, "name-1"),
    )
    again = XKMSRequest.from_xml(request.to_xml())
    assert again.operation == "Register"
    assert again.binding.key == keypair.public_key()
    assert again.binding.use == "encryption"
    assert again.authentication == request.authentication
    assert again.request_id == request.request_id


def test_result_xml_roundtrip(keypair):
    result = XKMSResult(
        "Locate", RESULT_SUCCESS,
        [KeyBinding("n", keypair.public_key(), STATUS_VALID)],
        request_id="req-9",
    )
    again = XKMSResult.from_xml(result.to_xml())
    assert again.success
    assert again.bindings[0].key == keypair.public_key()
    assert again.request_id == "req-9"


def test_result_id_mismatch_detected(server, keypair):
    def evil_transport(request_xml: str) -> str:
        # Answer with a response bound to a different request id
        # (a classic substitution attack on the key service).
        return XKMSResult("Locate", RESULT_NO_MATCH,
                          request_id="someone-elses").to_xml()

    client = XKMSClient(evil_transport)
    with pytest.raises(XKMSError, match="does not answer"):
        client.locate("any")


def test_result_missing_request_id_rejected():
    def evil_transport(request_xml: str) -> str:
        # A response carrying no request id at all must be refused just
        # like one bound to the wrong id — an empty id would otherwise
        # let any canned response satisfy any request.
        return XKMSResult("Locate", RESULT_NO_MATCH).to_xml()

    client = XKMSClient(evil_transport)
    with pytest.raises(XKMSError, match="does not answer"):
        client.locate("any")


def test_unknown_operation_rejected():
    with pytest.raises(XKMSError):
        XKMSRequest("Recover")


def test_server_used_as_dsig_key_locator(server, client, keypair, pki,
                                         manifest):
    """The §7 integration: verifier resolves KeyName through XKMS."""
    from repro.dsig import Signer, Verifier
    client.register("studio-signing-key", keypair.public_key(), SECRET)
    signer = Signer(keypair, key_name="studio-signing-key")
    signature = signer.sign_enveloped(manifest)
    verifier = Verifier(key_locator=client.locate)
    assert verifier.verify(signature).valid
