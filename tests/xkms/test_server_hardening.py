"""TrustServer.handle_xml returns structured faults, never tracebacks.

ISSUE 4 satellite: hostile request XML — malformed, oversized, deeply
nested — must come back as a parseable XKMS ``Sender``-fault result,
internal failures as a ``Receiver`` fault, and the client must wrap an
unusable *response* into a typed XKMSError.
"""

import pytest

from repro.certs import SigningIdentity
from repro.errors import XKMSError
from repro.primitives.random import DeterministicRandomSource
from repro.resilience import ResourceLimits
from repro.xkms import TrustServer, XKMSClient
from repro.xkms.messages import (
    RESULT_RECEIVER_FAULT, RESULT_SENDER_FAULT, RESULT_SUCCESS,
    XKMSRequest, XKMSResult,
)

SMALL = ResourceLimits.default().replace(max_element_depth=20,
                                         max_input_bytes=4096)

HOSTILE_PAYLOADS = [
    "complete garbage, not XML",
    "<unterminated",
    "<wrong-root/>",
    ("<a>" * 100) + ("</a>" * 100),                 # depth bomb
    "<LocateRequest>" + "x" * 8192 + "</LocateRequest>",  # oversized
]


@pytest.fixture()
def studio_key(pki):
    return SigningIdentity.create(
        "CN=Hardening Studio", pki.root,
        rng=DeterministicRandomSource(b"xkms-hardening"),
    ).key


@pytest.mark.parametrize("payload", HOSTILE_PAYLOADS)
def test_hostile_request_xml_yields_sender_fault(payload):
    server = TrustServer(limits=SMALL)
    try:
        response = server.handle_xml(payload)
    except BaseException as exc:  # pragma: no cover - the regression
        pytest.fail(f"handle_xml raised at a hostile peer: {exc!r}")
    result = XKMSResult.from_xml(response)   # structured, parseable
    assert result.result_major == RESULT_SENDER_FAULT
    assert not result.success
    assert server.audit_log[-1].startswith("malformed-request:")


def test_internal_failure_yields_receiver_fault(monkeypatch):
    server = TrustServer()

    def broken_locate(request):
        raise XKMSError("binding store corrupted")

    monkeypatch.setattr(server, "_locate", broken_locate)
    request = XKMSRequest("Locate", key_name="any-key")
    response = server.handle_xml(request.to_xml())
    result = XKMSResult.from_xml(response)
    assert result.result_major == RESULT_RECEIVER_FAULT
    assert result.request_id == request.request_id
    assert server.audit_log[-1].startswith("request-failed:")


def test_wellformed_requests_still_succeed(studio_key):
    server = TrustServer(limits=SMALL)
    server.register_binding("studio-key", studio_key.public_key())
    request = XKMSRequest("Locate", key_name="studio-key")
    result = XKMSResult.from_xml(server.handle_xml(request.to_xml()))
    assert result.result_major == RESULT_SUCCESS
    assert result.bindings[0].key_name == "studio-key"


def test_client_locate_survives_a_hostile_server(studio_key):
    """End to end: the responder answers garbage with a structured
    fault, which the client surfaces as a typed XKMSError."""
    server = TrustServer(limits=SMALL)
    server.register_binding("studio-key", studio_key.public_key())
    client = XKMSClient(server.handle_xml)
    assert client.locate("studio-key") is not None

    # A fault result is an XKMS-level failure, not a crash.
    evil = XKMSClient(lambda xml: TrustServer(limits=SMALL).handle_xml(
        "garbage"
    ))
    with pytest.raises(XKMSError):
        evil.locate("studio-key")


def test_client_wraps_unusable_response_into_xkms_error():
    client = XKMSClient(lambda xml: "<<< not xml >>>")
    with pytest.raises(XKMSError, match="unusable"):
        client.locate("any")


def test_client_refuses_resource_bomb_response():
    bomb = ("<a>" * 100) + ("</a>" * 100)
    client = XKMSClient(
        lambda xml: bomb,
        limits=ResourceLimits.default().replace(max_element_depth=20),
    )
    with pytest.raises(XKMSError, match="unusable"):
        client.locate("any")
