"""Overload model unit behaviour: Deadline propagation, per-tenant
admission (bulkhead + bounded queue), the AIMD limiter, and the
OverloadShield composition with degradation-log accounting."""

import asyncio

import pytest

from repro.errors import ServiceOverloadError, TimeoutError
from repro.resilience import (
    AdmissionController, AIMDLimiter, Deadline, DegradationLog,
    OverloadShield, SimulatedClock, TenantPolicy, VirtualClock,
)
from repro.resilience.degradation import REASON_OVERLOAD, REASON_TIMEOUT


# -- Deadline ---------------------------------------------------------------


def test_deadline_after_and_check():
    clock = SimulatedClock()
    deadline = Deadline.after(clock, 5.0)
    assert deadline.remaining() == 5.0
    assert not deadline.expired
    deadline.check("xkms validate")
    clock.advance(5.0)
    assert deadline.expired
    with pytest.raises(TimeoutError) as excinfo:
        deadline.check("xkms validate")
    assert "xkms validate" in str(excinfo.value)


def test_deadline_none_never_expires():
    clock = SimulatedClock()
    deadline = Deadline.none(clock)
    clock.advance(1e9)
    assert not deadline.expired
    deadline.check()


# -- AdmissionController ----------------------------------------------------


def test_bulkhead_admits_up_to_max_concurrent():
    clock = VirtualClock()
    admission = AdmissionController(
        clock, TenantPolicy(max_concurrent=2, max_queued=1))

    async def main():
        deadline = Deadline.after(clock, 10.0)
        await admission.admit("player", deadline)
        await admission.admit("player", deadline)
        return admission.active("player")

    assert clock.run(main()) == 2
    assert admission.stats.admitted == 2
    assert admission.stats.queued == 0


def test_queue_full_sheds_typed():
    clock = VirtualClock()
    admission = AdmissionController(
        clock, TenantPolicy(max_concurrent=1, max_queued=0))

    async def main():
        deadline = Deadline.after(clock, 10.0)
        await admission.admit("player", deadline)
        with pytest.raises(ServiceOverloadError) as excinfo:
            await admission.admit("player", deadline)
        return excinfo.value

    error = clock.run(main())
    assert error.reason == "queue-full"
    assert error.tenant == "player"
    assert admission.stats.shed_queue_full == 1


def test_release_hands_slot_to_first_waiter_in_fifo_order():
    clock = VirtualClock()
    admission = AdmissionController(
        clock, TenantPolicy(max_concurrent=1, max_queued=4))
    order = []

    async def worker(name):
        await admission.admit("player", Deadline.after(clock, 60.0))
        order.append(name)
        await clock.asleep(1.0)
        admission.release("player")

    async def main():
        await asyncio.gather(worker("a"), worker("b"), worker("c"))

    clock.run(main())
    assert order == ["a", "b", "c"]
    # Slot transfers keep active at the bulkhead, never above.
    assert admission.active("player") == 0


def test_queue_timeout_raises_typed_and_keeps_accounting():
    clock = VirtualClock()
    admission = AdmissionController(
        clock, TenantPolicy(max_concurrent=1, max_queued=4))

    async def holder():
        await admission.admit("player", Deadline.after(clock, 60.0))
        await clock.asleep(10.0)
        admission.release("player")

    async def late():
        with pytest.raises(TimeoutError):
            await admission.admit("player", Deadline.after(clock, 2.0))

    async def main():
        await asyncio.gather(holder(), late())

    clock.run(main())
    assert admission.stats.queue_timeouts == 1
    # The holder's release found no live waiter; the slot came back.
    assert admission.active("player") == 0


def test_per_tenant_policies_isolate_bulkheads():
    clock = VirtualClock()
    admission = AdmissionController(
        clock, TenantPolicy(max_concurrent=1, max_queued=0),
        per_tenant={"kiosk": TenantPolicy(max_concurrent=4,
                                          max_queued=0)})

    async def main():
        deadline = Deadline.after(clock, 10.0)
        await admission.admit("player", deadline)
        with pytest.raises(ServiceOverloadError):
            await admission.admit("player", deadline)
        # The kiosk tenant's wider bulkhead is unaffected.
        for _ in range(4):
            await admission.admit("kiosk", deadline)
        return admission.active("kiosk")

    assert clock.run(main()) == 4


# -- AIMDLimiter ------------------------------------------------------------


def test_limiter_rejects_at_limit():
    limiter = AIMDLimiter(initial_limit=2.0)
    assert limiter.try_acquire()
    assert limiter.try_acquire()
    assert not limiter.try_acquire()
    assert limiter.rejections == 1


def test_limiter_additive_increase_under_target():
    limiter = AIMDLimiter(initial_limit=4.0, target_latency_s=1.0)
    assert limiter.try_acquire()
    limiter.release(0.1)
    assert limiter.limit == pytest.approx(4.25)
    assert limiter.decreases == 0


def test_limiter_multiplicative_decrease_over_target():
    limiter = AIMDLimiter(initial_limit=8.0, target_latency_s=0.5,
                          backoff=0.5)
    assert limiter.try_acquire()
    limiter.release(2.0)
    assert limiter.limit == pytest.approx(4.0)
    assert limiter.decreases == 1


def test_limiter_floors_at_min_limit():
    limiter = AIMDLimiter(initial_limit=2.0, min_limit=1.0,
                          target_latency_s=0.1)
    for _ in range(10):
        limiter.try_acquire()
        limiter.release(5.0)
    assert limiter.limit == 1.0
    # One request still always fits.
    assert limiter.try_acquire()


# -- OverloadShield ---------------------------------------------------------


def test_shield_happy_path_counts_completed():
    clock = VirtualClock()
    shield = OverloadShield(clock, limiter=AIMDLimiter())

    async def operation():
        await clock.asleep(0.1)
        return "ok"

    async def main():
        return await shield.run(
            "player", Deadline.after(clock, 5.0), operation)

    assert clock.run(main()) == "ok"
    assert shield.stats.completed == 1
    assert shield.stats.sheds == 0


def test_shield_expired_deadline_sheds_before_admission():
    clock = VirtualClock()
    log = DegradationLog()
    shield = OverloadShield(clock, degradation=log, component="xkms")

    async def main():
        deadline = Deadline.after(clock, 1.0)
        await clock.asleep(2.0)
        with pytest.raises(TimeoutError):
            await shield.run("player", deadline, _never_called)

    async def _never_called():
        raise AssertionError("handler ran past its deadline")

    clock.run(main())
    assert shield.stats.shed_deadline == 1
    assert log.reasons() == [REASON_TIMEOUT]


def test_shield_limiter_shed_is_typed_and_logged():
    clock = VirtualClock()
    log = DegradationLog()
    limiter = AIMDLimiter(initial_limit=1.0)
    shield = OverloadShield(clock, limiter=limiter, degradation=log,
                            component="xkms")

    async def slow():
        await clock.asleep(5.0)
        return "slow"

    async def fast():
        return "fast"

    async def main():
        first = asyncio.ensure_future(shield.run(
            "player", Deadline.after(clock, 60.0), slow))
        await clock.asleep(1.0)
        with pytest.raises(ServiceOverloadError) as excinfo:
            await shield.run(
                "player", Deadline.after(clock, 60.0), fast)
        assert excinfo.value.reason == "limiter"
        return await first

    assert clock.run(main()) == "slow"
    assert shield.stats.shed_limiter == 1
    assert shield.stats.completed == 1
    assert log.reasons() == [REASON_OVERLOAD]


def test_shield_releases_admission_when_operation_raises():
    clock = VirtualClock()
    shield = OverloadShield(clock)

    async def boom():
        raise ValueError("handler bug")

    async def main():
        with pytest.raises(ValueError):
            await shield.run(
                "player", Deadline.after(clock, 5.0), boom)
        return shield.admission.active("player")

    assert clock.run(main()) == 0


def test_shield_late_completion_is_still_an_answer():
    clock = VirtualClock()
    shield = OverloadShield(clock)

    async def slow():
        await clock.asleep(3.0)
        return "late"

    async def main():
        return await shield.run(
            "player", Deadline.after(clock, 1.0), slow)

    # The deadline passed mid-flight: the shield does not cancel, it
    # counts a late completion and returns the answer.
    assert clock.run(main()) == "late"
    assert shield.stats.late_completions == 1
    assert shield.stats.completed == 1
