"""The crash-recovery chaos harness: power loss at every injection
point, for every durable-state consumer.

ISSUE 6 acceptance: the harness runs green under three fixed seeds
with a kill scheduled at every filesystem injection point across the
localstorage, XKMS-binding and CRL scenarios.
"""

import pytest

from repro.resilience.durablechaos import (
    SCENARIOS, CrashOutcome, run_crash_chaos,
)

FIXED_SEEDS = (20050902, 7, 31337)


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_fixed_seed_runs_have_no_violations(seed):
    report = run_crash_chaos(seed)
    assert report.ok, "\n".join(report.summary_lines(verbose=True))


def test_covers_all_three_durable_consumers():
    assert set(SCENARIOS) == {"localstorage", "xkms-bindings", "crl"}


def test_every_injection_point_gets_a_kill():
    report = run_crash_chaos(7)
    for scenario, points in report.injection_points.items():
        assert points > 0
        killed = {o.crash_at for o in report.outcomes
                  if o.scenario == scenario and o.crash_at is not None}
        assert killed == set(range(points))


def test_probe_run_is_checked_too():
    report = run_crash_chaos(7)
    probes = [o for o in report.outcomes if o.crash_at is None]
    assert {o.scenario for o in probes} == set(SCENARIOS)
    assert all(o.ok for o in probes)


def test_runs_are_deterministic_per_seed():
    first = run_crash_chaos(7, scenarios={
        "crl": SCENARIOS["crl"],
    })
    second = run_crash_chaos(7, scenarios={
        "crl": SCENARIOS["crl"],
    })
    assert [str(o) for o in first.outcomes] == \
        [str(o) for o in second.outcomes]


def test_some_kills_actually_require_repair():
    """The harness is only meaningful if power loss really tears
    journal tails somewhere — at least one outcome must have run the
    repair path."""
    report = run_crash_chaos(20050902)
    assert any("repaired" in o.detail for o in report.outcomes)


def test_violations_fail_the_report():
    report = run_crash_chaos(1, scenarios={})
    report.outcomes.append(
        CrashOutcome("fake", 0, False, "seeded violation"))
    assert not report.ok
    assert len(report.violations) == 1
    assert any("VIOLATION" in line
               for line in report.summary_lines(verbose=False))
