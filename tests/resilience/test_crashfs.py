"""The power-loss fault adversary: visible vs durable, torn writes,
seeded determinism, numbered injection points."""

import pytest

from repro.resilience.crashfs import (
    CrashableFilesystem, OsFilesystem, SimulatedCrash,
)


# -- visible vs durable ------------------------------------------------------


def test_unsynced_write_is_visible_but_not_durable():
    fs = CrashableFilesystem(seed=0)
    fs.write("/f", b"hello")
    assert fs.read("/f") == b"hello"
    fs.crash()
    assert not fs.exists("/f") or fs.read("/f") != b"hello"


def test_fsync_makes_content_durable():
    fs = CrashableFilesystem(seed=0)
    fs.write("/f", b"hello")
    fs.fsync("/f")
    fs.crash()
    assert fs.read("/f") == b"hello"


def test_unsynced_append_survives_only_as_torn_prefix():
    fs = CrashableFilesystem(seed=3)
    fs.write("/f", b"base")
    fs.fsync("/f")
    fs.append("/f", b"XYZ")
    fs.crash()
    data = fs.read("/f")
    assert data.startswith(b"base")
    # The final byte of an un-synced delta is never durable.
    assert data != b"baseXYZ"
    assert b"baseXYZ".startswith(data)


def test_final_byte_of_delta_never_durable_any_seed():
    for seed in range(20):
        fs = CrashableFilesystem(seed=seed)
        fs.write("/f", b"durable")
        fs.fsync("/f")
        fs.append("/f", b"\x01")
        fs.crash()
        assert fs.read("/f") == b"durable"


def test_unsynced_rewrite_reverts_to_old_durable_content():
    fs = CrashableFilesystem(seed=0)
    fs.write("/f", b"old")
    fs.fsync("/f")
    fs.write("/f", b"completely different")
    fs.crash()
    assert fs.read("/f") == b"old"


# -- directory operations ----------------------------------------------------


def test_replace_is_buffered_until_fsync_dir():
    fs = CrashableFilesystem(seed=0)
    fs.write("/d/a", b"A")
    fs.fsync("/d/a")
    fs.write("/d/b", b"B")
    fs.fsync("/d/b")
    fs.replace("/d/a", "/d/b")
    assert fs.read("/d/b") == b"A"     # visible immediately
    fs.fsync_dir("/d")
    fs.crash()
    assert fs.read("/d/b") == b"A"     # durable after the dirsync
    assert not fs.exists("/d/a")


def test_unsynced_replace_never_yields_torn_destination():
    """A rename is atomic: after a crash the destination is either the
    old durable content or the source's durable bytes, never a torn
    mixture of the two."""
    for seed in range(20):
        fs = CrashableFilesystem(seed=seed)
        fs.write("/d/dst", b"OLDOLDOLD")
        fs.fsync("/d/dst")
        fs.write("/d/src", b"NEWNEWNEW")
        fs.fsync("/d/src")
        fs.replace("/d/src", "/d/dst")
        fs.crash()                      # dirsync never happened
        assert fs.read("/d/dst") in (b"OLDOLDOLD", b"NEWNEWNEW")


def test_remove_is_buffered_until_fsync_dir():
    fs = CrashableFilesystem(seed=0)
    fs.write("/d/a", b"A")
    fs.fsync("/d/a")
    fs.remove("/d/a")
    assert not fs.exists("/d/a")
    fs.fsync_dir("/d")
    fs.crash()
    assert not fs.exists("/d/a")


# -- injection points --------------------------------------------------------


def test_ops_are_numbered_and_crash_fires_before_effect():
    fs = CrashableFilesystem(seed=0, crash_at=1)
    fs.write("/a", b"A")               # op 0
    with pytest.raises(SimulatedCrash):
        fs.write("/b", b"B")           # op 1: dies before writing
    assert not fs.exists("/b")
    assert fs.op_labels == ["write:/a", "write:/b"]


def test_interrupted_fsync_flushes_at_most_a_torn_prefix():
    for seed in range(20):
        fs = CrashableFilesystem(seed=seed, crash_at=1)
        fs.write("/f", b"0123456789")  # op 0
        with pytest.raises(SimulatedCrash):
            fs.fsync("/f")             # op 1: torn flush
        fs.crash()
        data = fs.read("/f") if fs.exists("/f") else b""
        assert b"0123456789".startswith(data)
        assert data != b"0123456789"


def test_same_seed_and_crash_point_reproduce_the_same_image():
    def run(seed, crash_at):
        fs = CrashableFilesystem(seed=seed, crash_at=crash_at)
        try:
            fs.write("/f", b"base")
            fs.fsync("/f")
            fs.append("/f", b"ABCDEFGH")
            fs.fsync("/f")
        except SimulatedCrash:
            fs.crash()
        return dict(fs._durable)

    assert run(42, 3) == run(42, 3)


def test_op_count_counts_every_mutating_operation():
    fs = CrashableFilesystem(seed=0)
    fs.write("/f", b"x")
    fs.append("/f", b"y")
    fs.fsync("/f")
    fs.truncate("/f", 1)
    fs.replace("/f", "/g")
    fs.fsync_dir("/")
    assert fs.op_count == 6


# -- listdir / makedirs ------------------------------------------------------


def test_listdir_shows_visible_entries():
    fs = CrashableFilesystem(seed=0)
    fs.makedirs("/d")
    fs.write("/d/a", b"")
    fs.write("/d/b", b"")
    fs.write("/other/c", b"")
    assert fs.listdir("/d") == ["a", "b"]


# -- the real filesystem -----------------------------------------------------


def test_os_filesystem_roundtrip(tmp_path):
    fs = OsFilesystem()
    root = str(tmp_path)
    fs.makedirs(root + "/sub")
    fs.write(root + "/sub/f", b"hello")
    fs.append(root + "/sub/f", b" world")
    fs.fsync(root + "/sub/f")
    assert fs.read(root + "/sub/f") == b"hello world"
    fs.truncate(root + "/sub/f", 5)
    assert fs.read(root + "/sub/f") == b"hello"
    fs.replace(root + "/sub/f", root + "/sub/g")
    fs.fsync_dir(root + "/sub")
    assert fs.listdir(root + "/sub") == ["g"]
    fs.remove(root + "/sub/g")
    assert not fs.exists(root + "/sub/g")
