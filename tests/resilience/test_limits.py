"""Unit tests for the ResourceLimits/ResourceGuard quota layer."""

import pytest

from repro.errors import ReproError, ResourceLimitExceeded
from repro.resilience import ResourceGuard, ResourceLimits
from repro.resilience.clock import SimulatedClock


# -- ResourceLimits ----------------------------------------------------------


def test_defaults_model_a_bounded_ce_device():
    limits = ResourceLimits.default()
    assert limits.max_input_bytes == 8 * 1024 * 1024
    assert limits.max_element_depth == 200
    assert limits.max_node_count == 250_000
    assert limits.max_references_per_signature == 64
    # Deadlines are opt-in: nothing injects a clock by default.
    assert limits.wall_clock_budget_s is None


def test_unlimited_disables_every_quota():
    limits = ResourceLimits.unlimited()
    guard = ResourceGuard(limits)
    guard.check_input_size(10**12)
    guard.check_depth(10**6)
    guard.charge_nodes(10**9)
    guard.charge_decrypt_output(10**9, 1)
    assert guard.within_limits()


def test_replace_overrides_single_quota():
    limits = ResourceLimits.default().replace(max_element_depth=7)
    assert limits.max_element_depth == 7
    assert limits.max_input_bytes == ResourceLimits.default().max_input_bytes


# -- one-shot checks ---------------------------------------------------------


@pytest.mark.parametrize("method,limit_name,limit", [
    ("check_input_size", "max_input_bytes", 8 * 1024 * 1024),
    ("check_depth", "max_element_depth", 200),
    ("check_attribute_count", "max_attributes_per_element", 256),
    ("check_text_size", "max_text_bytes", 1024 * 1024),
    ("check_reference_count", "max_references_per_signature", 64),
    ("check_transform_count", "max_transforms_per_reference", 8),
    ("check_frame_size", "max_frame_bytes", 4 * 1024 * 1024),
])
def test_one_shot_checks_trip_past_their_limit(method, limit_name, limit):
    guard = ResourceGuard()
    getattr(guard, method)(limit)          # at the limit: fine
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        getattr(guard, method)(limit + 1)
    assert excinfo.value.limit_name == limit_name
    assert excinfo.value.limit == limit
    assert excinfo.value.actual == limit + 1
    assert guard.trips == [excinfo.value]


def test_error_is_typed_and_carries_context():
    guard = ResourceGuard(ResourceLimits(max_element_depth=3))
    with pytest.raises(ReproError, match="max_element_depth"):
        guard.check_depth(10)


# -- cumulative charges (check-before-commit) --------------------------------


def test_charge_nodes_accumulates_and_trips():
    guard = ResourceGuard(ResourceLimits(max_node_count=10))
    guard.charge_nodes(6)
    guard.charge_nodes(4)
    assert guard.node_count == 10
    with pytest.raises(ResourceLimitExceeded):
        guard.charge_nodes(1)


def test_tripped_guard_never_commits_the_overrun():
    """The chaos invariant: counters stay within quota even after a
    trip, because charges check before they commit."""
    guard = ResourceGuard(ResourceLimits(max_node_count=10,
                                         max_decrypt_output_bytes=100))
    guard.charge_nodes(8)
    with pytest.raises(ResourceLimitExceeded):
        guard.charge_nodes(5)
    assert guard.node_count == 8
    with pytest.raises(ResourceLimitExceeded):
        guard.charge_decrypt_output(200, None)
    assert guard.decrypt_output_bytes == 0
    assert guard.within_limits()
    assert len(guard.trips) == 2


def test_expansion_ratio_trips_before_absolute_quota():
    guard = ResourceGuard(ResourceLimits(max_decrypt_output_bytes=10**6,
                                         max_expansion_ratio=10.0))
    guard.charge_decrypt_output(100, 100)        # ratio 1: fine
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        guard.charge_decrypt_output(5000, 10)    # ratio 500
    assert excinfo.value.limit_name == "max_expansion_ratio"
    assert "plaintext octets" in str(excinfo.value)


def test_decrypt_quota_without_ciphertext_size_still_meters():
    guard = ResourceGuard(ResourceLimits(max_decrypt_output_bytes=50))
    guard.charge_decrypt_output(40, None)
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        guard.charge_decrypt_output(20, None)
    assert excinfo.value.limit_name == "max_decrypt_output_bytes"


# -- deadlines on the injected clock -----------------------------------------


def test_deadline_runs_on_the_injected_clock():
    clock = SimulatedClock()
    guard = ResourceGuard(
        ResourceLimits(wall_clock_budget_s=2.0), clock=clock,
    )
    guard.check_deadline()
    clock.advance(1.9)
    guard.check_deadline()
    clock.advance(0.2)
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        guard.check_deadline()
    assert excinfo.value.limit_name == "wall_clock_budget_s"


def test_no_budget_means_no_deadline_bookkeeping():
    guard = ResourceGuard(ResourceLimits.default())
    assert guard.started_at is None
    guard.check_deadline()   # a no-op, never trips


# -- construction ergonomics -------------------------------------------------


def test_default_classmethod_is_a_fresh_default_guard():
    one, two = ResourceGuard.default(), ResourceGuard.default()
    assert one is not two
    assert one.limits == ResourceLimits.default()


def test_guard_importable_from_resilience_package():
    import repro.resilience as resilience
    assert resilience.ResourceGuard is ResourceGuard
    assert resilience.ResourceLimits is ResourceLimits
    assert resilience.REASON_RESOURCE == "resource-limit"
