"""The durable layer: journal framing, recovery semantics, compaction.

The contract under test is the one the chaos harness checks
exhaustively: acknowledged commits are durable, unacknowledged ones
vanish atomically, torn tails are truncated, and interior tampering
fails hard with a typed error.
"""

import pytest

from repro.errors import DurableStateError
from repro.resilience.crashfs import CrashableFilesystem, SimulatedCrash
from repro.resilience.degradation import REASON_RECOVERY, DegradationLog
from repro.resilience.durable import (
    JOURNAL_MAGIC, DurableStore, Journal, atomic_write, decode_op,
    encode_op, verify_directory,
)

DIR = "/flash/state"


def open_store(fs, **kwargs):
    return DurableStore(DIR, fs=fs, **kwargs)


def populated(fs, **kwargs):
    store = open_store(fs, **kwargs)
    store.set("ns", "a", b"1")
    store.set("ns", "b", b"2")
    store.commit()
    return store


# -- commit / acknowledgement ------------------------------------------------


def test_committed_records_survive_reopen():
    fs = CrashableFilesystem(seed=0)
    populated(fs)
    store = open_store(fs)
    assert store.get("ns", "a") == b"1"
    assert store.get("ns", "b") == b"2"
    assert store.recovery.clean


def test_staged_mutations_invisible_until_commit():
    fs = CrashableFilesystem(seed=0)
    store = open_store(fs)
    store.set("ns", "a", b"1")
    assert store.get("ns", "a") is None
    store.commit()
    assert store.get("ns", "a") == b"1"


def test_uncommitted_mutations_vanish_on_crash():
    fs = CrashableFilesystem(seed=0)
    store = populated(fs)
    store.set("ns", "c", b"3")          # staged, never committed
    fs.crash()
    reopened = open_store(fs)
    assert reopened.get("ns", "c") is None
    assert reopened.get("ns", "a") == b"1"


def test_batch_commits_are_atomic_across_crash():
    """A multi-record batch either fully survives or fully vanishes."""
    probe = CrashableFilesystem(seed=5)
    store = populated(probe)
    start = probe.op_count
    store.set("ns", "x", b"X")
    store.set("ns", "y", b"Y")
    store.commit()
    for crash_at in range(start, probe.op_count):
        fs = CrashableFilesystem(seed=5, crash_at=crash_at)
        store = populated(fs)
        store.set("ns", "x", b"X")
        store.set("ns", "y", b"Y")
        try:
            store.commit()
        except SimulatedCrash:
            fs.crash()
        reopened = open_store(fs)
        got = (reopened.get("ns", "x"), reopened.get("ns", "y"))
        assert got in ((None, None), (b"X", b"Y"))


def test_delete_and_wipe_replay():
    fs = CrashableFilesystem(seed=0)
    store = populated(fs)
    store.set("other", "k", b"v")
    store.delete("ns", "a")
    store.wipe("other")
    store.commit()
    reopened = open_store(fs)
    assert reopened.keys("ns") == ["b"]
    assert reopened.namespaces() == ["ns"]


# -- torn tails vs tampering -------------------------------------------------


def journal_path():
    return f"{DIR}/{DurableStore.JOURNAL_NAME}"


def test_torn_tail_is_truncated_and_reported():
    fs = CrashableFilesystem(seed=0)
    populated(fs)
    data = fs.read(journal_path())
    fs.write(journal_path(), data + b"\x40\x00\x00\x00partial")
    fs.fsync(journal_path())
    log = DegradationLog()
    store = open_store(fs, degradation=log)
    assert store.get("ns", "a") == b"1"
    assert not store.recovery.clean
    assert store.recovery.truncated_bytes > 0
    assert any(e.reason == REASON_RECOVERY for e in log.events)
    # Idempotent: the repair leaves nothing for a second recovery.
    again = open_store(fs)
    assert again.recovery.clean


def test_interior_corruption_is_tampering_not_repair():
    fs = CrashableFilesystem(seed=0)
    populated(fs)
    data = bytearray(fs.read(journal_path()))
    mid = len(JOURNAL_MAGIC) + 8        # inside the first frame
    data[mid] ^= 0xFF
    fs.write(journal_path(), bytes(data))
    fs.fsync(journal_path())
    with pytest.raises(DurableStateError) as excinfo:
        open_store(fs)
    assert excinfo.value.kind == "tamper"


def test_foreign_journal_header_is_a_format_error():
    fs = CrashableFilesystem(seed=0)
    fs.makedirs(DIR)
    fs.write(journal_path(), b"GARBAGE-HEADER\n plus junk")
    fs.fsync(journal_path())
    with pytest.raises(DurableStateError) as excinfo:
        open_store(fs)
    assert excinfo.value.kind == "format"


def test_torn_header_recovers_to_empty():
    fs = CrashableFilesystem(seed=0)
    fs.makedirs(DIR)
    fs.write(journal_path(), JOURNAL_MAGIC[:3])
    fs.fsync(journal_path())
    store = open_store(fs)
    assert store.namespaces() == []
    assert not store.recovery.clean


def test_absurd_length_prefix_is_tampering():
    fs = CrashableFilesystem(seed=0)
    fs.makedirs(DIR)
    fs.write(journal_path(),
             JOURNAL_MAGIC + b"\xff\xff\xff\xff" + b"\x00" * 64)
    fs.fsync(journal_path())
    with pytest.raises(DurableStateError) as excinfo:
        open_store(fs)
    assert excinfo.value.kind == "tamper"


def test_integrity_key_detects_journal_substitution():
    """A journal forged without the key fails under HMAC framing."""
    plain_fs = CrashableFilesystem(seed=0)
    populated(plain_fs)                  # digest-only journal
    forged = plain_fs.read(journal_path())
    fs = CrashableFilesystem(seed=0)
    fs.makedirs(DIR)
    fs.write(journal_path(), forged)
    fs.fsync(journal_path())
    with pytest.raises(DurableStateError) as excinfo:
        open_store(fs, integrity_key=b"device-unique-key")
    assert excinfo.value.kind == "tamper"


def test_snapshot_tampering_fails_hard():
    fs = CrashableFilesystem(seed=0)
    populated(fs).compact()
    path = f"{DIR}/{DurableStore.SNAPSHOT_NAME}"
    data = bytearray(fs.read(path))
    data[-1] ^= 0x01
    fs.write(path, bytes(data))
    fs.fsync(path)
    with pytest.raises(DurableStateError) as excinfo:
        open_store(fs)
    assert excinfo.value.kind == "tamper"


# -- compaction --------------------------------------------------------------


def test_compaction_preserves_state_and_shrinks_journal():
    fs = CrashableFilesystem(seed=0)
    store = open_store(fs)
    for i in range(20):
        store.set("ns", f"k{i}", b"v" * 50)
        store.commit()
    before = len(fs.read(journal_path()))
    store.compact()
    after = len(fs.read(journal_path()))
    assert after < before
    reopened = open_store(fs)
    assert len(reopened.keys("ns")) == 20
    assert reopened.recovery.snapshot_seq > 0


def test_commits_after_compaction_survive_reopen():
    """The sequence-floor regression: post-compaction records must not
    reuse snapshotted sequence numbers (replay would skip them)."""
    fs = CrashableFilesystem(seed=0)
    store = populated(fs)
    store.compact()
    reopened = open_store(fs)            # journal empty, snapshot full
    reopened.set("ns", "post", b"alive")
    reopened.commit()
    final = open_store(fs)
    assert final.get("ns", "post") == b"alive"


def test_compact_with_staged_mutations_is_a_protocol_error():
    fs = CrashableFilesystem(seed=0)
    store = populated(fs)
    store.set("ns", "pending", b"?")
    with pytest.raises(DurableStateError) as excinfo:
        store.compact()
    assert excinfo.value.kind == "protocol"


def test_crash_between_snapshot_and_journal_reset_recovers():
    """Every injection point inside compact() recovers to the same
    committed state — the snapshot/reset ordering under test."""
    probe = CrashableFilesystem(seed=9)
    store = populated(probe)
    start = probe.op_count
    store.compact()
    for crash_at in range(start, probe.op_count):
        fs = CrashableFilesystem(seed=9, crash_at=crash_at)
        store = populated(fs)
        try:
            store.compact()
        except SimulatedCrash:
            fs.crash()
        reopened = open_store(fs)
        assert reopened.get("ns", "a") == b"1"
        assert reopened.get("ns", "b") == b"2"


# -- op encoding -------------------------------------------------------------


def test_op_roundtrip():
    body = encode_op(0x53, "ns", "key", b"value")
    assert decode_op(body) == (0x53, "ns", "key", b"value")


def test_malformed_op_is_tampering():
    for body in (b"", b"\x53", b"\x00\x01\x02", encode_op(
            0x53, "ns", "key", b"value")[:-1]):
        with pytest.raises(DurableStateError) as excinfo:
            decode_op(body)
        assert excinfo.value.kind == "tamper"


# -- atomic_write ------------------------------------------------------------


def test_atomic_write_never_leaves_a_torn_file():
    for crash_at in range(6):
        fs = CrashableFilesystem(seed=1)
        fs.write("/d/f", b"OLD")
        fs.fsync("/d/f")
        fs.fsync_dir("/d")
        fs.crash_at = fs.op_count + crash_at
        try:
            atomic_write("/d/f", b"NEW", fs=fs)
        except SimulatedCrash:
            fs.crash()
        assert fs.read("/d/f") in (b"OLD", b"NEW")


# -- inspection --------------------------------------------------------------


def test_verify_directory_reports_without_repairing():
    fs = CrashableFilesystem(seed=0)
    populated(fs)
    data = fs.read(journal_path())
    fs.write(journal_path(), data + b"\x10\x00\x00\x00torn")
    fs.fsync(journal_path())
    size_before = len(fs.read(journal_path()))
    inspection = verify_directory(DIR, fs=fs)
    assert not inspection.clean_tail
    assert inspection.tail_torn_bytes > 0
    assert inspection.namespaces == {"ns": 2}
    assert len(fs.read(journal_path())) == size_before   # untouched


def test_inspect_summarizes_committed_state():
    fs = CrashableFilesystem(seed=0)
    store = populated(fs)
    inspection = store.inspect()
    assert inspection.namespaces == {"ns": 2}
    assert inspection.clean_tail
    assert inspection.journal_bytes > len(JOURNAL_MAGIC)


def test_journal_pending_and_committed_seq():
    fs = CrashableFilesystem(seed=0)
    journal = Journal(fs, "/j")
    assert journal.committed_seq == 0
    journal.append(b"one")
    assert journal.pending == 1
    acked = journal.commit()
    assert journal.pending == 0
    assert acked == journal.committed_seq == 1
    assert journal.commit() == 1         # empty commit is a no-op
