"""Fault schedules and injectors: deterministic, composable, replayable."""

import pytest

from repro.errors import ChannelClosedError, NetworkError
from repro.network import Channel
from repro.resilience import (
    DelayFault, DropFault, DuplicateFault, FaultSchedule, FlakyService,
    ReorderFault, SimulatedClock, TruncateFault, flaky_link,
)


# -- schedules -----------------------------------------------------------------


def test_schedule_at():
    schedule = FaultSchedule.at(1, 4)
    assert [schedule.fires(i) for i in range(6)] == \
        [False, True, False, False, True, False]


def test_schedule_first_then_recovery():
    schedule = FaultSchedule.first(2)
    assert [schedule.fires(i) for i in range(4)] == \
        [True, True, False, False]


def test_schedule_after_link_dies():
    schedule = FaultSchedule.after(2)
    assert [schedule.fires(i) for i in range(4)] == \
        [False, False, True, True]


def test_schedule_every():
    schedule = FaultSchedule.every(3, offset=1)
    assert [schedule.fires(i) for i in range(8)] == \
        [False, True, False, False, True, False, False, True]
    with pytest.raises(ValueError):
        FaultSchedule.every(0)


def test_schedule_probability_is_deterministic_per_seed():
    a = FaultSchedule.probability(0.5, seed=7)
    b = FaultSchedule.probability(0.5, seed=7)
    pattern_a = [a.fires(i) for i in range(64)]
    pattern_b = [b.fires(i) for i in range(64)]
    assert pattern_a == pattern_b
    assert any(pattern_a) and not all(pattern_a)
    # Index-stable: querying out of order changes nothing.
    assert a.fires(10) == pattern_a[10]
    # A different seed yields a different pattern.
    other = [FaultSchedule.probability(0.5, seed=8).fires(i)
             for i in range(64)]
    assert other != pattern_a


# -- injectors -----------------------------------------------------------------


def test_drop_fault_fires_on_schedule():
    drop = DropFault(schedule=FaultSchedule.at(1))
    channel = Channel([drop])
    assert channel.transfer(b"first") == b"first"
    with pytest.raises(NetworkError, match="dropped"):
        channel.transfer(b"second")
    assert channel.transfer(b"third") == b"third"
    assert drop.calls == 3
    assert drop.fired == 1


def test_drop_fault_predicate_filters():
    drop = DropFault(predicate=lambda m: m.startswith(b"\x10"))
    channel = Channel([drop])
    assert channel.transfer(b"\x20response") == b"\x20response"
    with pytest.raises(NetworkError):
        channel.transfer(b"\x10request")
    assert drop.calls == 1  # non-matching messages are not counted


def test_delay_fault_spends_simulated_time():
    clock = SimulatedClock()
    delay = DelayFault(delay_s=2.5, clock=clock,
                       schedule=FaultSchedule.at(1))
    channel = Channel([delay])
    channel.transfer(b"fast")
    assert clock.now() == 0.0
    channel.transfer(b"slow")
    assert clock.now() == 2.5


def test_truncate_fault_fixed_and_fractional():
    fixed = TruncateFault(keep_bytes=3)
    assert fixed.process(b"abcdef") == b"abc"
    fractional = TruncateFault(keep_fraction=0.5)
    assert fractional.process(b"abcdef") == b"abc"
    empty = TruncateFault(keep_bytes=0)
    assert empty.process(b"abc") == b""


def test_duplicate_fault_redelivers_previous_message():
    duplicate = DuplicateFault(schedule=FaultSchedule.at(0))
    channel = Channel([duplicate])
    assert channel.transfer(b"one") == b"one"
    # The stale retransmit crowds out the fresh message.
    assert channel.transfer(b"two") == b"one"
    assert channel.transfer(b"three") == b"three"


def test_reorder_fault_delivers_stale_predecessor():
    reorder = ReorderFault(schedule=FaultSchedule.at(1))
    channel = Channel([reorder])
    assert channel.transfer(b"m0") == b"m0"
    assert channel.transfer(b"m1") == b"m0"  # out-of-order arrival
    assert channel.transfer(b"m2") == b"m2"


def test_reorder_fault_first_message_passes():
    reorder = ReorderFault(schedule=FaultSchedule.always())
    assert reorder.process(b"only") == b"only"


def test_flaky_link_recovers():
    link = flaky_link(2)
    channel = Channel([link])
    for _ in range(2):
        with pytest.raises(NetworkError):
            channel.transfer(b"x")
    assert channel.transfer(b"x") == b"x"


def test_flaky_service_recovers():
    service = FlakyService(lambda text: f"echo:{text}", failures=2)
    for _ in range(2):
        with pytest.raises(NetworkError, match="unavailable"):
            service("ping")
    assert service("ping") == "echo:ping"
    assert service.calls == 3


def test_injectors_compose_on_one_channel():
    clock = SimulatedClock()
    delay = DelayFault(delay_s=1.0, clock=clock)
    drop = DropFault(schedule=FaultSchedule.at(0))
    channel = Channel([delay, drop])
    with pytest.raises(NetworkError):
        channel.transfer(b"a")   # delayed, then dropped
    assert clock.now() == 1.0
    assert channel.transfer(b"b") == b"b"
    assert clock.now() == 2.0


def test_closed_channel_raises():
    channel = Channel()
    channel.transfer(b"up")
    channel.close()
    with pytest.raises(ChannelClosedError):
        channel.transfer(b"down")
    channel.reopen()
    assert channel.transfer(b"back") == b"back"
