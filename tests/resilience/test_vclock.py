"""VirtualClock driver semantics: deterministic wakeup order, typed
deadline/deadlock failures instead of hangs, and VQueue handoffs that
stay visible to the quiescence check."""

import asyncio

import pytest

from repro.errors import ChannelClosedError, TimeoutError
from repro.resilience import NO_DEADLINE, VirtualClock, VQueue


def test_asleep_advances_virtual_time_only():
    clock = VirtualClock()

    async def main():
        await clock.asleep(120.0)
        return clock.now()

    assert clock.run(main()) == 120.0


def test_sleepers_wake_in_deadline_order():
    clock = VirtualClock()
    order = []

    async def sleeper(name, seconds):
        await clock.asleep(seconds)
        order.append((name, clock.now()))

    async def main():
        await asyncio.gather(
            sleeper("slow", 3.0), sleeper("fast", 1.0),
            sleeper("mid", 2.0),
        )

    clock.run(main())
    assert order == [("fast", 1.0), ("mid", 2.0), ("slow", 3.0)]


def test_zero_sleep_yields_without_advancing():
    clock = VirtualClock()

    async def main():
        await clock.asleep(0)
        return clock.now()

    assert clock.run(main()) == 0.0


def test_wait_until_returns_early_result():
    clock = VirtualClock()

    async def main():
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        async def resolver():
            await clock.asleep(1.0)
            future.set_result("answer")
            clock.bump()

        task = asyncio.ensure_future(resolver())
        result = await clock.wait_until(future, at=10.0)
        await task
        return result, clock.now()

    assert clock.run(main()) == ("answer", 1.0)


def test_wait_until_times_out_typed():
    clock = VirtualClock()

    async def main():
        future = asyncio.get_running_loop().create_future()
        with pytest.raises(TimeoutError) as excinfo:
            await clock.wait_until(future, at=5.0)
        return clock.now(), str(excinfo.value)

    now, message = clock.run(main())
    assert now == 5.0
    assert "deadline" in message


def test_wait_until_no_deadline_waits_for_result():
    clock = VirtualClock()

    async def main():
        future = asyncio.get_running_loop().create_future()

        async def resolver():
            await clock.asleep(2.0)
            future.set_result(7)
            clock.bump()

        task = asyncio.ensure_future(resolver())
        result = await clock.wait_until(future, NO_DEADLINE)
        await task
        return result

    assert clock.run(main()) == 7


def test_deadlock_raises_typed_instead_of_hanging():
    clock = VirtualClock()

    async def main():
        # Nobody will ever resolve this future and no timer is pending:
        # a genuine deadlock the driver must surface, not sit on.
        await asyncio.get_running_loop().create_future()

    with pytest.raises(TimeoutError) as excinfo:
        clock.run(main())
    assert "deadlock" in str(excinfo.value)


def test_completion_chains_settle_before_deadlock_verdict():
    # Regression: a gather over tasks whose last act is *finishing*
    # (waking the gather through plain done-callbacks the activity
    # counter cannot see) must complete, not be misread as a deadlock.
    clock = VirtualClock()

    async def child(seconds):
        await clock.asleep(seconds)
        return seconds

    async def main():
        return await asyncio.gather(*[
            child(0.1 * (i + 1)) for i in range(32)
        ])

    results = clock.run(main())
    assert len(results) == 32
    assert clock.now() == pytest.approx(3.2)


def test_vqueue_fifo_and_handoff():
    clock = VirtualClock()

    async def main():
        queue = VQueue(clock)
        queue.put_nowait("a")
        queue.put_nowait("b")
        first = await queue.get()

        async def consumer():
            return await queue.get(), await queue.get()

        task = asyncio.ensure_future(consumer())
        await clock.asleep(1.0)
        # "c" hands off directly to the parked consumer.
        queue.put_nowait("c")
        rest = await task
        return first, rest

    assert clock.run(main()) == ("a", ("b", "c"))


def test_vqueue_close_fails_waiting_getters():
    clock = VirtualClock()

    async def main():
        queue = VQueue(clock)

        async def consumer():
            await queue.get()

        task = asyncio.ensure_future(consumer())
        await clock.asleep(0.5)
        queue.close()
        with pytest.raises(ChannelClosedError):
            await task
        with pytest.raises(ChannelClosedError):
            queue.put_nowait("late")

    clock.run(main())


def test_vqueue_queued_items_survive_close():
    clock = VirtualClock()

    async def main():
        queue = VQueue(clock)
        queue.put_nowait("kept")
        queue.close()
        item = await queue.get()
        with pytest.raises(ChannelClosedError):
            await queue.get()
        return item

    assert clock.run(main()) == "kept"


def test_wait_until_cancellation_propagates():
    """The deadline-wait primitive has no broad handler: cancelling a
    waiter unwinds it (timer cleaned up), it does not 'time out'."""
    clock = VirtualClock()

    async def main():
        future = asyncio.get_running_loop().create_future()
        waiter = asyncio.ensure_future(clock.wait_until(future, 50.0))
        await clock.asleep(1.0)
        assert not waiter.done()
        waiter.cancel()
        await asyncio.gather(waiter, return_exceptions=True)
        return waiter

    waiter = clock.run(main())
    assert waiter.cancelled()
    # The abandoned deadline timer did not leak into the schedule.
    assert clock.now() < 50.0
