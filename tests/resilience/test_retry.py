"""RetryPolicy backoff/budget behaviour and the CircuitBreaker state machine."""

import pytest

from repro.errors import (
    CircuitOpenError, NetworkError, RetryExhaustedError, TimeoutError,
)
from repro.resilience import (
    STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN, CircuitBreaker, RetryPolicy,
    SimulatedClock, VirtualClock,
)


def failing_then(succeed_on: int, result="ok"):
    """An operation that fails with NetworkError until call *succeed_on*."""
    calls = {"n": 0}

    def operation():
        calls["n"] += 1
        if calls["n"] < succeed_on:
            raise NetworkError(f"transient #{calls['n']}")
        return result
    operation.calls = calls
    return operation


# -- retry policy ----------------------------------------------------------------


def test_happy_path_no_sleeps():
    clock = SimulatedClock()
    policy = RetryPolicy(clock=clock)
    assert policy.execute(lambda: "value") == "value"
    assert clock.sleeps == []


def test_fails_twice_succeeds_third():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=3, base_delay=1.0, multiplier=2.0,
                         jitter=0.1, seed=42, clock=clock)
    operation = failing_then(3)
    assert policy.execute(operation) == "ok"
    assert operation.calls["n"] == 3
    # Two backoffs, exponential with deterministic jitter.
    assert clock.sleeps == policy.delays()[:2]
    assert 1.0 <= clock.sleeps[0] <= 1.1
    assert 2.0 <= clock.sleeps[1] <= 2.2


def test_backoff_is_deterministic_per_seed():
    a = RetryPolicy(max_attempts=5, seed=7).delays()
    b = RetryPolicy(max_attempts=5, seed=7).delays()
    c = RetryPolicy(max_attempts=5, seed=8).delays()
    assert a == b
    assert a != c


def test_backoff_respects_max_delay():
    policy = RetryPolicy(max_attempts=8, base_delay=1.0, multiplier=10.0,
                         max_delay=5.0, jitter=0.0)
    assert policy.delays()[-1] == 5.0


def test_attempts_exhausted():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=3, clock=clock, seed=1)

    def dead():
        raise NetworkError("still down")

    with pytest.raises(RetryExhaustedError) as excinfo:
        policy.execute(dead, describe="fetch /x")
    error = excinfo.value
    assert error.attempts == 3
    assert isinstance(error.last_error, NetworkError)
    assert "fetch /x" in str(error)
    assert error.elapsed == clock.now()


def test_deadline_budget_exhausted():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=10, base_delay=1.0, multiplier=2.0,
                         jitter=0.0, deadline=5.0, clock=clock)

    def dead():
        raise NetworkError("down")

    with pytest.raises(RetryExhaustedError, match="deadline") as excinfo:
        policy.execute(dead)
    # 1s + 2s backoffs fit the 5s budget; the 4s third backoff does not.
    assert excinfo.value.attempts == 3
    assert clock.now() <= 5.0


def test_attempt_timeout_discards_slow_answer():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=2, attempt_timeout=1.0,
                         clock=clock, seed=0)

    def slow():
        clock.advance(3.0)  # a DelayFault on the link would do this
        return "late answer"

    with pytest.raises(RetryExhaustedError) as excinfo:
        policy.execute(slow)
    assert isinstance(excinfo.value.last_error, TimeoutError)
    assert excinfo.value.last_error.attempts == 2


def test_fast_answer_beats_attempt_timeout():
    clock = SimulatedClock()
    policy = RetryPolicy(attempt_timeout=1.0, clock=clock)

    def fast():
        clock.advance(0.5)
        return "in time"

    assert policy.execute(fast) == "in time"


def test_non_network_errors_propagate():
    policy = RetryPolicy()
    calls = {"n": 0}

    def broken():
        calls["n"] += 1
        raise ValueError("logic bug")

    with pytest.raises(ValueError):
        policy.execute(broken)
    assert calls["n"] == 1  # not retried


def test_control_flow_errors_never_retried():
    policy = RetryPolicy(max_attempts=5)
    calls = {"n": 0}

    def inner_gave_up():
        calls["n"] += 1
        raise RetryExhaustedError("inner policy done", attempts=3)

    with pytest.raises(RetryExhaustedError):
        policy.execute(inner_gave_up)
    assert calls["n"] == 1


# -- circuit breaker -------------------------------------------------------------


def test_breaker_opens_after_threshold():
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0,
                             clock=clock)
    policy = RetryPolicy(max_attempts=2, clock=clock)

    def dead():
        raise NetworkError("down")

    with pytest.raises(RetryExhaustedError):
        policy.execute(dead, breaker=breaker)
    assert breaker.state == STATE_OPEN

    # Subsequent calls short-circuit without touching the operation.
    calls = {"n": 0}

    def counting():
        calls["n"] += 1
        return "x"

    with pytest.raises(CircuitOpenError) as excinfo:
        policy.execute(counting, breaker=breaker)
    assert calls["n"] == 0
    assert excinfo.value.retry_after > 0
    assert excinfo.value.attempts == 2
    assert breaker.short_circuits == 1


def test_breaker_half_opens_and_closes_on_probe_success():
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                             clock=clock)
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    clock.advance(5.0)
    breaker.before_call()  # cool-down elapsed: probe allowed
    assert breaker.state == STATE_HALF_OPEN
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    assert breaker.consecutive_failures == 0


def test_breaker_half_open_probe_failure_reopens():
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0,
                             clock=clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    breaker.before_call()
    assert breaker.state == STATE_HALF_OPEN
    breaker.record_failure()  # one failed probe re-opens immediately
    assert breaker.state == STATE_OPEN
    assert breaker.times_opened == 2
    with pytest.raises(CircuitOpenError):
        breaker.before_call()


def test_breaker_call_helper_gates_and_records():
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=1, clock=clock)
    assert breaker.call(lambda: "fine") == "fine"
    with pytest.raises(NetworkError):
        breaker.call(lambda: (_ for _ in ()).throw(NetworkError("x")))
    assert breaker.state == STATE_OPEN
    with pytest.raises(CircuitOpenError):
        breaker.call(lambda: "never runs")


# -- deadline-clipped backoff (async overload PR) --------------------------------


def test_backoff_never_sleeps_past_propagated_deadline():
    """S1 regression: a backoff that would sleep the remaining budget
    dry fails *before* sleeping — the injected clock never advances to
    (or past) ``until``."""
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=5, base_delay=4.0, multiplier=2.0,
                         jitter=0.0, clock=clock)

    def dead():
        clock.advance(1.0)  # each attempt costs one simulated second
        raise NetworkError("down")

    until = clock.now() + 6.0
    with pytest.raises(RetryExhaustedError) as excinfo:
        policy.execute(dead, until=until)
    # Attempt 1 at t=0 (ends t=1), backoff 4.0 fits the 5s remaining,
    # attempt 2 at t=5 (ends t=6); the next 8.0s backoff would cross
    # the deadline, so the policy stops *now* instead of sleeping.
    assert excinfo.value.attempts == 2
    assert "deadline exhausted" in str(excinfo.value)
    assert clock.now() <= until
    assert clock.sleeps == [4.0]


def test_backoff_clipping_identical_on_virtual_clock():
    """The async path clips exactly like the sync one: same attempts,
    same sleeps, same final clock reading, driven on a VirtualClock."""
    sync_clock = SimulatedClock()
    sync_policy = RetryPolicy(max_attempts=5, base_delay=4.0,
                              multiplier=2.0, jitter=0.0,
                              clock=sync_clock)

    def sync_dead():
        sync_clock.advance(1.0)
        raise NetworkError("down")

    with pytest.raises(RetryExhaustedError) as sync_exc:
        sync_policy.execute(sync_dead, until=6.0)

    vclock = VirtualClock()
    policy = RetryPolicy(max_attempts=5, base_delay=4.0, multiplier=2.0,
                         jitter=0.0, clock=vclock)

    async def async_dead():
        vclock.advance(1.0)
        raise NetworkError("down")

    async def main():
        with pytest.raises(RetryExhaustedError) as excinfo:
            await policy.execute_async(async_dead, until=6.0)
        return excinfo.value

    async_error = vclock.run(main())
    assert async_error.attempts == sync_exc.value.attempts == 2
    assert vclock.now() == sync_clock.now()
    assert list(vclock.sleeps) == list(sync_clock.sleeps)


# -- half-open single probe under a stampede -------------------------------------


def test_half_open_admits_exactly_one_probe_from_a_stampede():
    """S2 stress: N callers hit a cooled-down breaker at the *same*
    instant (barrier start).  Exactly one becomes the probe; everyone
    else fast-fails with the half-open CircuitOpenError."""
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                             clock=clock)
    breaker.record_failure()
    clock.advance(5.0)

    probes, fast_fails = 0, 0
    for _ in range(64):
        try:
            breaker.before_call()
            probes += 1
        except CircuitOpenError as error:
            fast_fails += 1
            assert "probe in flight" in str(error)
    assert probes == 1
    assert fast_fails == 63
    assert breaker.probes == 1
    assert breaker.short_circuits == 63
    # The probe's success resolves the state for everyone.
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    breaker.before_call()


def test_half_open_stampede_on_threads_still_single_probe():
    """Same stampede, real threads: the breaker lock keeps the
    open->half-open step atomic, so a concurrent barrier start still
    yields exactly one probe."""
    import threading

    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                             clock=clock)
    breaker.record_failure()
    clock.advance(5.0)

    barrier = threading.Barrier(16)
    outcomes = []
    outcomes_lock = threading.Lock()

    def caller():
        barrier.wait()
        try:
            breaker.before_call()
            with outcomes_lock:
                outcomes.append("probe")
        except CircuitOpenError:
            with outcomes_lock:
                outcomes.append("fast-fail")

    threads = [threading.Thread(target=caller) for _ in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert outcomes.count("probe") == 1
    assert outcomes.count("fast-fail") == 15
    assert breaker.probes == 1


def test_abandoned_probe_keeps_original_cooldown():
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0,
                             clock=clock)
    breaker.record_failure()
    opened = breaker.opened_at
    clock.advance(10.0)
    breaker.before_call()
    assert breaker.state == STATE_HALF_OPEN
    # The probe dies to a non-network error: release without restarting
    # the cooldown window.
    breaker.abandon_probe()
    assert breaker.state == STATE_OPEN
    assert breaker.opened_at == opened
    # Cooldown already elapsed relative to the original opened_at, so
    # the very next caller becomes the new probe.
    breaker.before_call()
    assert breaker.state == STATE_HALF_OPEN
    assert breaker.probes == 2
