"""RetryPolicy backoff/budget behaviour and the CircuitBreaker state machine."""

import pytest

from repro.errors import (
    CircuitOpenError, NetworkError, RetryExhaustedError, TimeoutError,
)
from repro.resilience import (
    STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN, CircuitBreaker, RetryPolicy,
    SimulatedClock,
)


def failing_then(succeed_on: int, result="ok"):
    """An operation that fails with NetworkError until call *succeed_on*."""
    calls = {"n": 0}

    def operation():
        calls["n"] += 1
        if calls["n"] < succeed_on:
            raise NetworkError(f"transient #{calls['n']}")
        return result
    operation.calls = calls
    return operation


# -- retry policy ----------------------------------------------------------------


def test_happy_path_no_sleeps():
    clock = SimulatedClock()
    policy = RetryPolicy(clock=clock)
    assert policy.execute(lambda: "value") == "value"
    assert clock.sleeps == []


def test_fails_twice_succeeds_third():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=3, base_delay=1.0, multiplier=2.0,
                         jitter=0.1, seed=42, clock=clock)
    operation = failing_then(3)
    assert policy.execute(operation) == "ok"
    assert operation.calls["n"] == 3
    # Two backoffs, exponential with deterministic jitter.
    assert clock.sleeps == policy.delays()[:2]
    assert 1.0 <= clock.sleeps[0] <= 1.1
    assert 2.0 <= clock.sleeps[1] <= 2.2


def test_backoff_is_deterministic_per_seed():
    a = RetryPolicy(max_attempts=5, seed=7).delays()
    b = RetryPolicy(max_attempts=5, seed=7).delays()
    c = RetryPolicy(max_attempts=5, seed=8).delays()
    assert a == b
    assert a != c


def test_backoff_respects_max_delay():
    policy = RetryPolicy(max_attempts=8, base_delay=1.0, multiplier=10.0,
                         max_delay=5.0, jitter=0.0)
    assert policy.delays()[-1] == 5.0


def test_attempts_exhausted():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=3, clock=clock, seed=1)

    def dead():
        raise NetworkError("still down")

    with pytest.raises(RetryExhaustedError) as excinfo:
        policy.execute(dead, describe="fetch /x")
    error = excinfo.value
    assert error.attempts == 3
    assert isinstance(error.last_error, NetworkError)
    assert "fetch /x" in str(error)
    assert error.elapsed == clock.now()


def test_deadline_budget_exhausted():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=10, base_delay=1.0, multiplier=2.0,
                         jitter=0.0, deadline=5.0, clock=clock)

    def dead():
        raise NetworkError("down")

    with pytest.raises(RetryExhaustedError, match="deadline") as excinfo:
        policy.execute(dead)
    # 1s + 2s backoffs fit the 5s budget; the 4s third backoff does not.
    assert excinfo.value.attempts == 3
    assert clock.now() <= 5.0


def test_attempt_timeout_discards_slow_answer():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=2, attempt_timeout=1.0,
                         clock=clock, seed=0)

    def slow():
        clock.advance(3.0)  # a DelayFault on the link would do this
        return "late answer"

    with pytest.raises(RetryExhaustedError) as excinfo:
        policy.execute(slow)
    assert isinstance(excinfo.value.last_error, TimeoutError)
    assert excinfo.value.last_error.attempts == 2


def test_fast_answer_beats_attempt_timeout():
    clock = SimulatedClock()
    policy = RetryPolicy(attempt_timeout=1.0, clock=clock)

    def fast():
        clock.advance(0.5)
        return "in time"

    assert policy.execute(fast) == "in time"


def test_non_network_errors_propagate():
    policy = RetryPolicy()
    calls = {"n": 0}

    def broken():
        calls["n"] += 1
        raise ValueError("logic bug")

    with pytest.raises(ValueError):
        policy.execute(broken)
    assert calls["n"] == 1  # not retried


def test_control_flow_errors_never_retried():
    policy = RetryPolicy(max_attempts=5)
    calls = {"n": 0}

    def inner_gave_up():
        calls["n"] += 1
        raise RetryExhaustedError("inner policy done", attempts=3)

    with pytest.raises(RetryExhaustedError):
        policy.execute(inner_gave_up)
    assert calls["n"] == 1


# -- circuit breaker -------------------------------------------------------------


def test_breaker_opens_after_threshold():
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0,
                             clock=clock)
    policy = RetryPolicy(max_attempts=2, clock=clock)

    def dead():
        raise NetworkError("down")

    with pytest.raises(RetryExhaustedError):
        policy.execute(dead, breaker=breaker)
    assert breaker.state == STATE_OPEN

    # Subsequent calls short-circuit without touching the operation.
    calls = {"n": 0}

    def counting():
        calls["n"] += 1
        return "x"

    with pytest.raises(CircuitOpenError) as excinfo:
        policy.execute(counting, breaker=breaker)
    assert calls["n"] == 0
    assert excinfo.value.retry_after > 0
    assert excinfo.value.attempts == 2
    assert breaker.short_circuits == 1


def test_breaker_half_opens_and_closes_on_probe_success():
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                             clock=clock)
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    clock.advance(5.0)
    breaker.before_call()  # cool-down elapsed: probe allowed
    assert breaker.state == STATE_HALF_OPEN
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    assert breaker.consecutive_failures == 0


def test_breaker_half_open_probe_failure_reopens():
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0,
                             clock=clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    breaker.before_call()
    assert breaker.state == STATE_HALF_OPEN
    breaker.record_failure()  # one failed probe re-opens immediately
    assert breaker.state == STATE_OPEN
    assert breaker.times_opened == 2
    with pytest.raises(CircuitOpenError):
        breaker.before_call()


def test_breaker_call_helper_gates_and_records():
    clock = SimulatedClock()
    breaker = CircuitBreaker(failure_threshold=1, clock=clock)
    assert breaker.call(lambda: "fine") == "fine"
    with pytest.raises(NetworkError):
        breaker.call(lambda: (_ for _ in ()).throw(NetworkError("x")))
    assert breaker.state == STATE_OPEN
    with pytest.raises(CircuitOpenError):
        breaker.call(lambda: "never runs")
