"""The adversarial chaos harness: seeded, deterministic, contained.

ISSUE 4 acceptance: the harness runs green under three fixed seeds,
covers at least five attack kinds, and every attack is provably
contained — a typed error or a logged degradation, never a
RecursionError/MemoryError/raw traceback.
"""

import pytest

from repro.errors import NetworkError, ResourceLimitExceeded
from repro.resilience.chaos import (
    ATTACKS, CHAOS_LIMITS, ChaosOutcome, ChaosReport, _execute,
    build_world, run_chaos,
)

FIXED_SEEDS = (20050902, 7, 31337)


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_fixed_seed_runs_are_fully_contained(seed):
    report = run_chaos(seed)
    assert report.ok, "\n".join(report.summary_lines(verbose=True))
    assert len(report.attack_kinds()) == len(ATTACKS)


def test_at_least_five_attack_kinds():
    assert len(ATTACKS) >= 5
    for required in ("deep-nesting", "attribute-flood", "giant-text",
                     "reference-bomb", "oversized-frame",
                     "truncated-frame", "decrypt-bomb"):
        assert required in ATTACKS


def test_runs_are_deterministic_per_seed():
    first = run_chaos(20050902, iterations=2)
    second = run_chaos(20050902, iterations=2)
    assert [str(o) for o in first.outcomes] == \
        [str(o) for o in second.outcomes]


def test_different_seeds_vary_the_attack_sizes():
    one = run_chaos(1)
    two = run_chaos(2)
    assert [str(o) for o in one.outcomes] != \
        [str(o) for o in two.outcomes]


def test_world_is_cached_and_reusable():
    assert build_world() is build_world()
    world = build_world()
    assert world.package_data
    assert world.trust_store.validate_chain is not None


# -- outcome classification --------------------------------------------------


def test_typed_errors_count_as_contained():
    outcome = _execute("x", lambda: (_ for _ in ()).throw(
        ResourceLimitExceeded("max_node_count")
    ))
    assert outcome.contained
    assert "ResourceLimitExceeded" in outcome.detail
    assert _execute("x", lambda: (_ for _ in ()).throw(
        NetworkError("truncated")
    )).contained


def test_untyped_escapes_are_violations():
    def recursion_bomb():
        raise RecursionError("maximum recursion depth exceeded")

    outcome = _execute("bomb", recursion_bomb)
    assert not outcome.contained
    assert "RecursionError" in outcome.detail

    assert not _execute("bomb", lambda: (_ for _ in ()).throw(
        MemoryError()
    )).contained
    assert not _execute("bomb", lambda: (_ for _ in ()).throw(
        ValueError("raw traceback")
    )).contained


def test_violated_invariants_are_violations():
    def bad_invariant():
        raise AssertionError("guard exceeded its own quota")

    outcome = _execute("inv", bad_invariant)
    assert not outcome.contained
    assert "invariant violated" in outcome.detail


def test_report_surfaces_violations():
    report = ChaosReport(seed=0, iterations=1, outcomes=[
        ChaosOutcome("a", True, "fine"),
        ChaosOutcome("b", False, "boom"),
    ])
    assert not report.ok
    assert [o.attack for o in report.violations] == ["b"]
    lines = report.summary_lines()
    assert any("VIOLATION" in line for line in lines)
    # Non-verbose output still names the violation, not the pass.
    assert not any("fine" in line for line in lines)


def test_chaos_limits_are_all_finite():
    """The harness must exercise every quota, so none may be None
    (except the opt-in wall clock, driven by its own attack)."""
    from dataclasses import fields
    for field in fields(CHAOS_LIMITS):
        if field.name == "wall_clock_budget_s":
            continue
        assert getattr(CHAOS_LIMITS, field.name) is not None, field.name


# -- CLI ---------------------------------------------------------------------


def test_chaos_cli_green_run(capsys):
    from repro.tools.cli import main

    assert main(["chaos", "--seed", "20050902"]) == 0
    out = capsys.readouterr().out
    assert "0 violation(s)" in out
    assert "all attacks contained" in out


def test_chaos_cli_reports_violations(monkeypatch, capsys):
    import repro.resilience.chaos as chaos_module
    from repro.tools.cli import main

    def sabotage(world, limits, rng):
        raise RecursionError("escaped")

    monkeypatch.setitem(chaos_module.ATTACKS, "sabotage", sabotage)
    assert main(["chaos", "--seed", "1"]) == 1
    captured = capsys.readouterr()
    assert "sabotage" in captured.out
    assert "violation" in captured.err
