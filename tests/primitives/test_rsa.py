"""RSA key generation, signatures and encryption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CryptoError, DecryptionError, KeyError_
from repro.primitives import rsa
from repro.primitives.keys import RSAPrivateKey, RSAPublicKey
from repro.primitives.random import DeterministicRandomSource

from cryptography.hazmat.primitives import hashes
from cryptography.hazmat.primitives.asymmetric import (
    padding as c_padding, rsa as c_rsa,
)


@pytest.fixture(scope="module")
def key():
    return rsa.generate_keypair(
        1024, DeterministicRandomSource(b"rsa-module-key")
    )


def test_keypair_structure(key):
    assert key.bit_length == 1024
    assert key.p * key.q == key.n
    assert key.p > key.q
    phi = (key.p - 1) * (key.q - 1)
    assert (key.e * key.d) % phi == 1


def test_keygen_rejects_bad_sizes(rng):
    with pytest.raises(KeyError_):
        rsa.generate_keypair(256, rng)
    with pytest.raises(KeyError_):
        rsa.generate_keypair(1023, rng)


def test_sign_verify_roundtrip(key):
    message = b"application manifest bytes"
    for digest in ("sha1", "sha256"):
        signature = rsa.sign(key, message, digest)
        assert rsa.verify(key.public_key(), message, signature, digest)
        assert not rsa.verify(key.public_key(), message + b"!", signature,
                              digest)


def test_signature_is_deterministic(key):
    assert rsa.sign(key, b"m") == rsa.sign(key, b"m")


def test_signature_interops_with_cryptography(key):
    message = b"interop check"
    signature = rsa.sign(key, message, "sha256")
    public = c_rsa.RSAPublicNumbers(key.e, key.n).public_key()
    public.verify(signature, message, c_padding.PKCS1v15(),
                  hashes.SHA256())


def test_cryptography_signature_verifies_here(key):
    private = c_rsa.RSAPrivateNumbers(
        p=key.p, q=key.q,
        d=key.d,
        dmp1=key.d % (key.p - 1), dmq1=key.d % (key.q - 1),
        iqmp=pow(key.q, -1, key.p),
        public_numbers=c_rsa.RSAPublicNumbers(key.e, key.n),
    ).private_key()
    signature = private.sign(b"cross", c_padding.PKCS1v15(), hashes.SHA1())
    assert rsa.verify(key.public_key(), b"cross", signature, "sha1")


def test_wrong_key_rejects(key, rng):
    other = rsa.generate_keypair(1024, rng)
    signature = rsa.sign(key, b"m")
    assert not rsa.verify(other.public_key(), b"m", signature)


def test_crt_matches_plain_exponentiation(key):
    no_crt = RSAPrivateKey(n=key.n, e=key.e, d=key.d)
    message = b"crt equivalence"
    assert rsa.sign(key, message) == rsa.sign(no_crt, message)


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=0, max_size=100))
def test_encrypt_decrypt_roundtrip(plaintext):
    key = _SHARED_KEY
    rng = DeterministicRandomSource(plaintext + b"|pad")
    ciphertext = rsa.encrypt(key.public_key(), plaintext, rng)
    assert rsa.decrypt(key, ciphertext) == plaintext


_SHARED_KEY = rsa.generate_keypair(
    1024, DeterministicRandomSource(b"hypothesis-shared")
)


def test_encrypt_length_limit(key, rng):
    limit = key.byte_length - 11
    rsa.encrypt(key.public_key(), b"x" * limit, rng)
    with pytest.raises(CryptoError):
        rsa.encrypt(key.public_key(), b"x" * (limit + 1), rng)


def test_decrypt_rejects_garbage(key, rng):
    with pytest.raises(DecryptionError):
        rsa.decrypt(key, b"\x00" * key.byte_length)
    with pytest.raises(DecryptionError):
        rsa.decrypt(key, b"short")


def test_tampered_ciphertext_rejected_or_garbled(key, rng):
    plaintext = b"session-key-material"
    ciphertext = bytearray(rsa.encrypt(key.public_key(), plaintext, rng))
    ciphertext[5] ^= 0xFF
    try:
        recovered = rsa.decrypt(key, bytes(ciphertext))
    except DecryptionError:
        return
    assert recovered != plaintext


def test_public_key_serialization_roundtrip(key):
    public = key.public_key()
    again = RSAPublicKey.from_dict(public.to_dict())
    assert again == public
    assert public.fingerprint() == again.fingerprint()
