"""DES / Triple-DES known-answer tests and cross-validation."""

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KeyError_
from repro.primitives import modes
from repro.primitives.des import DES, TripleDES


def test_fips46_known_answer():
    cipher = DES(bytes.fromhex("133457799BBCDFF1"))
    ciphertext = cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF"))
    assert ciphertext.hex().upper() == "85E813540F0AB405"
    assert cipher.decrypt_block(ciphertext) == \
        bytes.fromhex("0123456789ABCDEF")


def test_des_weak_key_is_involutive():
    # The all-zero key is a classic DES weak key: E == D.
    cipher = DES(b"\x00" * 8)
    block = bytes(range(8))
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
    assert cipher.encrypt_block(cipher.encrypt_block(block)) == block


def test_key_size_validation():
    with pytest.raises(KeyError_):
        DES(b"short")
    with pytest.raises(KeyError_):
        TripleDES(b"\x00" * 16)


def test_3des_degenerates_to_des_with_equal_keys(rng):
    key = rng.read(8)
    single = DES(key)
    triple = TripleDES(key * 3)
    block = rng.read(8)
    assert triple.encrypt_block(block) == single.encrypt_block(block)


@settings(max_examples=15, deadline=None)
@given(key=st.binary(min_size=24, max_size=24),
       block=st.binary(min_size=8, max_size=8))
def test_3des_matches_cryptography(key, block):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            from cryptography.hazmat.decrepit.ciphers.algorithms import (
                TripleDES as NativeTDES,
            )
        except ImportError:  # pragma: no cover
            from cryptography.hazmat.primitives.ciphers.algorithms import (
                TripleDES as NativeTDES,
            )
        from cryptography.hazmat.primitives.ciphers import Cipher, modes as cm
        native = Cipher(NativeTDES(key), cm.ECB()).encryptor()
        expected = native.update(block) + native.finalize()
    ours = TripleDES(key).encrypt_block(block)
    assert ours == expected
    assert TripleDES(key).decrypt_block(ours) == block


def test_3des_cbc_mode_roundtrip(rng):
    cipher = TripleDES(rng.read(24))
    iv = rng.read(8)
    plaintext = rng.read(64)
    ciphertext = modes.cbc_encrypt(cipher, plaintext, iv)
    assert modes.cbc_decrypt(cipher, ciphertext, iv) == plaintext


def test_xmlenc_tripledes_roundtrip(rng, manifest):
    from repro.primitives.keys import SymmetricKey
    from repro.xmlcore import canonicalize
    from repro.xmlenc import Decryptor, Encryptor, TRIPLEDES_CBC
    key = SymmetricKey(rng.read(24))
    original = canonicalize(manifest)
    Encryptor(rng=rng).encrypt_element(
        manifest.find("code"), key, algorithm=TRIPLEDES_CBC,
        key_name="k",
    )
    Decryptor(keys={"k": key}).decrypt_in_place(manifest)
    assert canonicalize(manifest) == original


def test_provider_tripledes_agrees(rng):
    from repro.primitives.provider import available_providers, get_provider
    key = rng.read(24)
    iv = rng.read(8)
    padded = rng.read(32)
    reference = get_provider("pure")
    expected = reference.tripledes_cbc_encrypt(key, iv, padded)
    assert reference.tripledes_cbc_decrypt(key, iv, expected) == padded
    for name in available_providers():
        provider = get_provider(name)
        assert provider.tripledes_cbc_encrypt(key, iv, padded) == expected
