"""No key bytes in any repr, log line or raised message.

ISSUE 5 satellite: the TNT203 rule is only as good as the surfaces it
guards, so this suite pins the redaction behaviour directly — key
component integers/bytes must never appear in ``repr``/``str`` output,
in the XKMS audit log, or in exception text raised by the primitives.
"""

import pytest

from repro.errors import CryptoError, PaddingError
from repro.primitives.encoding import int_to_bytes
from repro.primitives.hmac import HMAC
from repro.primitives.keys import RSAPrivateKey, SymmetricKey
from repro.primitives.padding import pkcs7_unpad, xmlenc_unpad

KEY = RSAPrivateKey(
    n=0xC0FFEE1234567890ABCDEF,
    e=65537,
    d=0xDEADBEEFCAFE42421337,
    p=0xF00DFACE99,
    q=0xBAADF00D77,
)

SECRET_BYTES = b"\x13\x37super-secret-key-material\x42"


def leaks(text: str) -> bool:
    """True if any private component shows up in *text* in any of the
    encodings a lazy format string would produce."""
    candidates = []
    for component in (KEY.d, KEY.p, KEY.q):
        candidates += [str(component), hex(component),
                       repr(int_to_bytes(component))]
    candidates += [repr(SECRET_BYTES), SECRET_BYTES.hex()]
    return any(candidate in text for candidate in candidates)


# -- reprs -------------------------------------------------------------------


def test_private_key_repr_redacts_components():
    for text in (repr(KEY), str(KEY), f"{KEY}"):
        assert not leaks(text)
        assert "redacted" in text
    # The public half stays useful for debugging.
    assert str(KEY.bit_length) in repr(KEY)
    assert KEY.fingerprint() in repr(KEY)


def test_symmetric_key_repr_redacts_data():
    key = SymmetricKey(SECRET_BYTES, algorithm="hmac")
    for text in (repr(key), str(key), f"{key}"):
        assert not leaks(text)
    assert key.fingerprint() in repr(key)


def test_hmac_repr_redacts_key_blocks():
    mac = HMAC(SECRET_BYTES, "sha256", b"payload")
    text = repr(mac)
    assert not leaks(text)
    assert "redacted" in text
    assert "sha256" in text


def test_fingerprints_do_not_invert():
    assert not leaks(KEY.fingerprint())
    assert not leaks(SymmetricKey(SECRET_BYTES).fingerprint())


# -- exception text ----------------------------------------------------------


def test_int_to_bytes_overflow_error_is_value_free():
    with pytest.raises(CryptoError) as excinfo:
        int_to_bytes(KEY.d, 2)
    assert not leaks(str(excinfo.value))
    assert str((KEY.d.bit_length() + 7) // 8) not in str(excinfo.value)


@pytest.mark.parametrize("unpad", [pkcs7_unpad, xmlenc_unpad])
def test_unpad_error_does_not_echo_pad_byte(unpad):
    block = SECRET_BYTES[:15] + b"\xfe"  # invalid pad length 0xfe
    with pytest.raises(PaddingError) as excinfo:
        unpad(block, 16)
    text = str(excinfo.value)
    assert "254" not in text and "0xfe" not in text


# -- XKMS audit log ----------------------------------------------------------


def test_xkms_audit_log_records_fault_types_not_payloads():
    from repro.xkms import TrustServer

    server = TrustServer()
    hostile = "<Evil>" + SECRET_BYTES.hex() + "</Evil>"
    server.handle_xml(hostile)
    server.handle_xml("not xml at all \x13\x37")
    assert server.audit_log, "faults must still be audited"
    for line in server.audit_log:
        assert not leaks(line)
        assert "Evil" not in line and "not xml" not in line
        # the entry still names the failure class for the operator
        assert line.startswith("malformed-request:")
        assert line.split(":", 1)[1].isidentifier()
