"""AES key wrap (RFC 3394) and the provider registry."""

import pytest
from hypothesis import given, settings, strategies as st

from cryptography.hazmat.primitives.keywrap import aes_key_wrap

from repro.errors import CryptoError, DecryptionError, ProviderError
from repro.primitives import keywrap
from repro.primitives.provider import (
    PurePythonProvider, available_providers,
    get_provider, set_default_provider,
)


def test_rfc3394_vector_4_1():
    kek = bytes.fromhex("000102030405060708090A0B0C0D0E0F")
    key_data = bytes.fromhex("00112233445566778899AABBCCDDEEFF")
    wrapped = keywrap.wrap_key(kek, key_data)
    assert wrapped.hex().upper() == (
        "1FA68B0A8112B447AEF34BD8FB5A7B829D3E862371D2CFE5"
    )
    assert keywrap.unwrap_key(kek, wrapped) == key_data


@settings(max_examples=20, deadline=None)
@given(
    kek=st.binary(min_size=16, max_size=16),
    key_data=st.binary(min_size=16, max_size=40).filter(
        lambda b: len(b) % 8 == 0
    ),
)
def test_wrap_matches_cryptography(kek, key_data):
    assert keywrap.wrap_key(kek, key_data) == aes_key_wrap(kek, key_data)


def test_unwrap_detects_wrong_kek(rng):
    kek = rng.read(16)
    wrapped = keywrap.wrap_key(kek, rng.read(16))
    with pytest.raises(DecryptionError):
        keywrap.unwrap_key(rng.read(16), wrapped)


def test_unwrap_detects_tampering(rng):
    kek = rng.read(16)
    wrapped = bytearray(keywrap.wrap_key(kek, rng.read(16)))
    wrapped[3] ^= 0x80
    with pytest.raises(DecryptionError):
        keywrap.unwrap_key(kek, bytes(wrapped))


def test_wrap_rejects_short_or_ragged_keys(rng):
    with pytest.raises(CryptoError):
        keywrap.wrap_key(rng.read(16), b"\x00" * 8)
    with pytest.raises(CryptoError):
        keywrap.wrap_key(rng.read(16), b"\x00" * 17)
    with pytest.raises(CryptoError):
        keywrap.unwrap_key(rng.read(16), b"\x00" * 12)


# -- provider registry -------------------------------------------------------


def test_registry_contains_pure():
    assert "pure" in available_providers()
    assert isinstance(get_provider("pure"), PurePythonProvider)


def test_unknown_provider():
    with pytest.raises(ProviderError):
        get_provider("no-such-backend")
    with pytest.raises(ProviderError):
        set_default_provider("no-such-backend")


def test_default_provider_switching():
    previous = set_default_provider("pure")
    try:
        assert get_provider().name == "pure"
    finally:
        set_default_provider(previous)


@pytest.mark.parametrize("name", ["pure", "accelerated"])
def test_providers_agree(name, rng):
    if name not in available_providers():
        pytest.skip(f"{name} provider not available")
    provider = get_provider(name)
    reference = get_provider("pure")
    data = rng.read(333)
    key = rng.read(16)
    iv = rng.read(16)
    assert provider.digest("sha1", data) == reference.digest("sha1", data)
    assert provider.digest("sha256", data) == \
        reference.digest("sha256", data)
    assert provider.hmac("sha256", key, data) == \
        reference.hmac("sha256", key, data)
    padded = data + b"\x00" * (16 - len(data) % 16)
    assert provider.aes_cbc_encrypt(key, iv, padded) == \
        reference.aes_cbc_encrypt(key, iv, padded)
    assert provider.aes_ctr(key, iv[:8], data) == \
        reference.aes_ctr(key, iv[:8], data)
    assert provider.wrap_key(key, key + key) == \
        reference.wrap_key(key, key + key)


def test_provider_rejects_unknown_digest():
    from repro.errors import UnknownAlgorithmError
    with pytest.raises(UnknownAlgorithmError):
        get_provider("pure").digest("md5", b"")
