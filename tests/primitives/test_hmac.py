"""HMAC cross-validation against the standard library and RFC 2202."""

import hmac as std_hmac

import pytest
from hypothesis import given, strategies as st

from repro.primitives.hmac import (
    HMAC, constant_time_equal, hmac_sha1, hmac_sha256,
)

RFC2202_SHA1 = [
    (b"\x0b" * 20, b"Hi There", "b617318655057264e28bc0b6fb378c8ef146be00"),
    (b"Jefe", b"what do ya want for nothing?",
     "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
    (b"\xaa" * 20, b"\xdd" * 50, "125d7342b9ac11cd91a39af48aa17b4f63f175d3"),
]


@pytest.mark.parametrize("key,message,expected", RFC2202_SHA1)
def test_rfc2202_vectors(key, message, expected):
    assert hmac_sha1(key, message).hex() == expected


def test_rfc4231_sha256_vector():
    mac = hmac_sha256(b"\x0b" * 20, b"Hi There")
    assert mac.hex() == (
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    )


@given(st.binary(min_size=1, max_size=200), st.binary(max_size=2048))
def test_matches_stdlib_sha1(key, data):
    assert hmac_sha1(key, data) == std_hmac.new(key, data, "sha1").digest()


@given(st.binary(min_size=1, max_size=200), st.binary(max_size=2048))
def test_matches_stdlib_sha256(key, data):
    assert hmac_sha256(key, data) == \
        std_hmac.new(key, data, "sha256").digest()


def test_long_key_is_hashed_first():
    key = b"k" * 200  # longer than the 64-byte block size
    assert hmac_sha1(key, b"m") == std_hmac.new(key, b"m", "sha1").digest()


def test_incremental_interface():
    mac = HMAC(b"key", "sha256")
    mac.update(b"part one ")
    mac.update(b"part two")
    assert mac.digest() == hmac_sha256(b"key", b"part one part two")


def test_digest_size():
    assert HMAC(b"k", "sha1").digest_size == 20
    assert HMAC(b"k", "sha256").digest_size == 32


def test_constant_time_equal():
    assert constant_time_equal(b"same", b"same")
    assert not constant_time_equal(b"same", b"sane")
    assert not constant_time_equal(b"short", b"longer")
    assert constant_time_equal(b"", b"")
