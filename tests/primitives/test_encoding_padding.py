"""Base64/hex/int encodings and the two padding schemes."""

import base64

import pytest
from hypothesis import given, strategies as st

from repro.errors import CryptoError, PaddingError
from repro.primitives import encoding, padding


@given(st.binary(max_size=512))
def test_b64_roundtrip_and_interop(data):
    encoded = encoding.b64encode(data)
    assert encoded == base64.b64encode(data).decode()
    assert encoding.b64decode(encoded) == data


def test_b64_tolerates_whitespace():
    encoded = encoding.b64encode(b"hello world, disc player")
    broken = "\n  ".join([encoded[:8], encoded[8:16], encoded[16:]])
    assert encoding.b64decode(broken) == b"hello world, disc player"


@pytest.mark.parametrize("bad", ["a", "ab!c", "====", "QUJD=A==", "QQ=A"])
def test_b64_rejects_garbage(bad):
    with pytest.raises(CryptoError):
        encoding.b64decode(bad)


@given(st.binary(min_size=1, max_size=64))
def test_hex_roundtrip(data):
    assert encoding.hexdecode(encoding.hexencode(data)) == data


def test_hex_rejects_garbage():
    with pytest.raises(CryptoError):
        encoding.hexdecode("zz")


@given(st.integers(min_value=0, max_value=2 ** 256))
def test_int_bytes_roundtrip(value):
    assert encoding.bytes_to_int(encoding.int_to_bytes(value)) == value


def test_int_to_bytes_fixed_length():
    assert encoding.int_to_bytes(1, 4) == b"\x00\x00\x00\x01"
    assert encoding.int_to_bytes(0) == b"\x00"
    with pytest.raises(CryptoError):
        encoding.int_to_bytes(256, 1)
    with pytest.raises(CryptoError):
        encoding.int_to_bytes(-1)


@given(st.binary(max_size=100))
def test_pkcs7_roundtrip(data):
    padded = padding.pkcs7_pad(data, 16)
    assert len(padded) % 16 == 0
    assert len(padded) > len(data)
    assert padding.pkcs7_unpad(padded, 16) == data


@given(st.binary(max_size=100))
def test_xmlenc_roundtrip(data):
    padded = padding.xmlenc_pad(data, 16)
    assert len(padded) % 16 == 0
    assert padding.xmlenc_unpad(padded, 16) == data


def test_pkcs7_detects_corruption():
    padded = bytearray(padding.pkcs7_pad(b"data", 16))
    padded[-2] ^= 0x01  # flip a pad byte
    with pytest.raises(PaddingError):
        padding.pkcs7_unpad(bytes(padded), 16)


def test_xmlenc_ignores_arbitrary_pad_bytes():
    padded = bytearray(padding.xmlenc_pad(b"data", 16))
    padded[-2] ^= 0xAA  # arbitrary pad octets are not inspected
    assert padding.xmlenc_unpad(bytes(padded), 16) == b"data"


@pytest.mark.parametrize("unpad", [padding.pkcs7_unpad,
                                   padding.xmlenc_unpad])
def test_unpad_rejects_bad_lengths(unpad):
    with pytest.raises(PaddingError):
        unpad(b"", 16)
    with pytest.raises(PaddingError):
        unpad(b"x" * 15, 16)
    with pytest.raises(PaddingError):
        unpad(b"\x00" * 16, 16)   # pad length 0 is invalid
    with pytest.raises(PaddingError):
        unpad(b"\x11" * 16, 16)   # pad length 17 > block size
