"""Incremental hash/HMAC contexts and provider-routed RSA digests.

The streaming C14N path feeds canonical chunks into
``CryptoProvider.hash_context``; these tests pin the contract — chunked
updates must agree with one-shot digests, both providers must agree
with each other, and the accelerated RSA fast path must be bit-
identical to the pure implementation (PKCS#1 v1.5 is deterministic).
"""

import os

import pytest

from repro.errors import CryptoError
from repro.primitives.keys import RSAPrivateKey
from repro.primitives.provider import (
    available_providers, get_provider, set_default_provider,
)
from repro.primitives.random import DeterministicRandomSource
from repro.primitives.rsa import generate_keypair

accelerated_only = pytest.mark.skipif(
    "accelerated" not in available_providers(),
    reason="accelerated backends unavailable",
)

CHUNKS = [b"", b"a", b"chunk-two", b"x" * 4096, "café".encode(), b"end"]


@pytest.mark.parametrize("name", ["sha1", "sha256"])
def test_hash_context_matches_one_shot(name):
    for provider_name in available_providers():
        provider = get_provider(provider_name)
        context = provider.hash_context(name)
        for chunk in CHUNKS:
            context.update(chunk)
        assert context.digest() == provider.digest(
            name, b"".join(CHUNKS)
        )


@accelerated_only
@pytest.mark.parametrize("name", ["sha1", "sha256"])
def test_hash_context_cross_provider(name):
    digests = set()
    for provider_name in ("pure", "accelerated"):
        context = get_provider(provider_name).hash_context(name)
        for chunk in CHUNKS:
            context.update(chunk)
        digests.add(context.digest())
    assert len(digests) == 1


@pytest.mark.parametrize("name", ["sha1", "sha256"])
def test_hmac_context_matches_one_shot(name):
    key = b"K" * 20
    for provider_name in available_providers():
        provider = get_provider(provider_name)
        context = provider.hmac_context(name, key)
        for chunk in CHUNKS:
            context.update(chunk)
        assert context.digest() == provider.hmac(
            name, key, b"".join(CHUNKS)
        )


def test_hash_context_rejects_unknown_algorithm():
    for provider_name in available_providers():
        provider = get_provider(provider_name)
        with pytest.raises(CryptoError):
            provider.hash_context("md5")
        with pytest.raises(CryptoError):
            provider.hmac_context("md5", b"k")


@pytest.fixture(scope="module")
def keypair():
    rng = DeterministicRandomSource(b"provider-context-tests")
    private = generate_keypair(bits=1024, rng=rng)
    return private, private.public_key()


@accelerated_only
def test_rsa_sign_digest_bit_identical(keypair):
    private, public = keypair
    pure = get_provider("pure")
    accel = get_provider("accelerated")
    for name in ("sha1", "sha256"):
        digest = pure.digest(name, b"signed content")
        sig_pure = pure.rsa_sign_digest(private, digest, name)
        sig_accel = accel.rsa_sign_digest(private, digest, name)
        assert sig_pure == sig_accel
        assert accel.rsa_verify_digest(public, digest, sig_accel, name)
        assert pure.rsa_verify_digest(public, digest, sig_accel, name)


@accelerated_only
def test_rsa_verify_digest_rejects_tampering(keypair):
    private, public = keypair
    accel = get_provider("accelerated")
    digest = accel.digest("sha256", b"payload")
    signature = accel.rsa_sign_digest(private, digest, "sha256")
    bad_sig = bytes([signature[0] ^ 1]) + signature[1:]
    assert not accel.rsa_verify_digest(public, digest, bad_sig, "sha256")
    other = accel.digest("sha256", b"other payload")
    assert not accel.rsa_verify_digest(public, other, signature, "sha256")
    assert not accel.rsa_verify_digest(
        public, digest, signature[:-1], "sha256"
    )


@accelerated_only
def test_rsa_sign_without_crt_factors_falls_back(keypair):
    private, public = keypair
    no_crt = RSAPrivateKey(n=private.n, e=private.e, d=private.d)
    accel = get_provider("accelerated")
    digest = accel.digest("sha256", b"no CRT factors")
    signature = accel.rsa_sign_digest(no_crt, digest, "sha256")
    assert signature == get_provider("pure").rsa_sign_digest(
        no_crt, digest, "sha256"
    )
    assert accel.rsa_verify_digest(public, digest, signature, "sha256")


def test_env_override_selects_provider():
    # REPRO_PROVIDER is applied at import; simulate the hook directly.
    from repro.primitives import provider as provider_module

    original = get_provider().name
    try:
        os.environ["REPRO_PROVIDER"] = "pure"
        provider_module._apply_env_override()
        assert get_provider().name == "pure"
    finally:
        os.environ.pop("REPRO_PROVIDER", None)
        set_default_provider(original)
