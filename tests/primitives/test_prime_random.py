"""Primality testing, prime generation and random sources."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.primitives.prime import generate_prime, is_probable_prime
from repro.primitives.random import (
    DeterministicRandomSource, SystemRandomSource, default_random,
    set_default_random,
)

SMALL_PRIMES = [2, 3, 5, 7, 11, 101, 997]
SMALL_COMPOSITES = [0, 1, 4, 9, 100, 561, 1001, 999]  # 561 is a Carmichael


@pytest.mark.parametrize("p", SMALL_PRIMES)
def test_small_primes(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("c", SMALL_COMPOSITES)
def test_small_composites(c):
    assert not is_probable_prime(c)


def test_known_large_prime():
    # 2^127 - 1 is a Mersenne prime.
    assert is_probable_prime(2 ** 127 - 1)
    assert not is_probable_prime((2 ** 127 - 1) * 3)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=64, max_value=128))
def test_generated_prime_has_exact_bits(bits):
    rng = DeterministicRandomSource(bits)
    p = generate_prime(bits, rng)
    assert p.bit_length() == bits
    assert p % 2 == 1
    assert is_probable_prime(p, rng=rng)


def test_generate_prime_rejects_tiny():
    with pytest.raises(ValueError):
        generate_prime(4)


def test_deterministic_source_reproduces():
    a = DeterministicRandomSource(b"seed")
    b = DeterministicRandomSource(b"seed")
    assert a.read(100) == b.read(100)
    assert DeterministicRandomSource(b"other").read(100) != \
        DeterministicRandomSource(b"seed").read(100)


def test_deterministic_source_seed_types():
    assert DeterministicRandomSource("text").read(8) == \
        DeterministicRandomSource(b"text").read(8)
    DeterministicRandomSource(12345).read(8)  # int seeds accepted


def test_randint_below_is_in_range():
    rng = DeterministicRandomSource(b"range")
    for upper in (1, 2, 7, 255, 256, 1000):
        for _ in range(50):
            assert 0 <= rng.randint_below(upper) < upper
    with pytest.raises(ValueError):
        rng.randint_below(0)


def test_randint_bits_sets_top_bit():
    rng = DeterministicRandomSource(b"bits")
    for bits in (8, 9, 17, 64):
        value = rng.randint_bits(bits)
        assert value.bit_length() == bits


def test_system_source_reads():
    data = SystemRandomSource().read(32)
    assert len(data) == 32


def test_default_random_swap():
    original = default_random()
    replacement = DeterministicRandomSource(b"swap")
    previous = set_default_random(replacement)
    try:
        assert default_random() is replacement
        assert previous is original
    finally:
        set_default_random(original)
