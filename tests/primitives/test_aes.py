"""AES cross-validation against the ``cryptography`` package and FIPS 197."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CryptoError, KeyError_
from repro.primitives import modes
from repro.primitives.aes import AES

from cryptography.hazmat.primitives.ciphers import (
    Cipher, algorithms as c_algorithms, modes as c_modes,
)

# FIPS 197 appendix C known-answer tests.
FIPS_197 = [
    (bytes(range(16)), bytes.fromhex("00112233445566778899aabbccddeeff"),
     bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")),
    (bytes(range(24)), bytes.fromhex("00112233445566778899aabbccddeeff"),
     bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")),
    (bytes(range(32)), bytes.fromhex("00112233445566778899aabbccddeeff"),
     bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")),
]


@pytest.mark.parametrize("key,plaintext,ciphertext", FIPS_197)
def test_fips197_known_answers(key, plaintext, ciphertext):
    cipher = AES(key)
    assert cipher.encrypt_block(plaintext) == ciphertext
    assert cipher.decrypt_block(ciphertext) == plaintext


@pytest.mark.parametrize("key_size", [16, 24, 32])
def test_block_roundtrip(key_size, rng):
    cipher = AES(rng.read(key_size))
    block = rng.read(16)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_invalid_key_sizes():
    for bad in (0, 8, 15, 17, 33):
        with pytest.raises(KeyError_):
            AES(b"\x00" * bad)


def test_invalid_block_size(rng):
    cipher = AES(rng.read(16))
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"short")
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"x" * 17)


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    iv=st.binary(min_size=16, max_size=16),
    blocks=st.integers(min_value=1, max_value=8),
    seed=st.binary(min_size=1, max_size=8),
)
def test_cbc_matches_cryptography(key, iv, blocks, seed):
    plaintext = (seed * (16 * blocks))[: 16 * blocks]
    ours = modes.cbc_encrypt(AES(key), plaintext, iv)
    native = Cipher(c_algorithms.AES(key), c_modes.CBC(iv)).encryptor()
    assert ours == native.update(plaintext) + native.finalize()
    assert modes.cbc_decrypt(AES(key), ours, iv) == plaintext


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=32, max_size=32),
    nonce=st.binary(min_size=8, max_size=8),
    data=st.binary(max_size=200),
)
def test_ctr_matches_cryptography(key, nonce, data):
    ours = modes.ctr_transform(AES(key), data, nonce)
    native = Cipher(
        c_algorithms.AES(key), c_modes.CTR(nonce + b"\x00" * 8)
    ).encryptor()
    assert ours == native.update(data) + native.finalize()
    # CTR is an involution.
    assert modes.ctr_transform(AES(key), ours, nonce) == data


def test_cbc_rejects_bad_iv_and_ragged_input(rng):
    cipher = AES(rng.read(16))
    with pytest.raises(CryptoError):
        modes.cbc_encrypt(cipher, b"\x00" * 16, b"short-iv")
    with pytest.raises(CryptoError):
        modes.cbc_encrypt(cipher, b"\x00" * 15, b"\x00" * 16)
    with pytest.raises(CryptoError):
        modes.cbc_decrypt(cipher, b"\x00" * 15, b"\x00" * 16)


def test_ecb_roundtrip_and_errors(rng):
    cipher = AES(rng.read(16))
    data = rng.read(64)
    assert modes.ecb_decrypt(cipher, modes.ecb_encrypt(cipher, data)) == data
    with pytest.raises(CryptoError):
        modes.ecb_encrypt(cipher, b"ragged")


def test_ctr_nonce_too_long(rng):
    with pytest.raises(CryptoError):
        modes.ctr_transform(AES(rng.read(16)), b"data", b"\x00" * 16)
