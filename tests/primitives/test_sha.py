"""SHA-1/SHA-256 cross-validation against hashlib and FIPS vectors."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.primitives import sha

FIPS_VECTORS_SHA1 = [
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
    ),
]

FIPS_VECTORS_SHA256 = [
    (
        b"abc",
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
    ),
    (
        b"",
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    ),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
]


@pytest.mark.parametrize("message,expected", FIPS_VECTORS_SHA1)
def test_sha1_fips_vectors(message, expected):
    assert sha.sha1(message).hex() == expected


@pytest.mark.parametrize("message,expected", FIPS_VECTORS_SHA256)
def test_sha256_fips_vectors(message, expected):
    assert sha.sha256(message).hex() == expected


def test_million_a_sha1():
    assert sha.sha1(b"a" * 1_000_000).hex() == \
        "34aa973cd4c4daa4f61eeb2bdbad27316534016f"


@given(st.binary(max_size=4096))
def test_sha1_matches_hashlib(data):
    assert sha.sha1(data) == hashlib.sha1(data).digest()


@given(st.binary(max_size=4096))
def test_sha256_matches_hashlib(data):
    assert sha.sha256(data) == hashlib.sha256(data).digest()


@given(st.binary(max_size=512), st.binary(max_size=512),
       st.binary(max_size=512))
def test_incremental_update_equals_one_shot(a, b, c):
    h = sha.SHA256()
    h.update(a)
    h.update(b)
    h.update(c)
    assert h.digest() == sha.sha256(a + b + c)


def test_digest_is_nondestructive():
    h = sha.SHA1(b"partial")
    first = h.digest()
    assert h.digest() == first
    h.update(b" more")
    assert h.digest() == sha.sha1(b"partial more")


def test_copy_is_independent():
    h = sha.SHA256(b"shared prefix ")
    clone = h.copy()
    h.update(b"left")
    clone.update(b"right")
    assert h.digest() == sha.sha256(b"shared prefix left")
    assert clone.digest() == sha.sha256(b"shared prefix right")


def test_new_by_name_and_unknown():
    assert sha.new("sha1", b"x").digest() == sha.sha1(b"x")
    assert sha.new("SHA256", b"x").digest() == sha.sha256(b"x")
    with pytest.raises(ValueError):
        sha.new("md5")


def test_block_boundary_lengths():
    for n in (55, 56, 57, 63, 64, 65, 119, 120, 128):
        data = bytes(range(256))[:n] * 1
        assert sha.sha1(data) == hashlib.sha1(data).digest()
        assert sha.sha256(data) == hashlib.sha256(data).digest()
