"""Certificate issuance, serialization and signature checking."""

import pytest

from repro.certs import Certificate, CertificateAuthority
from repro.errors import CertificateError
from repro.primitives.rsa import generate_keypair


def test_root_is_self_signed(pki):
    root_cert = pki.root.certificate
    assert root_cert.subject == root_cert.issuer
    assert root_cert.is_ca
    assert root_cert.check_signature(root_cert.public_key)


def test_issued_certificate_fields(pki):
    cert = pki.studio.certificate
    assert cert.subject == "CN=Contoso Studios"
    assert cert.issuer == "CN=Studio CA"
    assert not cert.is_ca
    assert cert.allows_usage("digitalSignature")
    assert not cert.allows_usage("keyCertSign")
    assert cert.check_signature(pki.intermediate.certificate.public_key)


def test_signature_fails_under_wrong_issuer(pki):
    cert = pki.studio.certificate
    assert not cert.check_signature(pki.root.certificate.public_key)
    assert not cert.check_signature(pki.rogue_root.certificate.public_key)


def test_tampered_subject_breaks_signature(pki):
    cert = pki.studio.certificate
    tampered = Certificate(
        subject="CN=Somebody Else", issuer=cert.issuer, serial=cert.serial,
        public_key=cert.public_key, not_before=cert.not_before,
        not_after=cert.not_after, is_ca=cert.is_ca,
        key_usage=cert.key_usage, signature=cert.signature,
        signature_digest=cert.signature_digest,
    )
    assert not tampered.check_signature(
        pki.intermediate.certificate.public_key
    )


def test_xml_roundtrip(pki):
    cert = pki.studio.certificate
    again = Certificate.from_xml(cert.to_xml())
    assert again.subject == cert.subject
    assert again.serial == cert.serial
    assert again.public_key == cert.public_key
    assert again.fingerprint() == cert.fingerprint()
    assert again.check_signature(pki.intermediate.certificate.public_key)


def test_malformed_xml_rejected():
    with pytest.raises(CertificateError):
        Certificate.from_xml("<Certificate><Junk/></Certificate>")
    with pytest.raises(CertificateError):
        Certificate.from_xml("<NotACert/>")


def test_validity_window():
    with pytest.raises(CertificateError):
        Certificate(
            subject="s", issuer="i", serial=1,
            public_key=None, not_before=10.0, not_after=5.0,  # type: ignore[arg-type]
        )


def test_unknown_key_usage_rejected(pki):
    with pytest.raises(CertificateError):
        Certificate(
            subject="s", issuer="i", serial=1,
            public_key=pki.studio.certificate.public_key,
            not_before=0.0, not_after=1.0,
            key_usage=("flyToTheMoon",),
        )


def test_is_valid_at(pki):
    cert = pki.studio.certificate
    assert cert.is_valid_at(cert.not_before)
    assert cert.is_valid_at(cert.not_after)
    assert not cert.is_valid_at(cert.not_after + 1)
    assert not cert.is_valid_at(cert.not_before - 1)


def test_non_ca_cannot_issue(pki, rng):
    key = generate_keypair(1024, rng)
    not_a_ca = CertificateAuthority(
        name=pki.studio.name, key=pki.studio.key,
        certificate=pki.studio.certificate,
    )
    with pytest.raises(CertificateError):
        not_a_ca.issue("CN=Anyone", key.public_key())


def test_serials_increment(pki):
    rng_ca = CertificateAuthority.create_root(
        "CN=Serial CA",
        rng=__import__(
            "repro.primitives.random", fromlist=["DeterministicRandomSource"]
        ).DeterministicRandomSource(b"serial-ca"),
    )
    c1 = rng_ca.issue("CN=A", pki.studio.certificate.public_key)
    c2 = rng_ca.issue("CN=B", pki.studio.certificate.public_key)
    assert c2.serial == c1.serial + 1


def test_identity_chain_shape(pki):
    # Studio: leaf + intermediate (root excluded).
    assert [c.subject for c in pki.studio.chain] == [
        "CN=Contoso Studios", "CN=Studio CA",
    ]
    # Author issued directly by the root: leaf only.
    assert [c.subject for c in pki.author.chain] == ["CN=Indie Author"]
