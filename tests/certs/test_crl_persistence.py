"""Revocation state on the durable backend: acknowledged revocations
survive power cycles and invalidate memoized validations on replay."""

import pytest

from repro.certs.store import CRL_NAMESPACE, TrustStore
from repro.errors import DurableStateError
from repro.resilience.crashfs import CrashableFilesystem
from repro.resilience.durable import DurableStore

DIR = "/flash/crl"


def make_store(fs):
    store = TrustStore()
    store.attach_durable(DurableStore(DIR, fs=fs))
    return store


def test_revocations_survive_reopen():
    fs = CrashableFilesystem(seed=0)
    store = make_store(fs)
    store.crl.revoke_entry("CN=Compromised Studio", 11)
    store.crl.revoke_entry("CN=Leaked Device Key", 3)
    reopened = make_store(fs)
    assert ("CN=Compromised Studio", 11) in reopened.crl.revoked
    assert ("CN=Leaked Device Key", 3) in reopened.crl.revoked


def test_issuer_names_with_colons_roundtrip():
    """The serial:issuer encoding splits on the FIRST colon, so issuer
    names containing colons must survive the round trip intact."""
    fs = CrashableFilesystem(seed=0)
    issuer = "CN=Root: Production, O=Studio"
    make_store(fs).crl.revoke_entry(issuer, 7)
    reopened = make_store(fs)
    assert (issuer, 7) in reopened.crl.revoked


def test_replay_bumps_the_generation_stamp():
    """Memoized chain validations key on the trust generation; a
    replayed CRL must not leave the stamp where an empty list had it."""
    fs = CrashableFilesystem(seed=0)
    make_store(fs).crl.revoke_entry("CN=Compromised", 1)
    empty = TrustStore()
    reopened = make_store(fs)
    assert reopened.generation != empty.generation


def test_attach_to_empty_store_does_not_bump_generation():
    fs = CrashableFilesystem(seed=0)
    assert make_store(fs).generation == TrustStore().generation


def test_compaction_preserves_revocations():
    fs = CrashableFilesystem(seed=0)
    store = make_store(fs)
    store.crl.revoke_entry("CN=Compromised", 1)
    store.crl._durable.compact()
    store.crl.revoke_entry("CN=Also Compromised", 2)
    reopened = make_store(fs)
    assert ("CN=Compromised", 1) in reopened.crl.revoked
    assert ("CN=Also Compromised", 2) in reopened.crl.revoked


def test_malformed_persisted_entry_fails_typed():
    fs = CrashableFilesystem(seed=0)
    durable = DurableStore(DIR, fs=fs)
    durable.set(CRL_NAMESPACE, "not-a-serial:CN=X", b"")
    durable.commit()
    with pytest.raises(DurableStateError) as excinfo:
        make_store(fs)
    assert excinfo.value.kind == "tamper"
