"""Trust store chain validation, expiry and revocation."""

import pytest

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.errors import CertificateVerificationError
from repro.primitives.random import DeterministicRandomSource


def test_valid_chain_through_intermediate(pki, trust_store):
    result = trust_store.validate_chain(pki.studio.chain)
    assert result.valid
    assert [c.subject for c in result.chain] == [
        "CN=Contoso Studios", "CN=Studio CA", "CN=BD Root CA",
    ]


def test_valid_direct_chain(pki, trust_store):
    result = trust_store.validate_chain(pki.author.chain)
    assert result.valid
    assert len(result.chain) == 2


def test_untrusted_root_rejected(pki, trust_store):
    result = trust_store.validate_chain(pki.attacker.chain)
    assert not result.valid
    assert "trusted root" in result.reason


def test_empty_chain(trust_store):
    result = trust_store.validate_chain([])
    assert not result.valid


def test_expired_leaf(pki, trust_store):
    result = trust_store.validate_chain(pki.studio.chain, now=1e15)
    assert not result.valid
    assert "validity window" in result.reason


def test_revoked_leaf(pki):
    store = pki.trust_store()
    store.revoke(pki.studio.certificate)
    result = store.validate_chain(pki.studio.chain)
    assert not result.valid
    assert "revoked" in result.reason
    # Other identities stay valid.
    assert store.validate_chain(pki.author.chain).valid


def test_revoked_intermediate_blocks_descendants(pki):
    store = pki.trust_store()
    store.revoke(pki.intermediate.certificate)
    assert not store.validate_chain(pki.studio.chain).valid
    assert store.validate_chain(pki.author.chain).valid


def test_usage_enforcement(pki, trust_store):
    # Studio's leaf allows digitalSignature but not cRLSign.
    assert trust_store.validate_chain(pki.studio.chain).valid
    result = trust_store.validate_chain(pki.studio.chain, usage="cRLSign")
    assert not result.valid
    assert "cRLSign" in result.reason
    # usage=None skips the check entirely.
    assert trust_store.validate_chain(pki.studio.chain, usage=None).valid


def test_intermediate_cache_path_building(pki):
    store = pki.trust_store()
    store.add_intermediate(pki.intermediate.certificate)
    # Chain with only the leaf still validates via the cache.
    result = store.validate_chain([pki.studio.certificate])
    assert result.valid


def test_leaf_cannot_act_as_anchor(pki):
    store = TrustStore()
    with pytest.raises(CertificateVerificationError):
        store.add_root(pki.studio.certificate)


def test_non_self_signed_cannot_be_anchor(pki):
    store = TrustStore()
    with pytest.raises(CertificateVerificationError):
        store.add_root(pki.intermediate.certificate)


def test_chain_length_cap(pki):
    rng = DeterministicRandomSource(b"deep-chain")
    root = CertificateAuthority.create_root("CN=Deep Root", key_bits=512,
                                            rng=rng)
    store = TrustStore(roots=[root.certificate], max_chain_length=3)
    current = root
    chain_certs = []
    for i in range(4):
        current = current.create_intermediate(f"CN=Layer {i}", key_bits=512,
                                              rng=rng)
        chain_certs.insert(0, current.certificate)
    leaf = SigningIdentity.create("CN=Deep Leaf", current, key_bits=512,
                                  rng=rng, issuer_chain=chain_certs[1:])
    result = store.validate_chain(leaf.chain + chain_certs[1:])
    assert not result.valid
    assert "too long" in result.reason


def test_crl_entry_by_issuer_serial(pki):
    store = pki.trust_store()
    leaf = pki.studio.certificate
    store.crl.revoke_entry(leaf.issuer, leaf.serial)
    assert not store.validate_chain(pki.studio.chain).valid
