"""Transform pipeline behaviour and XML mapping."""

import pytest

from repro.dsig import Reference, Signer, Transform, Verifier
from repro.dsig.transforms import (
    BASE64, ENVELOPED_SIGNATURE, XPATH, TransformContext, apply_transforms,
    node_at_path, node_path,
)
from repro.errors import SignatureError
from repro.primitives.encoding import b64encode
from repro.xmlcore import C14N, EXC_C14N, canonicalize, parse_element
from repro.xmlcore.tree import Element


def test_node_path_roundtrip():
    root = parse_element("<r><a/><b><c/><d><e/></d></b></r>")
    e = root.find("e")
    path = node_path(e)
    assert path == (1, 1, 0)
    clone = root.copy()
    assert node_at_path(clone, path).local == "e"


def test_c14n_transform():
    root = parse_element('<r xmlns:u="urn:u" a="1"><c/></r>')
    out = apply_transforms(root.copy(), [Transform(C14N)],
                           TransformContext())
    assert out == canonicalize(root, C14N)


def test_exclusive_c14n_transform_with_prefixes():
    doc = parse_element('<r xmlns:keep="urn:k" xmlns:drop="urn:d"><c/></r>')
    child = doc.child_elements()[0]
    out = apply_transforms(
        child, [Transform(EXC_C14N, inclusive_prefixes=("keep",))],
        TransformContext(),
    )
    assert out == b'<c xmlns:keep="urn:k"></c>'


def test_base64_transform_from_element():
    node = parse_element(f"<data>{b64encode(b'raw bytes')}</data>")
    out = apply_transforms(node, [Transform(BASE64)], TransformContext())
    assert out == b"raw bytes"


def test_base64_transform_from_bytes():
    out = apply_transforms(
        b64encode(b"x").encode(), [Transform(BASE64)], TransformContext(),
    )
    assert out == b"x"


def test_enveloped_removes_only_the_processed_signature():
    root = parse_element(
        '<r xmlns:ds="http://www.w3.org/2000/09/xmldsig#">'
        "<data>v</data><ds:Signature><ds:SignedInfo/></ds:Signature></r>"
    )
    signature = root.find("Signature")
    working = root.copy()
    context = TransformContext(
        working_root=working, signature_path=node_path(signature),
    )
    out = apply_transforms(working, [Transform(ENVELOPED_SIGNATURE),
                                     Transform(C14N)], context)
    assert b"Signature" not in out
    assert b"<data>v</data>" in out
    # The original tree is untouched.
    assert root.find("Signature") is not None


def test_enveloped_without_context_fails():
    node = parse_element("<r/>")
    with pytest.raises(SignatureError):
        apply_transforms(node, [Transform(ENVELOPED_SIGNATURE)],
                         TransformContext())


def test_xpath_transform_selects_subset():
    root = parse_element(
        "<m><markup><x>keep</x></markup><code><y>skip</y></code></m>"
    )
    out = apply_transforms(
        root, [Transform(XPATH, xpath="//markup"), Transform(C14N)],
        TransformContext(),
    )
    assert out == b"<markup><x>keep</x></markup>"


def test_xpath_transform_multiple_selection_concatenates():
    root = parse_element("<m><s>1</s><t/><s>2</s></m>")
    out = apply_transforms(
        root, [Transform(XPATH, xpath="//s")], TransformContext(),
    )
    assert out == b"<s>1</s><s>2</s>"


def test_xpath_without_expression_fails():
    with pytest.raises(SignatureError):
        apply_transforms(parse_element("<r/>"),
                         [Transform(XPATH)], TransformContext())


def test_unknown_transform_rejected():
    with pytest.raises(SignatureError):
        apply_transforms(parse_element("<r/>"),
                         [Transform("urn:bogus")], TransformContext())


def test_transform_xml_roundtrip():
    for transform in [
        Transform(C14N),
        Transform(ENVELOPED_SIGNATURE),
        Transform(XPATH, xpath="//markup"),
        Transform(EXC_C14N, inclusive_prefixes=("a", "b")),
        Transform("http://www.w3.org/2002/07/decrypt#XML",
                  except_uris=("#e1", "#e2")),
    ]:
        again = Transform.from_element(transform.to_element())
        assert again == transform


def test_signed_xpath_subset(pki, trust_store):
    """Sign only the markup part of a manifest (Fig 5 selective signing)."""
    manifest = parse_element(
        '<manifest xmlns="urn:disc" Id="m1">'
        "<markup><region/></markup><code><script>v()</script></code>"
        "</manifest>"
    )
    signer = Signer(pki.studio.key, identity=pki.studio)
    reference = Reference(
        uri="#m1",
        transforms=[Transform(XPATH, xpath="//markup"), Transform(C14N)],
    )
    signature = signer.sign_references([reference], parent=manifest)
    verifier = Verifier(trust_store=trust_store)
    assert verifier.verify(signature).valid
    # Changing unsigned code does NOT invalidate...
    manifest.find("script").children[0].data = "changed()"
    assert verifier.verify(signature).valid
    # ...changing the signed markup does.
    manifest.find("markup").append(Element("injected"))
    assert not verifier.verify(signature).valid
