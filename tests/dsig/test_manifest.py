"""ds:Manifest — application-controlled per-reference validation."""

import pytest

from repro.dsig import Reference, Signer, Transform, Verifier
from repro.dsig.manifest import (
    MANIFEST_TYPE, find_manifest, sign_with_manifest,
    validate_manifest_references,
)
from repro.errors import SignatureError
from repro.xmlcore import C14N, DSIG_NS, parse_element


@pytest.fixture
def cluster():
    return parse_element(
        '<cluster xmlns="urn:disc" Id="cl">'
        '<track Id="t1"><v>feature</v></track>'
        '<track Id="t2"><v>bonus</v></track>'
        "</cluster>"
    )


@pytest.fixture
def resources():
    return {
        "bd://BDMV/STREAM/00001.m2ts": b"\x47" + b"A" * 187,
        "bd://BDMV/STREAM/00002.m2ts": b"\x47" + b"B" * 187,
    }


def _sign(pki, cluster, resources):
    signer = Signer(pki.studio.key, identity=pki.studio)
    references = [
        Reference(uri="#t1", transforms=[Transform(C14N)]),
        Reference(uri="#t2", transforms=[Transform(C14N)]),
        Reference(uri="bd://BDMV/STREAM/00001.m2ts"),
        Reference(uri="bd://BDMV/STREAM/00002.m2ts"),
    ]
    return sign_with_manifest(signer, references, parent=cluster,
                              resolver=resources.__getitem__)


def test_core_validation_covers_manifest_only(pki, trust_store, cluster,
                                              resources):
    signature = _sign(pki, cluster, resources)
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    report = verifier.verify(signature)
    assert report.valid
    assert report.references[0].uri.startswith("#dsig-manifest")
    reference_el = signature.find("Reference", DSIG_NS)
    assert reference_el.get("Type") == MANIFEST_TYPE


def test_all_manifest_references_validate(pki, cluster, resources):
    signature = _sign(pki, cluster, resources)
    validation = validate_manifest_references(
        signature, resolver=resources.__getitem__,
    )
    assert validation.all_valid
    assert len(validation.results) == 4


def test_broken_reference_does_not_break_core(pki, trust_store, cluster,
                                              resources):
    """The point of ds:Manifest: a damaged bonus track leaves the
    signature (and the feature) intact — the application decides."""
    signature = _sign(pki, cluster, resources)
    resources["bd://BDMV/STREAM/00002.m2ts"] = b"corrupted!"
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    assert verifier.verify(signature).valid  # core still valid
    validation = validate_manifest_references(
        signature, resolver=resources.__getitem__,
    )
    assert not validation.all_valid
    assert validation.valid_for("bd://BDMV/STREAM/00001.m2ts")
    assert not validation.valid_for("bd://BDMV/STREAM/00002.m2ts")


def test_selective_checking_only_uris(pki, cluster, resources):
    signature = _sign(pki, cluster, resources)
    resources["bd://BDMV/STREAM/00002.m2ts"] = b"corrupted!"
    validation = validate_manifest_references(
        signature, resolver=resources.__getitem__,
        only_uris=("#t1", "bd://BDMV/STREAM/00001.m2ts"),
    )
    # The player only asked about what it plays — all good.
    assert validation.all_valid
    assert len(validation.results) == 2


def test_tampering_the_manifest_breaks_core(pki, trust_store, cluster,
                                            resources):
    signature = _sign(pki, cluster, resources)
    manifest_el = find_manifest(signature)
    reference_el = manifest_el.child_elements()[0]
    reference_el.set("URI", "#t2")  # redirect a reference
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    assert not verifier.verify(signature).valid


def test_markup_tampering_caught_by_manifest_check(pki, cluster,
                                                   resources):
    signature = _sign(pki, cluster, resources)
    cluster.get_element_by_id("t1").find("v").children[0].data = "evil"
    validation = validate_manifest_references(
        signature, resolver=resources.__getitem__,
    )
    assert not validation.valid_for("#t1")
    assert validation.valid_for("#t2")


def test_missing_manifest_raises(pki, cluster):
    signer = Signer(pki.studio.key, identity=pki.studio)
    plain = signer.sign_detached("#t1", parent=cluster)
    with pytest.raises(SignatureError, match="no ds:Manifest"):
        validate_manifest_references(plain)
    assert find_manifest(plain) is None


def test_unknown_uri_lookup(pki, cluster, resources):
    signature = _sign(pki, cluster, resources)
    validation = validate_manifest_references(
        signature, resolver=resources.__getitem__,
    )
    with pytest.raises(SignatureError, match="no reference"):
        validation.valid_for("#ghost")
