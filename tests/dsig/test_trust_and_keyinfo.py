"""Key resolution policy and KeyInfo handling (Fig 3 execution policy)."""


from repro.dsig import Signer, Verifier
from repro.dsig.keyinfo import KeyInfo as KeyInfoClass
from repro.xmlcore import DSIG_NS, parse_element, serialize


def test_untrusted_signer_barred(pki, trust_store, manifest):
    """Fig 3: verification failure bars the application."""
    signer = Signer(pki.attacker.key, identity=pki.attacker)
    signature = signer.sign_enveloped(manifest)
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    report = verifier.verify(signature)
    assert not report.valid
    assert report.signature_valid  # cryptographically fine...
    assert not report.certificate_validation.valid  # ...but untrusted


def test_bare_key_value_refused_when_trust_required(pki, trust_store,
                                                    manifest):
    signer = Signer(pki.studio.key, include_key_value=True)
    signature = signer.sign_enveloped(manifest)
    strict = Verifier(trust_store=trust_store, require_trusted_key=True)
    report = strict.verify(signature)
    assert not report.valid
    assert "trusted root" in report.error
    # A lenient verifier accepts the bare key.
    lenient = Verifier()
    assert lenient.verify(signature).valid
    assert lenient.verify(signature).key_source == "key-value"


def test_explicit_key_overrides_keyinfo(pki, manifest):
    signer = Signer(pki.studio.key, identity=pki.studio)
    signature = signer.sign_enveloped(manifest)
    verifier = Verifier()
    report = verifier.verify(signature, key=pki.studio.key.public_key())
    assert report.valid
    assert report.key_source == "explicit"
    # Wrong explicit key fails core validation.
    report = verifier.verify(signature, key=pki.author.key.public_key())
    assert not report.signature_valid


def test_key_name_lookup(pki, manifest):
    signer = Signer(pki.studio.key, key_name="studio-signing-key-1")
    signature = signer.sign_enveloped(manifest)

    def locator(name):
        if name == "studio-signing-key-1":
            return pki.studio.key.public_key()
        return None

    verifier = Verifier(key_locator=locator)
    report = verifier.verify(signature)
    assert report.valid
    assert report.key_source == "key-name"


def test_key_name_lookup_failure(pki, manifest):
    signer = Signer(pki.studio.key, key_name="unknown-key")
    signature = signer.sign_enveloped(manifest)
    verifier = Verifier(key_locator=lambda name: None)
    report = verifier.verify(signature)
    assert not report.valid
    assert "could not be located" in report.error


def test_no_key_at_all(pki, manifest):
    signer = Signer(pki.studio.key)  # empty KeyInfo
    signature = signer.sign_enveloped(manifest)
    report = Verifier().verify(signature)
    assert not report.valid
    assert "no KeyInfo" in report.error


def test_keyinfo_xml_roundtrip(pki):
    info = KeyInfoClass(
        key_name="the-key",
        key_value=pki.studio.key.public_key(),
        certificates=list(pki.studio.chain),
        retrieval_uri="http://trust.example/keys/1",
    )
    again = KeyInfoClass.from_element(
        parse_element(serialize(info.to_element()))
    )
    assert again.key_name == "the-key"
    assert again.key_value == pki.studio.key.public_key()
    assert [c.subject for c in again.certificates] == \
        [c.subject for c in pki.studio.chain]
    assert again.retrieval_uri == "http://trust.example/keys/1"


def test_certificate_chain_embedded_in_signature(pki, manifest):
    signer = Signer(pki.studio.key, identity=pki.studio)
    signature = signer.sign_enveloped(manifest)
    x509 = signature.find("X509Data", DSIG_NS)
    assert x509 is not None
    certs = x509.findall("X509Certificate", DSIG_NS)
    assert len(certs) == 2  # leaf + intermediate


def test_expired_certificate_at_verification_time(pki, trust_store,
                                                  manifest):
    signer = Signer(pki.studio.key, identity=pki.studio)
    signature = signer.sign_enveloped(manifest)
    late = Verifier(trust_store=trust_store, require_trusted_key=True,
                    now=1e15)
    report = late.verify(signature)
    assert not report.valid
    assert "validity window" in report.certificate_validation.reason


def test_revoked_certificate(pki, manifest):
    store = pki.trust_store()
    signer = Signer(pki.studio.key, identity=pki.studio)
    signature = signer.sign_enveloped(manifest)
    verifier = Verifier(trust_store=store, require_trusted_key=True)
    assert verifier.verify(signature).valid
    store.revoke(pki.studio.certificate)
    assert not verifier.verify(signature).valid


def test_not_a_signature_element():
    report = Verifier().verify(parse_element("<NotASignature/>"))
    assert not report.valid
    assert "not a ds:Signature" in report.error
