"""Signer/SignedInfo/Reference edge cases not covered elsewhere."""

import pytest

from repro.dsig import (
    Reference, SignedInfo, Signer, Transform, Verifier,
)
from repro.dsig.reference import ReferenceContext, dereference
from repro.errors import ReferenceError_, SignatureError
from repro.xmlcore import C14N, DSIG_NS, parse_element, serialize


def test_signed_info_requires_references():
    with pytest.raises(SignatureError, match="at least one reference"):
        SignedInfo().to_element()


def test_signed_info_missing_methods_rejected():
    broken = parse_element(
        '<SignedInfo xmlns="http://www.w3.org/2000/09/xmldsig#">'
        '<Reference URI=""/></SignedInfo>'
    )
    with pytest.raises(SignatureError, match="method"):
        SignedInfo.from_element(broken)


def test_reference_from_element_requires_digest():
    broken = parse_element(
        '<Reference xmlns="http://www.w3.org/2000/09/xmldsig#" URI=""/>'
    )
    with pytest.raises(SignatureError, match="digest"):
        Reference.from_element(broken)


def test_reference_roundtrip_with_all_fields():
    reference = Reference(
        uri="#x", transforms=[Transform(C14N)],
        digest_value=b"\x01\x02", reference_id="r1",
        reference_type="http://example/type",
    )
    again = Reference.from_element(
        parse_element(serialize(reference.to_element()))
    )
    assert again == reference


def test_dereference_without_uri():
    with pytest.raises(ReferenceError_, match="no URI"):
        dereference(Reference(uri=None), ReferenceContext())


def test_dereference_same_document_without_root():
    with pytest.raises(ReferenceError_, match="without a document"):
        dereference(Reference(uri="#x"), ReferenceContext())


def test_dereference_resolver_exception_wrapped():
    def failing(uri):
        raise IOError("drive fault")
    context = ReferenceContext(resolver=failing)
    with pytest.raises(ReferenceError_, match="drive fault"):
        dereference(Reference(uri="bd://x"), context)


def test_extra_references_on_enveloped(pki, trust_store, manifest):
    """sign_enveloped can carry extra external references."""
    resources = {"bd://extra.bin": b"extra-resource"}
    signer = Signer(pki.studio.key, identity=pki.studio)
    extra = Reference(uri="bd://extra.bin")
    signature = signer.sign_enveloped(
        manifest, extra_references=[extra],
        resolver=resources.__getitem__,
    )
    verifier = Verifier(trust_store=trust_store,
                        resolver=resources.__getitem__)
    assert verifier.verify(signature).valid
    resources["bd://extra.bin"] = b"changed"
    assert not verifier.verify(signature).valid


def test_signature_id_attribute(pki, manifest):
    signer = Signer(pki.studio.key, include_key_value=True)
    signature = signer.sign_enveloped(manifest, signature_id="sig-1")
    assert signature.get("Id") == "sig-1"


def test_hmac_wrong_key_type_rejected(pki):
    from repro.dsig.algorithms import HMAC_SHA1, compute_signature
    with pytest.raises(SignatureError):
        compute_signature(HMAC_SHA1, pki.studio.key, b"data")


def test_unknown_algorithm_uris():
    from repro.errors import UnknownAlgorithmError
    from repro.dsig import algorithms
    with pytest.raises(UnknownAlgorithmError):
        algorithms.compute_digest("urn:nope", b"")
    with pytest.raises(UnknownAlgorithmError):
        algorithms.signature_kind("urn:nope")


def test_verifier_rejects_unknown_c14n(pki, manifest):
    signer = Signer(pki.studio.key, include_key_value=True)
    signature = signer.sign_enveloped(manifest)
    method = signature.find("CanonicalizationMethod", DSIG_NS)
    method.set("Algorithm", "urn:bogus-c14n")
    report = Verifier().verify(signature)
    assert not report.valid
    assert "failed" in report.error or not report.signature_valid


def test_verify_skips_malformed_signature_value(pki, manifest):
    signer = Signer(pki.studio.key, include_key_value=True)
    signature = signer.sign_enveloped(manifest)
    value = signature.find("SignatureValue", DSIG_NS)
    value.children[0].data = "!!! not base64 !!!"
    report = Verifier().verify(signature)
    assert not report.valid
    assert "malformed" in report.error
