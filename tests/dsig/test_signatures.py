"""XMLDSig end-to-end: enveloped, enveloping and detached forms (Fig 6)."""

import pytest

from repro.dsig import (
    HMAC_SHA1, RSA_SHA256, Reference, SHA256, Signer, Transform, Verifier,
)
from repro.errors import SignatureError, VerificationError
from repro.primitives.keys import SymmetricKey
from repro.xmlcore import (
    C14N, DSIG_NS, EXC_C14N, parse_element, serialize,
)


@pytest.fixture
def signer(pki):
    return Signer(pki.studio.key, identity=pki.studio)


@pytest.fixture
def verifier(pki, trust_store):
    return Verifier(trust_store=trust_store, require_trusted_key=True)


def test_enveloped_roundtrip(signer, verifier, manifest):
    signature = signer.sign_enveloped(manifest)
    assert signature.parent is manifest
    report = verifier.verify(signature)
    assert report.valid
    assert report.signer_subject == "CN=Contoso Studios"
    assert report.key_source == "certificate"


def test_enveloped_survives_serialization(signer, verifier, manifest):
    signer.sign_enveloped(manifest)
    reparsed = parse_element(serialize(manifest))
    signature = reparsed.find("Signature", DSIG_NS)
    assert verifier.verify(signature).valid


def test_enveloped_detects_content_tamper(signer, verifier, manifest):
    signature = signer.sign_enveloped(manifest)
    manifest.find("script").children[0].data = "var score = 9999;"
    report = verifier.verify(signature)
    assert not report.valid
    assert report.signature_valid          # core signature still good
    assert not report.references_valid     # but the digest differs


def test_enveloped_detects_attribute_tamper(signer, verifier, manifest):
    signature = signer.sign_enveloped(manifest)
    manifest.find("region").set("width", "640")
    assert not verifier.verify(signature).valid


def test_signature_value_tamper(signer, verifier, manifest):
    signature = signer.sign_enveloped(manifest)
    value = signature.find("SignatureValue", DSIG_NS)
    text = value.children[0]
    text.data = ("A" if not text.data.startswith("A") else "B") \
        + text.data[1:]
    report = verifier.verify(signature)
    assert not report.signature_valid


def test_syntactic_variation_still_verifies(signer, verifier, manifest):
    """The C14N property (Fig 6): re-serialized markup verifies."""
    signer.sign_enveloped(manifest)
    text = serialize(manifest, pretty=False)
    # Reparse — attribute quoting/entity differences are gone after C14N.
    reparsed = parse_element(text)
    signature = reparsed.find("Signature", DSIG_NS)
    assert verifier.verify(signature).valid


def test_fragment_reference(signer, verifier, manifest):
    signature = signer.sign_enveloped(manifest, uri="#manifest-1")
    assert verifier.verify(signature).valid


def test_unknown_fragment_fails(signer, verifier, manifest):
    signature = signer.sign_enveloped(manifest)
    # Verification of a reference to a missing Id reports an error.
    ref_el = signature.find("Reference", DSIG_NS)
    ref_el.set("URI", "#no-such-id")
    report = verifier.verify(signature)
    assert not report.valid
    assert "no element with Id" in report.references[0].error


def test_enveloping_bytes(signer, verifier):
    signature = signer.sign_enveloping(b"\x00\x01binary resource",
                                       object_id="res-1")
    assert verifier.verify(signature).valid


def test_enveloping_bytes_tamper(signer, verifier):
    from repro.primitives.encoding import b64encode
    signature = signer.sign_enveloping(b"payload", object_id="res-1")
    obj = signature.find("Object", DSIG_NS)
    obj.children[0].data = b64encode(b"evil-payload")
    assert not verifier.verify(signature).valid


def test_enveloping_element(signer, verifier):
    content = parse_element(
        '<scores xmlns="urn:game"><top player="ann">42</top></scores>'
    )
    signature = signer.sign_enveloping(content, object_id="scores")
    assert verifier.verify(signature).valid
    signature.find("top").set("player", "mallory")
    assert not verifier.verify(signature).valid


def test_detached_same_document(signer, verifier):
    cluster = parse_element(
        '<cluster xmlns="urn:disc"><track Id="t1"><x>1</x></track>'
        "<track Id='t2'><x>2</x></track></cluster>"
    )
    signature = signer.sign_detached("#t1", parent=cluster)
    assert verifier.verify(signature).valid
    # Tampering t2 does not affect a signature over t1.
    cluster.get_element_by_id("t2").find("x").children[0].data = "tampered"
    assert verifier.verify(signature).valid
    cluster.get_element_by_id("t1").find("x").children[0].data = "tampered"
    assert not verifier.verify(signature).valid


def test_detached_external(signer, pki, trust_store):
    resources = {"bd://clips/01000.m2ts": b"\x47" + b"TS" * 90}
    signature = signer.sign_detached("bd://clips/01000.m2ts",
                                     resolver=resources.__getitem__)
    verifier = Verifier(trust_store=trust_store,
                        resolver=resources.__getitem__)
    assert verifier.verify(signature).valid
    resources["bd://clips/01000.m2ts"] += b"\x00"
    assert not verifier.verify(signature).valid


def test_external_without_resolver_fails(signer, trust_store):
    signature = signer.sign_detached(
        "bd://x", resolver={"bd://x": b"d"}.__getitem__
    )
    verifier = Verifier(trust_store=trust_store)
    report = verifier.verify(signature)
    assert not report.valid
    assert "no resolver" in report.references[0].error


def test_multiple_references(signer, verifier):
    cluster = parse_element(
        '<cluster xmlns="urn:disc"><a Id="p1"><v>1</v></a>'
        '<b Id="p2"><v>2</v></b></cluster>'
    )
    references = [
        Reference(uri="#p1", transforms=[Transform(C14N)]),
        Reference(uri="#p2", transforms=[Transform(C14N)]),
    ]
    signature = signer.sign_references(references, parent=cluster)
    assert verifier.verify(signature).valid
    cluster.get_element_by_id("p2").find("v").children[0].data = "3"
    report = verifier.verify(signature)
    assert not report.valid
    assert [r.valid for r in report.references] == [True, False]


def test_hmac_signature_roundtrip(manifest):
    secret = SymmetricKey(b"shared-disc-player-secret", "hmac")
    signer = Signer(secret, signature_method=HMAC_SHA1)
    signature = signer.sign_enveloped(manifest)
    verifier = Verifier()
    assert verifier.verify(signature, key=secret).valid
    assert not verifier.verify(
        signature, key=SymmetricKey(b"wrong", "hmac")
    ).valid


def test_rsa_sha256_and_exclusive_c14n(pki, trust_store, manifest):
    signer = Signer(
        pki.studio.key, identity=pki.studio,
        signature_method=RSA_SHA256, digest_method=SHA256,
        c14n_method=EXC_C14N,
    )
    signature = signer.sign_enveloped(manifest)
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    assert verifier.verify(signature).valid


def test_rsa_method_requires_rsa_key():
    with pytest.raises(SignatureError):
        Signer(SymmetricKey(b"not-rsa", "hmac"))


def test_verify_or_raise(signer, verifier, manifest):
    signature = signer.sign_enveloped(manifest)
    verifier.verify_or_raise(signature)
    manifest.find("script").children[0].data = "changed"
    with pytest.raises(VerificationError):
        verifier.verify_or_raise(signature)
