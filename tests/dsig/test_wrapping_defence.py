"""Duplicate-Id resolution is a hard failure (wrapping defence).

A signature over ``#id`` used to dereference the *first* element in
document order carrying that Id — exactly the ambiguity a wrapping
attacker exploits by planting a decoy before the signed original.
Resolution now refuses ambiguous documents outright.
"""

import pytest

from repro.dsig import Reference, Signer, Transform, Verifier
from repro.dsig.reference import ReferenceContext, dereference
from repro.errors import ReferenceError_
from repro.xmlcore import C14N, DSIG_NS, parse_element, serialize


@pytest.fixture
def signer(pki):
    return Signer(pki.studio.key, identity=pki.studio)


@pytest.fixture
def verifier(pki, trust_store):
    return Verifier(trust_store=trust_store, require_trusted_key=True)


def _dereference(root, uri):
    reference = Reference(uri=uri, transforms=[Transform(C14N)])
    return dereference(reference, ReferenceContext(root=root))


def test_unique_id_still_resolves(manifest):
    target, _ = _dereference(manifest, "#markup-1")
    assert target.get("Id") == "markup-1"


def test_missing_id_raises(manifest):
    with pytest.raises(ReferenceError_, match="no element with Id"):
        _dereference(manifest, "#nonexistent")


def test_duplicate_id_refused(manifest):
    decoy = parse_element(
        '<markup xmlns="urn:bda:bdmv:interactive-cluster" Id="markup-1">'
        "<submarkup kind='layout' Id='evil-1'/></markup>"
    )
    manifest.find("code").append(decoy)
    with pytest.raises(ReferenceError_, match="duplicate Id"):
        _dereference(manifest, "#markup-1")


def test_wrapped_signature_does_not_verify(signer, verifier, manifest):
    """End to end: planting a decoy Id invalidates the signature."""
    signature = signer.sign_enveloped(manifest, uri="#manifest-1")
    assert verifier.verify(signature).valid

    wrapper = parse_element(
        "<delivery>"
        '<manifest xmlns="urn:bda:bdmv:interactive-cluster"'
        ' Id="manifest-1"><code Id="evil-code">'
        '<script Id="evil-script">grantEverything();</script>'
        "</code></manifest></delivery>"
    )
    reparsed = parse_element(serialize(manifest))
    wrapper.append(reparsed)
    moved = reparsed.find("Signature", DSIG_NS)
    report = verifier.verify(moved)
    assert not report.valid
    assert not report.references_valid
    assert any("duplicate Id" in (r.error or "")
               for r in report.references)
