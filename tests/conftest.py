"""Shared fixtures: deterministic randomness and a small PKI.

Key generation is the slow part of the suite, so the PKI is built once
per session from a fixed seed; tests must not mutate the shared trust
store (build a fresh one from ``pki.root.certificate`` when needed).
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.primitives.random import DeterministicRandomSource


@dataclass
class PKI:
    root: CertificateAuthority
    intermediate: CertificateAuthority
    studio: SigningIdentity
    author: SigningIdentity
    rogue_root: CertificateAuthority
    attacker: SigningIdentity

    def trust_store(self) -> TrustStore:
        return TrustStore(roots=[self.root.certificate])


@pytest.fixture
def rng():
    """Fresh deterministic randomness for each test."""
    return DeterministicRandomSource(b"repro-test-seed")


@pytest.fixture(scope="session")
def pki() -> PKI:
    rng = DeterministicRandomSource(b"repro-session-pki")
    root = CertificateAuthority.create_root("CN=BD Root CA", rng=rng)
    intermediate = root.create_intermediate("CN=Studio CA", rng=rng)
    studio = SigningIdentity.create("CN=Contoso Studios", intermediate,
                                    rng=rng)
    author = SigningIdentity.create("CN=Indie Author", root, rng=rng)
    rogue_root = CertificateAuthority.create_root("CN=Rogue Root", rng=rng)
    attacker = SigningIdentity.create("CN=Mallory", rogue_root, rng=rng)
    return PKI(root, intermediate, studio, author, rogue_root, attacker)


@pytest.fixture
def trust_store(pki) -> TrustStore:
    return pki.trust_store()


MANIFEST_XML = """\
<manifest xmlns="urn:bda:bdmv:interactive-cluster" Id="manifest-1">
  <markup Id="markup-1">
    <submarkup kind="layout" Id="layout-1">
      <region name="main" width="1920" height="1080"/>
      <region name="menu" width="1920" height="200"/>
    </submarkup>
    <submarkup kind="timing" Id="timing-1">
      <seq begin="0s"><clip ref="bd://clips/intro.m2ts" dur="12s"/></seq>
    </submarkup>
  </markup>
  <code Id="code-1">
    <script Id="script-1" language="ecmascript">
      var score = 0;
      function onKey(k) { score = score + 1; }
    </script>
  </code>
</manifest>
"""


@pytest.fixture
def manifest_xml() -> str:
    return MANIFEST_XML


@pytest.fixture
def manifest(manifest_xml):
    from repro.xmlcore import parse_element
    return parse_element(manifest_xml)
