"""The W3C Decryption Transform in isolation (paper ref [21])."""

import pytest

from repro.core import apply_decryption_transform
from repro.errors import SignatureError
from repro.primitives.keys import SymmetricKey
from repro.xmlcore import XMLENC_NS, canonicalize, parse_element
from repro.xmlenc import Decryptor, Encryptor


@pytest.fixture
def key(rng):
    return SymmetricKey(rng.read(16))


@pytest.fixture
def encryptor(rng):
    return Encryptor(rng=rng)


@pytest.fixture
def decryptor(key):
    return Decryptor(keys={"k": key})


def doc():
    return parse_element(
        '<pkg xmlns="urn:d" Id="p">'
        '<a Id="a1"><v>alpha</v></a>'
        '<b Id="b1"><v>beta</v></b>'
        "</pkg>"
    )


def test_decrypts_descendants(encryptor, decryptor, key):
    root = doc()
    original = canonicalize(root)
    encryptor.encrypt_element(root.get_element_by_id("a1"), key,
                              key_name="k", data_id="e1")
    out = apply_decryption_transform(root, decryptor)
    assert canonicalize(out) == original


def test_except_regions_left_encrypted(encryptor, decryptor, key):
    root = doc()
    encryptor.encrypt_element(root.get_element_by_id("a1"), key,
                              key_name="k", data_id="e1")
    encryptor.encrypt_element(root.get_element_by_id("b1"), key,
                              key_name="k", data_id="e2")
    out = apply_decryption_transform(root, decryptor,
                                     except_uris=("#e2",))
    assert out.get_element_by_id("a1") is not None   # decrypted
    assert out.get_element_by_id("b1") is None       # still hidden
    remaining = out.findall("EncryptedData", XMLENC_NS)
    assert [e.get("Id") for e in remaining] == ["e2"]


def test_apex_encrypted_data_replaced(encryptor, decryptor, key):
    holder = doc()
    target = holder.get_element_by_id("a1")
    enc = encryptor.encrypt_element(target, key, key_name="k",
                                    data_id="e1")
    out = apply_decryption_transform(enc, decryptor)
    assert out.local == "a"
    assert out.text_content() == "alpha"


def test_apex_excepted_stays(encryptor, decryptor, key):
    holder = doc()
    enc = encryptor.encrypt_element(holder.get_element_by_id("a1"), key,
                                    key_name="k", data_id="e1")
    out = apply_decryption_transform(enc, decryptor,
                                     except_uris=("#e1",))
    assert out.local == "EncryptedData"


def test_binary_mode(encryptor, decryptor, key):
    data, _ = encryptor.encrypt_bytes(b"raw clip bytes", key,
                                      key_name="k")
    node = data.to_element()
    out = apply_decryption_transform(node, decryptor, binary=True)
    assert out == b"raw clip bytes"


def test_binary_mode_requires_encrypted_data(decryptor):
    with pytest.raises(SignatureError):
        apply_decryption_transform(parse_element("<x/>"), decryptor,
                                   binary=True)


def test_except_uri_must_be_fragment(decryptor):
    with pytest.raises(SignatureError, match="same-document"):
        apply_decryption_transform(
            parse_element("<x/>"), decryptor,
            except_uris=("http://remote/e1",),
        )


def test_nested_super_encryption(encryptor, decryptor, key, rng):
    root = doc()
    original = canonicalize(root)
    inner = SymmetricKey(rng.read(16))
    decryptor.add_key("inner", inner)
    encryptor.encrypt_element(root.find("v"), inner, key_name="inner")
    encryptor.encrypt_element(root.get_element_by_id("a1"), key,
                              key_name="k")
    out = apply_decryption_transform(root, decryptor)
    assert canonicalize(out) == original


def test_transform_in_signature_pipeline(pki, trust_store, encryptor,
                                         decryptor, key):
    """Signature over plaintext; encryption applied after; the
    transform reconciles them at verification (the Fig 9 mechanism,
    tested at the dsig layer)."""
    from repro.dsig import Reference, Signer, Transform, Verifier
    from repro.dsig.transforms import DECRYPT_XML, ENVELOPED_SIGNATURE
    from repro.xmlcore import C14N

    root = doc()
    signer = Signer(pki.studio.key, identity=pki.studio)
    reference = Reference(uri="", transforms=[
        Transform(DECRYPT_XML),
        Transform(ENVELOPED_SIGNATURE),
        Transform(C14N),
    ])
    signature = signer.sign_references([reference], parent=root,
                                       decryptor=decryptor)
    # Post-signing encryption of <a>.
    encryptor.encrypt_element(root.get_element_by_id("a1"), key,
                              key_name="k", data_id="e1")
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    assert verifier.verify(signature, decryptor=decryptor).valid
    # Without a decryptor the reference cannot be validated.
    report = verifier.verify(signature)
    assert not report.valid
    assert "decryptor" in report.references[0].error
