"""Security profiles and whole-disc signing."""

import pytest

from repro.core import (
    ALL_PROFILES, ProtectionLevel, SIGNED_AND_ENCRYPTED, STUDIO_GRADE,
    UNPROTECTED, profile_by_name, sign_disc_image,
)
from repro.core.package import PACKAGE_ID, build_package_element, \
    parse_package
from repro.disc import ApplicationManifest, DiscAuthor
from repro.dsig import Signer
from repro.player import DiscPlayer
from repro.threat import corrupt_stream
from repro.xmlcore import parse_element, serialize_bytes


def test_profiles_are_named_and_unique():
    names = [profile.name for profile in ALL_PROFILES]
    assert len(names) == len(set(names))
    for profile in ALL_PROFILES:
        assert profile_by_name(profile.name) is profile
    with pytest.raises(KeyError):
        profile_by_name("no-such-profile")


def test_profile_semantics():
    assert UNPROTECTED.sign_level is None
    assert not UNPROTECTED.encrypt_levels
    assert ProtectionLevel.CODE in SIGNED_AND_ENCRYPTED.encrypt_levels
    assert STUDIO_GRADE.signature_method.endswith("rsa-sha256")
    assert STUDIO_GRADE.encryption_algorithm.endswith("aes256-cbc")


def _disc(pki, rng):
    author = DiscAuthor("Profile Disc", rng=rng)
    clip = author.add_clip(5.0, packets_per_second=25)
    author.add_feature("main", [clip])
    manifest = ApplicationManifest("menu")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="1" height="1"/></layout>'
    ))
    manifest.add_script("var x = 1;")
    author.add_application(manifest)
    return author.master()


@pytest.mark.parametrize("level", [ProtectionLevel.CLUSTER,
                                   ProtectionLevel.TRACK,
                                   ProtectionLevel.MANIFEST])
def test_sign_disc_image_levels(pki, trust_store, rng, level):
    image = _disc(pki, rng)
    signer = Signer(pki.studio.key, identity=pki.studio)
    result = sign_disc_image(image, signer, level=level)
    assert result.level is level
    assert result.stream_uris == ["bd://BDMV/STREAM/00001.m2ts"]
    session = DiscPlayer(trust_store).insert_disc(image)
    assert session.authenticated


def test_sign_disc_without_streams(pki, trust_store, rng):
    image = _disc(pki, rng)
    signer = Signer(pki.studio.key, identity=pki.studio)
    result = sign_disc_image(image, signer, include_streams=False)
    assert result.stream_uris == []
    # Disc authenticates (markup is signed)...
    assert DiscPlayer(trust_store).insert_disc(image).authenticated
    # ...but stream tampering is invisible — the signer's discretion
    # (§5.3), with its consequence.
    tampered = corrupt_stream(image, "00001")
    assert DiscPlayer(trust_store).insert_disc(tampered).authenticated


def test_sign_disc_with_streams_catches_tampering(pki, trust_store, rng):
    image = _disc(pki, rng)
    sign_disc_image(image, Signer(pki.studio.key, identity=pki.studio),
                    include_streams=True)
    tampered = corrupt_stream(image, "00001")
    assert not DiscPlayer(trust_store).insert_disc(tampered).authenticated


def test_untrusted_disc_signer(pki, trust_store, rng):
    image = _disc(pki, rng)
    sign_disc_image(image, Signer(pki.attacker.key,
                                  identity=pki.attacker))
    assert not DiscPlayer(trust_store).insert_disc(image).authenticated


# -- package module edges ----------------------------------------------------


def test_build_package_element_shape():
    manifest = ApplicationManifest("p")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster"/>'
    ))
    manifest.add_script("1;")
    package = build_package_element(manifest.to_element(), None)
    assert package.get("Id") == PACKAGE_ID
    view = parse_package(serialize_bytes(package))
    assert not view.is_signed
    assert view.permission_file is None
    assert view.manifest().name == "p"


def test_parse_package_accepts_element_input():
    manifest = ApplicationManifest("p2")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster"/>'
    ))
    manifest.add_script("1;")
    package = build_package_element(manifest.to_element(), None)
    view = parse_package(package)
    assert view.root is package
