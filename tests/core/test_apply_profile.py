"""Applying named security profiles to mastered discs."""

import pytest

from repro.core import (
    ALL_PROFILES, SIGNED_AND_ENCRYPTED, SIGNED_TRACKS,
    STUDIO_GRADE, UNPROTECTED, apply_profile_to_disc, count_encrypted,
)
from repro.disc import ApplicationManifest, DiscAuthor
from repro.errors import AuthoringError
from repro.player import DiscPlayer
from repro.primitives.keys import SymmetricKey
from repro.xmlcore import parse_element


def _disc(rng):
    author = DiscAuthor("Profile Applied", rng=rng)
    clip = author.add_clip(5.0, packets_per_second=25)
    author.add_feature("main", [clip])
    manifest = ApplicationManifest("menu")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="1" height="1"/></layout>'
    ))
    manifest.add_script('player.log("up");')
    author.add_application(manifest)
    return author.master()


def _key_for(profile, rng):
    size = {"aes128-cbc": 16, "aes256-cbc": 32, "tripledes-cbc": 24}[
        profile.encryption_algorithm.rsplit("#", 1)[-1]
    ]
    return SymmetricKey(rng.read(size))


@pytest.mark.parametrize("profile", ALL_PROFILES,
                         ids=lambda p: p.name)
def test_every_profile_applies_and_plays(pki, trust_store, rng, profile):
    image = _disc(rng)
    key = _key_for(profile, rng)
    results = apply_profile_to_disc(
        image, profile, pki.studio, content_key=key, rng=rng,
    )
    assert results["profile"] == profile.name

    player = DiscPlayer(trust_store, key_slots={"disc-key": key})
    session = player.insert_disc(image)
    # Signed profiles authenticate; the unprotected one does not.
    assert session.authenticated == (profile.sign_level is not None)
    app_session = player.launch_disc_application("menu")
    assert app_session.console == ["up"]
    assert app_session.trusted == (profile.sign_level is not None)


def test_unprotected_leaves_cluster_untouched(pki, rng):
    image = _disc(rng)
    before = image.read("BDMV/CLUSTER/cluster.xml")
    apply_profile_to_disc(image, UNPROTECTED, pki.studio, rng=rng)
    assert image.read("BDMV/CLUSTER/cluster.xml") == before


def test_encrypting_profiles_hide_code(pki, rng):
    image = _disc(rng)
    key = _key_for(SIGNED_AND_ENCRYPTED, rng)
    apply_profile_to_disc(image, SIGNED_AND_ENCRYPTED, pki.studio,
                          content_key=key, rng=rng)
    cluster = image.cluster_element()
    assert count_encrypted(cluster) == 1
    assert b"player.log" not in image.read("BDMV/CLUSTER/cluster.xml")


def test_studio_grade_encrypts_more(pki, rng):
    image = _disc(rng)
    key = _key_for(STUDIO_GRADE, rng)
    results = apply_profile_to_disc(image, STUDIO_GRADE, pki.studio,
                                    content_key=key, rng=rng)
    cluster = image.cluster_element()
    # CODE + SUBMARKUP targets.
    assert count_encrypted(cluster) == 2
    assert results["signed"].level is STUDIO_GRADE.sign_level


def test_player_without_key_cannot_run_encrypted_app(pki, trust_store,
                                                     rng):
    image = _disc(rng)
    key = _key_for(SIGNED_AND_ENCRYPTED, rng)
    apply_profile_to_disc(image, SIGNED_AND_ENCRYPTED, pki.studio,
                          content_key=key, rng=rng)
    player = DiscPlayer(trust_store)  # no disc-key slot
    session = player.insert_disc(image)
    assert session.authenticated  # signature covers the ciphertext
    from repro.errors import DecryptionError, DiscFormatError, PlayerError
    with pytest.raises((PlayerError, DiscFormatError, DecryptionError)):
        player.launch_disc_application("menu")


def test_encrypting_profile_requires_key(pki, rng):
    with pytest.raises(AuthoringError, match="content key"):
        apply_profile_to_disc(_disc(rng), SIGNED_AND_ENCRYPTED,
                              pki.studio, rng=rng)


def test_signed_tracks_profile_level(pki, trust_store, rng):
    image = _disc(rng)
    results = apply_profile_to_disc(image, SIGNED_TRACKS, pki.studio,
                                    rng=rng)
    assert results["signed"].markup.target_ids  # per-track signatures
    assert DiscPlayer(trust_store).insert_disc(image).authenticated
