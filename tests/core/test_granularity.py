"""Granular signing/encryption levels (Figs 4 and 5)."""

import pytest

from repro.core import (
    ProtectionLevel, count_encrypted, encrypt_at_level,
    protection_targets, sign_at_level, verify_signatures,
)
from repro.disc import ApplicationManifest, InteractiveCluster, Playlist
from repro.dsig import Signer, Verifier
from repro.errors import SignatureError
from repro.primitives.keys import SymmetricKey
from repro.xmlcore import parse_element
from repro.xmlenc import Decryptor, Encryptor


def build_cluster() -> InteractiveCluster:
    cluster = InteractiveCluster("Granularity Disc")
    playlist = Playlist("main", playlist_id="pl-1")
    playlist.add_item("00001", 0.0, 10.0)
    cluster.add_av_track(playlist)
    for index in range(2):
        manifest = ApplicationManifest(f"app-{index}")
        manifest.add_submarkup("layout", parse_element(
            '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
            '<region regionName="main" width="1" height="1"/></layout>'
        ))
        manifest.add_submarkup("timing", parse_element(
            '<seq xmlns="urn:bda:bdmv:interactive-cluster"/>'
        ))
        manifest.add_script(
            "var a = 1;\n" + "a = a + 1; // advance the counter\n" * 10
        )
        manifest.add_script(
            "var b = 2;\n" + "b = b * 2; // double the stake\n" * 10
        )
        cluster.add_application_track(manifest)
    return cluster


EXPECTED_TARGET_COUNTS = {
    ProtectionLevel.CLUSTER: 1,
    ProtectionLevel.TRACK: 3,
    ProtectionLevel.MANIFEST: 2,
    ProtectionLevel.MARKUP: 2,
    ProtectionLevel.CODE: 2,
    ProtectionLevel.SUBMARKUP: 4,
    ProtectionLevel.SCRIPT: 4,
}


@pytest.mark.parametrize("level,count",
                         sorted(EXPECTED_TARGET_COUNTS.items(),
                                key=lambda kv: kv[0].value))
def test_target_counts(level, count):
    root = build_cluster().to_element()
    assert len(protection_targets(root, level)) == count


def test_target_without_id_rejected():
    root = parse_element(
        '<cluster xmlns="urn:bda:bdmv:interactive-cluster">'
        "<track kind='av'/></cluster>"
    )
    with pytest.raises(SignatureError, match="Id"):
        protection_targets(root, ProtectionLevel.TRACK)


@pytest.mark.parametrize("level", list(ProtectionLevel))
def test_sign_and_verify_every_level(level, pki, trust_store):
    root = build_cluster().to_element()
    signer = Signer(pki.studio.key, identity=pki.studio)
    result = sign_at_level(root, level, signer)
    assert len(result.signatures) == EXPECTED_TARGET_COUNTS[level]
    assert result.protected_bytes > 0
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    reports = verify_signatures(root, verifier)
    assert len(reports) == len(result.signatures)
    assert all(report.valid for report in reports.values())


def test_finer_levels_protect_fewer_bytes(pki):
    signer = Signer(pki.studio.key, identity=pki.studio)
    sizes = {}
    for level in (ProtectionLevel.CLUSTER, ProtectionLevel.MANIFEST,
                  ProtectionLevel.CODE, ProtectionLevel.SCRIPT):
        root = build_cluster().to_element()
        sizes[level] = sign_at_level(root, level, signer).protected_bytes
    assert sizes[ProtectionLevel.CLUSTER] > sizes[ProtectionLevel.MANIFEST]
    assert sizes[ProtectionLevel.MANIFEST] > sizes[ProtectionLevel.CODE]
    # SCRIPT vs CODE is *not* asserted strictly: subtree C14N pins the
    # inherited xmlns on every apex, so many small targets can carry
    # more namespace bytes than fewer enclosing ones — a real property
    # of Canonical XML worth preserving in the record.
    assert sizes[ProtectionLevel.SCRIPT] < sizes[ProtectionLevel.MANIFEST]


def test_selective_invalidity_reports_per_target(pki, trust_store):
    root = build_cluster().to_element()
    signer = Signer(pki.studio.key, identity=pki.studio)
    sign_at_level(root, ProtectionLevel.MANIFEST, signer)
    # Tamper with exactly one application's script.
    scripts = [el for el in root.iter("script")]
    scripts[0].children[0].data = "var hacked = true;"
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    reports = verify_signatures(root, verifier)
    validities = sorted(report.valid for report in reports.values())
    assert validities == [False, True]


def test_encrypt_at_level_roundtrip(rng):
    root = build_cluster().to_element()
    from repro.xmlcore import canonicalize
    original = canonicalize(root)
    key = SymmetricKey(rng.read(16))
    encryptor = Encryptor(rng=rng)
    result = encrypt_at_level(root, ProtectionLevel.CODE, encryptor, key,
                              key_name="disc-key")
    assert count_encrypted(root) == 2
    assert len(result.target_ids) == 2
    Decryptor(keys={"disc-key": key}).decrypt_in_place(root)
    assert canonicalize(root) == original


def test_cluster_level_encryption_refused(rng):
    root = build_cluster().to_element()
    with pytest.raises(SignatureError):
        encrypt_at_level(root, ProtectionLevel.CLUSTER,
                         Encryptor(rng=rng), SymmetricKey(rng.read(16)))


def test_sign_then_encrypt_other_targets_still_verifies(pki, trust_store,
                                                        rng):
    """Fig 5's independence: signing CODE, encrypting SUBMARKUP."""
    root = build_cluster().to_element()
    signer = Signer(pki.studio.key, identity=pki.studio)
    sign_at_level(root, ProtectionLevel.CODE, signer)
    key = SymmetricKey(rng.read(16))
    encrypt_at_level(root, ProtectionLevel.SUBMARKUP, Encryptor(rng=rng),
                     key, key_name="k")
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    reports = verify_signatures(root, verifier)
    assert all(report.valid for report in reports.values())
