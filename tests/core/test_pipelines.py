"""End-to-end authoring/playback pipelines with the Decryption Transform
(Fig 9) and the application package format."""

import pytest

from repro.core import (
    AuthoringPipeline, PlaybackPipeline, parse_package,
)
from repro.disc import ApplicationManifest
from repro.errors import ApplicationRejectedError, AuthoringError
from repro.permissions import (
    PERM_LOCAL_STORAGE, PermissionRequestFile,
)
from repro.primitives.keys import SymmetricKey
from repro.primitives.random import DeterministicRandomSource
from repro.primitives.rsa import generate_keypair
from repro.threat import inject_script, strip_signature, \
    tamper_package_bytes
from repro.xmlcore import parse_element


@pytest.fixture(scope="module")
def device_key():
    return generate_keypair(1024,
                            DeterministicRandomSource(b"device-key"))


def build_manifest() -> ApplicationManifest:
    manifest = ApplicationManifest("bonus-game")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="2" height="2"/></layout>'
    ))
    manifest.add_script("var secretAlgorithm = 'proprietary';")
    return manifest


def permission_file() -> PermissionRequestFile:
    prf = PermissionRequestFile("bonus-game", "org.studio")
    prf.request(PERM_LOCAL_STORAGE, quota_bytes=2048)
    return prf


@pytest.fixture
def authoring(pki, device_key, rng):
    return AuthoringPipeline(pki.studio,
                             recipient_key=device_key.public_key(),
                             rng=rng)


@pytest.fixture
def playback(pki, trust_store, device_key):
    return PlaybackPipeline(trust_store=trust_store,
                            device_key=device_key)


def test_signed_encrypted_roundtrip(authoring, playback):
    manifest = build_manifest()
    package = authoring.build_package(
        manifest, permission_file=permission_file(),
        encrypt_ids=(manifest.code_id,),
    )
    assert package.signed
    assert b"secretAlgorithm" not in package.data  # confidential
    application = playback.open_package(package.data)
    assert application.trusted
    assert application.signer_subject == "CN=Contoso Studios"
    assert "secretAlgorithm" in application.manifest.scripts[0].source
    assert application.grants.has(PERM_LOCAL_STORAGE)


def test_sign_only(authoring, playback):
    package = authoring.build_package(build_manifest())
    assert b"secretAlgorithm" in package.data  # not confidential
    application = playback.open_package(package.data)
    assert application.trusted


def test_encrypt_before_sign_except_list(authoring, playback):
    """Fig 9 alternative order: signature covers the ciphertext."""
    manifest = build_manifest()
    package = authoring.build_package(
        manifest, pre_encrypt_ids=(manifest.code_id,),
    )
    assert package.pre_encrypted_ids == [f"enc-{manifest.code_id}"]
    view = parse_package(package.data)
    transforms = view.signature_element.find("Transform")
    application = playback.open_package(package.data)
    assert application.trusted
    assert "secretAlgorithm" in application.manifest.scripts[0].source


def test_tampered_package_barred(authoring, playback):
    package = authoring.build_package(build_manifest())
    for attack in (
        lambda d: tamper_package_bytes(d, b"bonus-game", b"evil!-game"),
        lambda d: inject_script(d, "stealKeys()"),
    ):
        with pytest.raises(ApplicationRejectedError):
            playback.open_package(attack(package.data))


def test_signature_stripping_barred(authoring, playback):
    package = authoring.build_package(build_manifest())
    stripped = strip_signature(package.data)
    assert b"ds:Signature" not in stripped
    with pytest.raises(ApplicationRejectedError, match="unsigned"):
        playback.open_package(stripped)


def test_unsigned_allowed_by_lenient_policy(authoring, pki, trust_store,
                                            device_key):
    package = authoring.build_package(build_manifest(), sign=False)
    lenient = PlaybackPipeline(
        trust_store=trust_store, device_key=device_key,
        require_signature=False,
    )
    application = lenient.open_package(package.data)
    assert not application.trusted
    # Untrusted applications don't get sensitive grants.
    assert not application.grants.has(PERM_LOCAL_STORAGE)


def test_untrusted_signer_barred(pki, device_key, playback, rng):
    rogue = AuthoringPipeline(pki.attacker,
                              recipient_key=device_key.public_key(),
                              rng=rng)
    package = rogue.build_package(build_manifest())
    with pytest.raises(ApplicationRejectedError):
        playback.open_package(package.data)


def test_shared_kek_transport(pki, trust_store, rng):
    kek = SymmetricKey(rng.read(16))
    authoring = AuthoringPipeline(pki.studio,
                                  shared_kek=("factory-kek", kek),
                                  rng=rng)
    manifest = build_manifest()
    package = authoring.build_package(manifest,
                                      encrypt_ids=(manifest.code_id,))
    playback = PlaybackPipeline(trust_store=trust_store,
                                key_slots={"factory-kek": kek})
    application = playback.open_package(package.data)
    assert application.trusted
    assert "secretAlgorithm" in application.manifest.scripts[0].source


def test_wrong_device_cannot_decrypt(authoring, pki, trust_store, rng):
    manifest = build_manifest()
    package = authoring.build_package(manifest,
                                      encrypt_ids=(manifest.code_id,))
    other_device = generate_keypair(1024, rng)
    playback = PlaybackPipeline(trust_store=trust_store,
                                device_key=other_device)
    # Verification itself fails: the decryption transform cannot
    # recover the signed plaintext without the right device key.
    with pytest.raises(ApplicationRejectedError):
        playback.open_package(package.data)


def test_pipeline_requires_key_material(pki):
    pipeline = AuthoringPipeline(pki.studio)
    with pytest.raises(AuthoringError):
        pipeline.build_package(build_manifest())


def test_bad_encrypt_target(authoring):
    with pytest.raises(AuthoringError, match="no element"):
        authoring.build_package(build_manifest(),
                                encrypt_ids=("no-such-id",))


def test_package_view_parsing(authoring):
    manifest = build_manifest()
    package = authoring.build_package(
        manifest, permission_file=permission_file(),
    )
    view = parse_package(package.data)
    assert view.is_signed
    assert view.manifest().name == "bonus-game"
    assert view.permission_file.app_id == "bonus-game"
    assert view.to_bytes()


def test_parse_package_rejects_other_roots():
    from repro.errors import DiscFormatError
    with pytest.raises(DiscFormatError):
        parse_package(b"<somethingElse/>")
