"""Fleet load harness: outcome classification, summary correctness,
the overload invariant under saturation, byte-identical determinism at
10k sessions, and the ``loadgen`` CLI gate."""

import json

import pytest

from repro.errors import (
    ChannelClosedError, CircuitOpenError, ReproError,
    RetryExhaustedError, ServiceOverloadError, TimeoutError, XKMSError,
)
from repro.loadgen import (
    OUTCOMES, FleetConfig, classify_outcome, run_fleet,
    verify_determinism,
)

#: small fleet shared by the correctness tests (one run, sliced many
#: ways) — module-scoped so the suite pays for it once.
SMALL = FleetConfig(sessions=120, connections=4, ops_per_session=2,
                    seed=97, start_window_s=4.0)


@pytest.fixture(scope="module")
def small_report():
    return run_fleet(SMALL)


def test_classify_outcome_taxonomy():
    assert classify_outcome(None) == "ok"
    assert classify_outcome(
        ServiceOverloadError("busy", reason="limiter")) == "shed"
    assert classify_outcome(TimeoutError("late")) == "timeout"
    assert classify_outcome(CircuitOpenError("open")) == "circuit"
    assert classify_outcome(
        RetryExhaustedError("gave up", attempts=2)) == "exhausted"
    assert classify_outcome(XKMSError("bad result")) == "fault"
    assert classify_outcome(ChannelClosedError("gone")) == "closed"
    assert classify_outcome(ReproError("typed")) == "error"
    assert classify_outcome(ValueError("boom")) == "untyped"


def test_small_fleet_accounts_for_every_operation(small_report):
    report = small_report
    assert report.ops == SMALL.sessions * SMALL.ops_per_session
    assert report.outcomes.get("untyped", 0) == 0
    assert report.outcomes.get("ok", 0) > 0
    assert report.makespan_s > 0
    assert 0 < report.p50 <= report.p99
    assert report.shed_structured_ratio == 1.0
    assert report.degradation_consistent


def test_summary_is_canonical_json(small_report):
    text = small_report.summary_json()
    parsed = json.loads(text)
    assert json.dumps(parsed, sort_keys=True,
                      separators=(",", ":")) == text
    assert set(parsed["outcomes"]) == set(OUTCOMES)
    assert parsed["ops"] == sum(parsed["outcomes"].values())
    lines = small_report.summary_lines()
    assert any("throughput" in line for line in lines)


def test_saturated_fleet_sheds_structurally():
    config = FleetConfig(
        sessions=400, connections=2, ops_per_session=1, seed=11,
        start_window_s=0.5, timeout_s=1.0, max_concurrent=2,
        max_queued=2, base_service_s=0.2, retry_attempts=1,
        breaker_threshold=8, breaker_cooldown_s=5.0)
    report = run_fleet(config)
    failed = report.ops - report.outcomes.get("ok", 0)
    # The squeeze actually overloaded the service...
    assert report.shed_total > 0
    assert failed > 0
    # ...and every shed was answered + logged, nothing untyped.
    assert report.outcomes.get("untyped", 0) == 0
    assert report.shed_structured_ratio == 1.0
    assert report.degradation_consistent
    assert report.shed_answered == report.shed_total


def test_fleet_runs_ten_thousand_sessions_deterministically():
    """The acceptance bar: >= 10k concurrent sessions on pinned seeds
    reproduce byte-identical summary statistics."""
    config = FleetConfig(sessions=10_000, connections=8,
                         ops_per_session=1, seed=20050902,
                         start_window_s=20.0)
    identical, first, second = verify_determinism(config)
    assert identical, "summaries diverged between identical runs"
    summary = json.loads(first)
    assert summary["sessions"] == 10_000
    assert summary["ops"] == 10_000
    assert summary["outcomes"]["untyped"] == 0
    assert summary["shed_structured_ratio"] == 1.0
    assert summary["degradation_consistent"] is True


def test_different_seed_changes_the_schedule():
    base = FleetConfig(sessions=60, connections=2, ops_per_session=1,
                       seed=1, start_window_s=2.0)
    a = run_fleet(base).summary_json()
    b = run_fleet(FleetConfig(**{**base.__dict__, "seed": 2}))
    assert b.summary_json() != a


def test_loadgen_cli_smoke(tmp_path, capsys):
    from repro.tools import main

    out = tmp_path / "fleet.json"
    code = main([
        "loadgen", "--sessions", "40", "--connections", "2",
        "--ops", "1", "--seed", "5", "--start-window", "2.0",
        "--json", str(out),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "fleet: 40 sessions" in captured.out
    summary = json.loads(out.read_text())
    assert summary["seed"] == 5
    assert summary["outcomes"]["untyped"] == 0


def test_loadgen_cli_verify_determinism(capsys):
    from repro.tools import main

    code = main([
        "loadgen", "--sessions", "30", "--connections", "2",
        "--ops", "1", "--seed", "9", "--verify-determinism",
    ])
    assert code == 0
    assert "byte-identical" in capsys.readouterr().out


def test_session_cancellation_propagates_not_booked_as_outcome():
    """Cancelling a session must stop it (CancelledError re-raised),
    not book the cancellation as one more 'untyped' outcome and keep
    sending requests."""
    import asyncio

    from repro.loadgen.fleet import FleetConfig, _session
    from repro.resilience.vclock import VirtualClock

    clock = VirtualClock()
    config = FleetConfig(ops_per_session=4)
    outcomes: dict = {}
    latencies: list = []

    class StuckClient:
        async def validate(self, name, key, timeout_s=None):
            await clock.asleep(1e6)

        async def locate(self, name, timeout_s=None):
            await clock.asleep(1e6)

    async def main():
        session = asyncio.ensure_future(_session(
            0, config, StuckClient(), clock, outcomes, latencies))
        # Past the start window: the session is inside its first call.
        await clock.asleep(config.start_window_s + 0.5)
        assert not session.done()
        session.cancel()
        await asyncio.gather(session, return_exceptions=True)
        return session

    session = clock.run(main())
    assert session.cancelled()
    assert outcomes == {}
    assert latencies == []
