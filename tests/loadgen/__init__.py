"""Deterministic fleet load harness tests."""
