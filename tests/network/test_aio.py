"""Async multiplexed transport: stream-id matched round trips, typed
failure for every hostile input, PR 1 fault adversaries composing with
the async channel, structured shed answers, and the async secure
handshake."""

import asyncio

import pytest

from repro.certs import SigningIdentity
from repro.errors import ChannelClosedError, TimeoutError
from repro.network import (
    MUX_ERR, MUX_FAULT, MUX_RESP, AsyncChannel, AsyncServiceClient,
    AsyncServiceServer, MuxFrame, SecureClient, SecureServer,
    establish_async,
)
from repro.network.server import MUX_REQ, decode_mux
from repro.resilience import (
    AIMDLimiter, Deadline, DelayFault, DropFault, FaultSchedule,
    OverloadShield, RetryPolicy, VirtualClock,
)
from repro.resilience.vclock import NO_DEADLINE


async def echo_handler(payload, context):
    return b"echo:" + payload


def serve_on(server, channel):
    return asyncio.ensure_future(server.serve(channel))


async def teardown(channel, client, serving):
    await client.aclose()
    channel.close()
    await asyncio.gather(serving, return_exceptions=True)


def test_mux_roundtrip_matches_streams():
    clock = VirtualClock()
    channel = AsyncChannel(clock=clock)
    server = AsyncServiceServer(echo_handler, clock=clock)
    client = AsyncServiceClient(channel, tenant="player")

    async def main():
        serving = serve_on(server, channel)
        replies = await asyncio.gather(*[
            client.call(b"m%d" % i) for i in range(8)
        ])
        await teardown(channel, client, serving)
        return replies

    replies = clock.run(main())
    assert [r.payload for r in replies] == [
        b"echo:m%d" % i for i in range(8)
    ]
    assert all(r.kind == MUX_RESP for r in replies)
    # Stream ids are unique: every reply matched its own call.
    assert len({r.stream_id for r in replies}) == 8
    assert server.stats.responses == 8
    assert client.stats.responses == 8


def test_malformed_frame_answered_not_crashed():
    clock = VirtualClock()
    channel = AsyncChannel(clock=clock)
    server = AsyncServiceServer(echo_handler, clock=clock)

    async def main():
        serving = serve_on(server, channel)
        await channel.client.send(b"\xff\xfegarbage")
        answer = await channel.client.recv()
        channel.close()
        await asyncio.gather(serving, return_exceptions=True)
        return decode_mux(answer)

    reply = clock.run(main())
    assert reply.kind == MUX_ERR
    assert b"400" in reply.payload
    assert server.stats.protocol_errors == 1
    assert server.stats.responses == 0


def test_handler_bug_becomes_fault_frame():
    clock = VirtualClock()

    async def broken(payload, context):
        raise ValueError("handler bug")

    channel = AsyncChannel(clock=clock)
    server = AsyncServiceServer(broken, clock=clock)
    client = AsyncServiceClient(channel)

    async def main():
        serving = serve_on(server, channel)
        reply = await client.call(b"boom")
        await teardown(channel, client, serving)
        return reply

    reply = clock.run(main())
    assert reply.kind == MUX_FAULT
    assert server.stats.internal_errors == 1
    assert client.stats.faults == 1


def test_dropped_response_times_out_typed():
    clock = VirtualClock()
    # Drop the server's answer (the second message on the wire).
    drop = DropFault(schedule=FaultSchedule.at(1))
    channel = AsyncChannel([drop], clock=clock)
    server = AsyncServiceServer(echo_handler, clock=clock)
    client = AsyncServiceClient(channel)

    async def main():
        serving = serve_on(server, channel)
        with pytest.raises(TimeoutError):
            await client.call(
                b"lost", deadline=Deadline.after(clock, 2.0))
        await teardown(channel, client, serving)

    clock.run(main())
    assert channel.dropped == 1
    assert clock.now() == 2.0
    assert client.stats.timeouts == 1


def test_delay_fault_awaits_only_the_slow_stream():
    clock = VirtualClock()
    # Delay the first request; every other message flows untouched.
    slow = DelayFault(schedule=FaultSchedule.at(0), delay_s=5.0,
                      clock=clock)
    channel = AsyncChannel([slow], clock=clock)
    server = AsyncServiceServer(echo_handler, clock=clock)
    client = AsyncServiceClient(channel)
    finished = []

    async def call(tag):
        reply = await client.call(tag)
        finished.append((tag, clock.now()))
        return reply

    async def main():
        serving = serve_on(server, channel)
        await asyncio.gather(call(b"slow"), call(b"fast"))
        await teardown(channel, client, serving)

    clock.run(main())
    # The fast stream completed at t=0: the delayed one did not stall
    # the loop, it just arrived late.
    assert finished[0] == (b"fast", 0.0)
    assert finished[1] == (b"slow", 5.0)


def test_overload_shed_is_a_structured_answer():
    clock = VirtualClock()
    shield = OverloadShield(
        clock, limiter=AIMDLimiter(initial_limit=1.0),
        component="svc")

    async def slow(payload, context):
        await clock.asleep(10.0)
        return b"done"

    channel = AsyncChannel(clock=clock)
    server = AsyncServiceServer(slow, clock=clock, shield=shield)
    client = AsyncServiceClient(channel)

    async def main():
        serving = serve_on(server, channel)
        first = asyncio.ensure_future(client.call(b"a"))
        await clock.asleep(1.0)
        reply = await client.call(b"b")
        await first
        await teardown(channel, client, serving)
        return reply

    reply = clock.run(main())
    # The shed request was *answered* with a fault frame, not dropped.
    assert reply.kind == MUX_FAULT
    assert server.stats.sheds_answered == 1
    assert shield.stats.shed_limiter == 1


def test_channel_close_fails_pending_calls_typed():
    clock = VirtualClock()
    channel = AsyncChannel(clock=clock)

    async def never(payload, context):
        await clock.asleep(1e9)
        return b"never"

    server = AsyncServiceServer(never, clock=clock)
    client = AsyncServiceClient(channel)

    async def main():
        serving = serve_on(server, channel)
        call = asyncio.ensure_future(client.call(b"x"))
        await clock.asleep(1.0)
        channel.close()
        with pytest.raises(ChannelClosedError):
            await call
        await client.aclose()
        await asyncio.gather(serving, return_exceptions=True)

    clock.run(main())


def test_frame_header_carries_deadline_and_tenant():
    frame = MuxFrame(MUX_REQ, 7, 12.5, "kiosk", b"payload")
    decoded = decode_mux(frame.encode())
    assert decoded == frame
    infinite = MuxFrame(MUX_REQ, 8, NO_DEADLINE, "", b"")
    assert decode_mux(infinite.encode()).deadline_at == NO_DEADLINE


# -- async secure handshake -------------------------------------------------


@pytest.fixture
def server_identity(pki):
    from repro.primitives.random import DeterministicRandomSource
    return SigningIdentity.create(
        "CN=license.studio.example", pki.root,
        rng=DeterministicRandomSource(b"aio-server-ident"),
    )


def test_establish_async_seals_and_opens(pki, trust_store,
                                         server_identity):
    clock = VirtualClock()
    channel = AsyncChannel(clock=clock)

    async def main():
        client_session, server_session = await establish_async(
            SecureClient(trust_store), SecureServer(server_identity),
            channel)
        wire = client_session.seal(b"license request")
        return server_session.open(wire)

    assert clock.run(main()) == b"license request"


def test_establish_async_dropped_flight_times_out_then_retries(
        pki, trust_store, server_identity):
    clock = VirtualClock()
    # First flight vanishes; the retry restarts from ClientHello.
    channel = AsyncChannel([DropFault(schedule=FaultSchedule.first(1))],
                           clock=clock)
    policy = RetryPolicy(max_attempts=2, base_delay=0.5, jitter=0.0,
                         clock=clock)

    async def main():
        client_session, server_session = await establish_async(
            SecureClient(trust_store), SecureServer(server_identity),
            channel, timeout_s=2.0, retry_policy=policy)
        wire = client_session.seal(b"after retry")
        return server_session.open(wire)

    assert clock.run(main()) == b"after retry"
    assert channel.dropped == 1
    # One timeout at t=2 plus the 0.5s backoff before the retry.
    assert clock.now() >= 2.5


def test_server_aclose_cancels_inflight_dispatches():
    """Shutdown contract: ``aclose`` cancels and awaits every parked
    dispatch task, cancellation propagates out of ``_dispatch`` (no
    MUX_FAULT answer, no internal-error count), and the loop ends
    with zero pending tasks."""
    clock = VirtualClock()
    channel = AsyncChannel(clock=clock)
    entered = []

    async def stuck(payload, context):
        entered.append(payload)
        # Far beyond the test horizon: only cancellation can
        # realistically release this handler.
        await clock.asleep(1e6)

    server = AsyncServiceServer(stuck, clock=clock)

    async def main():
        serving = serve_on(server, channel)
        frame = MuxFrame(MUX_REQ, 1, NO_DEADLINE, "player", b"hang")
        await channel.client.send(frame.encode())
        while not entered:
            await clock.asleep(0.001)
        inflight = list(server._tasks)
        assert inflight

        await server.aclose()
        assert all(task.done() for task in inflight)
        assert all(task.cancelled() for task in inflight)
        assert not server._tasks

        channel.close()
        await asyncio.gather(serving, return_exceptions=True)
        current = asyncio.current_task()
        return [task for task in asyncio.all_tasks()
                if task is not current and not task.done()
                and task.get_coro().__qualname__ !=
                "VirtualClock.drive"]

    pending = clock.run(main())
    assert pending == []
    # The cancelled dispatch never became a fault answer.
    assert server.stats.internal_errors == 0
    assert server.stats.faults_answered == 0
    assert server.stats.responses == 0
