"""Frame-size caps and protocol error frames (ISSUE 4 satellite).

A hostile peer must not be able to crash either side of the wire
protocol: the server answers oversized/malformed frames with
``413``/``400`` error frames (it never raises at a peer's behest), and
the client refuses an oversized response with a typed error before
decoding a single part of it.
"""

import pytest

from repro.errors import NetworkError, ResourceLimitExceeded
from repro.network import Channel, ContentServer, DownloadClient
from repro.network.server import (
    _CALL, _REQ, _RESP_ERR, _RESP_OK, _decode, _encode,
)
from repro.resilience import ResourceLimits

SMALL = ResourceLimits.default().replace(max_frame_bytes=1024)


def error_text(response: bytes) -> str:
    kind, parts = _decode(response)
    assert kind == _RESP_ERR
    return parts[0].decode()


# -- _decode -----------------------------------------------------------------


def test_decode_enforces_the_frame_cap():
    frame = _encode(_REQ, b"/path")
    assert _decode(frame, max_bytes=1024)[0] == _REQ
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        _decode(b"\x10" + b"A" * 2048, max_bytes=1024)
    assert excinfo.value.limit_name == "max_frame_bytes"
    assert excinfo.value.actual == 2049


def test_decode_without_cap_is_unlimited():
    big = _encode(_RESP_OK, b"A" * 4096)
    kind, parts = _decode(big)
    assert kind == _RESP_OK and len(parts[0]) == 4096


# -- server side -------------------------------------------------------------


def test_server_answers_oversized_frame_with_413():
    server = ContentServer(limits=SMALL)
    response = server.handle(b"\x10" + b"A" * 2048)
    assert error_text(response).startswith("413 frame too large")
    assert server.request_log == ["OVERSIZED"]


def test_server_answers_malformed_frame_with_400():
    server = ContentServer(limits=SMALL)
    assert error_text(
        server.handle(b"\x10\x00\x00\x00")      # truncated length field
    ).startswith("400 malformed frame")
    assert error_text(
        server.handle(_encode(_REQ, b"/x")[:-1])  # body cut short
    ).startswith("400 malformed frame")
    assert server.request_log == ["MALFORMED", "MALFORMED"]


def test_server_answers_undecodable_path_with_400():
    server = ContentServer(limits=SMALL)
    assert error_text(
        server.handle(_encode(_REQ, b"\xff\xfe"))
    ).startswith("400 bad path encoding")
    assert error_text(
        server.handle(_encode(_CALL, b"\xff", b"payload"))
    ).startswith("400 bad request encoding")


@pytest.mark.parametrize("hostile", [
    b"",                       # handled as empty -> 400
    b"\x10" + b"A" * 5000,     # oversized
    b"\x99",                   # unknown kind, no parts
    b"\x10\x00\x00\x00\x08hi",  # declared length past the end
    bytes(range(256)),         # binary noise
])
def test_server_handle_never_raises(hostile):
    server = ContentServer(limits=SMALL)
    try:
        response = server.handle(hostile)
    except BaseException as exc:   # pragma: no cover - the regression
        pytest.fail(f"server raised at a hostile peer: {exc!r}")
    kind, _ = _decode(response)
    assert kind == _RESP_ERR


def test_good_requests_unaffected_by_the_cap():
    server = ContentServer(limits=SMALL)
    server.publish("/r", b"payload")
    client = DownloadClient(server, Channel(), limits=SMALL)
    assert client.fetch("/r") == b"payload"


# -- client side -------------------------------------------------------------


def test_client_refuses_oversized_response_frame():
    server = ContentServer()
    server.publish("/big", b"A" * 4096)   # server side has no cap here
    client = DownloadClient(server, Channel(), limits=SMALL)
    with pytest.raises(ResourceLimitExceeded) as excinfo:
        client.fetch("/big")
    assert excinfo.value.limit_name == "max_frame_bytes"


def test_client_surfaces_server_error_frames_as_network_errors():
    server = ContentServer(limits=SMALL)
    client = DownloadClient(server, Channel(), limits=SMALL)
    with pytest.raises(NetworkError, match="404"):
        client.fetch("/missing")
