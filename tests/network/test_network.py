"""Channels, adversaries, content server and the TLS-like secure channel."""

import pytest

from repro.certs import SigningIdentity
from repro.errors import ChannelSecurityError, NetworkError
from repro.network import (
    ActiveTamperer, Channel, ContentServer, Dropper, DownloadClient,
    PassiveWiretap, Replacer, SecureClient, SecureServer, establish,
    secure_transfer,
)


@pytest.fixture
def server_identity(pki):
    return SigningIdentity.create(
        "CN=content.studio.example", pki.root,
        rng=__import__(
            "repro.primitives.random",
            fromlist=["DeterministicRandomSource"],
        ).DeterministicRandomSource(b"server-ident"),
    )


@pytest.fixture
def content_server(server_identity):
    server = ContentServer(identity=server_identity)
    server.publish("/apps/bonus.pkg", b"<pkg>bonus payload</pkg>")
    server.publish_service("echo", lambda text: f"echo:{text}")
    return server


# -- channel / adversaries ------------------------------------------------------

def test_channel_statistics():
    channel = Channel()
    channel.transfer(b"abc")
    channel.transfer(b"defgh")
    assert channel.messages_transferred == 2
    assert channel.bytes_transferred == 8


def test_channel_rejects_non_bytes():
    with pytest.raises(NetworkError):
        Channel().transfer("text")  # type: ignore[arg-type]


def test_wiretap_records():
    wiretap = PassiveWiretap()
    channel = Channel([wiretap])
    channel.transfer(b"hello secret world")
    assert wiretap.saw_plaintext(b"secret")
    assert not wiretap.saw_plaintext(b"absent")


def test_tamperer_flips_matching():
    tamperer = ActiveTamperer(predicate=lambda m: m.startswith(b"T"),
                              offset=1)
    channel = Channel([tamperer])
    assert channel.transfer(b"Target") != b"Target"
    assert channel.transfer(b"skip") == b"skip"
    assert tamperer.tampered_count == 1


def test_tamperer_empty_message_passes_through():
    tamperer = ActiveTamperer()
    assert tamperer.process(b"") == b""
    assert tamperer.tampered_count == 0


def test_tamperer_offset_wraps_past_message_length():
    tamperer = ActiveTamperer(offset=7)   # 7 % 3 == 1
    assert tamperer.process(b"abc") == b"a\x63c"  # 'b' ^ 0x01
    assert tamperer.tampered_count == 1


def test_tamperer_disabled_passes_through():
    tamperer = ActiveTamperer(enabled=False)
    assert tamperer.process(b"payload") == b"payload"
    assert tamperer.tampered_count == 0


def test_decode_rejects_truncated_frame():
    from repro.network.server import _decode, _encode

    message = _encode(1, b"/some/path", b"payload")
    with pytest.raises(NetworkError, match="truncated"):
        _decode(message[:-3])
    # An intact frame still decodes.
    kind, parts = _decode(message)
    assert kind == 1
    assert parts == [b"/some/path", b"payload"]


def test_replacer_and_dropper():
    channel = Channel([Replacer(replacement=b"spoofed",
                                predicate=lambda m: m == b"original")])
    assert channel.transfer(b"original") == b"spoofed"
    assert channel.transfer(b"other") == b"other"
    dropping = Channel([Dropper(predicate=lambda m: b"kill" in m)])
    with pytest.raises(NetworkError):
        dropping.transfer(b"kill this")


# -- content server --------------------------------------------------------------

def test_plain_fetch(content_server):
    client = DownloadClient(content_server, Channel())
    assert client.fetch("/apps/bonus.pkg") == b"<pkg>bonus payload</pkg>"
    assert content_server.request_log == ["GET /apps/bonus.pkg"]


def test_fetch_404(content_server):
    client = DownloadClient(content_server, Channel())
    with pytest.raises(NetworkError, match="404"):
        client.fetch("/missing")


def test_service_call(content_server):
    client = DownloadClient(content_server, Channel())
    assert client.call("echo", "ping") == "echo:ping"
    with pytest.raises(NetworkError, match="404 service"):
        client.call("nothing", "x")


def test_failing_service_returns_500(content_server):
    def broken(_text: str) -> str:
        raise RuntimeError("backend exploded")
    content_server.publish_service("broken", broken)
    client = DownloadClient(content_server, Channel())
    with pytest.raises(NetworkError, match="500"):
        client.call("broken", "x")


# -- secure channel ----------------------------------------------------------------

def test_handshake_and_record_roundtrip(pki, trust_store,
                                        server_identity):
    client = SecureClient(trust_store)
    server = SecureServer(server_identity)
    channel = Channel()
    received = secure_transfer(client, server, channel,
                               b"premium request")
    assert received == b"premium request"


def test_secure_channel_hides_payload(pki, trust_store, server_identity):
    wiretap = PassiveWiretap()
    channel = Channel([wiretap])
    secure_transfer(SecureClient(trust_store),
                    SecureServer(server_identity), channel,
                    b"CONFIDENTIAL-APP-SOURCE")
    assert not wiretap.saw_plaintext(b"CONFIDENTIAL-APP-SOURCE")


def test_untrusted_server_rejected(pki, trust_store):
    from repro.primitives.random import DeterministicRandomSource
    rogue_identity = SigningIdentity.create(
        "CN=content.studio.example", pki.rogue_root,
        rng=DeterministicRandomSource(b"rogue-ident"),
    )
    with pytest.raises(ChannelSecurityError, match="rejected"):
        establish(SecureClient(trust_store),
                  SecureServer(rogue_identity), Channel())


def test_record_tampering_detected(pki, trust_store, server_identity):
    client_session, server_session = establish(
        SecureClient(trust_store), SecureServer(server_identity),
        Channel(),
    )
    record = bytearray(client_session.seal(b"payload"))
    record[20] ^= 0x01
    with pytest.raises(ChannelSecurityError, match="MAC failure"):
        server_session.open(bytes(record))


def test_replay_detected(pki, trust_store, server_identity):
    client_session, server_session = establish(
        SecureClient(trust_store), SecureServer(server_identity),
        Channel(),
    )
    record = client_session.seal(b"one")
    assert server_session.open(record) == b"one"
    with pytest.raises(ChannelSecurityError, match="replay"):
        server_session.open(record)


def test_handshake_tampering_detected(pki, trust_store, server_identity):
    # Flip a byte in the key-exchange message (kind 3).
    tamperer = ActiveTamperer(predicate=lambda m: m[:1] == b"\x03",
                              offset=30)
    with pytest.raises(ChannelSecurityError):
        establish(SecureClient(trust_store),
                  SecureServer(server_identity), Channel([tamperer]))


def test_secure_fetch_through_download_client(content_server,
                                              trust_store):
    wiretap = PassiveWiretap()
    client = DownloadClient(content_server, Channel([wiretap]),
                            trust_store=trust_store)
    data = client.fetch("/apps/bonus.pkg", secure=True)
    assert data == b"<pkg>bonus payload</pkg>"
    assert not wiretap.saw_plaintext(b"bonus payload")


def test_secure_fetch_requires_trust_store(content_server):
    client = DownloadClient(content_server, Channel())
    with pytest.raises(NetworkError, match="trust store"):
        client.fetch("/apps/bonus.pkg", secure=True)


def test_tls_protects_transit_only(content_server, trust_store):
    """The paper's §4 argument: TLS ends at the endpoint —
    delivered bytes carry no residual protection, unlike XMLEnc."""
    client = DownloadClient(content_server, Channel(),
                            trust_store=trust_store)
    data = client.fetch("/apps/bonus.pkg", secure=True)
    assert b"bonus payload" in data  # at rest: fully readable
