"""The broadcast object carousel (Fig 1's second delivery path)."""

import pytest

from repro.errors import NetworkError
from repro.network import Channel
from repro.network.broadcast import (
    Carousel, CarouselObject, CarouselReceiver, SECTION_PAYLOAD, Section,
    broadcast_until_received,
)
from repro.network.channel import ActiveTamperer, Dropper


@pytest.fixture
def carousel(rng):
    carousel = Carousel()
    carousel.publish("apps/bonus.pkg", rng.read(5000))
    carousel.publish("banners/today.png", rng.read(700))
    return carousel


def test_single_cycle_assembly(carousel, rng):
    receiver = CarouselReceiver()
    for wire in carousel.one_cycle():
        receiver.receive(wire)
    assert receiver.directory() == {
        "apps/bonus.pkg": 1, "banners/today.png": 2,
    }
    assert len(receiver.fetch("apps/bonus.pkg")) == 5000
    assert len(receiver.fetch("banners/today.png")) == 700
    assert receiver.fetch("ghost") is None


def test_mid_cycle_tune_in(carousel):
    """Tuning in halfway: completion needs the next cycle."""
    receiver = CarouselReceiver()
    data = broadcast_until_received(
        carousel, receiver, "apps/bonus.pkg", start_offset=4,
    )
    assert len(data) == 5000


def test_corrupted_sections_recovered_next_cycle(carousel):
    # Burst noise: every other section is corrupted during the first
    # cycle only (a transient interference burst).
    calls = {"n": 0}

    def burst(message):
        calls["n"] += 1
        return calls["n"] <= 8 and calls["n"] % 2 == 0

    flaky = Channel([ActiveTamperer(predicate=burst, offset=80)])
    receiver = CarouselReceiver()
    data = broadcast_until_received(
        carousel, receiver, "apps/bonus.pkg", channel=flaky,
    )
    assert len(data) == 5000
    assert receiver.sections_dropped > 0


def test_dropped_sections_recovered(carousel):
    calls = {"n": 0}

    def drop_every_fifth(message):
        calls["n"] += 1
        return calls["n"] % 5 == 0

    lossy = Channel([Dropper(predicate=drop_every_fifth)])
    receiver = CarouselReceiver()
    data = broadcast_until_received(
        carousel, receiver, "banners/today.png", channel=lossy,
    )
    assert len(data) == 700


def test_version_bump_replaces_object(carousel, rng):
    receiver = CarouselReceiver()
    for wire in carousel.one_cycle():
        receiver.receive(wire)
    old = receiver.fetch("apps/bonus.pkg")
    updated = rng.read(3000)
    obj = carousel.publish("apps/bonus.pkg", updated)
    assert obj.version == 2
    for wire in carousel.one_cycle():
        receiver.receive(wire)
    assert receiver.fetch("apps/bonus.pkg") == updated != old


def test_stale_version_ignored(rng):
    """Old-version sections arriving late cannot roll an object back."""
    carousel = Carousel()
    carousel.publish("x", b"version-one")
    old_cycle = carousel.one_cycle()
    carousel.publish("x", b"version-two!")
    receiver = CarouselReceiver()
    for wire in carousel.one_cycle():
        receiver.receive(wire)
    for wire in old_cycle:   # replayed stale broadcast
        receiver.receive(wire)
    assert receiver.fetch("x") == b"version-two!"


def test_section_roundtrip_and_crc():
    obj = CarouselObject(7, "thing", b"A" * (SECTION_PAYLOAD + 10))
    sections = obj.sections()
    assert len(sections) == 2
    for section in sections:
        again = Section.from_bytes(section.to_bytes())
        assert again == section
        assert again.intact
    broken = bytearray(sections[0].to_bytes())
    broken[-1] ^= 0xFF
    assert not Section.from_bytes(bytes(broken)).intact


def test_empty_object():
    obj = CarouselObject(1, "empty", b"")
    receiver = CarouselReceiver()
    for section in obj.sections():
        receiver.receive(section.to_bytes())
    assert receiver.completed(1) == b""


def test_timeout_when_never_complete():
    carousel = Carousel()
    carousel.publish("x", b"data")
    # A channel that kills every section.
    black_hole = Channel([Dropper()])
    with pytest.raises(NetworkError, match="did not assemble"):
        broadcast_until_received(carousel, CarouselReceiver(), "x",
                                 channel=black_hole, max_cycles=3)


def test_signed_package_over_broadcast(pki, trust_store, rng):
    """The Fig 1 composition: the same signed+encrypted package rides
    the carousel and verifies identically on assembly."""
    from repro.core import AuthoringPipeline, PlaybackPipeline
    from repro.disc import ApplicationManifest
    from repro.primitives.rsa import generate_keypair
    from repro.xmlcore import parse_element

    device_key = generate_keypair(1024, rng)
    manifest = ApplicationManifest("broadcast-app")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="1" height="1"/></layout>'
    ))
    manifest.add_script("var viaBroadcast = true;")
    package = AuthoringPipeline(
        pki.studio, recipient_key=device_key.public_key(), rng=rng,
    ).build_package(manifest, encrypt_ids=(manifest.code_id,))

    carousel = Carousel()
    carousel.publish("apps/broadcast-app.pkg", package.data)
    receiver = CarouselReceiver()
    calls = {"n": 0}

    def first_cycle_noise(message):
        calls["n"] += 1
        return calls["n"] <= 3   # a burst at tune-in time

    noisy = Channel([ActiveTamperer(predicate=first_cycle_noise,
                                    offset=100)])
    delivered = broadcast_until_received(
        carousel, receiver, "apps/broadcast-app.pkg", channel=noisy,
    )
    assert delivered == package.data  # CRC + recycle healed the noise

    playback = PlaybackPipeline(trust_store=trust_store,
                                device_key=device_key)
    application = playback.open_package(delivered)
    assert application.trusted
    assert "viaBroadcast" in application.manifest.scripts[0].source
