"""OMA-DCF-style binary container (the ref [37] baseline)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CryptoError, DecryptionError
from repro.omadcf import (
    ENC_AES_128_CBC, ENC_AES_128_CTR, ENC_NULL,
    container_overhead, package, parse, unpack,
)
from repro.primitives.random import DeterministicRandomSource


@pytest.fixture
def key(rng):
    return rng.read(16)


@pytest.mark.parametrize("method", [ENC_NULL, ENC_AES_128_CTR,
                                    ENC_AES_128_CBC])
def test_roundtrip_all_methods(method, key, rng):
    content = b"manifest bytes " * 100
    container = package(content, key, enc_method=method, rng=rng)
    recovered, metadata = unpack(container, key)
    assert recovered == content
    assert metadata.enc_method == method


def test_metadata_preserved(key, rng):
    container = package(b"x", key, content_type="video/mp2t",
                        content_id="cid:clip7@studio", rng=rng)
    metadata = parse(container)
    assert metadata.content_type == "video/mp2t"
    assert metadata.content_id == "cid:clip7@studio"


def test_ciphertext_hides_content(key, rng):
    content = b"SECRET-SCRIPT-SOURCE" * 10
    container = package(content, key, rng=rng)
    assert b"SECRET-SCRIPT-SOURCE" not in container


def test_null_encryption_leaves_content_visible(key, rng):
    container = package(b"PLAINTEXT", key, enc_method=ENC_NULL, rng=rng)
    assert b"PLAINTEXT" in container


def test_mac_detects_tampering(key, rng):
    container = bytearray(package(b"content", key, rng=rng))
    container[len(container) // 2] ^= 0x01
    with pytest.raises(DecryptionError, match="integrity"):
        unpack(bytes(container), key)


def test_wrong_key_fails(key, rng):
    container = package(b"content", key, rng=rng)
    with pytest.raises(DecryptionError):
        unpack(container, rng.read(16))


def test_separate_mac_key(key, rng):
    mac_key = rng.read(16)
    container = package(b"content", key, mac_key=mac_key, rng=rng)
    recovered, _ = unpack(container, key, mac_key=mac_key)
    assert recovered == b"content"
    with pytest.raises(DecryptionError):
        unpack(container, key)  # default mac key = enc key, mismatch


def test_malformed_containers_rejected(key):
    with pytest.raises(DecryptionError):
        unpack(b"not a container at all, definitely", key)
    with pytest.raises(DecryptionError):
        unpack(b"", key)
    with pytest.raises(DecryptionError):
        parse(b"XXXX" + b"\x00" * 60)


def test_unknown_method_rejected(key, rng):
    with pytest.raises(CryptoError):
        package(b"x", key, enc_method=9, rng=rng)


def test_overhead_is_small_and_stable(key, rng):
    """The property the paper's comparison rests on: compact binary
    framing with near-constant overhead."""
    overheads = []
    for size in (10, 1000, 100_000):
        content = bytes(size)
        container = package(content, key, rng=rng)
        overheads.append(container_overhead(content, container))
    # CTR has no padding: overhead independent of payload size.
    assert overheads[0] == overheads[1] == overheads[2]
    assert overheads[0] < 150


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=2000), st.binary(min_size=16, max_size=16))
def test_roundtrip_property(content, key):
    rng = DeterministicRandomSource(key + b"|iv")
    container = package(content, key, rng=rng)
    recovered, _ = unpack(container, key)
    assert recovered == content


def test_overhead_accessor(key, rng):
    content = b"c" * 100
    container = package(content, key, rng=rng)
    metadata = parse(container)
    assert metadata.overhead_bytes == len(container) - len(content)
