"""ECMAScript-subset lexer, parser and interpreter."""

import pytest

from repro.errors import ScriptRuntimeError, ScriptSyntaxError
from repro.markup import HostObject, Interpreter, run_script, tokenize
from repro.markup.script_parser import parse_script


# -- lexer -------------------------------------------------------------------

def test_tokenize_basics():
    tokens = tokenize('var x = 1.5; // comment\ns = "hi\\n";')
    kinds = [(t.kind, t.value) for t in tokens if t.kind != "eof"]
    assert ("keyword", "var") in kinds
    assert ("number", "1.5") in kinds
    assert ("string", "hi\n") in kinds


def test_tokenize_errors():
    with pytest.raises(ScriptSyntaxError):
        tokenize('var s = "unterminated')
    with pytest.raises(ScriptSyntaxError):
        tokenize("/* unterminated")
    with pytest.raises(ScriptSyntaxError):
        tokenize("var x = #;")


def test_block_comments_and_lines():
    tokens = tokenize("a /* multi\nline */ b")
    names = [t.value for t in tokens if t.kind == "name"]
    assert names == ["a", "b"]
    assert tokens[1].line == 2  # b is on line 2


# -- parser --------------------------------------------------------------------

def test_parse_errors_report_line():
    with pytest.raises(ScriptSyntaxError, match="line"):
        parse_script("var x = ;\n")
    with pytest.raises(ScriptSyntaxError):
        parse_script("if (x {")
    with pytest.raises(ScriptSyntaxError):
        parse_script("1 = 2;")
    with pytest.raises(ScriptSyntaxError):
        parse_script("function () {}")  # declarations need names


def test_operator_precedence():
    result = run_script("var r = 1 + 2 * 3 - 4 / 2;")
    assert result.globals["r"] == 5.0
    result = run_script("var r = (1 + 2) * 3;")
    assert result.globals["r"] == 9.0
    result = run_script("var r = 1 < 2 && 3 > 2 || false;")
    assert result.globals["r"] is True


# -- interpreter -----------------------------------------------------------------

def test_arithmetic_and_strings():
    g = run_script("""
        var a = 7 % 3;
        var b = "n=" + 42;
        var c = "x" + true;
        var d = -5 + +3;
    """).globals
    assert g["a"] == 1.0
    assert g["b"] == "n=42"
    assert g["c"] == "xtrue"
    assert g["d"] == -2.0


def test_control_flow():
    g = run_script("""
        var r = "";
        for (var i = 0; i < 5; i++) {
            if (i == 2) continue;
            if (i == 4) break;
            r = r + i;
        }
        var w = 0;
        while (w < 10) { w += 3; }
    """).globals
    assert g["r"] == "013"
    assert g["w"] == 12.0


def test_functions_recursion_closures():
    g = run_script("""
        function fib(n) { if (n < 2) return n; return fib(n-1)+fib(n-2); }
        var f10 = fib(10);
        function make(start) {
            return function(step) { start += step; return start; };
        }
        var acc = make(100);
        acc(5);
        var v = acc(10);
    """).globals
    assert g["f10"] == 55.0
    assert g["v"] == 115.0


def test_arrays_and_objects():
    g = run_script("""
        var a = [10, 20, 30];
        a.push(40);
        a[0] = a[1] + a.length;
        var o = {name: "disc", "count": 2};
        o.count++;
        var keyed = o["name"];
    """).globals
    assert g["a"] == [24.0, 20.0, 30.0, 40.0]
    assert g["o"]["count"] == 3.0
    assert g["keyed"] == "disc"


def test_ternary_and_typeof():
    g = run_script("""
        var t = typeof 3 == "number" ? "yes" : "no";
        var u = typeof "s";
        var v = typeof null;
        var w = typeof f;
        function f() {}
    """).globals
    assert g["t"] == "yes"
    assert g["u"] == "string"
    assert g["v"] == "object"
    assert g["w"] == "function"


def test_runtime_errors():
    with pytest.raises(ScriptRuntimeError, match="not defined"):
        run_script("missing = 1;")
    with pytest.raises(ScriptRuntimeError, match="division by zero"):
        run_script("var x = 1 / 0;")
    with pytest.raises(ScriptRuntimeError, match="not callable"):
        run_script("var x = 5; x();")
    with pytest.raises(ScriptRuntimeError):
        run_script("var o = null; o.member;")


def test_instruction_budget_stops_runaway():
    from repro.threat import RUNAWAY_SCRIPT
    with pytest.raises(ScriptRuntimeError, match="budget"):
        run_script(RUNAWAY_SCRIPT, max_instructions=5_000)


def test_budget_counts_across_scripts():
    interp = Interpreter(max_instructions=100)
    interp.run("var a = 1;")
    with pytest.raises(ScriptRuntimeError):
        interp.run("for (var i = 0; i < 1000; i++) { a += 1; }")


def test_host_object_interaction():
    calls = []
    host = HostObject("sys", methods={
        "ping": lambda: calls.append("ping") or "pong",
        "add": lambda a, b: a + b,
    }, properties={"version": 2.0})
    g = run_script("""
        var p = sys.ping();
        var s = sys.add(1, 2) + sys.version;
        sys.flag = true;
    """, {"sys": host}).globals
    assert g["p"] == "pong"
    assert g["s"] == 5.0
    assert host.properties["flag"] is True
    assert calls == ["ping"]


def test_host_object_unknown_member():
    host = HostObject("sys")
    with pytest.raises(ScriptRuntimeError, match="no member"):
        run_script("sys.nothing();", {"sys": host})


def test_host_exception_wrapped():
    def boom():
        raise RuntimeError("backend failure")
    host = HostObject("sys", methods={"boom": boom})
    with pytest.raises(ScriptRuntimeError, match="host call failed"):
        run_script("sys.boom();", {"sys": host})


def test_call_function_from_host():
    interp = Interpreter()
    interp.run("""
        var total = 0;
        function onEvent(amount) { total += amount; return total; }
    """)
    assert interp.call_function("onEvent", 10.0) == 10.0
    assert interp.call_function("onEvent", 5.0) == 15.0


def test_host_globals_excluded_from_result():
    host = HostObject("sys")
    result = run_script("var x = 1;", {"sys": host})
    assert "sys" not in result.globals
    assert result.globals == {"x": 1.0}


def test_stdlib_math():
    g = run_script("""
        var a = Math.floor(3.7);
        var b = Math.max(1, 9, 4);
        var c = Math.abs(0 - 5);
        var d = Math.round(2.5);
        var e = Math.sqrt(49);
        var p = Math.PI > 3.14 && Math.PI < 3.15;
        var r1 = Math.random();
        var r2 = Math.random();
        var inRange = r1 >= 0 && r1 < 1 && r2 >= 0 && r2 < 1;
    """).globals
    assert g["a"] == 3.0
    assert g["b"] == 9.0
    assert g["c"] == 5.0
    assert g["d"] == 3.0
    assert g["e"] == 7.0
    assert g["p"] is True
    assert g["inRange"] is True


def test_stdlib_math_random_deterministic():
    first = run_script("var r = Math.random();").globals["r"]
    second = run_script("var r = Math.random();").globals["r"]
    assert first == second  # seeded per interpreter: replayable


def test_stdlib_string():
    g = run_script("""
        var s = "Disc Player";
        var up = String.toUpperCase(s);
        var part = String.substring(s, 5, 11);
        var at = String.charAt(s, 0);
        var idx = String.indexOf(s, "Play");
        var parts = String.split("a,b,c", ",");
        var n = String.length(s);
        var rep = String.replace(s, "Disc", "BD");
    """).globals
    assert g["up"] == "DISC PLAYER"
    assert g["part"] == "Player"
    assert g["at"] == "D"
    assert g["idx"] == 5.0
    assert g["parts"] == ["a", "b", "c"]
    assert g["n"] == 11.0
    assert g["rep"] == "BD Player"


def test_stdlib_parse_functions():
    g = run_script("""
        var i = parseInt("42abc");
        var h = parseInt("ff", 16);
        var neg = parseInt("-7");
        var f = parseFloat("3.5km");
    """).globals
    assert g["i"] == 42.0
    assert g["h"] == 255.0
    assert g["neg"] == -7.0
    assert g["f"] == 3.5


def test_parse_int_no_digits():
    with pytest.raises(ScriptRuntimeError):
        run_script('parseInt("xyz");')


def test_stdlib_can_be_disabled():
    interp = Interpreter(include_stdlib=False)
    with pytest.raises(ScriptRuntimeError, match="not defined"):
        interp.run("Math.floor(1.5);")


def test_stdlib_not_leaked_into_globals():
    result = run_script("var x = 1;")
    assert "Math" not in result.globals
    assert "parseInt" not in result.globals
