"""SMIL-lite layout, timing and scheduling."""

import pytest

from repro.errors import MarkupError
from repro.markup import (
    Layout, MediaItem, Region, TimeContainer,
    format_clock_value, parse_clock_value, parse_smil,
)
from repro.xmlcore import parse_element


# -- clock values ----------------------------------------------------------------

@pytest.mark.parametrize("text,expected", [
    ("12s", 12.0), ("1.5s", 1.5), ("500ms", 0.5), ("2min", 120.0),
    ("1h", 3600.0), ("90", 90.0), ("00:01:30", 90.0), ("01:00:00", 3600.0),
    ("02:30", 150.0), ("00:00:10.5", 10.5), ("", 0.0),
])
def test_parse_clock_values(text, expected):
    assert parse_clock_value(text) == expected


def test_parse_clock_default():
    assert parse_clock_value(None, default=7.0) == 7.0


@pytest.mark.parametrize("bad", ["abc", "1:2:3:4", "00:99:00", "12q"])
def test_bad_clock_values(bad):
    with pytest.raises(MarkupError):
        parse_clock_value(bad)


def test_format_clock_value():
    assert format_clock_value(12.0) == "12s"
    assert format_clock_value(1.5) == "1.5s"
    with pytest.raises(MarkupError):
        format_clock_value(-1)


# -- layout ------------------------------------------------------------------------

def test_layout_regions():
    layout = Layout(width=100, height=100)
    layout.add_region(Region("a", 0, 0, 50, 50))
    assert layout.region("a").width == 50
    with pytest.raises(MarkupError):
        layout.add_region(Region("a", 0, 0, 10, 10))  # duplicate
    with pytest.raises(MarkupError):
        layout.add_region(Region("big", 60, 60, 50, 50))  # overflows
    with pytest.raises(MarkupError):
        layout.region("missing")


def test_layout_from_xml():
    layout = Layout.from_element(parse_element(
        '<layout><root-layout width="640" height="480"/>'
        '<region regionName="menu" top="400" width="640" height="80" '
        'z-index="2"/></layout>'
    ))
    assert layout.width == 640
    assert layout.region("menu").z_index == 2


def test_region_requires_name():
    with pytest.raises(MarkupError, match="name"):
        Layout.from_element(parse_element(
            "<layout><region width='1' height='1'/></layout>"
        ))


# -- scheduling ---------------------------------------------------------------------

def test_seq_schedule():
    presentation = parse_smil(parse_element(
        '<seq><video src="a" dur="10s"/><video src="b" dur="5s"/></seq>'
    ))
    schedule = presentation.schedule()
    assert [(i.src, i.start, i.end) for i in schedule] == [
        ("a", 0.0, 10.0), ("b", 10.0, 15.0),
    ]
    assert presentation.duration() == 15.0


def test_par_schedule():
    presentation = parse_smil(parse_element(
        '<par><video src="a" dur="10s"/>'
        '<img src="b" begin="2s" dur="3s"/></par>'
    ))
    schedule = {i.src: (i.start, i.end) for i in presentation.schedule()}
    assert schedule == {"a": (0.0, 10.0), "b": (2.0, 5.0)}


def test_nested_containers():
    presentation = parse_smil(parse_element(
        '<seq><video src="intro" dur="4s"/>'
        '<par><video src="main" dur="20s"/>'
        '<seq><img src="m1" dur="2s"/><img src="m2" dur="2s"/></seq>'
        "</par>"
        '<text src="credits" dur="6s"/></seq>'
    ))
    schedule = {i.src: (i.start, i.end) for i in presentation.schedule()}
    assert schedule["intro"] == (0.0, 4.0)
    assert schedule["main"] == (4.0, 24.0)
    assert schedule["m1"] == (4.0, 6.0)
    assert schedule["m2"] == (6.0, 8.0)
    assert schedule["credits"] == (24.0, 30.0)


def test_intrinsic_durations_resolved():
    presentation = parse_smil(parse_element(
        '<seq><video src="clip-1"/><video src="clip-2" dur="5s"/></seq>'
    ))
    schedule = presentation.schedule({"clip-1": 42.0})
    assert schedule[0].end == 42.0
    assert schedule[1].start == 42.0


def test_full_smil_document():
    presentation = parse_smil(parse_element(
        "<smil><head><layout>"
        '<root-layout width="100" height="100"/>'
        '<region regionName="main" width="100" height="100"/>'
        "</layout></head>"
        '<body><video src="v" region="main" dur="1s"/></body></smil>'
    ))
    assert presentation.layout.width == 100
    assert presentation.validate_regions() == []
    assert presentation.duration() == 1.0


def test_missing_region_detected():
    presentation = parse_smil(parse_element(
        '<smil><head><layout><root-layout width="10" height="10"/>'
        "</layout></head>"
        '<body><video src="v" region="ghost" dur="1s"/></body></smil>'
    ))
    assert presentation.validate_regions() == ["ghost"]


def test_unknown_media_kind_rejected():
    with pytest.raises(MarkupError):
        MediaItem("hologram", "src")


def test_negative_timing_rejected():
    with pytest.raises(MarkupError):
        MediaItem("video", "x", begin=-1.0)


def test_unknown_container_mode():
    with pytest.raises(MarkupError):
        TimeContainer("excl")


def test_unknown_root_element():
    with pytest.raises(MarkupError):
        parse_smil(parse_element("<unknown/>"))


def test_unknown_children_ignored():
    presentation = parse_smil(parse_element(
        '<seq><metadata/><video src="a" dur="1s"/></seq>'
    ))
    assert len(presentation.schedule()) == 1


def test_active_at():
    presentation = parse_smil(parse_element(
        '<seq><video src="a" dur="10s"/>'
        '<par><video src="b" dur="10s"/>'
        '<img src="c" begin="2s" dur="4s"/></par></seq>'
    ))
    assert [i.src for i in presentation.active_at(5.0)] == ["a"]
    active = {i.src for i in presentation.active_at(13.0)}
    assert active == {"b", "c"}
    assert [i.src for i in presentation.active_at(17.0)] == ["b"]
    assert presentation.active_at(99.0) == []
    # Boundary semantics: start inclusive, end exclusive.
    assert [i.src for i in presentation.active_at(0.0)] == ["a"]
    assert "a" not in {i.src for i in presentation.active_at(10.0)}


def test_repeat_count():
    presentation = parse_smil(parse_element(
        '<seq><video src="loop" dur="3s" repeatCount="3"/>'
        '<video src="next" dur="2s"/></seq>'
    ))
    schedule = presentation.schedule()
    assert [(i.src, i.start, i.end) for i in schedule] == [
        ("loop", 0.0, 3.0), ("loop", 3.0, 6.0), ("loop", 6.0, 9.0),
        ("next", 9.0, 11.0),
    ]
    assert presentation.duration() == 11.0


def test_repeat_count_rejections():
    with pytest.raises(MarkupError, match="indefinite"):
        parse_smil(parse_element(
            '<seq><video src="x" dur="1s" repeatCount="indefinite"/></seq>'
        ))
    with pytest.raises(MarkupError, match="repeatCount"):
        parse_smil(parse_element(
            '<seq><video src="x" dur="1s" repeatCount="often"/></seq>'
        ))
    with pytest.raises(MarkupError, match="at least 1"):
        MediaItem("video", "x", repeat=0)
