"""The XRML-style rights extension (paper §9 future work)."""

import pytest

from repro.errors import PolicyError
from repro.xacml.rights import (
    ALL_RIGHTS, License, RIGHT_COPY, RIGHT_EXECUTE, RIGHT_PLAY,
    RightsEngine, RightsGrant,
)


def studio_license() -> License:
    license_ = License("lic-001", "CN=Contoso Studios")
    license_.grant(RIGHT_PLAY, "bd://BDMV/STREAM/00001.m2ts")
    license_.grant(RIGHT_EXECUTE, "app:menu")
    license_.grant(RIGHT_PLAY, "bd://BDMV/STREAM/bonus.m2ts",
                   max_uses=2)
    license_.grant(RIGHT_COPY, "bd://BDMV/STREAM/00001.m2ts",
                   principal="device:RBD-1000-0001")
    license_.grant(RIGHT_PLAY, "app:rental", not_after=100.0)
    return license_


def test_unknown_right_rejected():
    with pytest.raises(PolicyError):
        RightsGrant("broadcast", "x")


def test_xml_roundtrip():
    license_ = studio_license()
    again = License.from_xml(license_.to_xml())
    assert again.license_id == "lic-001"
    assert again.issuer == "CN=Contoso Studios"
    assert again.grants == license_.grants


def test_basic_permissions():
    engine = RightsEngine()
    engine.install(studio_license())
    assert engine.check(RIGHT_PLAY, "bd://BDMV/STREAM/00001.m2ts")
    assert engine.check(RIGHT_EXECUTE, "app:menu")
    # Rights not granted are denied.
    assert not engine.check(RIGHT_COPY, "app:menu")
    assert not engine.check(RIGHT_PLAY, "bd://BDMV/STREAM/other.m2ts")


def test_principal_scoping():
    engine = RightsEngine()
    engine.install(studio_license())
    assert engine.check(RIGHT_COPY, "bd://BDMV/STREAM/00001.m2ts",
                        principal="device:RBD-1000-0001")
    assert not engine.check(RIGHT_COPY, "bd://BDMV/STREAM/00001.m2ts",
                            principal="device:other")


def test_expiry():
    engine = RightsEngine(now=50.0)
    engine.install(studio_license())
    assert engine.check(RIGHT_PLAY, "app:rental")
    engine.now = 150.0
    assert not engine.check(RIGHT_PLAY, "app:rental")


def test_play_count():
    engine = RightsEngine()
    engine.install(studio_license())
    resource = "bd://BDMV/STREAM/bonus.m2ts"
    assert engine.uses_remaining("lic-001", 2) == 2
    assert engine.exercise(RIGHT_PLAY, resource)
    assert engine.exercise(RIGHT_PLAY, resource)
    assert engine.uses_remaining("lic-001", 2) == 0
    # Third play is refused.
    assert not engine.exercise(RIGHT_PLAY, resource)


def test_uncounted_grants_unlimited():
    engine = RightsEngine()
    engine.install(studio_license())
    for _ in range(5):
        assert engine.exercise(RIGHT_EXECUTE, "app:menu")
    assert engine.uses_remaining("lic-001", 1) is None


def test_multiple_licenses_permit_overrides():
    engine = RightsEngine()
    engine.install(studio_license())
    extra = License("lic-002", "CN=Retailer")
    extra.grant(RIGHT_PLAY, "bd://BDMV/STREAM/other.m2ts")
    engine.install(extra)
    assert engine.check(RIGHT_PLAY, "bd://BDMV/STREAM/other.m2ts")
    assert engine.check(RIGHT_PLAY, "bd://BDMV/STREAM/00001.m2ts")


def test_license_can_be_signed(pki, trust_store):
    """Licenses ride the same XMLDSig machinery as everything else."""
    from repro.dsig import Signer, Verifier
    node = studio_license().to_element()
    signature = Signer(pki.studio.key,
                       identity=pki.studio).sign_enveloped(node)
    verifier = Verifier(trust_store=trust_store, require_trusted_key=True)
    assert verifier.verify(signature).valid
    # Tampering a grant is caught.
    node.child_elements()[0].set("right", "copy")
    assert not verifier.verify(signature).valid


def test_unknown_license_lookup():
    engine = RightsEngine()
    with pytest.raises(PolicyError):
        engine.uses_remaining("ghost", 0)


def test_all_rights_constant():
    for right in ALL_RIGHTS:
        RightsGrant(right, "x")
