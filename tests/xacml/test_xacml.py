"""XACML model, combining algorithms, PDP/PEP."""

import pytest

from repro.errors import PermissionDeniedError, PolicyError
from repro.xacml import (
    ACTION, DENY_OVERRIDES, FIRST_APPLICABLE, FUNC_REGEXP_MATCH,
    PERMIT_OVERRIDES, PDP, PEP, Decision, Effect, Match, Policy, Request,
    RESOURCE, Rule, SUBJECT, Target, combine,
)


def platform_policy() -> Policy:
    policy = Policy("platform", combining=DENY_OVERRIDES,
                    description="Player platform resource policy")
    policy.add_rule(Rule("permit-trusted-storage", Effect.PERMIT, Target([
        Match(SUBJECT, "trust-level", "trusted"),
        Match(RESOURCE, "resource-id", "local-storage"),
    ])))
    policy.add_rule(Rule("permit-graphics", Effect.PERMIT, Target([
        Match(RESOURCE, "resource-id", "graphics-plane"),
    ])))
    policy.add_rule(Rule("deny-tuner", Effect.DENY, Target([
        Match(RESOURCE, "resource-id", "tuner"),
    ])))
    return policy


def request(trust="trusted", resource="local-storage",
            action="write") -> Request:
    return Request(
        subject={"trust-level": [trust]},
        resource={"resource-id": [resource]},
        action={"action-id": [action]},
    )


def test_permit_and_deny():
    pdp = PDP([platform_policy()])
    assert pdp.evaluate(request()) is Decision.PERMIT
    assert pdp.evaluate(request(trust="untrusted")) is \
        Decision.NOT_APPLICABLE
    assert pdp.evaluate(request(resource="tuner")) is Decision.DENY


def test_empty_target_matches_everything():
    policy = Policy("allow-all")
    policy.add_rule(Rule("r", Effect.PERMIT))
    assert PDP([policy]).evaluate(Request()) is Decision.PERMIT


def test_deny_overrides_within_policy():
    policy = Policy("mixed", combining=DENY_OVERRIDES)
    policy.add_rule(Rule("p", Effect.PERMIT))
    policy.add_rule(Rule("d", Effect.DENY))
    assert PDP([policy]).evaluate(Request()) is Decision.DENY


def test_permit_overrides_within_policy():
    policy = Policy("mixed", combining=PERMIT_OVERRIDES)
    policy.add_rule(Rule("d", Effect.DENY))
    policy.add_rule(Rule("p", Effect.PERMIT))
    assert PDP([policy]).evaluate(Request()) is Decision.PERMIT


def test_first_applicable_order_matters():
    policy = Policy("ordered", combining=FIRST_APPLICABLE)
    policy.add_rule(Rule("specific-deny", Effect.DENY, Target([
        Match(SUBJECT, "role", "guest"),
    ])))
    policy.add_rule(Rule("general-permit", Effect.PERMIT))
    pdp = PDP([policy])
    assert pdp.evaluate(Request(subject={"role": ["guest"]})) is \
        Decision.DENY
    assert pdp.evaluate(Request(subject={"role": ["admin"]})) is \
        Decision.PERMIT


def test_regexp_match():
    policy = Policy("hosts")
    policy.add_rule(Rule("r", Effect.PERMIT, Target([
        Match(RESOURCE, "host", r".*\.contoso\.example$",
              FUNC_REGEXP_MATCH),
    ])))
    pdp = PDP([policy])
    ok = Request(resource={"host": ["cdn.contoso.example"]})
    bad = Request(resource={"host": ["contoso.example.evil.net"]})
    assert pdp.evaluate(ok) is Decision.PERMIT
    assert pdp.evaluate(bad) is Decision.NOT_APPLICABLE


def test_bad_regexp_is_indeterminate():
    policy = Policy("broken")
    policy.add_rule(Rule("r", Effect.PERMIT, Target([
        Match(RESOURCE, "host", "([", FUNC_REGEXP_MATCH),
    ])))
    assert PDP([policy]).evaluate(
        Request(resource={"host": ["x"]})
    ) is Decision.INDETERMINATE


def test_condition_callable():
    rule = Rule("quota", Effect.PERMIT,
                condition=lambda req: int(
                    req.bag(ACTION, "bytes")[0]
                ) <= 1024)
    policy = Policy("p", rules=[rule])
    pdp = PDP([policy])
    assert pdp.evaluate(Request(action={"bytes": ["100"]})) is \
        Decision.PERMIT
    assert pdp.evaluate(Request(action={"bytes": ["9999"]})) is \
        Decision.NOT_APPLICABLE
    # An erroring condition is INDETERMINATE.
    assert pdp.evaluate(Request()) is Decision.INDETERMINATE


def test_multi_policy_combination():
    allow = Policy("allow")
    allow.add_rule(Rule("p", Effect.PERMIT))
    deny = Policy("deny-storage")
    deny.add_rule(Rule("d", Effect.DENY, Target([
        Match(RESOURCE, "resource-id", "local-storage"),
    ])))
    pdp = PDP([allow, deny])
    assert pdp.evaluate(request()) is Decision.DENY
    assert pdp.evaluate(request(resource="graphics-plane")) is \
        Decision.PERMIT


def test_combining_algorithm_properties():
    P, D, N, I = (Decision.PERMIT, Decision.DENY,
                  Decision.NOT_APPLICABLE, Decision.INDETERMINATE)
    assert combine(DENY_OVERRIDES, [P, D, P]) is D
    assert combine(DENY_OVERRIDES, [P, I]) is I
    assert combine(DENY_OVERRIDES, [N, N]) is N
    assert combine(PERMIT_OVERRIDES, [D, P]) is P
    assert combine(PERMIT_OVERRIDES, [D, I]) is I
    assert combine(FIRST_APPLICABLE, [N, D, P]) is D
    assert combine(FIRST_APPLICABLE, []) is N
    with pytest.raises(PolicyError):
        combine("majority-vote", [P])


def test_policy_xml_roundtrip():
    policy = platform_policy()
    again = Policy.from_xml(policy.to_xml())
    assert again.policy_id == policy.policy_id
    assert again.description == policy.description
    assert len(again.rules) == len(policy.rules)
    pdp = PDP([again])
    assert pdp.evaluate(request()) is Decision.PERMIT
    assert pdp.evaluate(request(resource="tuner")) is Decision.DENY


def test_model_validation():
    with pytest.raises(PolicyError):
        Match("Galaxy", "a", "b")
    with pytest.raises(PolicyError):
        Match(SUBJECT, "a", "b", "urn:no-such-function")
    with pytest.raises(PolicyError):
        Request().bag("Galaxy", "a")


def test_pep_enforcement_and_audit():
    pdp = PDP([platform_policy()])
    pep = PEP(pdp)
    assert pep.is_permitted(request(), "storage write")
    with pytest.raises(PermissionDeniedError):
        pep.enforce(request(resource="tuner"), "tune channel")
    # NOT_APPLICABLE is refused too (deny-biased PEP).
    with pytest.raises(PermissionDeniedError):
        pep.enforce(request(trust="untrusted"), "storage write")
    assert len(pep.audit_log) == 3
    assert pep.audit_log[1] == ("tune channel", Decision.DENY)
