"""XML Encryption round trips: element, content, data, key transport."""

import pytest

from repro.errors import (
    DecryptionError, EncryptedDataFormatError, EncryptionError, PaddingError,
)
from repro.primitives.keys import SymmetricKey
from repro.primitives.rsa import generate_keypair
from repro.xmlcore import XMLENC_NS, canonicalize, parse_element, serialize
from repro.xmlenc import (
    AES128_CBC, AES192_CBC, AES256_CBC, Decryptor, EncryptedData,
    EncryptedKey, Encryptor, KW_AES256, TYPE_ELEMENT,
)


@pytest.fixture
def encryptor(rng):
    return Encryptor(rng=rng)


@pytest.fixture
def key(rng):
    return SymmetricKey(rng.read(16))


@pytest.mark.parametrize("algorithm,size", [
    (AES128_CBC, 16), (AES192_CBC, 24), (AES256_CBC, 32),
])
def test_element_encryption_all_algorithms(encryptor, rng, manifest,
                                           algorithm, size):
    key = SymmetricKey(rng.read(size))
    original = canonicalize(manifest)
    code = manifest.find("code")
    encryptor.encrypt_element(code, key, algorithm=algorithm,
                              key_name="slot-1")
    assert manifest.find("script") is None
    decryptor = Decryptor(keys={"slot-1": key})
    assert decryptor.decrypt_in_place(manifest) == 1
    assert canonicalize(manifest) == original


def test_element_encryption_survives_serialization(encryptor, key,
                                                   manifest):
    original = canonicalize(manifest)
    encryptor.encrypt_element(manifest.find("code"), key,
                              key_name="slot-1")
    transported = parse_element(serialize(manifest))
    Decryptor(keys={"slot-1": key}).decrypt_in_place(transported)
    assert canonicalize(transported) == original


def test_content_encryption_keeps_element_visible(encryptor, key):
    game = parse_element(
        '<game xmlns="urn:game"><title>Pinball</title>'
        '<scores><top p="ann">120</top></scores></game>'
    )
    original = canonicalize(game)
    encryptor.encrypt_content(game.find("scores"), key, key_name="k")
    assert game.find("title").text_content() == "Pinball"
    assert game.find("scores") is not None      # element visible
    assert game.find("top") is None             # content hidden
    Decryptor(keys={"k": key}).decrypt_in_place(game)
    assert canonicalize(game) == original


def test_content_encryption_preserves_mixed_content(encryptor, key):
    node = parse_element("<p>before <b>bold</b> after</p>")
    original = canonicalize(node)
    encryptor.encrypt_content(node, key, key_name="k")
    Decryptor(keys={"k": key}).decrypt_in_place(node)
    assert canonicalize(node) == original


def test_namespace_context_preserved(encryptor, key):
    root = parse_element(
        '<r xmlns:a="urn:a"><holder><a:payload attr="1"/></holder></r>'
    )
    original = canonicalize(root)
    encryptor.encrypt_element(root.find("payload", "urn:a"), key,
                              key_name="k")
    transported = parse_element(serialize(root))
    Decryptor(keys={"k": key}).decrypt_in_place(transported)
    assert canonicalize(transported) == original


def test_bytes_roundtrip(encryptor, key):
    data, detached = encryptor.encrypt_bytes(
        b"\x47TS-payload" * 99, key, key_name="k", mime_type="video/mp2t",
    )
    assert detached is None
    assert data.mime_type == "video/mp2t"
    out = Decryptor(keys={"k": key}).decrypt_to_bytes(data)
    assert out == b"\x47TS-payload" * 99


def test_detached_cipher_reference(encryptor, key):
    store = {}
    data, ciphertext = encryptor.encrypt_bytes(
        b"clip-bytes" * 50, key, key_name="k",
        detached_uri="bd://enc/clip1.bin",
    )
    store["bd://enc/clip1.bin"] = ciphertext
    assert data.cipher_reference == "bd://enc/clip1.bin"
    decryptor = Decryptor(keys={"k": key}, resolver=store.__getitem__)
    assert decryptor.decrypt_to_bytes(data) == b"clip-bytes" * 50


def test_cipher_reference_without_resolver(encryptor, key):
    data, _ = encryptor.encrypt_bytes(b"x", key, key_name="k",
                                      detached_uri="bd://gone")
    with pytest.raises(DecryptionError, match="resolver"):
        Decryptor(keys={"k": key}).decrypt_to_bytes(data)


def test_session_key_with_keywrap(encryptor, rng, manifest):
    original = canonicalize(manifest)
    kek = SymmetricKey(rng.read(32))
    encryptor.session_encrypt_element(
        manifest.find("code"), kek, wrap_algorithm=KW_AES256,
        kek_name="player-kek",
    )
    decryptor = Decryptor(keys={"player-kek": kek})
    decryptor.decrypt_in_place(manifest)
    assert canonicalize(manifest) == original


def test_session_key_with_rsa_transport(encryptor, rng, manifest):
    original = canonicalize(manifest)
    player_key = generate_keypair(1024, rng)
    encryptor.session_encrypt_element(
        manifest.find("code"), player_key.public_key(),
        recipient="player-0001",
    )
    enc_el = manifest.find("EncryptedData", XMLENC_NS)
    assert enc_el.find("EncryptedKey", XMLENC_NS) is not None
    decryptor = Decryptor(rsa_keys=[player_key])
    decryptor.decrypt_in_place(manifest)
    assert canonicalize(manifest) == original


def test_rsa_transport_wrong_key(encryptor, rng, manifest):
    player_key = generate_keypair(1024, rng)
    other_key = generate_keypair(1024, rng)
    encryptor.session_encrypt_element(
        manifest.find("code"), player_key.public_key(),
    )
    decryptor = Decryptor(rsa_keys=[other_key])
    with pytest.raises((DecryptionError, PaddingError)):
        decryptor.decrypt_in_place(manifest)


def test_wrong_named_key(encryptor, key, rng, manifest):
    encryptor.encrypt_element(manifest.find("code"), key, key_name="k")
    wrong = Decryptor(keys={"k": SymmetricKey(rng.read(16))})
    with pytest.raises((DecryptionError, PaddingError)):
        wrong.decrypt_in_place(manifest)


def test_missing_key_slot(encryptor, key, manifest):
    encryptor.encrypt_element(manifest.find("code"), key, key_name="k")
    with pytest.raises(DecryptionError, match="no key slot"):
        Decryptor().decrypt_in_place(manifest)


def test_no_key_named_at_all(encryptor, key, manifest):
    encryptor.encrypt_element(manifest.find("code"), key)
    with pytest.raises(DecryptionError, match="names no key"):
        Decryptor().decrypt_in_place(manifest)
    # ...but an explicit key works.
    decryptor = Decryptor()
    target = manifest.find("EncryptedData", XMLENC_NS)
    decryptor.decrypt_element(target, key)
    assert manifest.find("script") is not None


def test_super_encryption(encryptor, key, rng, manifest):
    """Nested encryption decrypts fully (inner first appears after outer)."""
    original = canonicalize(manifest)
    inner_key = SymmetricKey(rng.read(16))
    encryptor.encrypt_element(manifest.find("script"), inner_key,
                              key_name="inner")
    encryptor.encrypt_element(manifest.find("code"), key, key_name="outer")
    decryptor = Decryptor(keys={"outer": key, "inner": inner_key})
    assert decryptor.decrypt_in_place(manifest) == 2
    assert canonicalize(manifest) == original


def test_except_ids_left_encrypted(encryptor, key, manifest):
    encryptor.encrypt_element(manifest.find("markup"), key, key_name="k",
                              data_id="enc-markup")
    encryptor.encrypt_element(manifest.find("code"), key, key_name="k",
                              data_id="enc-code")
    decryptor = Decryptor(keys={"k": key})
    count = decryptor.decrypt_in_place(manifest,
                                       except_ids=("enc-markup",))
    assert count == 1
    assert manifest.find("script") is not None  # code decrypted
    assert manifest.find("region") is None      # markup still hidden


def test_encrypted_data_structure_validation():
    with pytest.raises(EncryptedDataFormatError):
        EncryptedData(algorithm=AES128_CBC)  # neither value nor reference
    with pytest.raises(EncryptedDataFormatError):
        EncryptedData(algorithm=AES128_CBC, cipher_value=b"x",
                      cipher_reference="u")  # both


def test_encrypted_data_xml_roundtrip(encryptor, key):
    data, _ = encryptor.encrypt_bytes(b"payload", key, key_name="k",
                                      data_id="e1")
    data.data_type = TYPE_ELEMENT
    again = EncryptedData.from_element(
        parse_element(serialize(data.to_element()))
    )
    assert again == data


def test_encrypted_key_xml_roundtrip(encryptor, rng):
    cek = encryptor.generate_cek()
    kek = SymmetricKey(rng.read(16))
    ek = encryptor.make_encrypted_key(cek, kek, kek_name="master",
                                      recipient="player")
    again = EncryptedKey.from_element(
        parse_element(serialize(ek.to_element()))
    )
    assert again == ek


def test_wrong_key_size_for_algorithm(encryptor, rng, manifest):
    with pytest.raises(EncryptionError, match="32-byte"):
        encryptor.encrypt_element(
            manifest.find("code"), SymmetricKey(rng.read(16)),
            algorithm=AES256_CBC,
        )


def test_decrypt_non_xml_type_as_nodes_fails(encryptor, key):
    data, _ = encryptor.encrypt_bytes(b"raw", key, key_name="k")
    decryptor = Decryptor(keys={"k": key})
    with pytest.raises(DecryptionError, match="not XML"):
        decryptor.decrypt_nodes(data.to_element())
