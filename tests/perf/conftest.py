"""Fixtures for the perf subsystem tests.

Every test here gets a *private* C14NDigestCache — never the
process-wide default — so cache state cannot leak between tests, and a
scoped metrics registry so counter assertions see only their own
traffic.
"""

from __future__ import annotations

import pytest

from repro.dsig import Signer, Verifier
from repro.perf import metrics
from repro.perf.cache import C14NDigestCache


@pytest.fixture
def signer(pki):
    return Signer(pki.studio.key, identity=pki.studio)


@pytest.fixture
def cache():
    return C14NDigestCache()


@pytest.fixture
def verifier(pki, trust_store, cache):
    return Verifier(trust_store=trust_store, require_trusted_key=True,
                    cache=cache)


@pytest.fixture
def registry():
    """A scoped perf registry active for the duration of the test."""
    registry = metrics.push_registry()
    try:
        yield registry
    finally:
        metrics.pop_registry()
