"""Perf counter/timer registry semantics."""

import threading

import pytest

from repro.perf import metrics


def test_counter_increment(registry):
    counter = metrics.counter("test.events")
    counter.increment()
    counter.increment(5)
    assert counter.value == 6
    # Same name resolves to the same counter object.
    assert metrics.counter("test.events") is counter


def test_counter_thread_safety(registry):
    counter = metrics.counter("test.concurrent")

    def bump():
        for _ in range(1000):
            counter.increment()

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 8000


def test_timer_records_samples(registry):
    with metrics.timer("test.op"):
        pass
    with metrics.timer("test.op"):
        pass
    summary = registry.timer("test.op").summary()
    assert summary.count == 2
    assert summary.total_s >= 0.0
    assert summary.min_s <= summary.p50_s <= summary.max_s


def test_timer_empty_summary(registry):
    summary = registry.timer("test.never-used").summary()
    assert summary.count == 0
    assert summary.total_s == 0.0
    assert summary.p95_s == 0.0


def test_timer_reservoir_is_bounded(registry):
    timer = registry.timer("test.bounded")
    for _ in range(5000):
        timer.record(0.001)
    assert timer.count == 5000
    assert len(timer._samples) <= timer._max_samples


def test_ratio_from_hit_miss_counters(registry):
    metrics.counter("test.cache.hit").increment(3)
    metrics.counter("test.cache.miss").increment(1)
    snap = metrics.ratio("test.cache")
    assert snap.hits == 3
    assert snap.misses == 1
    assert snap.total == 4
    assert snap.ratio == pytest.approx(0.75)


def test_ratio_with_no_traffic(registry):
    assert metrics.ratio("test.silent").ratio == 0.0


def test_snapshot_shape(registry):
    metrics.counter("a.hit").increment(2)
    metrics.counter("a.miss").increment(2)
    with metrics.timer("b.op"):
        pass
    snap = metrics.snapshot()
    assert snap["counters"] == {"a.hit": 2, "a.miss": 2}
    assert snap["ratios"] == {"a": 0.5}
    assert snap["timers"]["b.op"]["count"] == 1


def test_report_lines_mentions_every_metric(registry):
    metrics.counter("dsig.verify.signatures").increment()
    with metrics.timer("c14n.canonicalize"):
        pass
    text = "\n".join(metrics.report_lines())
    assert "dsig.verify.signatures" in text
    assert "c14n.canonicalize" in text


def test_report_lines_when_empty(registry):
    assert metrics.report_lines() == ["(no metrics recorded)"]


def test_push_pop_registry_isolation(registry):
    metrics.counter("outer").increment()
    inner = metrics.push_registry()
    try:
        metrics.counter("inner").increment()
        assert metrics.get_registry() is inner
        assert inner.counter("outer").value == 0
    finally:
        metrics.pop_registry()
    assert metrics.get_registry() is registry
    assert registry.counter("inner").value == 0


def test_base_registry_cannot_be_popped(registry):
    metrics.pop_registry()  # pops the fixture's registry
    try:
        base_depth_error = None
        try:
            # Unwind to (but never past) the base registry.
            while True:
                metrics.pop_registry()
        except RuntimeError as exc:
            base_depth_error = exc
        assert base_depth_error is not None
    finally:
        metrics.push_registry(registry)  # restore for fixture teardown


def test_reset_clears_registry(registry):
    metrics.counter("gone").increment()
    with metrics.timer("also.gone"):
        pass
    metrics.reset()
    assert metrics.snapshot() == {
        "counters": {}, "timers": {}, "ratios": {},
    }
