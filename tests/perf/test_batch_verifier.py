"""Batch verification engine: same verdicts, deduped work."""

import pytest

from repro.core import verify_signatures
from repro.dsig import Verifier
from repro.errors import ReproError, SignatureError
from repro.perf import metrics
from repro.perf.batch import (
    BatchVerifier, auto_worker_count,
)
from repro.perf.cache import C14NDigestCache
from repro.xmlcore import parse_element

CLUSTER_XML = """\
<cluster xmlns="urn:bda:bdmv:interactive-cluster" Id="cluster-1">
  <track Id="track-1" kind="av"><clip ref="00001"/></track>
  <track Id="track-2" kind="av"><clip ref="00002"/></track>
  <track Id="track-3" kind="application">
    <script Id="script-3">var x = 1;</script>
  </track>
</cluster>
"""


@pytest.fixture
def cluster():
    return parse_element(CLUSTER_XML)


def signed_cluster(signer, cluster, uris=None):
    uris = uris or ("#track-1", "#track-2", "#track-3")
    for uri in uris:
        signer.sign_detached(uri, parent=cluster)
    return cluster


def test_auto_worker_count_bounds():
    assert auto_worker_count(1) == 1
    assert 1 <= auto_worker_count() <= 8
    assert auto_worker_count(1000) <= 8
    assert auto_worker_count(0) == 1


def test_unknown_mode_rejected(verifier):
    with pytest.raises(ReproError):
        BatchVerifier(verifier, mode="fibers")


@pytest.mark.parametrize("mode", ["thread", "sequential"])
def test_batch_matches_sequential_verdicts(signer, verifier, cluster,
                                           mode):
    signed_cluster(signer, cluster)
    sequential = verify_signatures(cluster, verifier)
    outcome = BatchVerifier(verifier, mode=mode).verify_all(cluster)
    assert outcome.all_valid
    assert set(outcome.reports) == set(sequential)
    for uri, report in outcome.reports.items():
        assert report.valid == sequential[uri].valid
        assert [r.valid for r in report.references] == \
            [r.valid for r in sequential[uri].references]


def test_batch_flags_tampered_track_only(signer, verifier, cluster):
    signed_cluster(signer, cluster)
    cluster.find("script").children[0].data = "var x = 666;"
    outcome = BatchVerifier(verifier).verify_all(cluster)
    assert not outcome.all_valid
    assert outcome.reports["#track-1"].valid
    assert outcome.reports["#track-2"].valid
    assert not outcome.reports["#track-3"].valid


def test_batch_counts_and_dedups_references(signer, verifier, cluster):
    # Two signatures over the same track: one digest, computed once.
    signed_cluster(signer, cluster,
                   uris=("#track-1", "#track-1", "#track-2"))
    outcome = BatchVerifier(verifier).verify_all(cluster)
    assert outcome.total_references == 3
    assert outcome.deduplicated == 1
    assert outcome.all_valid


def test_batch_on_unsigned_root(verifier, cluster):
    outcome = BatchVerifier(verifier).verify_all(cluster)
    assert outcome.reports == {}
    assert outcome.total_references == 0
    assert not outcome.all_valid        # vacuously nothing verified


def test_batch_emits_metrics(registry, signer, verifier, cluster):
    signed_cluster(signer, cluster)
    BatchVerifier(verifier).verify_all(cluster)
    assert metrics.counter("dsig.batch.references").value == 3
    timer = metrics.get_registry().timer("dsig.batch.verify_all")
    assert timer.count == 1


def test_batch_warm_cache_serves_digests(registry, signer, trust_store,
                                         cluster):
    verifier = Verifier(trust_store=trust_store,
                        require_trusted_key=True,
                        cache=C14NDigestCache())
    signed_cluster(signer, cluster)
    engine = BatchVerifier(verifier)
    assert engine.verify_all(cluster).all_valid   # cold: fills cache
    assert engine.verify_all(cluster).all_valid   # warm
    assert metrics.ratio("perf.cache.digest").hits > 0


def test_batch_warm_cache_rejects_after_tamper(signer, trust_store,
                                               cluster):
    """The acceptance criterion, end to end: warm the batch engine,
    mutate a signed track, and the next batch run must fail it."""
    verifier = Verifier(trust_store=trust_store,
                        require_trusted_key=True,
                        cache=C14NDigestCache())
    signed_cluster(signer, cluster)
    engine = BatchVerifier(verifier)
    assert engine.verify_all(cluster).all_valid
    cluster.find("clip").set("ref", "99999")
    outcome = engine.verify_all(cluster)
    assert not outcome.reports["#track-1"].valid
    assert outcome.reports["#track-2"].valid


def test_process_mode_rejects_local_hooks(signer, trust_store, cluster):
    verifier = Verifier(trust_store=trust_store,
                        resolver=lambda uri: b"",
                        require_trusted_key=True)
    signed_cluster(signer, cluster)
    engine = BatchVerifier(verifier, mode="process")
    with pytest.raises(SignatureError, match="process-backed"):
        engine.verify_all(cluster)


def test_explicit_worker_count_respected(signer, verifier, cluster):
    signed_cluster(signer, cluster)
    outcome = BatchVerifier(verifier, max_workers=2).verify_all(cluster)
    assert outcome.workers == 2
    assert outcome.all_valid
