"""Security tests: a cached result must never outlive a mutation.

The attack being defended against: warm the verifier's cache with a
valid signature, tamper with the signed subtree, and hope the player
serves the stale digest so the tampered content still "verifies".
Every test here follows that exact script — verify, mutate, verify
again — and demands the second verdict be computed against the mutated
tree.
"""

import os
import random

import pytest

from repro.certs import TrustStore
from repro.dsig import Verifier
from repro.perf import metrics
from repro.perf.cache import C14NDigestCache, NullCache
from repro.primitives.keys import SymmetricKey
from repro.xmlcore import parse_element
from repro.xmlcore.tree import Element

# Same convention as the resilience suites: a fixed seed, overridable
# from the environment, so failures are replayable bit-for-bit.
SEED = int(os.environ.get("REPRO_FAULT_SEED", "20050902"))
ROUNDS = 12


# -- digest/octet cache ---------------------------------------------------------


def test_tamper_after_cache_fails_verification(signer, verifier,
                                               manifest):
    signature = signer.sign_enveloped(manifest)
    assert verifier.verify(signature).valid          # warm the cache
    assert verifier.verify(signature).valid          # served warm
    manifest.find("script").children[0].data = "var score = 9999;"
    report = verifier.verify(signature)
    assert not report.valid
    assert not report.references_valid


# The full official mutation surface; each must invalidate warm entries.
MUTATIONS = {
    "set-attribute": lambda m: m.find("region").set("width", "640"),
    "delete-attribute": lambda m: m.find("region").delete_attr("width"),
    "text-data": lambda m: (
        setattr(m.find("script").children[0], "data", "var hacked=1;")
    ),
    "append-child": lambda m: m.find("markup").append(Element("extra")),
    "insert-child": lambda m: m.find("markup").insert(0, Element("pre")),
    "remove-child": lambda m: m.find("markup").remove(
        m.find("submarkup")
    ),
    "replace-child": lambda m: m.find("markup").replace(
        m.find("submarkup"), Element("swapped")
    ),
    "append-text": lambda m: m.find("script").append_text("tail();"),
    "ancestor-namespace": lambda m: m.declare_namespace(
        "evil", "urn:evil"
    ),
}


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_every_mutator_invalidates_warm_cache(signer, verifier,
                                              manifest, name):
    signature = signer.sign_enveloped(manifest)
    assert verifier.verify(signature).valid
    MUTATIONS[name](manifest)
    assert not verifier.verify(signature).valid, name


def test_randomized_tamper_rounds(signer, cache, trust_store,
                                  manifest_xml):
    """Fixed-seed fuzz: random mutation sequences against a warm cache.

    One long-lived cache across every round — entries from earlier
    rounds must never satisfy later, mutated trees.
    """
    rng = random.Random(SEED)
    verifier = Verifier(trust_store=trust_store,
                        require_trusted_key=True, cache=cache)
    names = sorted(MUTATIONS)
    for round_no in range(ROUNDS):
        manifest = parse_element(manifest_xml)
        signature = signer.sign_enveloped(manifest)
        assert verifier.verify(signature).valid, round_no
        for name in rng.sample(names, rng.randint(1, 3)):
            try:
                MUTATIONS[name](manifest)
            except (ValueError, AttributeError):
                continue  # earlier mutation already removed the target
        report = verifier.verify(signature)
        assert not report.valid, (round_no, SEED)


def test_cached_digest_not_shared_across_identical_documents(
        signer, verifier, manifest_xml):
    """Two separate parses of the same bytes are distinct subtrees; the
    cache must key on node identity, not content equality, so entries
    cannot alias (and a hit on tree B can never reflect tree A's
    pre-mutation state)."""
    first = parse_element(manifest_xml)
    second = parse_element(manifest_xml)
    sig_first = signer.sign_enveloped(first)
    sig_second = signer.sign_enveloped(second)
    assert verifier.verify(sig_first).valid
    first.find("region").set("width", "1")       # tamper only tree A
    assert verifier.verify(sig_second).valid     # B still verifies
    assert not verifier.verify(sig_first).valid


def test_clear_and_len(cache, signer, verifier, manifest):
    signature = signer.sign_enveloped(manifest)
    assert verifier.verify(signature).valid
    assert len(cache) > 0
    cache.clear()
    assert len(cache) == 0
    assert verifier.verify(signature).valid      # recomputes fine


def test_lru_bound_is_enforced(signer, trust_store, manifest_xml):
    small = C14NDigestCache(max_entries=4)
    verifier = Verifier(trust_store=trust_store,
                        require_trusted_key=True, cache=small)
    for _ in range(8):
        manifest = parse_element(manifest_xml)
        signature = signer.sign_enveloped(manifest)
        assert verifier.verify(signature).valid
    # Four tables, each individually bounded.
    assert len(small) <= 4 * 4


def test_null_cache_never_stores(signer, trust_store, manifest):
    null = NullCache()
    verifier = Verifier(trust_store=trust_store,
                        require_trusted_key=True, cache=null)
    signature = signer.sign_enveloped(manifest)
    assert verifier.verify(signature).valid
    assert verifier.verify(signature).valid
    assert len(null) == 0


def test_warm_verify_hits_digest_cache(registry, signer, verifier,
                                       manifest):
    # Detached pure-C14N reference: the digest fast path applies (the
    # enveloped form's extra transform keeps it off the digest cache).
    signature = signer.sign_detached("#markup-1", parent=manifest)
    assert verifier.verify(signature).valid
    assert verifier.verify(signature).valid
    snap = metrics.ratio("perf.cache.digest")
    assert snap.hits >= 1
    assert metrics.ratio("perf.cache.sigverify").hits >= 1


# -- chain-validation memo ------------------------------------------------------


def test_revocation_invalidates_cached_chain(pki, signer, cache,
                                             manifest):
    store = TrustStore(roots=[pki.root.certificate])
    verifier = Verifier(trust_store=store, require_trusted_key=True,
                        cache=cache)
    signature = signer.sign_enveloped(manifest)
    assert verifier.verify(signature).valid      # chain memoized
    store.revoke(pki.studio.certificate)
    report = verifier.verify(signature)
    assert not report.valid
    assert not report.certificate_validation.valid


def test_trust_store_generation_moves_on_every_mutation(pki):
    store = TrustStore()
    seen = {store.generation}
    store.add_root(pki.root.certificate)
    seen.add(store.generation)
    store.add_intermediate(pki.intermediate.certificate)
    seen.add(store.generation)
    store.revoke(pki.attacker.certificate)
    seen.add(store.generation)
    assert len(seen) == 4


def test_chain_memo_serves_warm_result(registry, pki, cache):
    store = TrustStore(roots=[pki.root.certificate])
    chain = [pki.studio.certificate, pki.intermediate.certificate]
    calls = []

    def compute():
        calls.append(1)
        return store.validate_chain(chain, now=0.0)

    first = cache.chain_validation(store, chain, 0.0,
                                   "digitalSignature", compute)
    second = cache.chain_validation(store, chain, 0.0,
                                    "digitalSignature", compute)
    assert first.valid and second.valid
    assert len(calls) == 1
    assert metrics.ratio("perf.cache.chain").hits == 1


# -- signature-verification memo ------------------------------------------------


def test_sigverify_memo_skips_recompute(registry, pki, cache):
    key = pki.studio.key.public_key()
    calls = []

    def compute():
        calls.append(1)
        return True

    for _ in range(3):
        assert cache.signature_verification("alg", key, b"octets",
                                            b"sig", compute)
    assert len(calls) == 1
    assert metrics.ratio("perf.cache.sigverify").hits == 2


def test_sigverify_never_memoizes_secret_keys(registry, cache):
    """HMAC verification must recompute every time: memoizing it would
    put key-derived material into cache keys."""
    key = SymmetricKey(b"\x01" * 16)
    calls = []

    def compute():
        calls.append(1)
        return True

    for _ in range(3):
        assert cache.signature_verification("hmac", key, b"octets",
                                            b"sig", compute)
    assert len(calls) == 3
    assert metrics.ratio("perf.cache.sigverify").total == 0


def test_sigverify_distinguishes_every_key_component(pki, cache):
    key = pki.studio.key.public_key()
    results = {
        "base": cache.signature_verification(
            "alg", key, b"octets", b"sig", lambda: True),
        "other-octets": cache.signature_verification(
            "alg", key, b"OTHER", b"sig", lambda: False),
        "other-sig": cache.signature_verification(
            "alg", key, b"octets", b"SIG2", lambda: False),
        "other-alg": cache.signature_verification(
            "alg2", key, b"octets", b"sig", lambda: False),
    }
    assert results == {"base": True, "other-octets": False,
                       "other-sig": False, "other-alg": False}
