"""Revision-stamp semantics the cache's soundness rests on."""

from repro.xmlcore import parse_element
from repro.xmlcore.tree import Element, Text

DOC = """\
<root xmlns="urn:x"><a Id="a"><b Id="b"><c Id="c">text</c></b></a>\
<sibling Id="s"/></root>"""


def build():
    return parse_element(DOC)


def test_fresh_nodes_have_unique_revisions():
    one, two = Element("one"), Element("two")
    assert one.revision != two.revision


def test_mutation_stamps_node_and_all_ancestors():
    root = build()
    c = root.find("c")
    b = root.find("b")
    a = root.find("a")
    before = {node: node.revision for node in (root, a, b, c)}
    c.set("x", "1")
    for node in (root, a, b, c):
        assert node.revision != before[node]


def test_mutation_does_not_stamp_siblings():
    root = build()
    sibling = root.find("sibling")
    before = sibling.revision
    root.find("c").set("x", "1")
    assert sibling.revision == before


def test_revisions_are_monotonic():
    root = build()
    seen = [root.revision]
    for value in ("1", "2", "3"):
        root.set("x", value)
        seen.append(root.revision)
    assert seen == sorted(seen)
    assert len(set(seen)) == len(seen)


def test_every_official_mutator_stamps_the_root():
    mutators = [
        lambda r: r.find("c").set("x", "1"),
        lambda r: r.find("c").delete_attr("Id"),
        lambda r: r.find("b").append(Element("new")),
        lambda r: r.find("b").insert(0, Element("first")),
        lambda r: r.find("a").remove(r.find("b")),
        lambda r: r.find("a").replace(r.find("b"), Element("swap")),
        lambda r: r.find("c").append_text("more"),
        lambda r: r.find("a").declare_namespace("p", "urn:p"),
    ]
    for mutate in mutators:
        root = build()
        before = root.revision
        mutate(root)
        assert root.revision != before, mutate


def test_text_data_assignment_stamps_ancestors():
    root = build()
    before = root.revision
    text = root.find("c").children[0]
    assert isinstance(text, Text)
    text.data = "changed"
    assert root.revision != before
