"""The Interactive Application Engine and the full player (Figs 3, 11)."""

import pytest

from repro.core import (
    AuthoringPipeline, PlaybackPipeline, ProtectionLevel, sign_disc_image,
)
from repro.disc import ApplicationManifest, DiscAuthor
from repro.dsig import Signer
from repro.errors import (
    ApplicationRejectedError, DiscError, PermissionDeniedError,
    PlayerError, ScriptRuntimeError,
)
from repro.network import Channel, ContentServer, DownloadClient
from repro.permissions import (
    PERM_LOCAL_STORAGE, PERM_RETURN_CHANNEL, PermissionRequestFile,
)
from repro.player import DiscPlayer, InteractiveApplicationEngine
from repro.primitives.random import DeterministicRandomSource
from repro.primitives.rsa import generate_keypair
from repro.threat import RUNAWAY_SCRIPT, corrupt_stream
from repro.xmlcore import parse_element

LAYOUT = (
    '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
    '<root-layout width="1920" height="1080"/>'
    '<region regionName="main" width="1920" height="1080"/></layout>'
)


@pytest.fixture(scope="module")
def device_key():
    return generate_keypair(
        1024, DeterministicRandomSource(b"engine-device")
    )


def make_manifest(script: str, name: str = "app") -> ApplicationManifest:
    manifest = ApplicationManifest(name)
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.add_script(script)
    return manifest


def make_package(pki, device_key, rng, script: str,
                 permissions=(), name: str = "app"):
    manifest = make_manifest(script, name)
    prf = PermissionRequestFile(name, "org.test")
    for permission, kwargs in permissions:
        prf.request(permission, **kwargs)
    pipeline = AuthoringPipeline(
        pki.studio, recipient_key=device_key.public_key(), rng=rng,
    )
    return pipeline.build_package(manifest, permission_file=prf)


def make_engine(pki, trust_store, device_key, **kwargs):
    pipeline = PlaybackPipeline(trust_store=trust_store,
                                device_key=device_key)
    return InteractiveApplicationEngine(pipeline, **kwargs)


# -- engine ----------------------------------------------------------------------


def test_execute_trusted_app_with_storage(pki, trust_store, device_key,
                                          rng):
    package = make_package(
        pki, device_key, rng,
        """
        storage.write("level", 3);
        var level = storage.read("level");
        player.log("resumed at level " + level);
        """,
        permissions=[(PERM_LOCAL_STORAGE, {"quota_bytes": 1024})],
    )
    engine = make_engine(pki, trust_store, device_key)
    application = engine.load_package(package.data)
    session = engine.execute(application)
    assert session.trusted
    assert session.console == ["resumed at level 3"]
    assert "write:level" in session.storage_ops


def test_untrusted_app_denied_storage(pki, trust_store, device_key, rng):
    package = make_package(
        pki, device_key, rng,
        'storage.write("x", 1);',
        permissions=[(PERM_LOCAL_STORAGE, {})],
    )
    pipeline = PlaybackPipeline(trust_store=pki.trust_store(),
                                device_key=device_key,
                                require_signature=False)
    engine = InteractiveApplicationEngine(pipeline)
    # Strip the signature → app loads as untrusted under lenient policy.
    from repro.threat import strip_signature
    application = engine.load_package(strip_signature(package.data))
    assert not application.trusted
    with pytest.raises(PermissionDeniedError):
        engine.execute(application)


def test_app_quota_enforced(pki, trust_store, device_key, rng):
    package = make_package(
        pki, device_key, rng,
        'storage.write("big", "' + "x" * 64 + '");',
        permissions=[(PERM_LOCAL_STORAGE, {"quota_bytes": 32})],
    )
    engine = make_engine(pki, trust_store, device_key)
    application = engine.load_package(package.data)
    with pytest.raises(PermissionDeniedError, match="quota"):
        engine.execute(application)


def test_network_access_gated_by_grant(pki, trust_store, device_key, rng):
    fetched = []

    def fetch(host, path):
        fetched.append((host, path))
        return b"bonus-data"

    script = 'var d = network.get("cdn.studio.example", "/extra");' \
             'player.log(d);'
    allowed = make_package(
        pki, device_key, rng, script,
        permissions=[(PERM_RETURN_CHANNEL,
                      {"hosts": ("cdn.studio.example",)})],
    )
    engine = make_engine(pki, trust_store, device_key,
                         network_fetch=fetch)
    session = engine.execute(engine.load_package(allowed.data))
    assert session.console == ["bonus-data"]
    assert fetched == [("cdn.studio.example", "/extra")]

    denied = make_package(pki, device_key, rng, script)  # no permission
    with pytest.raises(PermissionDeniedError):
        engine.execute(engine.load_package(denied.data))
    assert len(fetched) == 1  # the denied call never reached the network


def test_runaway_script_aborted(pki, trust_store, device_key, rng):
    package = make_package(pki, device_key, rng, RUNAWAY_SCRIPT)
    engine = make_engine(pki, trust_store, device_key)
    engine.max_instructions = 20_000
    application = engine.load_package(package.data)
    with pytest.raises(ScriptRuntimeError, match="budget"):
        engine.execute(application)


def test_undefined_region_rejected(pki, trust_store, device_key, rng):
    manifest = ApplicationManifest("bad-regions")
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.add_submarkup("timing", parse_element(
        '<seq xmlns="urn:bda:bdmv:interactive-cluster">'
        '<video src="x" region="ghost" dur="1s"/></seq>'
    ))
    manifest.add_script("var x = 1;")
    pipeline = AuthoringPipeline(
        pki.studio, recipient_key=device_key.public_key(), rng=rng,
    )
    package = pipeline.build_package(manifest)
    engine = make_engine(pki, trust_store, device_key)
    with pytest.raises(ApplicationRejectedError, match="regions"):
        engine.execute(engine.load_package(package.data))


def test_event_dispatch(pki, trust_store, device_key, rng):
    package = make_package(
        pki, device_key, rng,
        """
        var presses = 0;
        function onKey(code) { presses++; return presses; }
        """,
    )
    engine = make_engine(pki, trust_store, device_key)
    session = engine.execute(
        engine.load_package(package.data),
        events=[("onKey", 38.0), ("onKey", 40.0)],
    )
    assert session.script_globals["presses"] == 2.0
    assert session.dispatch("onKey", 13.0) == 3.0


# -- player -------------------------------------------------------------------------


def build_disc(pki, rng, *, sign=True, script='player.log("menu");'):
    author = DiscAuthor("Player Test Disc", rng=rng)
    clip = author.add_clip(8.0, packets_per_second=25)
    author.add_feature("main", [clip])
    author.add_application(make_manifest(script, name="menu"))
    image = author.master()
    if sign:
        signer = Signer(pki.studio.key, identity=pki.studio)
        sign_disc_image(image, signer, level=ProtectionLevel.TRACK)
    return image


def test_disc_insertion_and_playback(pki, trust_store, rng):
    player = DiscPlayer(trust_store)
    session = player.insert_disc(build_disc(pki, rng))
    assert session.authenticated
    report = player.play_title("main")
    assert report.duration_s == 8.0
    assert report.total_packets == 200
    with pytest.raises(PlayerError):
        player.play_title("no-such-title")


def test_disc_application_trusted_on_authenticated_disc(pki, trust_store,
                                                        rng):
    player = DiscPlayer(trust_store)
    player.insert_disc(build_disc(pki, rng))
    session = player.launch_disc_application("menu")
    assert session.trusted
    assert session.console == ["menu"]
    with pytest.raises(PlayerError):
        player.launch_disc_application("ghost-app")


def test_unsigned_disc_apps_run_untrusted(pki, trust_store, rng):
    player = DiscPlayer(trust_store)
    session = player.insert_disc(build_disc(pki, rng, sign=False))
    assert not session.authenticated
    app_session = player.launch_disc_application("menu")
    assert not app_session.trusted


def test_strict_player_bars_unauthenticated_disc_apps(pki, trust_store,
                                                      rng):
    player = DiscPlayer(trust_store,
                        allow_unauthenticated_disc_apps=False)
    player.insert_disc(build_disc(pki, rng, sign=False))
    with pytest.raises(ApplicationRejectedError):
        player.launch_disc_application("menu")


def test_stream_tampering_breaks_disc_authentication(pki, trust_store,
                                                     rng):
    image = build_disc(pki, rng)
    tampered = corrupt_stream(image, "00001")
    player = DiscPlayer(trust_store)
    assert not player.insert_disc(tampered).authenticated


def test_structurally_broken_disc_rejected(pki, trust_store, rng):
    from repro.disc import DiscImage
    image = build_disc(pki, rng)
    broken = DiscImage({
        p: image.read(p) for p in image.paths()
        if not p.endswith(".m2ts")
    })
    with pytest.raises(DiscError, match="rejected"):
        DiscPlayer(trust_store).insert_disc(broken)


def test_no_disc_inserted(trust_store):
    player = DiscPlayer(trust_store)
    with pytest.raises(PlayerError, match="no disc"):
        player.play_title("main")


def test_download_and_run(pki, trust_store, device_key, rng):
    package = make_package(
        pki, device_key, rng, 'player.log("downloaded ok");',
        name="bonus",
    )
    from repro.certs import SigningIdentity
    identity = SigningIdentity.create(
        "CN=content.example", pki.root,
        rng=DeterministicRandomSource(b"dl-server"),
    )
    server = ContentServer(identity=identity)
    server.publish("/apps/bonus.pkg", package.data)
    client = DownloadClient(server, Channel(), trust_store=trust_store)
    player = DiscPlayer(trust_store, device_key=device_key)
    application = player.download_application(client, "/apps/bonus.pkg")
    assert application.trusted
    session = player.run_application(application)
    assert session.console == ["downloaded ok"]


def test_downloaded_tampered_package_barred(pki, trust_store, device_key,
                                            rng):
    from repro.threat import tamper_package_bytes
    package = make_package(pki, device_key, rng, "var x=1;",
                           name="bonus")
    from repro.certs import SigningIdentity
    identity = SigningIdentity.create(
        "CN=content.example", pki.root,
        rng=DeterministicRandomSource(b"dl-server-2"),
    )
    server = ContentServer(identity=identity)
    server.publish("/apps/bonus.pkg",
                   tamper_package_bytes(package.data))
    client = DownloadClient(server, Channel(), trust_store=trust_store)
    player = DiscPlayer(trust_store, device_key=device_key)
    with pytest.raises(ApplicationRejectedError):
        player.download_application(client, "/apps/bonus.pkg")


def test_manifest_signed_disc(pki, trust_store, rng):
    """ds:Manifest disc signing: one signature, per-entry checking."""
    image = build_disc(pki, rng, sign=False)
    signer = Signer(pki.studio.key, identity=pki.studio)
    result = sign_disc_image(image, signer, use_manifest=True)
    assert result.stream_uris == ["bd://BDMV/STREAM/00001.m2ts"]

    player = DiscPlayer(trust_store)
    session = player.insert_disc(image)
    assert session.authenticated
    assert session.manifest_validations
    validation = next(iter(session.manifest_validations.values()))
    assert validation.all_valid

    # Tampering a stream: core signature still verifies, but the disc
    # is no longer authenticated because the manifest entry fails.
    tampered = corrupt_stream(image, "00001")
    session2 = DiscPlayer(trust_store).insert_disc(tampered)
    assert not session2.authenticated
    assert all(r.valid for r in session2.signature_reports.values())
