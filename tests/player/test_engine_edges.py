"""Engine/host-API edge cases."""

import pytest

from repro.core import AuthoringPipeline, PlaybackPipeline
from repro.disc import ApplicationManifest
from repro.errors import ApplicationRejectedError, PermissionDeniedError
from repro.permissions import PERM_LOCAL_STORAGE, PermissionRequestFile
from repro.player import InteractiveApplicationEngine, LocalStorage
from repro.primitives.keys import SymmetricKey
from repro.primitives.random import DeterministicRandomSource
from repro.primitives.rsa import generate_keypair
from repro.xmlcore import parse_element

LAYOUT = (
    '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
    '<region regionName="main" width="10" height="10"/></layout>'
)


@pytest.fixture(scope="module")
def device_key():
    return generate_keypair(
        1024, DeterministicRandomSource(b"engine-edges")
    )


def build(pki, device_key, rng, script, *, language="ecmascript",
          storage_quota=0):
    manifest = ApplicationManifest("edge-app")
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.scripts.append(
        __import__("repro.disc.manifest",
                   fromlist=["Script"]).Script(script, language)
    )
    prf = PermissionRequestFile("edge-app", "org.test")
    if storage_quota:
        prf.request(PERM_LOCAL_STORAGE, quota_bytes=storage_quota)
    pipeline = AuthoringPipeline(
        pki.studio, recipient_key=device_key.public_key(), rng=rng,
    )
    return pipeline.build_package(manifest, permission_file=prf)


def make_engine(pki, trust_store, device_key, **kwargs):
    return InteractiveApplicationEngine(PlaybackPipeline(
        trust_store=trust_store, device_key=device_key,
    ), **kwargs)


def test_unknown_script_language_rejected(pki, trust_store, device_key,
                                          rng):
    package = build(pki, device_key, rng, "10 PRINT 'HI'",
                    language="basic")
    engine = make_engine(pki, trust_store, device_key)
    with pytest.raises(ApplicationRejectedError, match="language"):
        engine.execute(engine.load_package(package.data))


def test_storage_read_missing_returns_null(pki, trust_store, device_key,
                                           rng):
    package = build(
        pki, device_key, rng,
        'var v = storage.read("never-written");'
        'player.log(v == null ? "empty" : "found");',
        storage_quota=1024,
    )
    engine = make_engine(pki, trust_store, device_key)
    session = engine.execute(engine.load_package(package.data))
    assert session.console == ["empty"]


def test_storage_remove(pki, trust_store, device_key, rng):
    package = build(
        pki, device_key, rng,
        'storage.write("k", 1); storage.remove("k");'
        'player.log(storage.read("k") == null ? "gone" : "still");',
        storage_quota=1024,
    )
    engine = make_engine(pki, trust_store, device_key)
    session = engine.execute(engine.load_package(package.data))
    assert session.console == ["gone"]


def test_write_secure_without_player_key(pki, trust_store, device_key,
                                         rng):
    package = build(pki, device_key, rng,
                    'storage.writeSecure("k", 1);', storage_quota=1024)
    engine = make_engine(pki, trust_store, device_key)  # no storage_key
    with pytest.raises(PermissionDeniedError, match="storage encryption"):
        engine.execute(engine.load_package(package.data))


def test_secure_storage_roundtrip_through_scripts(pki, trust_store,
                                                  device_key, rng):
    storage = LocalStorage()
    storage_key = SymmetricKey(rng.read(16))
    engine = InteractiveApplicationEngine(PlaybackPipeline(
        trust_store=trust_store, device_key=device_key,
    ), storage=storage, storage_key=storage_key)
    writer = build(pki, device_key, rng,
                   'storage.writeSecure("hs", 777);',
                   storage_quota=1024)
    engine.execute(engine.load_package(writer.data))
    # The raw slot is ciphertext...
    assert b"777" not in storage.read("edge-app", "hs")
    # ...but a later script reads it back transparently.
    reader = build(pki, device_key, rng,
                   'player.log("hs=" + storage.read("hs"));',
                   storage_quota=1024)
    session = engine.execute(engine.load_package(reader.data))
    assert session.console == ["hs=777"]


def test_network_offline(pki, trust_store, device_key, rng):
    manifest = ApplicationManifest("edge-app")
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.add_script('network.get("host", "/p");')
    prf = PermissionRequestFile("edge-app", "org.test")
    from repro.permissions import PERM_RETURN_CHANNEL
    prf.request(PERM_RETURN_CHANNEL)
    package = AuthoringPipeline(
        pki.studio, recipient_key=device_key.public_key(), rng=rng,
    ).build_package(manifest, permission_file=prf)
    engine = make_engine(pki, trust_store, device_key)  # no network_fetch
    with pytest.raises(PermissionDeniedError, match="offline"):
        engine.execute(engine.load_package(package.data))


def test_presentation_host_object(pki, trust_store, device_key, rng):
    package = build(
        pki, device_key, rng,
        'player.log("regions=" + presentation.regionCount());'
        'player.log("w=" + presentation.width);',
    )
    engine = make_engine(pki, trust_store, device_key)
    session = engine.execute(engine.load_package(package.data))
    assert session.console == ["regions=1", "w=1920"]


def test_denied_ops_are_recorded(pki, trust_store, device_key, rng):
    package = build(pki, device_key, rng, 'storage.write("x", 1);')
    engine = make_engine(pki, trust_store, device_key)
    application = engine.load_package(package.data)
    session_err = None
    try:
        engine.execute(application)
    except PermissionDeniedError as exc:
        session_err = exc
    assert session_err is not None
