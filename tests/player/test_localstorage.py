"""Player local storage: namespaces, quotas, encrypted slots."""

import pytest

from repro.errors import LocalStorageError
from repro.player import LocalStorage
from repro.primitives.keys import SymmetricKey


@pytest.fixture
def storage():
    return LocalStorage(quota_bytes=200)


def test_write_read_delete(storage):
    storage.write("app", "slot", b"value")
    assert storage.read("app", "slot") == b"value"
    assert storage.keys("app") == ["slot"]
    assert storage.delete("app", "slot")
    assert not storage.delete("app", "slot")
    with pytest.raises(LocalStorageError):
        storage.read("app", "slot")


def test_namespacing(storage):
    storage.write("game-a", "score", b"100")
    storage.write("game-b", "score", b"999")
    assert storage.read("game-a", "score") == b"100"
    assert storage.read("game-b", "score") == b"999"
    storage.wipe("game-a")
    with pytest.raises(LocalStorageError):
        storage.read("game-a", "score")
    assert storage.read("game-b", "score") == b"999"


def test_quota_enforced(storage):
    storage.write("app", "a", b"x" * 100)
    with pytest.raises(LocalStorageError, match="quota"):
        storage.write("app", "b", b"x" * 150)
    # Overwriting the same key releases its old bytes first.
    storage.write("app", "a", b"y" * 150)
    assert storage.read("app", "a") == b"y" * 150


def test_quota_is_per_app(storage):
    storage.write("app-1", "a", b"x" * 150)
    storage.write("app-2", "a", b"x" * 150)  # separate budget


def test_used_bytes_accounting(storage):
    assert storage.used_bytes("app") == 0
    storage.write("app", "key", b"12345")
    assert storage.used_bytes("app") == len("key") + 5


def test_encrypted_slots(rng):
    storage = LocalStorage()
    key = SymmetricKey(rng.read(16))
    storage.write_encrypted("game", "highscore", b"120", key)
    assert storage.is_encrypted("game", "highscore")
    # Raw read shows ciphertext, not the value.
    assert b"120" not in storage.read("game", "highscore")
    assert storage.read_encrypted("game", "highscore", key) == b"120"


def test_encrypted_slot_wrong_key(rng):
    # ENC2 slots are encrypt-then-MAC: a wrong key fails the tag check
    # *deterministically* (the legacy ENC1 format only caught it when
    # garbage happened not to unpad), and the failure is the storage
    # layer's typed error, not a raw crypto traceback.
    from repro.errors import LocalStorageError
    storage = LocalStorage()
    key = SymmetricKey(rng.read(16))
    wrong = SymmetricKey(rng.read(16))
    storage.write_encrypted("game", "hs", b"120", key)
    with pytest.raises(LocalStorageError, match="failed to decrypt"):
        storage.read_encrypted("game", "hs", wrong)


def test_legacy_enc1_slot_still_reads(rng):
    # Blobs written before encrypt-then-MAC landed carry no tag; they
    # must keep decrypting through the same API.
    from repro.xmlenc import algorithms as xenc_algorithms
    storage = LocalStorage()
    key = SymmetricKey(rng.read(16))
    ciphertext = xenc_algorithms.encrypt_block_data(
        xenc_algorithms.AES128_CBC, key, b"old-score",
        storage.provider, storage.rng)
    storage.write("game", "hs", b"ENC1" + ciphertext)
    assert storage.is_encrypted("game", "hs")
    assert storage.read_encrypted("game", "hs", key) == b"old-score"


def test_read_encrypted_on_plain_slot(rng):
    storage = LocalStorage()
    storage.write("game", "plain", b"visible")
    with pytest.raises(LocalStorageError, match="not an encrypted"):
        storage.read_encrypted("game", "plain",
                               SymmetricKey(rng.read(16)))
    assert not storage.is_encrypted("game", "plain")


def test_persistence_roundtrip(tmp_path, rng):
    storage = LocalStorage()
    key = SymmetricKey(rng.read(16))
    storage.write("game/a", "plain slot", b"value-1")
    storage.write_encrypted("game/a", "secret", b"hidden", key)
    storage.write("other.app", "x", b"value-2")
    storage.save_to_directory(str(tmp_path))

    restored = LocalStorage.load_from_directory(str(tmp_path))
    assert restored.read("game/a", "plain slot") == b"value-1"
    assert restored.read_encrypted("game/a", "secret", key) == b"hidden"
    assert restored.read("other.app", "x") == b"value-2"
    assert restored.keys("game/a") == ["plain slot", "secret"]


def test_load_missing_directory(tmp_path):
    restored = LocalStorage.load_from_directory(
        str(tmp_path / "nowhere")
    )
    assert restored.keys("any") == []
