"""Local storage on the journaled backend, plus the flash-persistence
regressions this PR fixes: deleted slots resurrecting from stale
files, the quota skipped on load, and torn ENC1 blobs leaking raw
crypto tracebacks."""

import pytest

from repro.errors import LocalStorageError
from repro.player.localstorage import LocalStorage
from repro.primitives.keys import SymmetricKey
from repro.resilience.crashfs import CrashableFilesystem
from repro.resilience.degradation import REASON_RECOVERY, DegradationLog

DIR = "/flash/ls"
KEY = SymmetricKey(b"storage-key-16b!")


# -- the journaled backend ---------------------------------------------------


def test_writes_survive_reopen():
    fs = CrashableFilesystem(seed=0)
    storage = LocalStorage.open_durable(DIR, fs=fs)
    storage.write("game", "hs", b"120")
    storage.write("menu", "lang", b"en")
    reopened = LocalStorage.open_durable(DIR, fs=fs)
    assert reopened.read("game", "hs") == b"120"
    assert reopened.read("menu", "lang") == b"en"


def test_delete_and_wipe_survive_reopen():
    fs = CrashableFilesystem(seed=0)
    storage = LocalStorage.open_durable(DIR, fs=fs)
    storage.write("game", "hs", b"120")
    storage.write("game", "other", b"x")
    storage.write("menu", "lang", b"en")
    storage.delete("game", "hs")
    storage.wipe("menu")
    reopened = LocalStorage.open_durable(DIR, fs=fs)
    assert reopened.keys("game") == ["other"]
    assert reopened.keys("menu") == []


def test_delete_of_absent_key_does_not_journal():
    fs = CrashableFilesystem(seed=0)
    storage = LocalStorage.open_durable(DIR, fs=fs)
    ops_before = fs.op_count
    assert storage.delete("game", "never-written") is False
    assert fs.op_count == ops_before


def test_unacknowledged_write_vanishes_on_crash():
    fs = CrashableFilesystem(seed=0)
    storage = LocalStorage.open_durable(DIR, fs=fs)
    storage.write("game", "hs", b"120")
    fs.crash_at = fs.op_count            # kill the next operation
    with pytest.raises(Exception):
        storage.write("game", "hs", b"999")
    fs.crash()
    log = DegradationLog()
    reopened = LocalStorage.open_durable(DIR, fs=fs, degradation=log)
    assert reopened.read("game", "hs") == b"120"


def test_recovery_repair_is_reported_on_the_degradation_log():
    fs = CrashableFilesystem(seed=0)
    storage = LocalStorage.open_durable(DIR, fs=fs)
    storage.write("game", "hs", b"120")
    path = storage.durable.directory + "/journal.rjl"
    fs.append(path, b"\x30\x00\x00\x00torn-tail")
    fs.fsync(path)
    log = DegradationLog()
    LocalStorage.open_durable(DIR, fs=fs, degradation=log)
    assert any(e.reason == REASON_RECOVERY for e in log.events)


def test_quota_enforced_on_durable_reopen():
    fs = CrashableFilesystem(seed=0)
    storage = LocalStorage.open_durable(DIR, 4096, fs=fs)
    storage.write("game", "blob", b"A" * 3000)
    with pytest.raises(LocalStorageError):
        LocalStorage.open_durable(DIR, 1024, fs=fs)


def test_compact_requires_the_journaled_backend():
    with pytest.raises(LocalStorageError):
        LocalStorage().compact()


def test_compact_then_write_then_reopen():
    fs = CrashableFilesystem(seed=0)
    storage = LocalStorage.open_durable(DIR, fs=fs)
    storage.write("game", "hs", b"120")
    storage.compact()
    storage.write("game", "post", b"alive")
    reopened = LocalStorage.open_durable(DIR, fs=fs)
    assert reopened.read("game", "hs") == b"120"
    assert reopened.read("game", "post") == b"alive"


def test_encrypted_slots_roundtrip_through_the_journal():
    fs = CrashableFilesystem(seed=0)
    storage = LocalStorage.open_durable(DIR, fs=fs)
    storage.write_encrypted("game", "secret", b"top-score", KEY)
    reopened = LocalStorage.open_durable(DIR, fs=fs)
    assert reopened.read_encrypted("game", "secret", KEY) == b"top-score"


# -- directory persistence regressions ---------------------------------------


def test_deleted_slot_does_not_resurrect_through_save_load(tmp_path):
    directory = str(tmp_path / "flash")
    storage = LocalStorage()
    storage.write("game", "hs", b"120")
    storage.write("game", "stale", b"old")
    storage.save_to_directory(directory)
    storage.delete("game", "stale")
    storage.save_to_directory(directory)
    restored = LocalStorage.load_from_directory(directory)
    assert restored.keys("game") == ["hs"]


def test_wiped_app_does_not_resurrect_through_save_load(tmp_path):
    directory = str(tmp_path / "flash")
    storage = LocalStorage()
    storage.write("game", "hs", b"120")
    storage.write("menu", "lang", b"en")
    storage.save_to_directory(directory)
    storage.wipe("menu")
    storage.save_to_directory(directory)
    restored = LocalStorage.load_from_directory(directory)
    assert restored.keys("menu") == []
    assert restored.read("game", "hs") == b"120"


def test_quota_enforced_on_load(tmp_path):
    directory = str(tmp_path / "flash")
    storage = LocalStorage(quota_bytes=1 << 20)
    storage.write("game", "blob", b"A" * 2048)
    storage.save_to_directory(directory)
    with pytest.raises(LocalStorageError) as excinfo:
        LocalStorage.load_from_directory(directory, quota_bytes=1024)
    assert "quota" in str(excinfo.value)


def test_load_skips_torn_atomic_write_leftovers(tmp_path):
    directory = str(tmp_path / "flash")
    storage = LocalStorage()
    storage.write("game", "hs", b"120")
    storage.save_to_directory(directory)
    app_dir = next((tmp_path / "flash").iterdir())
    (app_dir / "deadbeef.tmp").write_bytes(b"torn leftover")
    restored = LocalStorage.load_from_directory(directory)
    assert restored.keys("game") == ["hs"]


# -- torn / tampered encrypted slots -----------------------------------------


def test_torn_enc1_blob_is_a_typed_storage_error():
    storage = LocalStorage()
    storage.write_encrypted("game", "secret", b"top-score", KEY)
    blob = storage.read("game", "secret")
    storage.write("game", "secret", blob[:len(blob) - 7])   # torn tail
    with pytest.raises(LocalStorageError) as excinfo:
        storage.read_encrypted("game", "secret", KEY)
    assert "decrypt" in str(excinfo.value)


def test_wrong_key_is_a_typed_storage_error():
    storage = LocalStorage()
    storage.write_encrypted("game", "secret", b"top-score", KEY)
    with pytest.raises(LocalStorageError):
        storage.read_encrypted("game", "secret",
                               SymmetricKey(b"wrong-key-16byte"))


def test_plain_slot_read_as_encrypted_is_typed():
    storage = LocalStorage()
    storage.write("game", "plain", b"not encrypted")
    with pytest.raises(LocalStorageError):
        storage.read_encrypted("game", "plain", KEY)
