"""Disc format independence (§8/§9): the same stack on BD/HD-DVD/eDVD."""

import pytest

from repro.core import ProtectionLevel, sign_disc_image
from repro.disc import (
    ALL_FORMATS, ApplicationManifest, BD_ROM, DiscAuthor, EDVD,
    DiscFormat, HD_DVD, format_by_name,
)
from repro.dsig import Signer
from repro.errors import DiscFormatError
from repro.player import DiscPlayer
from repro.threat import corrupt_stream
from repro.xmlcore import parse_element


def test_format_registry():
    assert format_by_name("BD-ROM") is BD_ROM
    assert format_by_name("HD-DVD") is HD_DVD
    assert format_by_name("eDVD") is EDVD
    with pytest.raises(KeyError):
        format_by_name("LaserDisc")
    names = [f.name for f in ALL_FORMATS]
    assert len(names) == len(set(names))


def test_format_paths_and_uris():
    assert BD_ROM.cluster_path() == "BDMV/CLUSTER/cluster.xml"
    assert BD_ROM.stream_path("00001") == "BDMV/STREAM/00001.m2ts"
    assert HD_DVD.stream_path("00001") == "HVDVD_TS/STREAM/00001.evo"
    assert EDVD.clipinfo_path("00001") == "VIDEO_TS/CLIPINF/00001.ifo"
    uri = HD_DVD.path_to_uri(HD_DVD.stream_path("00001"))
    assert uri == "hddvd://HVDVD_TS/STREAM/00001.evo"
    assert HD_DVD.uri_to_path(uri) == "HVDVD_TS/STREAM/00001.evo"
    with pytest.raises(DiscFormatError):
        HD_DVD.uri_to_path("bd://BDMV/STREAM/00001.m2ts")


def test_capacity_ordering():
    assert BD_ROM.capacity_bytes > HD_DVD.capacity_bytes > \
        EDVD.capacity_bytes


def _author(disc_format: DiscFormat, rng):
    author = DiscAuthor("Format Sweep", rng=rng,
                        disc_format=disc_format)
    clip = author.add_clip(6.0, packets_per_second=25)
    author.add_feature("main", [clip])
    manifest = ApplicationManifest("menu")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="1" height="1"/></layout>'
    ))
    manifest.add_script('player.log("format-independent");')
    author.add_application(manifest)
    return author.master()


@pytest.mark.parametrize("disc_format", ALL_FORMATS,
                         ids=lambda f: f.name)
def test_same_stack_on_every_format(pki, trust_store, rng, disc_format):
    """§8: 'XML based security and Interactive Application Engine can
    exist independent of the type [of] the Disc format.'"""
    image = _author(disc_format, rng)
    assert image.layout is disc_format
    assert image.exists(disc_format.cluster_path())
    assert image.exists(disc_format.stream_path("00001"))

    result = sign_disc_image(
        image, Signer(pki.studio.key, identity=pki.studio),
        level=ProtectionLevel.TRACK,
    )
    assert result.stream_uris == [
        disc_format.path_to_uri(disc_format.stream_path("00001")),
    ]

    player = DiscPlayer(trust_store)
    session = player.insert_disc(image)
    assert session.authenticated
    playback = player.play_title("main")
    assert playback.duration_s == 6.0
    app = player.launch_disc_application("menu")
    assert app.trusted
    assert app.console == ["format-independent"]

    # Tamper detection also holds on every format.
    tampered = corrupt_stream(image, "00001")
    assert not DiscPlayer(trust_store).insert_disc(tampered).authenticated


def test_clip_uris_carry_the_format_scheme(rng):
    image = _author(EDVD, rng)
    info = image.clip_info("00001")
    assert info.stream_uri.startswith("edvd://")
    assert image.resolver(info.stream_uri) == image.stream("00001")
