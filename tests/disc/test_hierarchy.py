"""Content hierarchy model (Fig 2): cluster, tracks, playlists, manifests."""

import pytest

from repro.disc import (
    ApplicationManifest, ClipInfo, InteractiveCluster, PlayItem, Playlist,
    SubMarkup, Track, TRACK_APPLICATION, TRACK_AV,
)
from repro.errors import DiscFormatError
from repro.xmlcore import canonicalize, parse_element


def sample_manifest():
    manifest = ApplicationManifest("game")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="10" height="10"/></layout>'
    ))
    manifest.add_submarkup("timing", parse_element(
        '<seq xmlns="urn:bda:bdmv:interactive-cluster">'
        '<video src="bd://x" dur="5s"/></seq>'
    ))
    manifest.add_script("var a = 1;")
    manifest.add_script("function f() { return 2; }")
    return manifest


def test_manifest_structure():
    manifest = sample_manifest()
    assert manifest.submarkup("layout") is not None
    assert manifest.submarkup("timing") is not None
    assert manifest.submarkup("nope") is None
    assert len(manifest.scripts) == 2
    assert manifest.manifest_id and manifest.markup_id and manifest.code_id


def test_manifest_xml_roundtrip():
    manifest = sample_manifest()
    again = ApplicationManifest.from_xml(manifest.to_xml())
    assert again.name == "game"
    assert again.manifest_id == manifest.manifest_id
    assert [s.kind for s in again.submarkups] == ["layout", "timing"]
    assert [s.source for s in again.scripts] == \
        [s.source for s in manifest.scripts]
    assert canonicalize(again.to_element()) == \
        canonicalize(manifest.to_element())


def test_manifest_requires_markup_and_code():
    with pytest.raises(DiscFormatError):
        ApplicationManifest.from_xml("<manifest name='x'/>")


def test_submarkup_single_body():
    with pytest.raises(DiscFormatError):
        SubMarkup.from_element(parse_element(
            "<submarkup kind='layout'><a/><b/></submarkup>"
        ))


def test_ids_are_unique():
    a = ApplicationManifest("a")
    b = ApplicationManifest("b")
    assert a.manifest_id != b.manifest_id
    s1 = a.add_script("1;")
    s2 = a.add_script("2;")
    assert s1.script_id != s2.script_id


def test_playlist_model():
    playlist = Playlist("main")
    playlist.add_item("00001", 0.0, 60.0)
    playlist.add_item("00002", 10.0, 40.0)
    assert playlist.duration() == 90.0
    assert playlist.clip_refs() == ["00001", "00002"]


def test_play_item_window_validation():
    with pytest.raises(DiscFormatError):
        PlayItem("00001", 10.0, 5.0)
    with pytest.raises(DiscFormatError):
        PlayItem("00001", -1.0)


def test_playlist_xml_roundtrip():
    playlist = Playlist("chapters", playlist_id="pl-1")
    playlist.add_item("00001", 0.0, 30.0)
    again = Playlist.from_element(
        parse_element(
            __import__("repro.xmlcore", fromlist=["serialize"]).serialize(
                playlist.to_element()
            )
        )
    )
    assert again.name == "chapters"
    assert again.playlist_id == "pl-1"
    assert again.items == playlist.items


def test_clipinfo_roundtrip():
    info = ClipInfo("00007", "bd://BDMV/STREAM/00007.m2ts", 42.5, 1234)
    again = ClipInfo.from_xml(info.to_xml())
    assert again == info


def test_track_kind_validation():
    with pytest.raises(DiscFormatError):
        Track(TRACK_AV)          # av without playlist
    with pytest.raises(DiscFormatError):
        Track(TRACK_APPLICATION)  # app without manifest
    with pytest.raises(DiscFormatError):
        Track("bogus", playlist=Playlist("x"))


def test_cluster_model_and_roundtrip():
    cluster = InteractiveCluster("My Disc")
    playlist = Playlist("main")
    playlist.add_item("00001", 0.0, 10.0)
    cluster.add_av_track(playlist)
    cluster.add_application_track(sample_manifest())
    assert len(cluster.av_tracks()) == 1
    assert len(cluster.application_tracks()) == 1
    assert cluster.find_application("game") is not None
    assert cluster.find_application("nope") is None
    assert cluster.clip_refs() == ["00001"]
    again = InteractiveCluster.from_xml(cluster.to_xml())
    assert again.title == "My Disc"
    assert canonicalize(again.to_element()) == \
        canonicalize(cluster.to_element())
