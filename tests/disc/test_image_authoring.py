"""Disc image, TS generation and authoring."""

import pytest

from repro.disc import (
    ApplicationManifest, CLUSTER_PATH, DiscAuthor, DiscImage,
    TS_PACKET_SIZE, generate_transport_stream, inspect_transport_stream,
    path_to_uri, stream_path, uri_to_path,
)
from repro.errors import AuthoringError, DiscError, DiscFormatError
from repro.xmlcore import parse_element


def test_ts_generation_framing(rng):
    stream = generate_transport_stream(10, pid=0x42, rng=rng)
    assert len(stream) == 10 * TS_PACKET_SIZE
    info = inspect_transport_stream(stream)
    assert info.packets == 10
    assert info.pids == (0x42,)
    assert info.ok


def test_ts_continuity_error_detection(rng):
    stream = bytearray(generate_transport_stream(5, rng=rng))
    # Corrupt the continuity counter of packet 3.
    stream[3 * TS_PACKET_SIZE + 3] ^= 0x0F
    info = inspect_transport_stream(bytes(stream))
    assert info.continuity_errors > 0


def test_ts_sync_byte_required(rng):
    stream = bytearray(generate_transport_stream(2, rng=rng))
    stream[TS_PACKET_SIZE] = 0x00
    with pytest.raises(DiscError, match="sync byte"):
        inspect_transport_stream(bytes(stream))


def test_ts_validation_rejects_ragged():
    with pytest.raises(DiscError):
        inspect_transport_stream(b"\x47" * 100)
    with pytest.raises(DiscError):
        inspect_transport_stream(b"")


def test_ts_generation_rejects_bad_args(rng):
    with pytest.raises(DiscError):
        generate_transport_stream(0, rng=rng)
    with pytest.raises(DiscError):
        generate_transport_stream(1, pid=0x2000, rng=rng)


def test_uri_mapping():
    assert path_to_uri("BDMV/STREAM/00001.m2ts") == \
        "bd://BDMV/STREAM/00001.m2ts"
    assert uri_to_path("bd://x/y") == "x/y"
    with pytest.raises(DiscFormatError):
        uri_to_path("http://elsewhere/")


def test_image_file_operations():
    image = DiscImage()
    image.write("BDMV/AUXDATA/a.bin", b"data")
    assert image.exists("BDMV/AUXDATA/a.bin")
    assert image.read("BDMV/AUXDATA/a.bin") == b"data"
    assert image.total_bytes() == 4
    with pytest.raises(DiscFormatError):
        image.read("missing")
    with pytest.raises(DiscFormatError):
        image.write("../escape", b"x")
    with pytest.raises(DiscFormatError):
        image.write("/absolute", b"x")


def _author(rng, clips=1):
    author = DiscAuthor("Test Disc", rng=rng)
    infos = [author.add_clip(4.0, packets_per_second=25)
             for _ in range(clips)]
    author.add_feature("main", infos)
    manifest = ApplicationManifest("app")
    manifest.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="1" height="1"/></layout>'
    ))
    manifest.add_script("var x = 0;")
    author.add_application(manifest)
    return author


def test_authoring_end_to_end(rng):
    image = _author(rng, clips=2).master()
    assert image.validate_structure() == []
    cluster = image.cluster()
    assert cluster.title == "Test Disc"
    assert len(cluster.av_tracks()) == 1
    assert image.clip_info("00001").duration_s == 4.0
    assert inspect_transport_stream(image.stream("00002")).ok
    assert image.resolver(path_to_uri(stream_path("00001"))) == \
        image.stream("00001")


def test_authoring_rejects_bad_clip(rng):
    author = DiscAuthor("X", rng=rng)
    with pytest.raises(AuthoringError):
        author.add_clip(0.0)


def test_structure_validation_finds_missing_stream(rng):
    image = _author(rng).master()
    # Build a broken copy without the stream file.
    broken = DiscImage({
        p: image.read(p) for p in image.paths()
        if not p.endswith(".m2ts")
    })
    problems = broken.validate_structure()
    assert any("missing stream" in p for p in problems)


def test_fs_roundtrip(tmp_path, rng):
    image = _author(rng).master()
    image.save_to_directory(str(tmp_path))
    again = DiscImage.load_from_directory(str(tmp_path))
    assert again.paths() == image.paths()
    assert again.read(CLUSTER_PATH) == image.read(CLUSTER_PATH)
    assert again.total_bytes() == image.total_bytes()


def test_custom_stream_supplied(rng):
    author = DiscAuthor("X", rng=rng)
    custom = generate_transport_stream(7, rng=rng)
    info = author.add_clip(1.0, stream=custom)
    assert info.packets == 7
    author.add_feature("main", [info])
    image = author.master()
    assert image.stream("00001") == custom


def test_single_file_image_roundtrip(tmp_path, rng, pki):
    """A signed disc survives the .iso-style archive byte-for-byte."""
    from repro.core import sign_disc_image
    from repro.dsig import Signer
    from repro.player import DiscPlayer
    from repro.certs import TrustStore

    image = _author(rng).master()
    sign_disc_image(image, Signer(pki.studio.key, identity=pki.studio))
    path = str(tmp_path / "movie.iso")
    image.save_to_file(path)

    again = DiscImage.load_from_file(path)
    assert again.paths() == image.paths()
    for member in image.paths():
        assert again.read(member) == image.read(member)
    store = TrustStore(roots=[pki.root.certificate])
    assert DiscPlayer(store).insert_disc(again).authenticated


def test_load_from_file_rejects_garbage(tmp_path):
    path = tmp_path / "junk.iso"
    path.write_bytes(b"this is not an archive")
    with pytest.raises(DiscFormatError, match="not a disc image"):
        DiscImage.load_from_file(str(path))
