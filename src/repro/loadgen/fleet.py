"""Deterministic fleet load harness for the async XKMS service.

Drives tens of thousands of simulated player sessions — each a seeded
generator of Locate/Validate traffic — against a sharded
:class:`~repro.xkms.service.AsyncTrustService` behind the full
overload shield, entirely on the injected
:class:`~repro.resilience.vclock.VirtualClock`.  No wall time is read
anywhere: latency percentiles, throughput and shed counts are
virtual-time quantities, so a run's summary is a pure function of its
:class:`FleetConfig` — the same config produces byte-identical summary
JSON on any machine, which is what lets CI gate p99 and throughput as
exact regression metrics (ABL-ASYNC).

Every session outcome is classified by its *typed* failure; an
exception outside the :class:`~repro.errors.ReproError` taxonomy
lands in the ``untyped`` bucket, which the overload invariant pins at
zero.
"""

from __future__ import annotations

import asyncio
import json
import random
import zlib
from dataclasses import dataclass, field

from repro.errors import (
    ChannelClosedError, CircuitOpenError, ReproError,
    RetryExhaustedError, ServiceOverloadError, TimeoutError, XKMSError,
)
from repro.network.channel import AsyncChannel
from repro.network.server import AsyncServiceClient, AsyncServiceServer
from repro.primitives import generate_keypair
from repro.primitives.random import DeterministicRandomSource
from repro.resilience.degradation import DegradationLog
from repro.resilience.retry import CircuitBreaker, RetryPolicy
from repro.resilience.service import (
    AdmissionController, AIMDLimiter, OverloadShield, TenantPolicy,
)
from repro.resilience.vclock import VirtualClock
from repro.xkms.client import AsyncXKMSClient, MuxXKMSTransport
from repro.xkms.messages import reset_request_ids
from repro.xkms.service import AsyncTrustService, busy_fault_payload

#: One small RSA key shared by every registered binding: key material
#: is irrelevant to load behaviour and keygen is the only expensive
#: primitive in the harness.
_FLEET_KEY = None


def _fleet_key():
    global _FLEET_KEY
    if _FLEET_KEY is None:
        _FLEET_KEY = generate_keypair(
            512, DeterministicRandomSource(b"loadgen-fleet-key"),
        ).public_key()
    return _FLEET_KEY


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet run depends on (the summary is a function
    of this and nothing else)."""

    sessions: int = 1000
    connections: int = 8
    ops_per_session: int = 2
    seed: int = 20050902
    tenants: tuple[str, ...] = ("player", "kiosk", "authoring")
    key_names: int = 32
    shards: int = 4
    timeout_s: float = 5.0
    start_window_s: float = 2.0
    think_s: float = 0.5
    max_concurrent: int = 16
    max_queued: int = 32
    target_latency_s: float = 0.25
    base_service_s: float = 0.02
    retry_attempts: int = 2
    breaker_threshold: int = 16
    breaker_cooldown_s: float = 2.0


#: Outcome buckets, in summary order.
OUTCOMES = ("ok", "shed", "timeout", "circuit", "exhausted",
            "fault", "closed", "error", "untyped")


def classify_outcome(error: BaseException | None) -> str:
    if error is None:
        return "ok"
    if isinstance(error, ServiceOverloadError):
        return "shed"
    if isinstance(error, TimeoutError):
        return "timeout"
    if isinstance(error, CircuitOpenError):
        return "circuit"
    if isinstance(error, RetryExhaustedError):
        return "exhausted"
    if isinstance(error, XKMSError):
        return "fault"
    if isinstance(error, ChannelClosedError):
        return "closed"
    if isinstance(error, ReproError):
        return "error"
    return "untyped"


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


@dataclass
class FleetReport:
    """Aggregated results of one fleet run."""

    config: FleetConfig
    outcomes: dict = field(default_factory=dict)
    latencies: list = field(default_factory=list, repr=False)
    makespan_s: float = 0.0
    shed_total: int = 0
    shed_answered: int = 0
    degradation_events: int = 0
    admission: dict = field(default_factory=dict)
    limiter: dict = field(default_factory=dict)
    server: dict = field(default_factory=dict)
    client: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)

    @property
    def ops(self) -> int:
        return sum(self.outcomes.values())

    @property
    def throughput(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.outcomes.get("ok", 0) / self.makespan_s

    @property
    def p50(self) -> float:
        return _percentile(self.latencies, 0.50)

    @property
    def p99(self) -> float:
        return _percentile(self.latencies, 0.99)

    @property
    def shed_structured_ratio(self) -> float:
        """Fraction of sheds answered with a structured fault frame.

        The overload invariant demands exactly 1.0: a shed the peer
        never heard about is a silent drop.
        """
        if self.shed_total == 0:
            return 1.0
        return self.shed_answered / self.shed_total

    @property
    def degradation_consistent(self) -> bool:
        """Every shed left exactly one degradation-log event."""
        return self.degradation_events == self.shed_total

    def summary(self) -> dict:
        round9 = lambda value: round(float(value), 9)  # noqa: E731
        return {
            "sessions": self.config.sessions,
            "connections": self.config.connections,
            "seed": self.config.seed,
            "ops": self.ops,
            "outcomes": {k: self.outcomes.get(k, 0) for k in OUTCOMES},
            "makespan_s": round9(self.makespan_s),
            "throughput": round9(self.throughput),
            "latency_p50_s": round9(self.p50),
            "latency_p99_s": round9(self.p99),
            "shed_total": self.shed_total,
            "shed_answered": self.shed_answered,
            "shed_structured_ratio": round9(self.shed_structured_ratio),
            "degradation_events": self.degradation_events,
            "degradation_consistent": self.degradation_consistent,
            "admission": self.admission,
            "limiter": self.limiter,
            "server": self.server,
            "client": self.client,
            "cache": self.cache,
        }

    def summary_json(self) -> str:
        """Canonical JSON: the byte-identity surface for determinism
        checks (sorted keys, fixed separators, rounded floats)."""
        return json.dumps(self.summary(), sort_keys=True,
                          separators=(",", ":"))

    def summary_lines(self) -> list[str]:
        s = self.summary()
        lines = [
            f"fleet: {s['sessions']} sessions x "
            f"{self.config.ops_per_session} ops over "
            f"{s['connections']} connection(s), seed {s['seed']}",
            f"virtual makespan: {s['makespan_s']:g}s   "
            f"throughput: {s['throughput']:g} ok-ops/s",
            f"latency: p50 {s['latency_p50_s']:g}s   "
            f"p99 {s['latency_p99_s']:g}s",
            "outcomes: " + "  ".join(
                f"{k}={v}" for k, v in s["outcomes"].items() if v),
            f"sheds: {s['shed_total']} "
            f"(answered structured: {s['shed_answered']}, "
            f"ratio {s['shed_structured_ratio']:g})",
            f"degradation log: {s['degradation_events']} event(s), "
            f"consistent: {s['degradation_consistent']}",
        ]
        return lines


def _service_delay(config: FleetConfig, payload: bytes) -> float:
    """Functional per-request service time (no RNG, no wall clock)."""
    spread = zlib.crc32(payload) % 16
    return config.base_service_s * (1.0 + spread / 8.0)


async def _session(index: int, config: FleetConfig,
                   client: AsyncXKMSClient, clock: VirtualClock,
                   outcomes: dict, latencies: list) -> None:
    rng = random.Random(f"{config.seed}:{index}")
    await clock.asleep(rng.uniform(0.0, config.start_window_s))
    key = _fleet_key()
    for _ in range(config.ops_per_session):
        name = f"key-{rng.randrange(config.key_names)}"
        validate = rng.random() < 0.5
        started = clock.now()
        error: BaseException | None = None
        try:
            if validate:
                await client.validate(name, key,
                                      timeout_s=config.timeout_s)
            else:
                await client.locate(name, timeout_s=config.timeout_s)
        except asyncio.CancelledError:
            # A cancelled session must stop, not book the cancellation
            # as one more "untyped" outcome and keep sending.
            raise
        except ReproError as exc:
            error = exc
        except Exception as exc:  # noqa: BLE001 - counted as untyped
            error = exc
        outcome = classify_outcome(error)
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if outcome == "ok":
            latencies.append(clock.now() - started)
        await clock.asleep(rng.uniform(0.0, config.think_s))


def run_fleet(config: FleetConfig) -> FleetReport:
    """Run one deterministic fleet load against a fresh service."""
    reset_request_ids()
    clock = VirtualClock()
    service = AsyncTrustService(
        config.shards, clock=clock,
        registration_secrets={"": b"loadgen-secret"},
    )
    key = _fleet_key()
    for k in range(config.key_names):
        service.register_binding(f"key-{k}", key)

    degradation = DegradationLog()
    shield = OverloadShield(
        clock,
        admission=AdmissionController(
            clock, TenantPolicy(config.max_concurrent,
                                config.max_queued)),
        limiter=AIMDLimiter(target_latency_s=config.target_latency_s),
        degradation=degradation,
        component="xkms-fleet",
    )

    async def handler(payload, context):
        await clock.asleep(_service_delay(config, payload))
        return await service.handle_request(payload, context)

    server = AsyncServiceServer(
        handler, clock=clock, shield=shield,
        fault_encoder=busy_fault_payload,
    )
    channels = [AsyncChannel(clock=clock)
                for _ in range(config.connections)]
    retry = RetryPolicy(max_attempts=config.retry_attempts,
                        clock=clock, seed=config.seed)
    # One mux client and one breaker per connection: a connection that
    # keeps meeting a busy service trips its own breaker, and every
    # session it carries fast-fails instead of piling on.
    muxes = [AsyncServiceClient(channel, clock=clock)
             for channel in channels]
    breakers = [CircuitBreaker(
        failure_threshold=config.breaker_threshold,
        cooldown=config.breaker_cooldown_s,
        clock=clock) for _ in channels]

    outcomes: dict = {}
    latencies: list = []

    async def main():
        serving = [asyncio.ensure_future(server.serve(channel))
                   for channel in channels]
        clock.bump()
        sessions = []
        for i in range(config.sessions):
            connection = i % config.connections
            tenant = config.tenants[i % len(config.tenants)]
            # Sessions of a tenant share that tenant's bulkhead no
            # matter which connection carries them.
            client = AsyncXKMSClient(
                MuxXKMSTransport(muxes[connection], tenant=tenant),
                clock=clock,
                retry_policy=retry,
                circuit_breaker=breakers[connection],
                default_timeout_s=config.timeout_s,
            )
            sessions.append(_session(i, config, client, clock,
                                     outcomes, latencies))
        await asyncio.gather(*sessions)
        for channel in channels:
            channel.close()
        for mux in muxes:
            await mux.aclose()
        await asyncio.gather(*serving)

    clock.run(main())

    report = FleetReport(config=config)
    report.outcomes = outcomes
    report.latencies = sorted(latencies)
    report.makespan_s = clock.now()
    report.shed_total = shield.stats.sheds
    report.shed_answered = server.stats.sheds_answered
    report.degradation_events = len(
        degradation.for_component("xkms-fleet"))
    report.admission = {
        "admitted": shield.admission.stats.admitted,
        "queued": shield.admission.stats.queued,
        "shed_queue_full": shield.admission.stats.shed_queue_full,
        "queue_timeouts": shield.admission.stats.queue_timeouts,
    }
    report.limiter = {
        "final_limit": round(shield.limiter.limit, 9),
        "rejections": shield.limiter.rejections,
        "decreases": shield.limiter.decreases,
    }
    report.server = {
        "requests": server.stats.requests,
        "responses": server.stats.responses,
        "faults_answered": server.stats.faults_answered,
        "protocol_errors": server.stats.protocol_errors,
        "internal_errors": server.stats.internal_errors,
    }
    report.client = {
        "calls": sum(mux.stats.calls for mux in muxes),
        "timeouts": sum(mux.stats.timeouts for mux in muxes),
        "faults": sum(mux.stats.faults for mux in muxes),
    }
    report.cache = {
        "hits": service.cache_stats.hits,
        "misses": service.cache_stats.misses,
    }
    return report


def verify_determinism(config: FleetConfig) -> tuple[bool, str, str]:
    """Run the fleet twice; byte-compare the canonical summaries."""
    first = run_fleet(config).summary_json()
    second = run_fleet(config).summary_json()
    return first == second, first, second
