"""Deterministic fleet load harness for the async service stack."""

from repro.loadgen.fleet import (
    OUTCOMES, FleetConfig, FleetReport, classify_outcome, run_fleet,
    verify_determinism,
)

__all__ = [
    "FleetConfig", "FleetReport", "run_fleet", "verify_determinism",
    "classify_outcome", "OUTCOMES",
]
