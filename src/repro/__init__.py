"""repro -- XML security for next-generation optical disc applications.

A from-scratch Python reproduction of *"XML Security in the Next
Generation Optical Disc Context"* (Nair, Gopalakrishnan, Mauw, Moll;
SDM 2005, LNCS 3674 -- the Secure Data Management workshop co-located
with VLDB 2005).

The library layers (bottom to top):

* :mod:`repro.primitives` -- SHA-1/256, HMAC, AES, RSA, key wrap, and a
  JCE-style provider registry (pure-Python vs accelerated backends).
* :mod:`repro.xmlcore` -- XML parser, tree, serializer, Canonical XML
  1.0 / Exclusive C14N, XPath-lite.
* :mod:`repro.dsig` / :mod:`repro.xmlenc` -- XML Digital Signature and
  XML Encryption.
* :mod:`repro.certs` / :mod:`repro.xkms` -- certificates, trust stores,
  XKMS key management.
* :mod:`repro.xacml` / :mod:`repro.permissions` -- access control.
* :mod:`repro.disc` / :mod:`repro.markup` -- the content hierarchy and
  the SMIL/ECMAScript application runtimes.
* :mod:`repro.network` -- content server, adversarial channels, TLS-like
  secure transport.
* :mod:`repro.core` -- the paper's contribution: granular protection
  levels and the end-to-end authoring/playback pipelines.
* :mod:`repro.player` -- the disc player tying everything together.
* :mod:`repro.threat` -- the STRIDE model and executable attacks.

See ``examples/quickstart.py`` for the guided tour.
"""

from repro.core import (
    AuthoringPipeline, PlaybackPipeline, ProtectionLevel, SecurePackage,
    VerifiedApplication,
)
from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.disc import ApplicationManifest, DiscAuthor, DiscImage
from repro.dsig import Signer, Verifier
from repro.player import DiscPlayer, InteractiveApplicationEngine
from repro.xmlenc import Decryptor, Encryptor

__version__ = "1.0.0"

__all__ = [
    "AuthoringPipeline", "PlaybackPipeline", "SecurePackage",
    "VerifiedApplication", "ProtectionLevel",
    "CertificateAuthority", "SigningIdentity", "TrustStore",
    "ApplicationManifest", "DiscAuthor", "DiscImage",
    "Signer", "Verifier", "Encryptor", "Decryptor",
    "DiscPlayer", "InteractiveApplicationEngine",
    "__version__",
]
