"""File formats for key material used by the CLI tools.

Private keys and trust stores are XML files (consistent with the rest
of the stack's XML-serialized certificate substitution — DESIGN.md §2).
Treat key files like any private key: they are not encrypted at rest.
"""

from __future__ import annotations

from repro.errors import KeyError_
from repro.primitives.encoding import b64decode, b64encode, int_to_bytes
from repro.primitives.keys import RSAPrivateKey, RSAPublicKey
from repro.certs.certificate import Certificate
from repro.xmlcore import element, parse_element, serialize
from repro.xmlcore.tree import Element

KEYSTORE_NS = "urn:repro:keystore"


def _int_el(name: str, value: int) -> Element:
    return element(name, KEYSTORE_NS,
                   text=b64encode(int_to_bytes(value)))


def _int_of(parent: Element, name: str) -> int:
    child = parent.first_child(name)
    if child is None:
        raise KeyError_(f"key file missing <{name}>")
    return int.from_bytes(b64decode(child.text_content()), "big")


def private_key_to_xml(key: RSAPrivateKey) -> str:
    """Serialize an RSA private key (CRT components included)."""
    node = element("RSAPrivateKey", KEYSTORE_NS,
                   nsmap={None: KEYSTORE_NS})
    for name, value in (("Modulus", key.n), ("Exponent", key.e),
                        ("D", key.d), ("P", key.p), ("Q", key.q)):
        node.append(_int_el(name, value))
    return serialize(node, xml_declaration=True)


def private_key_from_xml(text: str | bytes) -> RSAPrivateKey:
    """Parse a private key file written by :func:`private_key_to_xml`."""
    node = parse_element(text)
    if node.local != "RSAPrivateKey":
        raise KeyError_(f"not a private key file: <{node.local}>")
    return RSAPrivateKey(
        n=_int_of(node, "Modulus"), e=_int_of(node, "Exponent"),
        d=_int_of(node, "D"), p=_int_of(node, "P"),
        q=_int_of(node, "Q"),
    )


def public_key_to_xml(key: RSAPublicKey) -> str:
    """Serialize an RSA public key to XML."""
    node = element("RSAPublicKey", KEYSTORE_NS,
                   nsmap={None: KEYSTORE_NS})
    node.append(_int_el("Modulus", key.n))
    node.append(_int_el("Exponent", key.e))
    return serialize(node, xml_declaration=True)


def public_key_from_xml(text: str | bytes) -> RSAPublicKey:
    """Parse a public key file written by :func:`public_key_to_xml`."""
    node = parse_element(text)
    if node.local != "RSAPublicKey":
        raise KeyError_(f"not a public key file: <{node.local}>")
    return RSAPublicKey(n=_int_of(node, "Modulus"),
                        e=_int_of(node, "Exponent"))


def certificates_to_xml(certificates: list[Certificate]) -> str:
    """A certificate bundle (chain file or root store)."""
    node = element("CertificateBundle", KEYSTORE_NS,
                   nsmap={None: KEYSTORE_NS})
    for certificate in certificates:
        node.append(certificate.to_element())
    return serialize(node, xml_declaration=True)


def certificates_from_xml(text: str | bytes) -> list[Certificate]:
    """Parse a certificate bundle (or single certificate) file."""
    node = parse_element(text)
    if node.local == "Certificate":
        return [Certificate.from_element(node)]
    if node.local != "CertificateBundle":
        raise KeyError_(
            f"not a certificate bundle: <{node.local}>"
        )
    return [
        Certificate.from_element(child)
        for child in node.child_elements()
        if child.local == "Certificate"
    ]
