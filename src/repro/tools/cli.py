"""Command-line tools for the XML security stack.

Usage: ``python -m repro.tools <command> ...``

Commands:

* ``keygen``    — generate an RSA key pair (private key XML to a file).
* ``ca-init``   — create a self-signed root CA (key + certificate).
* ``issue``     — issue a certificate for a public key.
* ``sign``      — envelop-sign an XML document.
* ``verify``    — verify the signature(s) in a document.
* ``encrypt``   — encrypt an element (by Id) inside a document.
* ``decrypt``   — decrypt every EncryptedData in a document.
* ``c14n``      — canonicalize a document (C14N 1.0 / exclusive).
* ``inspect``   — summarize a document's security markup.
* ``perf-report`` — run a representative sign/verify/encrypt workload
  and dump the perf counters, timers and cache hit ratios.
* ``audit``     — static security audit of signed/encrypted artifacts
  (documents, disc images, directories) without key material.
* ``lint``      — AST-based invariant linter over the repo's own code.
* ``taint``     — interprocedural taint-flow analysis (TNT2xx rules).
* ``concurrency`` — interprocedural concurrency-safety analysis
  (CON3xx rules): shared-state writes outside locks, check-then-act
  races, lock-discipline violations, blocking calls under async roots.
* ``lifecycle`` — interprocedural async lifecycle & exception-flow
  analysis (LIF4xx rules): orphaned task handles, broad excepts
  swallowing CancelledError, awaits under threading locks, dropped
  Deadline propagation, exception-unsafe resource releases.
* ``chaos``     — seeded adversarial chaos harness: drive resource
  attacks (nesting/attribute/text/node floods, reference and decrypt
  bombs, hostile frames) through the real entry points and fail on
  any containment violation.  With ``--crash``, run the crash-recovery
  sweep instead: kill each durable-state scenario at every filesystem
  injection point and verify exact recovery.
* ``durable``   — inspect, verify or compact a crash-safe durable
  state directory (journal + snapshot).
* ``loadgen``   — deterministic fleet load harness: drive thousands of
  simulated player sessions against the async XKMS service on the
  virtual clock and report latency percentiles, throughput and shed
  accounting (byte-identical across runs for a given seed).

Every command reads/writes ordinary files; see ``--help`` per command.
"""

from __future__ import annotations

import argparse
import sys

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.dsig import Signer, Verifier
from repro.errors import ReproError
from repro.primitives.encoding import hexdecode
from repro.primitives.keys import SymmetricKey
from repro.primitives.provider import (
    available_providers, get_provider, set_default_provider,
)
from repro.primitives.random import (
    DeterministicRandomSource, SystemRandomSource,
)
from repro.primitives.rsa import generate_keypair
from repro.tools.keystore import (
    certificates_from_xml, certificates_to_xml, private_key_from_xml,
    private_key_to_xml,
)
from repro.xmlcore import (
    C14N, C14N_WITH_COMMENTS, DSIG_NS, EXC_C14N, XMLENC_NS, canonicalize,
    parse_document, parse_element, serialize,
)
from repro.xmlenc import Decryptor, Encryptor


def _read(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _write(path: str, data: str | bytes) -> None:
    mode = "wb" if isinstance(data, bytes) else "w"
    with open(path, mode) as handle:
        handle.write(data)


def _rng(args):
    if getattr(args, "seed", None):
        return DeterministicRandomSource(args.seed.encode())
    return SystemRandomSource()


# -- commands -----------------------------------------------------------------


def cmd_keygen(args) -> int:
    key = generate_keypair(args.bits, _rng(args))
    _write(args.out, private_key_to_xml(key))
    print(f"wrote {args.bits}-bit private key to {args.out}")
    return 0


def cmd_ca_init(args) -> int:
    ca = CertificateAuthority.create_root(
        args.name, key_bits=args.bits, rng=_rng(args),
    )
    _write(args.key_out, private_key_to_xml(ca.key))
    _write(args.cert_out, certificates_to_xml([ca.certificate]))
    print(f"root CA {args.name!r}: key -> {args.key_out}, "
          f"certificate -> {args.cert_out}")
    return 0


def cmd_issue(args) -> int:
    ca_key = private_key_from_xml(_read(args.ca_key))
    ca_cert = certificates_from_xml(_read(args.ca_cert))[0]
    ca = CertificateAuthority(name=ca_cert.subject, key=ca_key,
                              certificate=ca_cert)
    subject_key = private_key_from_xml(_read(args.subject_key))
    certificate = ca.issue(args.subject, subject_key.public_key())
    chain = [certificate]
    if ca_cert.subject != ca_cert.issuer:
        chain.append(ca_cert)
    _write(args.out, certificates_to_xml(chain))
    print(f"issued certificate for {args.subject!r} -> {args.out}")
    return 0


def _load_identity(args) -> SigningIdentity:
    key = private_key_from_xml(_read(args.key))
    chain = certificates_from_xml(_read(args.chain)) if args.chain else []
    name = chain[0].subject if chain else "anonymous"
    return SigningIdentity(name=name, key=key, chain=chain)


def cmd_sign(args) -> int:
    identity = _load_identity(args)
    root = parse_element(_read(args.document))
    signer = Signer(identity.key,
                    identity=identity if identity.chain else None,
                    include_key_value=not identity.chain)
    signer.sign_enveloped(root, uri=args.uri)
    _write(args.out or args.document, serialize(root,
                                                xml_declaration=True))
    print(f"signed {args.document} -> {args.out or args.document}")
    return 0


def cmd_verify(args) -> int:
    root = parse_element(_read(args.document))
    trust_store = None
    if args.roots:
        trust_store = TrustStore(
            roots=certificates_from_xml(_read(args.roots))
        )
    verifier = Verifier(trust_store=trust_store,
                        require_trusted_key=bool(args.roots))
    signatures = list(root.iter("Signature", DSIG_NS))
    if not signatures:
        print("no signatures found", file=sys.stderr)
        return 2
    failures = 0
    for signature in signatures:
        report = verifier.verify(signature)
        status = "VALID" if report.valid else "INVALID"
        signer = report.signer_subject or report.key_source
        print(f"{status}: signer={signer} "
              f"references={[r.uri for r in report.references]}")
        if not report.valid:
            failures += 1
            detail = report.error or "; ".join(
                f"{r.uri}: {r.error}" for r in report.references
                if not r.valid
            )
            if report.certificate_validation is not None \
                    and not report.certificate_validation.valid:
                detail += f"; chain: {report.certificate_validation.reason}"
            print(f"  reason: {detail}", file=sys.stderr)
    return 1 if failures else 0


def cmd_encrypt(args) -> int:
    root = parse_element(_read(args.document))
    target = root.get_element_by_id(args.target_id)
    if target is None:
        print(f"no element with Id {args.target_id!r}", file=sys.stderr)
        return 2
    key = SymmetricKey(hexdecode(args.key_hex))
    Encryptor(rng=_rng(args)).encrypt_element(
        target, key, key_name=args.key_name,
    )
    _write(args.out or args.document, serialize(root,
                                                xml_declaration=True))
    print(f"encrypted #{args.target_id} under key {args.key_name!r}")
    return 0


def cmd_decrypt(args) -> int:
    root = parse_element(_read(args.document))
    key = SymmetricKey(hexdecode(args.key_hex))
    decryptor = Decryptor(keys={args.key_name: key})
    count = decryptor.decrypt_in_place(root)
    _write(args.out or args.document, serialize(root,
                                                xml_declaration=True))
    print(f"decrypted {count} structure(s)")
    return 0 if count else 2


def cmd_package(args) -> int:
    """Build a signed (optionally encrypted) application package."""
    from repro.core import AuthoringPipeline
    from repro.disc import ApplicationManifest
    from repro.permissions import PermissionRequestFile
    from repro.tools.keystore import public_key_from_xml

    identity = _load_identity(args)
    manifest = ApplicationManifest.from_element(
        parse_element(_read(args.manifest))
    )
    permission_file = None
    if args.permissions:
        permission_file = PermissionRequestFile.from_xml(
            _read(args.permissions)
        )
    recipient = public_key_from_xml(_read(args.recipient_key))
    pipeline = AuthoringPipeline(identity, recipient_key=recipient,
                                 rng=_rng(args))
    encrypt_ids = tuple(args.encrypt_id or [])
    if args.encrypt_code:
        encrypt_ids = encrypt_ids + (manifest.code_id,)
    package = pipeline.build_package(
        manifest, permission_file=permission_file,
        encrypt_ids=encrypt_ids,
    )
    _write(args.out, package.data)
    print(f"packaged {args.manifest} -> {args.out} "
          f"({len(package.data)} bytes, encrypted={list(encrypt_ids)})")
    return 0


def cmd_open_package(args) -> int:
    """Verify/decrypt a package like a player would (Fig 9 right half)."""
    from repro.core import PlaybackPipeline
    from repro.errors import ApplicationRejectedError

    trust_store = TrustStore(
        roots=certificates_from_xml(_read(args.roots))
    )
    device_key = private_key_from_xml(_read(args.device_key)) \
        if args.device_key else None
    pipeline = PlaybackPipeline(trust_store=trust_store,
                                device_key=device_key)
    try:
        application = pipeline.open_package(_read(args.package))
    except ApplicationRejectedError as exc:
        print(f"BARRED: {exc}", file=sys.stderr)
        return 1
    print(f"TRUSTED: signer={application.signer_subject}")
    print(f"application: {application.manifest.name} "
          f"({len(application.manifest.scripts)} script(s), "
          f"{len(application.manifest.submarkups)} submarkup(s))")
    if args.out:
        _write(args.out, application.manifest.to_xml())
        print(f"decrypted manifest -> {args.out}")
    return 0


def cmd_c14n(args) -> int:
    document = parse_document(_read(args.document))
    algorithm = EXC_C14N if args.exclusive else (
        C14N_WITH_COMMENTS if args.with_comments else C14N
    )
    octets = canonicalize(document, algorithm)
    if args.out:
        _write(args.out, octets)
    else:
        sys.stdout.write(octets.decode("utf-8"))
    return 0


def cmd_inspect(args) -> int:
    root = parse_element(_read(args.document))
    print(f"root element: <{root.qname}> "
          f"(namespace {root.ns_uri or '-'})")
    print(f"elements: {sum(1 for _ in root.iter())}")
    signatures = list(root.iter("Signature", DSIG_NS))
    print(f"signatures: {len(signatures)}")
    for signature in signatures:
        uris = [
            ref.get("URI") for ref in signature.findall("Reference",
                                                        DSIG_NS)
        ]
        print(f"  - references {uris}")
    encrypted = list(root.iter("EncryptedData", XMLENC_NS))
    print(f"encrypted regions: {len(encrypted)}")
    for data in encrypted:
        print(f"  - Id={data.get('Id') or '-'} "
              f"Type={(data.get('Type') or '-').rsplit('#', 1)[-1]}")
    ids = sorted(
        attr.value for el in root.iter() for attr in el.attrs
        if attr.local in ("Id", "ID", "id")
    )
    print(f"addressable Ids: {ids}")
    return 0


def cmd_perf_report(args) -> int:
    """Exercise the stack and dump the perf-counter/metrics layer.

    Runs a deterministic sign → batch-verify → encrypt → decrypt
    workload (scaled by ``--submarkups`` and ``--repeat``) inside a
    fresh metrics registry, then prints every counter, hit ratio and
    timer summary.  ``--json`` additionally writes the raw snapshot.
    """
    import json

    from repro.certs import CertificateAuthority, SigningIdentity
    from repro.perf import C14NDigestCache, metrics
    from repro.perf.batch import BatchVerifier
    from repro.xmlenc import algorithms as xenc_algorithms

    rng = DeterministicRandomSource(b"perf-report")
    root_ca = CertificateAuthority.create_root("CN=Perf Root", rng=rng)
    studio = SigningIdentity.create("CN=Perf Studio", root_ca, rng=rng)
    trust_store = TrustStore(roots=[root_ca.certificate])

    registry = metrics.push_registry()
    try:
        cache = C14NDigestCache()
        cluster = parse_element(_perf_cluster_xml(args.submarkups))
        signer = Signer(studio.key, identity=studio)
        for index in range(args.submarkups):
            signer.sign_detached(f"#sub-{index}", parent=cluster)
        verifier = Verifier(trust_store=trust_store,
                            require_trusted_key=True, cache=cache)
        batch = BatchVerifier(verifier)
        for _ in range(args.repeat):
            outcome = batch.verify_all(cluster)
            if not outcome.all_valid:
                print("error: perf workload failed verification",
                      file=sys.stderr)
                return 2
        key = SymmetricKey(rng.read(16))
        for _ in range(args.repeat):
            working = parse_element(_perf_cluster_xml(args.submarkups))
            encryptor = Encryptor(rng=rng)
            for target in list(working.iter("submarkup")):
                encryptor.encrypt_element(
                    target, key, algorithm=xenc_algorithms.AES128_CBC,
                    key_name="perf-key",
                )
            Decryptor(keys={"perf-key": key}).decrypt_in_place(working)

        lines = registry.report_lines()
        print(f"perf-report: {args.submarkups} submarkup(s), "
              f"{args.repeat} repeat(s)")
        for line in lines:
            print(line)
        if args.json:
            _write(args.json, json.dumps(registry.snapshot(), indent=2))
            print(f"snapshot -> {args.json}")
    finally:
        metrics.pop_registry()
    return 0


def _perf_cluster_xml(submarkups: int) -> bytes:
    parts = [
        '<cluster xmlns="urn:bda:bdmv:interactive-cluster" Id="cluster">'
    ]
    for index in range(submarkups):
        parts.append(
            f'<submarkup Id="sub-{index}"><layout w="1920" h="1080"/>'
            f'<item v="{index}"/><item v="{index + 1}"/></submarkup>'
        )
    parts.append("</cluster>")
    return "".join(parts).encode()


def _finish_analysis(result, args) -> int:
    """Shared baseline/report/exit-code handling for audit and lint."""
    import os

    from repro.analysis import (
        Baseline, Severity, render_json, render_text,
    )

    raw_findings = list(result.findings)
    if args.update_baseline:
        Baseline().save(args.update_baseline, raw_findings)
        print(f"baseline ({len(raw_findings)} finding(s)) -> "
              f"{args.update_baseline}")
        return 0
    if args.baseline and os.path.exists(args.baseline):
        Baseline.load(args.baseline).apply(result)
    if args.json:
        _write(args.json, render_json(result))
    print(render_text(result, verbose=args.verbose))
    threshold = Severity.parse(args.fail_on)
    return 1 if result.exceeds(threshold) else 0


def cmd_audit(args) -> int:
    """Statically audit artifacts; non-zero exit on findings."""
    from repro.analysis import audit_paths, catalog_lines

    if args.rules:
        for line in catalog_lines("artifact"):
            print(line)
        return 0
    if not args.artifacts:
        print("error: no artifacts given (paths or --rules)",
              file=sys.stderr)
        return 2
    result = audit_paths(args.artifacts,
                         min_rsa_bits=args.min_rsa_bits)
    return _finish_analysis(result, args)


def cmd_lint(args) -> int:
    """Lint the codebase for invariant violations."""
    from repro.analysis import catalog_lines, lint_paths

    if args.rules:
        for line in catalog_lines("code"):
            print(line)
        return 0
    result = lint_paths(args.paths or ["src"])
    return _finish_analysis(result, args)


def cmd_taint(args) -> int:
    """Interprocedural taint-flow analysis over the codebase."""
    from repro.analysis import analyze_paths, catalog_lines
    from repro.analysis.taintcache import TaintCache

    if args.rules:
        for line in catalog_lines("code"):
            print(line)
        return 0
    cache = None if args.no_cache else TaintCache(args.cache)
    result = analyze_paths(args.paths or ["src"], cache=cache)
    if args.verbose and cache is not None:
        state = "warm (memoized run)" if cache.run_hit else \
            f"{cache.hits} module hit(s), {cache.misses} miss(es)"
        print(f"cache: {state}")
    return _finish_analysis(result, args)


def cmd_concurrency(args) -> int:
    """Interprocedural concurrency-safety analysis over the codebase."""
    from repro.analysis import analyze_concurrency_paths, catalog_lines
    from repro.analysis.conccache import ConcurrencyCache

    if args.rules:
        for line in catalog_lines("code"):
            print(line)
        return 0
    cache = None if args.no_cache else ConcurrencyCache(args.cache)
    result = analyze_concurrency_paths(args.paths or ["src"], cache=cache)
    if args.verbose and cache is not None:
        state = "warm (memoized run)" if cache.run_hit else \
            f"{cache.hits} module hit(s), {cache.misses} miss(es)"
        print(f"cache: {state}")
    return _finish_analysis(result, args)


def cmd_lifecycle(args) -> int:
    """Interprocedural async lifecycle analysis over the codebase."""
    from repro.analysis import analyze_lifecycle_paths, catalog_lines
    from repro.analysis.lifecache import LifecycleCache

    if args.rules:
        for line in catalog_lines("code"):
            print(line)
        return 0
    cache = None if args.no_cache else LifecycleCache(args.cache)
    result = analyze_lifecycle_paths(args.paths or ["src"], cache=cache)
    if args.verbose and cache is not None:
        state = "warm (memoized run)" if cache.run_hit else \
            f"{cache.hits} module hit(s), {cache.misses} miss(es)"
        print(f"cache: {state}")
    return _finish_analysis(result, args)


def cmd_chaos(args) -> int:
    """Run the seeded chaos harness; non-zero exit on any violation."""
    from repro.resilience.chaos import run_chaos
    from repro.resilience.durablechaos import run_crash_chaos

    seeds = args.seed or [20050902]
    violations = 0
    for seed in seeds:
        if args.crash:
            report = run_crash_chaos(seed)
        else:
            report = run_chaos(seed, iterations=args.iterations)
        for line in report.summary_lines(verbose=args.verbose):
            print(line)
        violations += len(report.violations)
    if violations:
        kind = "recovery" if args.crash else "containment"
        print(f"error: {violations} {kind} violation(s)",
              file=sys.stderr)
        return 1
    if args.crash:
        print(f"all crash recoveries verified under {len(seeds)} seed(s)")
    else:
        print(f"all attacks contained under {len(seeds)} seed(s)")
    return 0


def cmd_durable(args) -> int:
    """Inspect/verify/compact a durable state directory."""
    from repro.resilience.durable import DurableStore, verify_directory

    key = hexdecode(args.integrity_key_hex) \
        if args.integrity_key_hex else None
    if args.action == "compact":
        store = DurableStore(args.directory, integrity_key=key)
        if not store.recovery.clean:
            print(f"recovery repaired the journal first: "
                  f"{store.recovery.truncated_bytes} torn byte(s), "
                  f"{store.recovery.dropped_records} "
                  f"unacknowledged record(s) dropped")
        seq = store.compact()
        print(f"compacted {args.directory} at sequence {seq}")
        return 0
    inspection = verify_directory(args.directory, integrity_key=key)
    print(f"directory: {inspection.directory}")
    print(f"snapshot sequence: {inspection.snapshot_seq}")
    print(f"journal: {inspection.journal_bytes} byte(s), "
          f"{inspection.committed_records} committed record(s) past "
          "the snapshot")
    for namespace, count in sorted(inspection.namespaces.items()):
        print(f"  namespace {namespace!r}: {count} key(s)")
    if inspection.clean_tail:
        print("tail: clean")
        return 0
    print(f"tail: {inspection.tail_torn_bytes} torn byte(s), "
          f"{inspection.tail_uncommitted_records} unacknowledged "
          "record(s) — recovery will truncate them")
    return 1 if args.action == "verify" else 0


def cmd_loadgen(args) -> int:
    """Run the deterministic fleet load harness and print the summary."""
    from repro.loadgen import FleetConfig, run_fleet, verify_determinism

    config = FleetConfig(
        sessions=args.sessions,
        connections=args.connections,
        ops_per_session=args.ops,
        seed=args.seed,
        timeout_s=args.timeout,
        start_window_s=args.start_window,
        max_concurrent=args.max_concurrent,
        max_queued=args.max_queued,
    )
    if args.verify_determinism:
        identical, first, _ = verify_determinism(config)
        if not identical:
            print("error: two runs of the same config produced "
                  "different summaries", file=sys.stderr)
            return 1
        print("determinism: two runs byte-identical")
        if args.json:
            _write(args.json, first)
        return 0
    report = run_fleet(config)
    for line in report.summary_lines():
        print(line)
    if args.json:
        _write(args.json, report.summary_json())
    untyped = report.outcomes.get("untyped", 0)
    if untyped or report.shed_structured_ratio != 1.0:
        print(f"error: overload invariant violated "
              f"({untyped} untyped failure(s), shed ratio "
              f"{report.shed_structured_ratio:g})", file=sys.stderr)
        return 1
    return 0


def cmd_providers(args) -> int:
    """List registered crypto providers and the process default."""
    default = get_provider().name
    for name in available_providers():
        marker = " (default)" if name == default else ""
        print(f"{name}{marker}")
    return 0


# -- argument parsing ------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree for ``repro.tools``."""
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="XML security tools for disc applications",
    )
    parser.add_argument(
        "--provider",
        choices=("pure", "accelerated", "auto"),
        help="crypto provider for this invocation (overrides "
             "REPRO_PROVIDER; 'auto' picks the best available)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("providers",
                       help="list registered crypto providers")
    p.set_defaults(func=cmd_providers)

    p = sub.add_parser("keygen", help="generate an RSA key pair")
    p.add_argument("--bits", type=int, default=1024)
    p.add_argument("--seed", help="deterministic seed (tests only)")
    p.add_argument("-o", "--out", required=True)
    p.set_defaults(func=cmd_keygen)

    p = sub.add_parser("ca-init", help="create a self-signed root CA")
    p.add_argument("--name", required=True)
    p.add_argument("--bits", type=int, default=1024)
    p.add_argument("--seed")
    p.add_argument("--key-out", required=True)
    p.add_argument("--cert-out", required=True)
    p.set_defaults(func=cmd_ca_init)

    p = sub.add_parser("issue", help="issue a certificate")
    p.add_argument("--ca-key", required=True)
    p.add_argument("--ca-cert", required=True)
    p.add_argument("--subject", required=True)
    p.add_argument("--subject-key", required=True,
                   help="private key file whose public half is certified")
    p.add_argument("-o", "--out", required=True)
    p.set_defaults(func=cmd_issue)

    p = sub.add_parser("sign", help="envelop-sign an XML document")
    p.add_argument("document")
    p.add_argument("--key", required=True)
    p.add_argument("--chain", help="certificate chain file")
    p.add_argument("--uri", default="", help="reference URI (default \"\")")
    p.add_argument("-o", "--out")
    p.set_defaults(func=cmd_sign)

    p = sub.add_parser("verify", help="verify document signatures")
    p.add_argument("document")
    p.add_argument("--roots", help="trusted root certificates")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("encrypt", help="encrypt an element by Id")
    p.add_argument("document")
    p.add_argument("--target-id", required=True)
    p.add_argument("--key-hex", required=True,
                   help="AES key, hex (16/24/32 bytes)")
    p.add_argument("--key-name", default="key-1")
    p.add_argument("--seed")
    p.add_argument("-o", "--out")
    p.set_defaults(func=cmd_encrypt)

    p = sub.add_parser("decrypt", help="decrypt EncryptedData")
    p.add_argument("document")
    p.add_argument("--key-hex", required=True)
    p.add_argument("--key-name", default="key-1")
    p.add_argument("-o", "--out")
    p.set_defaults(func=cmd_decrypt)

    p = sub.add_parser("package",
                       help="build a signed application package (Fig 9)")
    p.add_argument("manifest", help="application manifest XML")
    p.add_argument("--key", required=True)
    p.add_argument("--chain", help="signer certificate chain")
    p.add_argument("--recipient-key", required=True,
                   help="player public key file (rsa-1_5 transport)")
    p.add_argument("--permissions", help="permission request file")
    p.add_argument("--encrypt-id", action="append",
                   help="element Id to encrypt (repeatable)")
    p.add_argument("--encrypt-code", action="store_true",
                   help="encrypt the manifest's code part")
    p.add_argument("--seed")
    p.add_argument("-o", "--out", required=True)
    p.set_defaults(func=cmd_package)

    p = sub.add_parser("open-package",
                       help="verify/decrypt a package like a player")
    p.add_argument("package")
    p.add_argument("--roots", required=True)
    p.add_argument("--device-key", help="player private key file")
    p.add_argument("-o", "--out", help="write the decrypted manifest")
    p.set_defaults(func=cmd_open_package)

    p = sub.add_parser("c14n", help="canonicalize a document")
    p.add_argument("document")
    p.add_argument("--exclusive", action="store_true")
    p.add_argument("--with-comments", action="store_true")
    p.add_argument("-o", "--out")
    p.set_defaults(func=cmd_c14n)

    p = sub.add_parser("inspect", help="summarize security markup")
    p.add_argument("document")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser(
        "perf-report",
        help="run a representative workload and dump perf metrics",
    )
    p.add_argument("--submarkups", type=int, default=8,
                   help="signed sub-markups in the workload (default 8)")
    p.add_argument("--repeat", type=int, default=3,
                   help="verify/encrypt repetitions (default 3)")
    p.add_argument("--json", help="also write the raw snapshot as JSON")
    p.set_defaults(func=cmd_perf_report)

    def add_analysis_options(p):
        p.add_argument("--baseline",
                       help="baseline file of accepted findings")
        p.add_argument("--update-baseline", metavar="PATH",
                       help="write current findings as the new baseline")
        p.add_argument("--fail-on", default="warning",
                       choices=("info", "warning", "error"),
                       help="lowest severity that fails the run "
                            "(default warning)")
        p.add_argument("--json", help="also write a JSON report")
        p.add_argument("-v", "--verbose", action="store_true",
                       help="include finding details in the report")
        p.add_argument("--rules", action="store_true",
                       help="print the rule catalog and exit")

    p = sub.add_parser(
        "audit",
        help="static security audit of disc artifacts (no keys needed)",
    )
    p.add_argument("artifacts", nargs="*",
                   help="XML files, zipped disc images or directories")
    p.add_argument("--min-rsa-bits", type=int, default=2048,
                   help="RSA keys below this are flagged (default 2048)")
    add_analysis_options(p)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "lint",
        help="AST-based invariant linter over the codebase",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: src)")
    add_analysis_options(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "taint",
        help="interprocedural taint-flow analysis (TNT2xx rules)",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: src)")
    p.add_argument("--cache", default=".taint-cache.json",
                   help="incremental cache file "
                        "(default .taint-cache.json)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the cache")
    add_analysis_options(p)
    p.set_defaults(func=cmd_taint)

    p = sub.add_parser(
        "concurrency",
        help="interprocedural concurrency-safety analysis (CON3xx rules)",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: src)")
    p.add_argument("--cache", default=".concurrency-cache.json",
                   help="incremental cache file "
                        "(default .concurrency-cache.json)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the cache")
    add_analysis_options(p)
    p.set_defaults(func=cmd_concurrency)

    p = sub.add_parser(
        "lifecycle",
        help="interprocedural async lifecycle analysis (LIF4xx rules)",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: src)")
    p.add_argument("--cache", default=".lifecycle-cache.json",
                   help="incremental cache file "
                        "(default .lifecycle-cache.json)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the cache")
    add_analysis_options(p)
    p.set_defaults(func=cmd_lifecycle)

    p = sub.add_parser(
        "chaos",
        help="seeded adversarial chaos harness (resource attacks)",
    )
    p.add_argument("--seed", type=int, action="append",
                   help="chaos seed (repeatable; default 20050902)")
    p.add_argument("--iterations", type=int, default=1,
                   help="rounds of the full attack set per seed")
    p.add_argument("--crash", action="store_true",
                   help="run the crash-recovery sweep (power loss at "
                        "every filesystem injection point) instead")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print every attack outcome, not just violations")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "loadgen",
        help="deterministic fleet load harness for the async XKMS "
             "service",
    )
    p.add_argument("--sessions", type=int, default=1000,
                   help="simulated player sessions (default 1000)")
    p.add_argument("--connections", type=int, default=8,
                   help="multiplexed connections (default 8)")
    p.add_argument("--ops", type=int, default=2,
                   help="XKMS operations per session (default 2)")
    p.add_argument("--seed", type=int, default=20050902,
                   help="fleet seed (default 20050902)")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-operation deadline, virtual seconds")
    p.add_argument("--start-window", type=float, default=2.0,
                   help="session arrival window, virtual seconds")
    p.add_argument("--max-concurrent", type=int, default=16,
                   help="per-tenant bulkhead slots (default 16)")
    p.add_argument("--max-queued", type=int, default=32,
                   help="per-tenant admission queue (default 32)")
    p.add_argument("--verify-determinism", action="store_true",
                   help="run twice and require byte-identical "
                        "summaries")
    p.add_argument("--json", help="write the canonical summary JSON")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "durable",
        help="inspect/verify/compact a durable state directory",
    )
    p.add_argument("action", choices=("inspect", "verify", "compact"))
    p.add_argument("directory")
    p.add_argument("--integrity-key-hex",
                   help="HMAC key the journal/snapshot were written "
                        "under (hex)")
    p.set_defaults(func=cmd_durable)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.provider:
            name = args.provider
            if name == "auto":
                from repro.primitives.provider import detect_best_provider
                name = detect_best_provider()
            set_default_provider(name)
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
