"""Command-line tools and key-file formats for the security stack."""

from repro.tools.cli import build_parser, main
from repro.tools.keystore import (
    certificates_from_xml, certificates_to_xml, private_key_from_xml,
    private_key_to_xml, public_key_from_xml, public_key_to_xml,
)

__all__ = [
    "main", "build_parser",
    "private_key_to_xml", "private_key_from_xml",
    "public_key_to_xml", "public_key_from_xml",
    "certificates_to_xml", "certificates_from_xml",
]
