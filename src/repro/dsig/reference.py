"""ds:Reference processing: dereferencing, transforms, digesting.

A Reference names a *markup target* (the paper's term): the whole
document (``URI=""``), a same-document fragment (``URI="#id"``) or an
external resource (any other URI, resolved through a caller-supplied
resolver — in the player this is the disc image or the network
loader).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReferenceError_, SignatureError
from repro.perf import metrics
from repro.perf.cache import C14NDigestCache
from repro.primitives.encoding import b64decode, b64encode
from repro.primitives.hmac import constant_time_equal
from repro.primitives.provider import CryptoProvider, get_provider
from repro.xmlcore import DSIG_NS, element
from repro.xmlcore.c14n import ALL_C14N_ALGORITHMS, C14N
from repro.xmlcore.tree import Element
from repro.dsig import algorithms
from repro.dsig.transforms import (
    Transform, TransformContext, node_path, stream_transform_octets,
)

Resolver = Callable[[str], bytes]


@dataclass
class Reference:
    """One ds:Reference.

    Attributes:
        uri: the reference URI (``""``, ``"#id"``, or external);
            ``None`` is allowed only when the application supplies the
            target out of band.
        transforms: ordered transform chain.
        digest_method: DigestMethod algorithm URI.
        digest_value: the recorded digest (filled by signing, checked by
            verification).
        reference_id: optional Id attribute.
        reference_type: optional Type attribute (e.g. ``#Object``).
    """

    uri: str | None
    transforms: list[Transform] = field(default_factory=list)
    digest_method: str = algorithms.SHA1
    digest_value: bytes | None = None
    reference_id: str | None = None
    reference_type: str | None = None

    # -- XML mapping --------------------------------------------------------------

    def to_element(self) -> Element:
        node = element("ds:Reference", DSIG_NS)
        if self.uri is not None:
            node.set("URI", self.uri)
        if self.reference_id:
            node.set("Id", self.reference_id)
        if self.reference_type:
            node.set("Type", self.reference_type)
        if self.transforms:
            transforms_el = element("ds:Transforms", DSIG_NS)
            for transform in self.transforms:
                transforms_el.append(transform.to_element())
            node.append(transforms_el)
        node.append(element("ds:DigestMethod", DSIG_NS,
                            attrs={"Algorithm": self.digest_method}))
        node.append(element(
            "ds:DigestValue", DSIG_NS,
            text=b64encode(self.digest_value or b""),
        ))
        return node

    @classmethod
    def from_element(cls, node: Element) -> "Reference":
        digest_method_el = node.first_child("DigestMethod", DSIG_NS)
        digest_value_el = node.first_child("DigestValue", DSIG_NS)
        if digest_method_el is None or digest_value_el is None:
            raise SignatureError("ds:Reference missing digest method/value")
        transforms: list[Transform] = []
        transforms_el = node.first_child("Transforms", DSIG_NS)
        if transforms_el is not None:
            transforms = [
                Transform.from_element(t)
                for t in transforms_el.child_elements()
                if t.local == "Transform"
            ]
        digest_text = digest_value_el.text_content()
        return cls(
            uri=node.get("URI"),
            transforms=transforms,
            digest_method=digest_method_el.get("Algorithm") or "",
            digest_value=b64decode(digest_text) if digest_text.strip()
            else None,
            reference_id=node.get("Id"),
            reference_type=node.get("Type"),
        )


@dataclass
class ReferenceContext:
    """Document context used to dereference and transform references.

    Attributes:
        root: root element of the document containing the signature
            (``None`` for purely external references).
        signature: the ds:Signature element being created/verified
            (needed by the enveloped-signature transform).
        resolver: callable mapping external URIs to bytes.
        decryptor: decryptor for the decryption transform.
        namespaces: prefix map for XPath transforms.
        cache: optional :class:`~repro.perf.cache.C14NDigestCache`;
            when set, eligible same-document references take the cached
            fast path (see :func:`compute_reference_digest`).
        guard: optional
            :class:`~repro.resilience.limits.ResourceGuard` charged
            with the canonical octets produced while digesting (cold
            path only — cache hits produce no new octets).
    """

    root: Element | None = None
    signature: Element | None = None
    resolver: Resolver | None = None
    decryptor: object | None = None
    namespaces: dict[str, str] = field(default_factory=dict)
    cache: C14NDigestCache | None = None
    guard: object | None = None


def dereference(reference: Reference,
                context: ReferenceContext) -> tuple[object, TransformContext]:
    """Resolve a reference URI to its input value.

    Same-document references are resolved inside a *copy* of the
    document tree, so transforms (enveloped-signature, decryption) can
    mutate freely.  Returns ``(value, transform_context)``.
    """
    uri = reference.uri
    tcontext = TransformContext(
        decryptor=context.decryptor,
        namespaces=dict(context.namespaces),
    )
    if uri is None:
        raise ReferenceError_(
            "reference has no URI and no out-of-band target"
        )
    if uri == "" or uri.startswith("#"):
        if context.root is None:
            raise ReferenceError_(
                f"same-document reference {uri!r} without a document"
            )
        working_root = context.root.copy()
        tcontext.working_root = working_root
        if context.signature is not None:
            tcontext.signature_path = node_path(context.signature)
        if uri == "":
            return working_root, tcontext
        return _unique_element_by_id(working_root, uri[1:]), tcontext
    if context.resolver is None:
        raise ReferenceError_(
            f"external reference {uri!r} but no resolver configured"
        )
    try:
        return context.resolver(uri), tcontext
    except ReferenceError_:
        raise
    except Exception as exc:
        raise ReferenceError_(
            f"resolver failed for {uri!r}: {exc}"
        ) from exc


def _unique_element_by_id(root: Element, value: str) -> Element:
    """Resolve ``#value`` to the *single* element carrying that Id.

    Duplicate Id attributes are the XML signature wrapping vector: an
    attacker plants a second element with the signed Id and hopes the
    verifier digests one while the application executes the other.
    Resolution therefore refuses ambiguous documents outright instead
    of silently returning the first match in document order.
    """
    matches = root.get_elements_by_id(value, limit=2)
    if not matches:
        raise ReferenceError_(
            f"no element with Id {value!r} in the document"
        )
    if len(matches) > 1:
        raise ReferenceError_(
            f"duplicate Id {value!r}: multiple elements carry it; "
            "refusing ambiguous reference (wrapping defence)"
        )
    return matches[0]


def _fast_path_target(reference: Reference,
                      context: ReferenceContext) -> Element | None:
    """The live target element when the no-copy fast path applies.

    The fast path is sound only when the transform chain cannot mutate
    the document and produces exactly the canonical octets of the
    dereferenced subtree — i.e. a same-document reference whose chain
    is empty or a single canonicalization.  Everything else (enveloped
    signature, decryption, XPath, base64, external URIs) takes the
    general copy-and-transform path.
    """
    uri = reference.uri
    if context.root is None or uri is None:
        return None
    if context.root.parent is not None:
        # The general path copies ``root`` (detaching it), so ancestor
        # namespace context is NOT inherited; canonicalizing the live
        # tree would inherit it.  Only a true top element is safe.
        return None
    if uri != "" and not uri.startswith("#"):
        return None
    transforms = reference.transforms
    if len(transforms) > 1:
        return None
    if transforms and (
        transforms[0].algorithm not in ALL_C14N_ALGORITHMS
    ):
        return None
    if uri == "":
        return context.root
    # Shares the duplicate-Id refusal with the general path: the fast
    # path must never be more permissive than a full dereference.  The
    # resolution is revision-keyed in the cache, so repeat batch runs
    # over an unchanged tree skip the uniqueness scan.
    root = context.root
    if context.cache is None:
        return _unique_element_by_id(root, uri[1:])
    return context.cache.element_by_id(
        root, uri[1:],
        lambda: _unique_element_by_id(root, uri[1:]),
    )


def compute_reference_digest(reference: Reference,
                             context: ReferenceContext,
                             provider: CryptoProvider | None = None) -> bytes:
    """Dereference, transform and digest one reference.

    When the context carries a :class:`C14NDigestCache` and the
    reference is a pure-canonicalization same-document reference, the
    digest is served from (or computed into) the cache without copying
    the document.  Cache keys include the tree root's revision stamp,
    so any mutation anywhere in the document invalidates the entry —
    a cached digest can never validate a tampered subtree.

    Cold-path digests stream: canonical chunks feed the provider's
    incremental hash context (already-cached canonical octets are
    digested directly), so the full canonical string is never
    materialised just to be hashed.
    """
    provider = provider or get_provider()
    with metrics.timer("dsig.reference_digest"):
        target = _fast_path_target(reference, context)
        if target is not None:
            cache = context.cache
            transforms = reference.transforms
            algorithm = transforms[0].algorithm if transforms else C14N
            prefixes = (transforms[0].inclusive_prefixes
                        if transforms else ())
            if cache is None:
                # Zero-copy streaming: a pure-canonicalization chain
                # cannot mutate the document, so the live subtree is
                # digested directly — no working copy, no cache.
                return algorithms.compute_digest_canonical(
                    reference.digest_method, target, algorithm,
                    prefixes, provider, guard=context.guard,
                )

            def compute() -> bytes:
                octets = cache.peek_canonical_octets(
                    context.root, target, algorithm, prefixes,
                )
                if octets is not None:
                    return algorithms.compute_digest(
                        reference.digest_method, octets, provider,
                    )
                return algorithms.compute_digest_canonical(
                    reference.digest_method, target, algorithm,
                    prefixes, provider, guard=context.guard,
                )

            return cache.reference_digest(
                context.root, target, algorithm, prefixes,
                reference.digest_method, compute,
            )
        value, tcontext = dereference(reference, context)
        digest_context = provider.hash_context(
            algorithms.digest_name(reference.digest_method)
        )
        metrics.counter("digest.ops").increment()
        with metrics.timer("digest.compute"):
            # The terminal canonicalization streams straight into the
            # hash context; the guard meters each emitted chunk, so the
            # transform output stays quota-bound without ever being
            # materialised here.
            total = stream_transform_octets(
                value, reference.transforms, tcontext,
                digest_context.update, guard=context.guard,
            )
            digest = digest_context.digest()
        metrics.counter("digest.octets").increment(total)
        return digest


def validate_reference(reference: Reference, context: ReferenceContext,
                       provider: CryptoProvider | None = None) -> bool:
    """True if the recorded digest matches a fresh computation."""
    if reference.digest_value is None:
        return False
    actual = compute_reference_digest(reference, context, provider)
    return constant_time_equal(actual, reference.digest_value)
