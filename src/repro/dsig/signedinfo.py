"""ds:SignedInfo — the region the signature value actually covers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SignatureError
from repro.xmlcore import C14N, DSIG_NS, element
from repro.xmlcore.tree import Element
from repro.dsig import algorithms
from repro.dsig.reference import Reference


@dataclass
class SignedInfo:
    """Canonicalization method, signature method and references."""

    c14n_method: str = C14N
    signature_method: str = algorithms.RSA_SHA1
    references: list[Reference] = field(default_factory=list)
    inclusive_prefixes: tuple[str, ...] = ()

    def to_element(self) -> Element:
        node = element("ds:SignedInfo", DSIG_NS)
        c14n_el = element("ds:CanonicalizationMethod", DSIG_NS,
                          attrs={"Algorithm": self.c14n_method})
        if self.inclusive_prefixes:
            from repro.xmlcore import EXC_C14N
            c14n_el.append(element(
                "ec:InclusiveNamespaces", EXC_C14N,
                nsmap={"ec": EXC_C14N},
                attrs={"PrefixList": " ".join(self.inclusive_prefixes)},
            ))
        node.append(c14n_el)
        node.append(element("ds:SignatureMethod", DSIG_NS,
                            attrs={"Algorithm": self.signature_method}))
        if not self.references:
            raise SignatureError("SignedInfo needs at least one reference")
        for reference in self.references:
            node.append(reference.to_element())
        return node

    @classmethod
    def from_element(cls, node: Element) -> "SignedInfo":
        c14n_el = node.first_child("CanonicalizationMethod", DSIG_NS)
        method_el = node.first_child("SignatureMethod", DSIG_NS)
        if c14n_el is None or method_el is None:
            raise SignatureError(
                "SignedInfo missing canonicalization or signature method"
            )
        prefixes: tuple[str, ...] = ()
        from repro.xmlcore import EXC_C14N
        inc = c14n_el.first_child("InclusiveNamespaces", EXC_C14N)
        if inc is not None:
            prefixes = tuple((inc.get("PrefixList") or "").split())
        references = [
            Reference.from_element(child)
            for child in node.child_elements()
            if child.local == "Reference" and child.ns_uri == DSIG_NS
        ]
        if not references:
            raise SignatureError("SignedInfo contains no references")
        return cls(
            c14n_method=c14n_el.get("Algorithm") or "",
            signature_method=method_el.get("Algorithm") or "",
            references=references,
            inclusive_prefixes=prefixes,
        )
