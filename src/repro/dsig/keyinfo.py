"""ds:KeyInfo construction and resolution.

XMLDSig's KeyInfo "carries all the information needed to process the
signature" (paper §4): a raw key value, a key name for out-of-band
lookup, an embedded certificate chain (§5.5 certificate-based
authentication), or a RetrievalMethod pointing elsewhere.  The verifier
resolves these forms into a public key — optionally via an XKMS
service and/or the player trust store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SignatureError
from repro.primitives.keys import RSAPublicKey
from repro.xmlcore import DSIG_NS, element
from repro.xmlcore.tree import Element
from repro.certs.certificate import Certificate


@dataclass
class KeyInfo:
    """The resolvable key material attached to a signature.

    Any combination of fields may be present; resolution prefers
    certificates (which can be chain-validated) over bare key values.
    """

    key_name: str | None = None
    key_value: RSAPublicKey | None = None
    certificates: list[Certificate] = field(default_factory=list)
    retrieval_uri: str | None = None

    def is_empty(self) -> bool:
        return (
            self.key_name is None and self.key_value is None
            and not self.certificates and self.retrieval_uri is None
        )

    def to_element(self) -> Element:
        node = element("ds:KeyInfo", DSIG_NS)
        if self.key_name:
            node.append(element("ds:KeyName", DSIG_NS, text=self.key_name))
        if self.key_value is not None:
            key_value = element("ds:KeyValue", DSIG_NS)
            rsa_value = element("ds:RSAKeyValue", DSIG_NS)
            fields = self.key_value.to_dict()
            rsa_value.append(
                element("ds:Modulus", DSIG_NS, text=fields["Modulus"])
            )
            rsa_value.append(
                element("ds:Exponent", DSIG_NS, text=fields["Exponent"])
            )
            key_value.append(rsa_value)
            node.append(key_value)
        if self.certificates:
            x509 = element("ds:X509Data", DSIG_NS)
            for certificate in self.certificates:
                holder = element("ds:X509Certificate", DSIG_NS)
                holder.append(certificate.to_element())
                x509.append(holder)
            node.append(x509)
        if self.retrieval_uri:
            node.append(element(
                "ds:RetrievalMethod", DSIG_NS,
                attrs={"URI": self.retrieval_uri},
            ))
        return node

    @classmethod
    def from_element(cls, node: Element) -> "KeyInfo":
        info = cls()
        name_el = node.first_child("KeyName", DSIG_NS)
        if name_el is not None:
            info.key_name = name_el.text_content().strip()
        key_value_el = node.first_child("KeyValue", DSIG_NS)
        if key_value_el is not None:
            rsa_el = key_value_el.first_child("RSAKeyValue", DSIG_NS)
            if rsa_el is None:
                raise SignatureError("only RSAKeyValue key values supported")
            modulus = rsa_el.first_child("Modulus", DSIG_NS)
            exponent = rsa_el.first_child("Exponent", DSIG_NS)
            if modulus is None or exponent is None:
                raise SignatureError("RSAKeyValue missing modulus/exponent")
            info.key_value = RSAPublicKey.from_dict({
                "Modulus": modulus.text_content(),
                "Exponent": exponent.text_content(),
            })
        x509_el = node.first_child("X509Data", DSIG_NS)
        if x509_el is not None:
            for holder in x509_el.child_elements():
                if holder.local != "X509Certificate":
                    continue
                cert_el = holder.first_child("Certificate")
                if cert_el is None:
                    raise SignatureError(
                        "X509Certificate holds no certificate element"
                    )
                info.certificates.append(Certificate.from_element(cert_el))
        retrieval = node.first_child("RetrievalMethod", DSIG_NS)
        if retrieval is not None:
            info.retrieval_uri = retrieval.get("URI")
        return info
