"""ds:Manifest support (XMLDSig Core §5.1).

A ``ds:Manifest`` is a list of references whose digests are *not* part
of core validation: the signature covers the manifest element itself,
and "the application decides" how many of the manifest's references
must validate.  That is precisely the paper's selective-verification
story (Fig 4/5): a disc can carry one signature over a manifest listing
every track, and the player checks only the tracks it is about to use —
a broken bonus track need not invalidate the main feature.

Usage::

    signature = sign_with_manifest(signer, targets, parent=cluster)
    results = validate_manifest_references(signature, image.resolver)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.errors import SignatureError
from repro.primitives.hmac import constant_time_equal
from repro.dsig.reference import (
    Reference, ReferenceContext, compute_reference_digest,
)
from repro.dsig.signer import Signer
from repro.dsig.verifier import ReferenceResult
from repro.primitives.provider import CryptoProvider, get_provider
from repro.xmlcore import DSIG_NS, element
from repro.xmlcore.tree import Element

MANIFEST_TYPE = "http://www.w3.org/2000/09/xmldsig#Manifest"

_ids = count(1)


def build_manifest_element(references: list[Reference],
                           manifest_id: str | None = None) -> Element:
    """Build a ds:Manifest carrying *references* (digests unfilled)."""
    node = element("ds:Manifest", DSIG_NS, nsmap={"ds": DSIG_NS},
                   attrs={"Id": manifest_id or
                          f"dsig-manifest-{next(_ids)}"})
    for reference in references:
        node.append(reference.to_element())
    return node


def sign_with_manifest(signer: Signer, references: list[Reference], *,
                       parent: Element,
                       resolver=None,
                       manifest_id: str | None = None,
                       signature_id: str | None = None) -> Element:
    """Sign a ds:Manifest over *references* instead of the targets.

    The per-target digests are computed and recorded in the manifest,
    but only the manifest element itself is covered by core validation
    — per-reference checking is deferred to
    :func:`validate_manifest_references`.

    The signature (with the manifest inside a ds:Object) is appended to
    *parent*.
    """
    manifest_id = manifest_id or f"dsig-manifest-{next(_ids)}"
    manifest_el = build_manifest_element(references, manifest_id)
    # The manifest lives next to the signature in the document, so the
    # core reference can dereference it by Id.
    parent.append(manifest_el)

    # Fill each manifest reference's digest now, in document context.
    context = ReferenceContext(root=_top(parent), resolver=resolver)
    for reference, reference_el in zip(references,
                                       manifest_el.child_elements()):
        digest = compute_reference_digest(reference, context,
                                          signer.provider)
        _set_digest(reference_el, digest)

    core_reference = Reference(
        uri=f"#{manifest_id}",
        transforms=[_c14n_transform(signer)],
        digest_method=signer.digest_method,
        reference_type=MANIFEST_TYPE,
    )
    return signer.sign_references(
        [core_reference], parent=parent, resolver=resolver,
        signature_id=signature_id,
    )


def _c14n_transform(signer: Signer):
    from repro.dsig.transforms import Transform
    return Transform(signer.c14n_method)


def _set_digest(reference_el: Element, digest: bytes) -> None:
    from repro.primitives.encoding import b64encode
    from repro.xmlcore.tree import Text
    value_el = reference_el.first_child("DigestValue", DSIG_NS)
    assert value_el is not None
    value_el.children.clear()
    value_el.append(Text(b64encode(digest)))


def _top(node: Element) -> Element:
    current = node
    while isinstance(current.parent, Element):
        current = current.parent
    return current


def find_manifest(signature: Element) -> Element | None:
    """The ds:Manifest referenced by *signature* (same-document)."""
    for reference_el in signature.findall("Reference", DSIG_NS):
        if reference_el.get("Type") != MANIFEST_TYPE:
            continue
        uri = reference_el.get("URI") or ""
        if not uri.startswith("#"):
            continue
        root = _top(signature)
        matches = root.get_elements_by_id(uri[1:])
        if len(matches) > 1:
            raise SignatureError(
                f"duplicate Id {uri[1:]!r}: ambiguous manifest reference "
                "(wrapping defence)"
            )
        if matches and matches[0].local == "Manifest":
            return matches[0]
    return None


@dataclass
class ManifestValidation:
    """Per-reference outcomes of a manifest check."""

    results: list[ReferenceResult] = field(default_factory=list)

    @property
    def all_valid(self) -> bool:
        return bool(self.results) and all(r.valid for r in self.results)

    def valid_for(self, uri: str) -> bool:
        for result in self.results:
            if result.uri == uri:
                return result.valid
        raise SignatureError(f"manifest has no reference to {uri!r}")


def validate_manifest_references(signature: Element, *,
                                 resolver=None, decryptor=None,
                                 provider: CryptoProvider | None = None,
                                 only_uris: tuple[str, ...] | None = None,
                                 cache=None,
                                 ) -> ManifestValidation:
    """Application-level validation of a signature's ds:Manifest.

    Core validation (``Verifier.verify``) establishes that the manifest
    list is authentic; this function then checks the per-target digests
    — all of them, or just *only_uris* (the player checks what it is
    about to use).  Digests of pure-canonicalization same-document
    targets are served from *cache* (the process-wide C14N/digest
    cache by default), so selective checks repeated at playback time
    do not re-canonicalize unchanged subtrees.
    """
    from repro.perf.cache import get_default_cache
    provider = provider or get_provider()
    manifest_el = find_manifest(signature)
    if manifest_el is None:
        raise SignatureError("signature carries no ds:Manifest")
    context = ReferenceContext(
        root=_top(signature), signature=signature, resolver=resolver,
        decryptor=decryptor,
        cache=cache if cache is not None else get_default_cache(),
    )
    validation = ManifestValidation()
    for reference_el in manifest_el.child_elements():
        if reference_el.local != "Reference":
            continue
        reference = Reference.from_element(reference_el)
        if only_uris is not None and reference.uri not in only_uris:
            continue
        if reference.digest_value is None:
            validation.results.append(ReferenceResult(
                reference.uri, False, "no digest value",
            ))
            continue
        try:
            actual = compute_reference_digest(reference, context,
                                              provider)
        except Exception as exc:
            validation.results.append(ReferenceResult(
                reference.uri, False, str(exc),
            ))
            continue
        matched = constant_time_equal(actual, reference.digest_value)
        validation.results.append(ReferenceResult(
            reference.uri, matched,
            "" if matched else "digest mismatch",
        ))
    return validation
