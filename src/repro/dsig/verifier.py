"""Signature verification — the player's Verifier component (Fig 11).

Performs XMLDSig core validation (signature validation over the
canonicalized SignedInfo, then reference validation) plus the trust
decisions the paper layers on top: certificate chains must lead to a
trusted root in the player (§5.5) before an application is executed,
and unverifiable applications are barred (Fig 3).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import (
    ReproError, ResourceLimitExceeded, VerificationError,
)
from repro.perf import metrics
from repro.perf.cache import C14NDigestCache, get_default_cache
from repro.primitives.encoding import b64decode
from repro.primitives.hmac import constant_time_equal
from repro.primitives.provider import CryptoProvider, get_provider
from repro.xmlcore import DSIG_NS, canonicalize
from repro.xmlcore.tree import Element
from repro.certs.store import TrustStore, ValidationResult
from repro.dsig import algorithms
from repro.dsig.keyinfo import KeyInfo
from repro.dsig.reference import (
    Reference, ReferenceContext, compute_reference_digest,
)
from repro.dsig.signedinfo import SignedInfo


@dataclass
class ReferenceResult:
    """Validation outcome for one reference."""

    uri: str | None
    valid: bool
    error: str = ""


@dataclass
class VerificationReport:
    """Full outcome of a signature verification.

    ``valid`` is the conjunction the player acts on: the core signature
    verifies, every reference digest matches, and — when a trust store
    was consulted — the certificate chain validates.
    """

    signature_valid: bool = False
    references: list[ReferenceResult] = field(default_factory=list)
    key_source: str = "none"
    certificate_validation: ValidationResult | None = None
    signer_subject: str | None = None
    error: str = ""

    @property
    def references_valid(self) -> bool:
        return bool(self.references) and all(r.valid for r in self.references)

    @property
    def valid(self) -> bool:
        if not self.signature_valid or not self.references_valid:
            return False
        if self.certificate_validation is not None \
                and not self.certificate_validation.valid:
            return False
        return True

    def raise_if_invalid(self) -> None:
        """Raise :class:`VerificationError` unless fully valid."""
        if self.valid:
            return
        reasons = [self.error] if self.error else []
        if not self.signature_valid:
            reasons.append("core signature invalid")
        reasons.extend(
            f"reference {r.uri!r}: {r.error or 'digest mismatch'}"
            for r in self.references if not r.valid
        )
        if self.certificate_validation is not None \
                and not self.certificate_validation.valid:
            reasons.append(
                f"certificate chain: {self.certificate_validation.reason}"
            )
        raise VerificationError("; ".join(reasons) or "verification failed")


def _top_element(node: Element) -> Element:
    current = node
    while isinstance(current.parent, Element):
        current = current.parent
    return current


class Verifier:
    """Verifies ds:Signature elements.

    Args:
        trust_store: when given, embedded certificate chains are
            validated against it; with *require_trusted_key* the
            verifier refuses signatures whose key cannot be traced to a
            trusted root (the player's execution policy from Fig 3).
        resolver: URI → bytes for external references.
        key_locator: optional callable ``key_name -> public key`` (an
            XKMS locate hook).
        provider: crypto provider override.
        cache: C14N/digest cache consulted for pure-canonicalization
            same-document references; defaults to the process-wide
            shared cache.  Pass a
            :class:`~repro.perf.cache.NullCache` to force every digest
            to be recomputed (the sequential baseline).
        now: simulation time for certificate validity checks.
        guard: optional :class:`~repro.resilience.limits.ResourceGuard`
            enforcing per-signature reference/transform quotas, the
            c14n output quota, and the wall-clock budget during
            verification.  Quota trips surface as an invalid report
            (reference- and signature-level), never an untyped crash.
    """

    def __init__(self, *, trust_store: TrustStore | None = None,
                 require_trusted_key: bool = False,
                 resolver=None, key_locator=None,
                 provider: CryptoProvider | None = None,
                 max_references: int = 256,
                 cache: C14NDigestCache | None = None,
                 now: float = 0.0,
                 guard=None):
        self.trust_store = trust_store
        self.require_trusted_key = require_trusted_key
        self.resolver = resolver
        self.key_locator = key_locator
        self._provider = provider
        # One verifier serves every BatchVerifier worker; a late-bound
        # provider swap must be atomic and each verification must run
        # against a single snapshot (never half old, half new provider).
        self._provider_lock = threading.Lock()
        # Defence against reference-flood DoS in hostile downloads: a
        # signature naming thousands of references would otherwise make
        # the player dereference and digest each one before rejecting.
        self.max_references = max_references
        self.cache = cache if cache is not None else get_default_cache()
        self.now = now
        self.guard = guard

    @property
    def provider(self) -> CryptoProvider:
        """The pinned provider, or the current process default."""
        return self._provider or get_provider()

    @provider.setter
    def provider(self, value: CryptoProvider | None) -> None:
        with self._provider_lock:
            self._provider = value

    def verify(self, signature: Element, *, key=None,
               document_root: Element | None = None,
               decryptor=None,
               namespaces: dict[str, str] | None = None,
               ) -> VerificationReport:
        """Verify *signature* and return a :class:`VerificationReport`.

        Args:
            signature: the ds:Signature element (in document context).
            key: explicit verification key (overrides KeyInfo).
            document_root: root of the signed document; defaults to the
                top of *signature*'s tree.
            decryptor: decryptor for decryption transforms.
            namespaces: prefix map for XPath transforms.
        """
        # One provider snapshot per verification: a concurrent swap
        # must not split the signature check and the reference digests
        # between two implementations.
        provider = self.provider
        with metrics.timer("dsig.verify"), \
                metrics.timer(f"dsig.verify.{provider.name}"):
            metrics.counter("dsig.verify.signatures").increment()
            return self._verify(
                signature, key=key, document_root=document_root,
                decryptor=decryptor, namespaces=namespaces,
                provider=provider,
            )

    def _verify(self, signature: Element, *, key=None,
                document_root: Element | None = None,
                decryptor=None,
                namespaces: dict[str, str] | None = None,
                provider: CryptoProvider | None = None,
                ) -> VerificationReport:
        if provider is None:
            provider = self.provider
        report = VerificationReport()
        if signature.local != "Signature" or signature.ns_uri != DSIG_NS:
            report.error = "not a ds:Signature element"
            return report
        if document_root is None:
            document_root = _top_element(signature)

        signed_info_el = signature.first_child("SignedInfo", DSIG_NS)
        value_el = signature.first_child("SignatureValue", DSIG_NS)
        if signed_info_el is None or value_el is None:
            report.error = "signature missing SignedInfo or SignatureValue"
            return report
        try:
            signed_info = SignedInfo.from_element(signed_info_el)
            signature_value = b64decode(value_el.text_content())
        except Exception as exc:
            report.error = f"malformed signature: {exc}"
            return report
        if len(signed_info.references) > self.max_references:
            report.error = (
                f"signature names {len(signed_info.references)} "
                f"references (limit {self.max_references}); refusing"
            )
            return report
        if self.guard is not None:
            try:
                self.guard.check_deadline()
                self.guard.check_reference_count(len(signed_info.references))
            except ResourceLimitExceeded as exc:
                report.error = f"refusing signature: {exc}"
                return report

        verification_key = self._resolve_key(signature, key, report)
        if verification_key is None:
            # No key, no signature check — but reference digests are
            # key-independent, so still run them below: a mismatch is
            # positive evidence of tampering that callers (e.g. the
            # playback pipeline's degradation logic) must not lose just
            # because the trust service was unreachable.
            if not report.error:
                report.error = "no verification key available"
        else:
            # Core signature validation over canonical SignedInfo.  The
            # canonical octets are cached against the *true* top of the
            # tree, whose revision stamp changes on any mutation in
            # scope of SignedInfo's inherited namespace context.
            try:
                octets = self.cache.canonical_octets(
                    _top_element(signed_info_el), signed_info_el,
                    signed_info.c14n_method,
                    signed_info.inclusive_prefixes,
                    lambda: canonicalize(
                        signed_info_el, signed_info.c14n_method,
                        signed_info.inclusive_prefixes,
                    ),
                )
                report.signature_valid = self.cache.signature_verification(
                    signed_info.signature_method, verification_key,
                    octets, signature_value,
                    lambda: algorithms.verify_signature(
                        signed_info.signature_method, verification_key,
                        octets, signature_value, provider,
                    ),
                )
            except Exception as exc:
                report.error = f"signature validation failed: {exc}"
                return report

        # Reference validation.
        context = ReferenceContext(
            root=document_root, signature=signature,
            resolver=self.resolver, decryptor=decryptor,
            namespaces=namespaces or {}, cache=self.cache,
            guard=self.guard,
        )
        for reference in signed_info.references:
            report.references.append(
                self._check_reference(reference, context, provider)
            )
        return report

    def verify_or_raise(self, signature: Element, **kwargs
                        ) -> VerificationReport:
        """Like :meth:`verify` but raises on any failure."""
        report = self.verify(signature, **kwargs)
        report.raise_if_invalid()
        return report

    # -- internals -------------------------------------------------------------------

    def _check_reference(self, reference: Reference,
                         context: ReferenceContext,
                         provider: CryptoProvider | None = None,
                         ) -> ReferenceResult:
        if provider is None:
            provider = self.provider
        if reference.digest_value is None:
            return ReferenceResult(reference.uri, False, "no digest value")
        if self.guard is not None:
            try:
                self.guard.check_transform_count(len(reference.transforms))
                self.guard.check_deadline()
            except ResourceLimitExceeded as exc:
                return ReferenceResult(reference.uri, False, str(exc))
        try:
            actual = compute_reference_digest(reference, context,
                                              provider)
        except ReproError as exc:
            # Any processing failure — unresolvable URI, unsupported
            # transform, undecryptable region (decryption transform
            # without the right key) — makes the reference invalid.
            return ReferenceResult(reference.uri, False, str(exc))
        if not constant_time_equal(actual, reference.digest_value):
            return ReferenceResult(reference.uri, False, "digest mismatch")
        return ReferenceResult(reference.uri, True)

    def _resolve_key(self, signature: Element, explicit_key,
                     report: VerificationReport):
        if explicit_key is not None:
            report.key_source = "explicit"
            return explicit_key
        key_info_el = signature.first_child("KeyInfo", DSIG_NS)
        if key_info_el is None:
            report.error = "signature has no KeyInfo and no explicit key"
            return None
        try:
            key_info = KeyInfo.from_element(key_info_el)
        except Exception as exc:
            report.error = f"malformed KeyInfo: {exc}"
            return None

        if key_info.certificates:
            leaf = key_info.certificates[0]
            report.signer_subject = leaf.subject
            report.key_source = "certificate"
            if self.trust_store is not None:
                report.certificate_validation = \
                    self.cache.chain_validation(
                        self.trust_store, key_info.certificates,
                        self.now, "digitalSignature",
                        lambda: self.trust_store.validate_chain(
                            key_info.certificates, now=self.now,
                        ),
                    )
            elif self.require_trusted_key:
                report.error = (
                    "trusted key required but verifier has no trust store"
                )
                return None
            return leaf.public_key

        if key_info.key_value is not None:
            if self.require_trusted_key:
                report.error = (
                    "bare KeyValue refused: player requires a key "
                    "traceable to a trusted root"
                )
                return None
            report.key_source = "key-value"
            return key_info.key_value

        if key_info.key_name and self.key_locator is not None:
            located = self.key_locator(key_info.key_name)
            if located is not None:
                report.key_source = "key-name"
                return located
            report.error = (
                f"key name {key_info.key_name!r} could not be located"
            )
            return None

        report.error = "KeyInfo present but unusable"
        return None
