"""Signature creation: enveloped, enveloping and detached forms.

Implements the signer component of Fig 11 and the three signature
shapes of Fig 6.  The signing order follows XMLDSig core generation:

1. build the ds:Signature structure and splice it into its final
   location (document context affects inclusive canonicalization);
2. dereference + transform + digest every reference;
3. canonicalize SignedInfo and compute the signature value.
"""

from __future__ import annotations

import threading

from repro.errors import SignatureError
from repro.perf import metrics
from repro.primitives.encoding import b64encode
from repro.primitives.keys import RSAPrivateKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.xmlcore import C14N, DSIG_NS, element
from repro.xmlcore.tree import Element, Text
from repro.certs.authority import SigningIdentity
from repro.dsig import algorithms
from repro.dsig.keyinfo import KeyInfo
from repro.dsig.reference import (
    Reference, ReferenceContext, compute_reference_digest,
)
from repro.dsig.signedinfo import SignedInfo
from repro.dsig.transforms import ENVELOPED_SIGNATURE, Transform


def _top_element(node: Element) -> Element:
    current = node
    while isinstance(current.parent, Element):
        current = current.parent
    return current


class Signer:
    """Creates XML signatures with a fixed key and algorithm suite.

    Args:
        key: an :class:`RSAPrivateKey`, :class:`SymmetricKey` or raw
            bytes (for HMAC methods).
        identity: optional :class:`SigningIdentity`; when given, the
            certificate chain is embedded in KeyInfo (paper §5.5).
        signature_method / digest_method / c14n_method: algorithm URIs.
        include_key_value: embed the bare public key in KeyInfo
            (useful without a PKI; the player may refuse such keys).
        key_name: optional ds:KeyName (XKMS lookup handle).
        provider: crypto provider override; when omitted the
            process-wide default is resolved *per signing operation*,
            so a ``set_default_provider``/``REPRO_PROVIDER`` switch
            takes effect on existing signers too.
    """

    def __init__(self, key, *,
                 identity: SigningIdentity | None = None,
                 signature_method: str = algorithms.RSA_SHA1,
                 digest_method: str = algorithms.SHA1,
                 c14n_method: str = C14N,
                 include_key_value: bool = False,
                 key_name: str | None = None,
                 provider: CryptoProvider | None = None):
        self.key = key
        self.identity = identity
        self.signature_method = signature_method
        self.digest_method = digest_method
        self.c14n_method = c14n_method
        self.include_key_value = include_key_value
        self.key_name = key_name
        self._provider = provider
        # Signing methods snapshot ``self.provider`` once per call; the
        # setter locks so a late-bound swap publishes atomically.
        self._provider_lock = threading.Lock()
        family, _ = algorithms.signature_kind(signature_method)
        if family == "rsa" and not isinstance(key, RSAPrivateKey):
            # Static text only: the method URI rides on an object that
            # also carries the private key, and error text must never
            # interpolate anything reachable from key material (TNT203).
            raise SignatureError(
                "RSA signature methods require an RSA private key"
            )

    @property
    def provider(self) -> CryptoProvider:
        """The pinned provider, or the current process default."""
        return self._provider or get_provider()

    @provider.setter
    def provider(self, value: CryptoProvider | None) -> None:
        with self._provider_lock:
            self._provider = value

    # -- public signing forms ------------------------------------------------------

    def sign_enveloped(self, target: Element, *, uri: str = "",
                       signature_id: str | None = None,
                       extra_references: list[Reference] | None = None,
                       resolver=None, decryptor=None) -> Element:
        """Append an enveloped signature to *target* and return it.

        The reference defaults to ``URI=""`` (the whole document minus
        the signature); pass ``uri="#some-id"`` to cover a fragment
        that contains the signature.
        """
        reference = Reference(
            uri=uri,
            transforms=[
                Transform(ENVELOPED_SIGNATURE),
                Transform(self.c14n_method),
            ],
            digest_method=self.digest_method,
        )
        references = [reference] + list(extra_references or [])
        return self.sign_references(
            references, parent=target, signature_id=signature_id,
            resolver=resolver, decryptor=decryptor,
        )

    def sign_enveloping(self, content: Element | bytes, *,
                        object_id: str = "object-1",
                        signature_id: str | None = None) -> Element:
        """Build an enveloping signature carrying *content* in ds:Object."""
        obj = element("ds:Object", DSIG_NS, attrs={"Id": object_id})
        if isinstance(content, bytes):
            obj.append(Text(b64encode(content)))
            transforms = [Transform("http://www.w3.org/2000/09/"
                                    "xmldsig#base64")]
        else:
            obj.append(content)
            transforms = [Transform(self.c14n_method)]
        reference = Reference(
            uri=f"#{object_id}",
            transforms=transforms,
            digest_method=self.digest_method,
            reference_type="http://www.w3.org/2000/09/xmldsig#Object",
        )
        signature = self._build_signature(
            SignedInfo(self.c14n_method, self.signature_method, [reference]),
            signature_id,
        )
        signature.append(obj)
        self._finalize(signature, document_root=signature)
        return signature

    def sign_detached(self, uri: str, *,
                      document_root: Element | None = None,
                      parent: Element | None = None,
                      resolver=None,
                      transforms: list[Transform] | None = None,
                      signature_id: str | None = None) -> Element:
        """Build a detached signature over *uri*.

        For a same-document target pass *document_root* (and optionally
        *parent* to place the signature inside the same document but
        outside the target).  For an external target pass *resolver*.
        """
        if transforms is None:
            transforms = [] if not (uri == "" or uri.startswith("#")) \
                else [Transform(self.c14n_method)]
        reference = Reference(
            uri=uri, transforms=transforms,
            digest_method=self.digest_method,
        )
        return self.sign_references(
            [reference], parent=parent, document_root=document_root,
            resolver=resolver, signature_id=signature_id,
        )

    def sign_references(self, references: list[Reference], *,
                        parent: Element | None = None,
                        document_root: Element | None = None,
                        resolver=None, decryptor=None,
                        namespaces: dict[str, str] | None = None,
                        signature_id: str | None = None) -> Element:
        """General form: sign an arbitrary reference list.

        When *parent* is given the signature is appended there before
        digests are computed (so document context is final).
        """
        signed_info = SignedInfo(
            self.c14n_method, self.signature_method, list(references),
        )
        signature = self._build_signature(signed_info, signature_id)
        if parent is not None:
            parent.append(signature)
            document_root = _top_element(parent)
        self._finalize(
            signature, document_root=document_root, resolver=resolver,
            decryptor=decryptor, namespaces=namespaces,
        )
        return signature

    # -- internals ------------------------------------------------------------------

    def _build_signature(self, signed_info: SignedInfo,
                         signature_id: str | None) -> Element:
        signature = element("ds:Signature", DSIG_NS,
                            nsmap={"ds": DSIG_NS})
        if signature_id:
            signature.set("Id", signature_id)
        signature.append(signed_info.to_element())
        signature.append(element("ds:SignatureValue", DSIG_NS, text=""))
        key_info = self._key_info()
        if not key_info.is_empty():
            signature.append(key_info.to_element())
        return signature

    def _key_info(self) -> KeyInfo:
        info = KeyInfo(key_name=self.key_name)
        if self.identity is not None:
            info.certificates = list(self.identity.chain)
        if self.include_key_value and isinstance(self.key, RSAPrivateKey):
            info.key_value = self.key.public_key()
        return info

    def _finalize(self, signature: Element, *,
                  document_root: Element | None,
                  resolver=None, decryptor=None,
                  namespaces: dict[str, str] | None = None) -> None:
        provider = self.provider
        with metrics.timer("dsig.sign"), \
                metrics.timer(f"dsig.sign.{provider.name}"):
            metrics.counter("dsig.sign.signatures").increment()
            self._finalize_timed(
                signature, document_root=document_root,
                resolver=resolver, decryptor=decryptor,
                namespaces=namespaces,
            )

    def _finalize_timed(self, signature: Element, *,
                        document_root: Element | None,
                        resolver=None, decryptor=None,
                        namespaces: dict[str, str] | None = None) -> None:
        provider = self.provider
        signed_info_el = signature.first_child("SignedInfo", DSIG_NS)
        assert signed_info_el is not None
        context = ReferenceContext(
            root=document_root, signature=signature, resolver=resolver,
            decryptor=decryptor, namespaces=namespaces or {},
        )
        # Fill each DigestValue in place.
        reference_els = [
            child for child in signed_info_el.child_elements()
            if child.local == "Reference"
        ]
        for reference_el in reference_els:
            reference = Reference.from_element(reference_el)
            digest = compute_reference_digest(reference, context,
                                              provider)
            value_el = reference_el.first_child("DigestValue", DSIG_NS)
            assert value_el is not None
            value_el.children.clear()
            value_el.append(Text(b64encode(digest)))
        # Stream SignedInfo's canonical form, in its final context,
        # straight into the signature primitive's hash/HMAC context.
        signed_info = SignedInfo.from_element(signed_info_el)
        signature_value = algorithms.compute_signature_canonical(
            self.signature_method, self.key, signed_info_el,
            signed_info.c14n_method, signed_info.inclusive_prefixes,
            provider,
        )
        value_el = signature.first_child("SignatureValue", DSIG_NS)
        assert value_el is not None
        value_el.children.clear()
        value_el.append(Text(b64encode(signature_value)))
