"""XMLDSig transforms and the transform pipeline.

Implements the transforms the paper's scenarios exercise:

* ``enveloped-signature`` — removes the signature being processed, so a
  signature embedded inside its target (Fig 6, "enveloped") does not
  digest itself;
* the four canonicalization algorithms (inclusive/exclusive, with and
  without comments);
* ``base64`` decoding;
* an XPath selection transform (XPath-lite subset) for selective
  signing of sub-markups (Fig 5);
* the W3C **Decryption Transform** (``decrypt#XML`` / ``decrypt#Binary``)
  of the paper's reference [21], which tells the verifier which
  encrypted regions must be decrypted *before* digesting — the glue
  that fixes the sign/encrypt order in the end-to-end scenario (Fig 9).

A transform pipeline value is an :class:`Element` (node-set stand-in),
a list of elements (XPath result), or ``bytes``; the pipeline finishes
by canonicalizing whatever is left into octets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SignatureError, XMLError
from repro.xmlcore import (
    C14N, C14N_WITH_COMMENTS, DSIG_NS, EXC_C14N, EXC_C14N_WITH_COMMENTS,
    canonicalize, element, find_all,
)
from repro.xmlcore.c14n import canonicalize_into
from repro.xmlcore.tree import Element, Node
from repro.primitives.encoding import b64decode

ENVELOPED_SIGNATURE = "http://www.w3.org/2000/09/xmldsig#enveloped-signature"
BASE64 = "http://www.w3.org/2000/09/xmldsig#base64"
XPATH = "http://www.w3.org/TR/1999/REC-xpath-19991116"
DECRYPT_XML = "http://www.w3.org/2002/07/decrypt#XML"
DECRYPT_BINARY = "http://www.w3.org/2002/07/decrypt#Binary"
DECRYPT_TRANSFORM_NS = "http://www.w3.org/2002/07/decrypt#"

_C14N_ALGORITHMS = (
    C14N, C14N_WITH_COMMENTS, EXC_C14N, EXC_C14N_WITH_COMMENTS,
)

KNOWN_TRANSFORMS = _C14N_ALGORITHMS + (
    ENVELOPED_SIGNATURE, BASE64, XPATH, DECRYPT_XML, DECRYPT_BINARY,
)


def node_path(node: Element) -> tuple[int, ...]:
    """Child-index path of *node* from its tree root (for tree copies)."""
    path: list[int] = []
    current: Node = node
    while isinstance(current.parent, Element):
        path.append(current.parent.children.index(current))
        current = current.parent
    return tuple(reversed(path))


def node_at_path(root: Element, path: tuple[int, ...]) -> Element:
    """Inverse of :func:`node_path` on a (copied) tree."""
    node: Node = root
    for index in path:
        if not isinstance(node, Element):
            raise XMLError("node path does not resolve to an element")
        node = node.children[index]
    if not isinstance(node, Element):
        raise XMLError("node path does not resolve to an element")
    return node


@dataclass
class Transform:
    """One ds:Transform step.

    Attributes:
        algorithm: the transform algorithm URI.
        xpath: selection expression (XPath transform only).
        inclusive_prefixes: ``InclusiveNamespaces/@PrefixList`` entries
            (exclusive C14N only).
        except_uris: ``dcrpt:Except/@URI`` values naming encrypted
            regions the decryption transform must *not* decrypt
            (i.e. regions that were encrypted before signing).
    """

    algorithm: str
    xpath: str | None = None
    inclusive_prefixes: tuple[str, ...] = ()
    except_uris: tuple[str, ...] = ()

    def to_element(self) -> Element:
        node = element("ds:Transform", DSIG_NS,
                       attrs={"Algorithm": self.algorithm})
        if self.xpath is not None:
            node.append(element("ds:XPath", DSIG_NS, text=self.xpath))
        if self.inclusive_prefixes:
            inc = element(
                "ec:InclusiveNamespaces", EXC_C14N,
                nsmap={"ec": EXC_C14N},
                attrs={"PrefixList": " ".join(self.inclusive_prefixes)},
            )
            node.append(inc)
        for uri in self.except_uris:
            node.append(element(
                "dcrpt:Except", DECRYPT_TRANSFORM_NS,
                nsmap={"dcrpt": DECRYPT_TRANSFORM_NS},
                attrs={"URI": uri},
            ))
        return node

    @classmethod
    def from_element(cls, node: Element) -> "Transform":
        algorithm = node.get("Algorithm")
        if not algorithm:
            raise SignatureError("ds:Transform lacks an Algorithm")
        xpath = None
        xpath_el = node.first_child("XPath", DSIG_NS) \
            or node.first_child("XPath")
        if xpath_el is not None:
            xpath = xpath_el.text_content()
        prefixes: tuple[str, ...] = ()
        inc = node.first_child("InclusiveNamespaces", EXC_C14N)
        if inc is not None:
            prefixes = tuple((inc.get("PrefixList") or "").split())
        except_uris = tuple(
            child.get("URI") or ""
            for child in node.child_elements()
            if child.local == "Except"
        )
        return cls(algorithm, xpath, prefixes, except_uris)


@dataclass
class TransformContext:
    """Everything a transform pipeline may need.

    Attributes:
        working_root: copy of the document root the current value lives
            in (set by the dereferencer).
        signature_path: path of the ds:Signature being processed inside
            ``working_root`` (enveloped transform), or ``None``.
        decryptor: object with ``decrypt_element(encrypted_data) ->
            list[Node]`` used by the decryption transform.
        namespaces: prefix bindings for XPath expressions.
    """

    working_root: Element | None = None
    signature_path: tuple[int, ...] | None = None
    decryptor: object | None = None
    namespaces: dict[str, str] = field(default_factory=dict)


def apply_transforms(value, transforms: list[Transform],
                     context: TransformContext) -> bytes:
    """Run *value* through *transforms* and finish with canonical octets."""
    for transform in transforms:
        value = _apply_one(value, transform, context)
    return _to_octets(value)


def stream_transform_octets(value, transforms: list[Transform],
                            context: TransformContext, write,
                            *, guard=None) -> int:
    """Run the pipeline and stream the final octets into *write*.

    The zero-copy twin of :func:`apply_transforms`: subtree-selecting
    transforms still pass nodes down the chain, but the terminal
    canonicalization (explicit trailing c14n transform, or the implicit
    node-set-to-octets step) streams chunked UTF-8 straight into the
    sink instead of materialising the canonical string.  *guard* is
    charged per emitted chunk.  Returns the octet count.
    """
    if transforms and transforms[-1].algorithm in _C14N_ALGORITHMS:
        last = transforms[-1]
        for transform in transforms[:-1]:
            value = _apply_one(value, transform, context)
        if isinstance(value, list):
            return sum(
                canonicalize_into(
                    node, write, last.algorithm,
                    last.inclusive_prefixes, guard=guard,
                )
                for node in value
            )
        node = _require_node(value, last.algorithm)
        return canonicalize_into(
            node, write, last.algorithm, last.inclusive_prefixes,
            guard=guard,
        )
    for transform in transforms:
        value = _apply_one(value, transform, context)
    if isinstance(value, bytes):
        if guard is not None:
            guard.charge_c14n_output(len(value))
        write(value)
        return len(value)
    if isinstance(value, Element):
        return canonicalize_into(value, write, C14N, guard=guard)
    if isinstance(value, list):
        return sum(
            canonicalize_into(node, write, C14N, guard=guard)
            for node in value
        )
    raise SignatureError(
        f"cannot convert {type(value).__name__} to octets"
    )


def _to_octets(value) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, Element):
        return canonicalize(value, C14N)
    if isinstance(value, list):
        return b"".join(canonicalize(node, C14N) for node in value)
    raise SignatureError(
        f"cannot convert {type(value).__name__} to octets"
    )


def _require_node(value, algorithm: str) -> Element:
    if isinstance(value, list):
        if len(value) != 1:
            raise SignatureError(
                f"{algorithm} requires a single-element node-set"
            )
        value = value[0]
    if not isinstance(value, Element):
        raise SignatureError(
            f"{algorithm} requires node-set input, got "
            f"{type(value).__name__}"
        )
    return value


def _apply_one(value, transform: Transform, context: TransformContext):
    algorithm = transform.algorithm

    if algorithm in _C14N_ALGORITHMS:
        if isinstance(value, list):
            return b"".join(
                canonicalize(n, algorithm, transform.inclusive_prefixes)
                for n in value
            )
        node = _require_node(value, algorithm)
        return canonicalize(node, algorithm, transform.inclusive_prefixes)

    if algorithm == ENVELOPED_SIGNATURE:
        node = _require_node(value, algorithm)
        if context.working_root is None or context.signature_path is None:
            raise SignatureError(
                "enveloped-signature transform needs a signature context"
            )
        signature = node_at_path(context.working_root,
                                 context.signature_path)
        parent = signature.parent
        if isinstance(parent, Element):
            parent.remove(signature)
        return node

    if algorithm == BASE64:
        if isinstance(value, bytes):
            text = value.decode("utf-8")
        else:
            node = _require_node(value, algorithm)
            text = node.text_content()
        return b64decode(text)

    if algorithm == XPATH:
        node = _require_node(value, algorithm)
        if not transform.xpath:
            raise SignatureError("XPath transform lacks an expression")
        selected = find_all(node, transform.xpath, context.namespaces)
        if not all(isinstance(n, Element) for n in selected):
            raise SignatureError(
                "XPath transform must select elements"
            )
        return selected

    if algorithm in (DECRYPT_XML, DECRYPT_BINARY):
        from repro.core.decryption_transform import apply_decryption_transform
        node = _require_node(value, algorithm)
        if context.decryptor is None:
            raise SignatureError(
                "decryption transform needs a decryptor in the context"
            )
        return apply_decryption_transform(
            node, context.decryptor, transform.except_uris,
            binary=(algorithm == DECRYPT_BINARY),
        )

    raise SignatureError(f"unsupported transform {algorithm!r}")
