"""Algorithm URI registry for XMLDSig (signature + digest methods).

Maps the W3C algorithm identifiers to operations on the active crypto
provider.  XMLDSig Core's REQUIRED algorithms (``sha1``, ``hmac-sha1``,
``rsa-sha1``) are all present, alongside their SHA-256 successors from
RFC 4051 (``xmldsig-more``).
"""

from __future__ import annotations

from repro.errors import SignatureError, UnknownAlgorithmError
from repro.perf import metrics
from repro.primitives.hmac import constant_time_equal
from repro.primitives.keys import RSAPrivateKey, RSAPublicKey, SymmetricKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.xmlcore.c14n import C14N, canonicalize_into
from repro.xmlcore.tree import Node

# Digest methods.
SHA1 = "http://www.w3.org/2000/09/xmldsig#sha1"
SHA256 = "http://www.w3.org/2001/04/xmlenc#sha256"

# Signature methods.
RSA_SHA1 = "http://www.w3.org/2000/09/xmldsig#rsa-sha1"
RSA_SHA256 = "http://www.w3.org/2001/04/xmldsig-more#rsa-sha256"
HMAC_SHA1 = "http://www.w3.org/2000/09/xmldsig#hmac-sha1"
HMAC_SHA256 = "http://www.w3.org/2001/04/xmldsig-more#hmac-sha256"

_DIGESTS = {SHA1: "sha1", SHA256: "sha256"}
_SIGNATURES = {
    RSA_SHA1: ("rsa", "sha1"),
    RSA_SHA256: ("rsa", "sha256"),
    HMAC_SHA1: ("hmac", "sha1"),
    HMAC_SHA256: ("hmac", "sha256"),
}

DIGEST_ALGORITHMS = tuple(_DIGESTS)
SIGNATURE_ALGORITHMS = tuple(_SIGNATURES)


def digest_name(algorithm: str) -> str:
    """Provider digest name for a DigestMethod URI."""
    try:
        return _DIGESTS[algorithm]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown digest algorithm {algorithm!r}"
        ) from None


def compute_digest(algorithm: str, data: bytes,
                   provider: CryptoProvider | None = None) -> bytes:
    """Digest *data* under a DigestMethod URI."""
    provider = provider or get_provider()
    metrics.counter("digest.ops").increment()
    metrics.counter("digest.octets").increment(len(data))
    with metrics.timer("digest.compute"):
        return provider.digest(digest_name(algorithm), data)


def compute_digest_canonical(algorithm: str, node: Node,
                             c14n_algorithm: str = C14N,
                             inclusive_prefixes: tuple[str, ...] = (),
                             provider: CryptoProvider | None = None,
                             *, guard=None) -> bytes:
    """Digest the canonical form of *node* without materialising it.

    The streaming counterpart of ``compute_digest(algorithm,
    canonicalize(node, ...))``: canonical chunks feed an incremental
    hash context from the provider, so only one chunk is ever held.
    """
    provider = provider or get_provider()
    metrics.counter("digest.ops").increment()
    with metrics.timer("digest.compute"):
        context = provider.hash_context(digest_name(algorithm))
        total = canonicalize_into(
            node, context.update, c14n_algorithm, inclusive_prefixes,
            guard=guard,
        )
        digest = context.digest()
    metrics.counter("digest.octets").increment(total)
    return digest


def signature_kind(algorithm: str) -> tuple[str, str]:
    """Return ``(family, digest)`` for a SignatureMethod URI."""
    try:
        return _SIGNATURES[algorithm]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown signature algorithm {algorithm!r}"
        ) from None


def compute_signature(algorithm: str, key, data: bytes,
                      provider: CryptoProvider | None = None) -> bytes:
    """Sign *data* under a SignatureMethod URI.

    *key* must match the method family: :class:`RSAPrivateKey` for the
    ``rsa-*`` methods, :class:`SymmetricKey` (or raw bytes) for
    ``hmac-*``.
    """
    provider = provider or get_provider()
    family, digest = signature_kind(algorithm)
    if family == "rsa":
        if not isinstance(key, RSAPrivateKey):
            raise SignatureError(
                f"{algorithm} needs an RSA private key, got "
                f"{type(key).__name__}"
            )
        return provider.rsa_sign_digest(
            key, provider.digest(digest, data), digest
        )
    mac_key = key.data if isinstance(key, SymmetricKey) else key
    if not isinstance(mac_key, bytes):
        raise SignatureError(f"{algorithm} needs key bytes")
    return provider.hmac(digest, mac_key, data)


def compute_signature_canonical(algorithm: str, key, node: Node,
                                c14n_algorithm: str = C14N,
                                inclusive_prefixes: tuple[str, ...] = (),
                                provider: CryptoProvider | None = None,
                                ) -> bytes:
    """Sign the canonical form of *node* under a SignatureMethod URI.

    Streams the canonical octets of *node* (typically ds:SignedInfo)
    straight into an incremental hash/HMAC context, then applies the
    key operation — the signing-side twin of
    :func:`compute_digest_canonical`.
    """
    provider = provider or get_provider()
    family, digest = signature_kind(algorithm)
    if family == "rsa":
        if not isinstance(key, RSAPrivateKey):
            raise SignatureError(
                f"{algorithm} needs an RSA private key, got "
                f"{type(key).__name__}"
            )
        context = provider.hash_context(digest)
        canonicalize_into(
            node, context.update, c14n_algorithm, inclusive_prefixes,
        )
        return provider.rsa_sign_digest(key, context.digest(), digest)
    mac_key = key.data if isinstance(key, SymmetricKey) else key
    if not isinstance(mac_key, bytes):
        raise SignatureError(f"{algorithm} needs key bytes")
    context = provider.hmac_context(digest, mac_key)
    canonicalize_into(
        node, context.update, c14n_algorithm, inclusive_prefixes,
    )
    return context.digest()


def verify_signature(algorithm: str, key, data: bytes, signature: bytes,
                     provider: CryptoProvider | None = None) -> bool:
    """Verify *signature* over *data* under a SignatureMethod URI.

    *key* is an :class:`RSAPublicKey` for ``rsa-*`` methods and a
    :class:`SymmetricKey`/bytes for ``hmac-*``.
    """
    provider = provider or get_provider()
    family, digest = signature_kind(algorithm)
    if family == "rsa":
        if isinstance(key, RSAPrivateKey):
            key = key.public_key()
        if not isinstance(key, RSAPublicKey):
            raise SignatureError(
                f"{algorithm} needs an RSA public key, got "
                f"{type(key).__name__}"
            )
        return provider.rsa_verify_digest(
            key, provider.digest(digest, data), signature, digest
        )
    mac_key = key.data if isinstance(key, SymmetricKey) else key
    if not isinstance(mac_key, bytes):
        raise SignatureError(f"{algorithm} needs key bytes")
    expected = provider.hmac(digest, mac_key, data)
    return constant_time_equal(expected, signature)
