"""XML Digital Signature (XMLDSig Core) — sign and verify markup targets."""

from repro.dsig.algorithms import (
    DIGEST_ALGORITHMS, HMAC_SHA1, HMAC_SHA256, RSA_SHA1, RSA_SHA256, SHA1,
    SHA256, SIGNATURE_ALGORITHMS, compute_digest, compute_signature,
    verify_signature,
)
from repro.dsig.keyinfo import KeyInfo
from repro.dsig.manifest import (
    MANIFEST_TYPE, ManifestValidation, build_manifest_element,
    find_manifest, sign_with_manifest, validate_manifest_references,
)
from repro.dsig.reference import (
    Reference, ReferenceContext, compute_reference_digest,
    validate_reference,
)
from repro.dsig.signedinfo import SignedInfo
from repro.dsig.signer import Signer
from repro.dsig.transforms import (
    BASE64, DECRYPT_BINARY, DECRYPT_XML, ENVELOPED_SIGNATURE,
    KNOWN_TRANSFORMS, XPATH, Transform, TransformContext, apply_transforms,
)
from repro.dsig.verifier import (
    ReferenceResult, VerificationReport, Verifier,
)

__all__ = [
    "Signer", "Verifier", "VerificationReport", "ReferenceResult",
    "Reference", "ReferenceContext", "SignedInfo", "KeyInfo",
    "sign_with_manifest", "validate_manifest_references",
    "build_manifest_element", "find_manifest", "ManifestValidation",
    "MANIFEST_TYPE",
    "Transform", "TransformContext", "apply_transforms",
    "compute_digest", "compute_signature", "verify_signature",
    "compute_reference_digest", "validate_reference",
    "SHA1", "SHA256", "RSA_SHA1", "RSA_SHA256", "HMAC_SHA1", "HMAC_SHA256",
    "DIGEST_ALGORITHMS", "SIGNATURE_ALGORITHMS",
    "ENVELOPED_SIGNATURE", "BASE64", "XPATH", "DECRYPT_XML",
    "DECRYPT_BINARY", "KNOWN_TRANSFORMS",
]
