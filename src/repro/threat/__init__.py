"""STRIDE threat model and executable attack simulations."""

from repro.threat.attacks import (
    ENTITY_BOMB, RUNAWAY_SCRIPT, Attack, corrupt_stream, inject_script,
    inject_wrapped_manifest,
    mitm_channel, replay_substitution, strip_signature,
    tamper_package_bytes, wiretap_channel,
)
from repro.threat.stride import (
    THREAT_CATALOG, Requirement, StrideCategory, Threat, coverage_report,
    threats_by_category, threats_by_requirement,
)

__all__ = [
    "Threat", "THREAT_CATALOG", "StrideCategory", "Requirement",
    "threats_by_category", "threats_by_requirement", "coverage_report",
    "Attack", "tamper_package_bytes", "inject_script", "strip_signature",
    "corrupt_stream", "inject_wrapped_manifest", "wiretap_channel",
    "mitm_channel",
    "replay_substitution", "RUNAWAY_SCRIPT", "ENTITY_BOMB",
]
