"""Executable attack simulations driving the threat catalogue.

Each attack takes the artefact an adversary can actually touch (package
bytes, a channel, a disc image) and returns the attacked artefact.
Tests and the FIG3/FIG9 benches run them against the defended pipeline
and assert that every one is caught (or, for the no-defence baselines,
that it is *not* — which is the point of the comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.disc.image import DiscImage
from repro.network.channel import ActiveTamperer, Channel, Replacer


@dataclass(frozen=True)
class Attack:
    """A named attack bound to a threat id from the catalogue."""

    attack_id: str
    threat_id: str
    description: str
    apply: Callable


def tamper_package_bytes(data: bytes, needle: bytes = b"",
                         replacement: bytes = b"") -> bytes:
    """T02: modify application bytes in transit/storage.

    With a *needle*, performs a targeted substitution; otherwise flips
    a byte in the middle of the payload.
    """
    if needle and needle in data:
        return data.replace(needle, replacement or b"X" * len(needle), 1)
    index = len(data) // 2
    mutated = bytearray(data)
    mutated[index] ^= 0x01
    return bytes(mutated)


def inject_script(data: bytes, payload: str = "hostile()") -> bytes:
    """T02/T08: splice an extra script call into a package's code part."""
    marker = b"</script>"
    if marker not in data:
        return tamper_package_bytes(data)
    return data.replace(marker, f";{payload}{marker.decode()}".encode(), 1)


def strip_signature(data: bytes) -> bytes:
    """T01: remove the Signature element entirely (downgrade attack)."""
    start = data.find(b"<ds:Signature")
    if start < 0:
        return data
    end = data.find(b"</ds:Signature>", start)
    if end < 0:
        return data
    return data[:start] + data[end + len(b"</ds:Signature>"):]


def corrupt_stream(image: DiscImage, clip_id: str,
                   offset: int = 1000) -> DiscImage:
    """T03: flip bytes inside a transport stream on a (copied) disc."""
    attacked = DiscImage({p: image.read(p) for p in image.paths()},
                         layout=image.layout)
    path = image.layout.stream_path(clip_id)
    stream = bytearray(attacked.read(path))
    stream[offset % len(stream)] ^= 0xFF
    attacked.write(path, bytes(stream))
    return attacked


def inject_wrapped_manifest(image: DiscImage, name: str,
                            payload: str = 'player.log("EVIL");',
                            ) -> DiscImage:
    """T13: signature wrapping on a granularly signed disc.

    Inserts an *unsigned* application track whose manifest shares the
    target application's name, placed earlier in document order so a
    name-based lookup finds it first — while every existing signature
    keeps verifying.
    """
    from repro.disc.manifest import ApplicationManifest
    from repro.xmlcore import DISC_NS, element, parse_element, \
        serialize_bytes

    attacked = DiscImage({p: image.read(p) for p in image.paths()},
                         layout=image.layout)
    cluster = attacked.cluster_element()
    evil = ApplicationManifest(name)
    evil.add_submarkup("layout", parse_element(
        '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
        '<region regionName="main" width="1" height="1"/></layout>'
    ))
    evil.add_script(payload)
    track = element("track", DISC_NS, attrs={
        "kind": "application", "Id": "track-wrapped",
    })
    track.append(parse_element(serialize_bytes(evil.to_element())))
    cluster.insert(0, track)
    attacked.write(attacked.layout.cluster_path(),
                   serialize_bytes(cluster))
    return attacked


def wiretap_channel(channel: Channel):
    """T04: attach a passive wiretap; returns it for inspection."""
    from repro.network.channel import PassiveWiretap
    return channel.attach(PassiveWiretap())


def mitm_channel(channel: Channel, *, offset: int = 40) -> ActiveTamperer:
    """T12: attach an active man-in-the-middle byte flipper."""
    return channel.attach(ActiveTamperer(offset=offset))


def replay_substitution(channel: Channel, replacement: bytes) -> Replacer:
    """T01: replace server responses wholesale."""
    return channel.attach(Replacer(replacement=replacement))


RUNAWAY_SCRIPT = "while (true) { var x = 1; }"
"""T10: a script that never terminates (engine budget must abort it)."""

ENTITY_BOMB = (
    '<!DOCTYPE bomb [<!ENTITY a "aaaaaaaaaa"><!ENTITY b "&a;&a;&a;">]>'
    "<bomb>&b;</bomb>"
)
"""T11: a classic billion-laughs seed (parser must reject the DTD)."""
