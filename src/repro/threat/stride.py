"""The STRIDE threat model for next-generation optical disc players.

§3.1: "a Threat Modeling approach based on STRIDE has been applied in
order to make a methodical analysis of the security threats for
optical disc based systems — especially with regard to the accession of
interactive applications."  The full model lives in the authors'
project report [12]; this module reconstructs the catalogue the paper
draws its requirements from (authentication & integrity, encryption,
key management, access control) and maps every threat to the concrete
mechanism in this library that mitigates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class StrideCategory(Enum):
    SPOOFING = "Spoofing"
    TAMPERING = "Tampering"
    REPUDIATION = "Repudiation"
    INFORMATION_DISCLOSURE = "Information disclosure"
    DENIAL_OF_SERVICE = "Denial of service"
    ELEVATION_OF_PRIVILEGE = "Elevation of privilege"


class Requirement(Enum):
    """The §3.1 requirement buckets."""

    AUTHENTICATION_INTEGRITY = "Authentication & Integrity"
    ENCRYPTION = "Encryption"
    KEY_MANAGEMENT = "Key Management"
    ACCESS_CONTROL = "Access Control"


@dataclass(frozen=True)
class Threat:
    """One catalogued threat and its mitigation mapping."""

    threat_id: str
    category: StrideCategory
    asset: str
    description: str
    requirement: Requirement
    mitigations: tuple[str, ...]   # module paths in this library


THREAT_CATALOG: tuple[Threat, ...] = (
    Threat(
        "T01", StrideCategory.SPOOFING, "downloaded application",
        "An attacker serves a forged application claiming to come from "
        "a legitimate content provider.",
        Requirement.AUTHENTICATION_INTEGRITY,
        ("repro.dsig.Verifier", "repro.certs.TrustStore",
         "repro.core.PlaybackPipeline"),
    ),
    Threat(
        "T02", StrideCategory.TAMPERING, "application manifest",
        "Markup or script is modified in transit or on a writable "
        "cache; a maliciously tampered markup can be detrimental to "
        "the security of the disc player and the content (§5.4).",
        Requirement.AUTHENTICATION_INTEGRITY,
        ("repro.dsig.Signer", "repro.dsig.Verifier",
         "repro.xmlcore.c14n"),
    ),
    Threat(
        "T03", StrideCategory.TAMPERING, "A/V stream files",
        "Transport stream bytes referenced by playlists are replaced "
        "or corrupted.",
        Requirement.AUTHENTICATION_INTEGRITY,
        ("repro.dsig.Signer.sign_detached", "repro.disc.tsgen"),
    ),
    Threat(
        "T04", StrideCategory.INFORMATION_DISCLOSURE,
        "application sources/resources",
        "Wiretapping (man-in-the-van attack) exposes verbose markup "
        "and script sources in transit (§3.1).",
        Requirement.ENCRYPTION,
        ("repro.xmlenc.Encryptor", "repro.network.secure"),
    ),
    Threat(
        "T05", StrideCategory.INFORMATION_DISCLOSURE,
        "stored application data",
        "Content stored at a server or in player local storage is "
        "readable after transport protection ends — TLS protects "
        "in-transit only (§4).",
        Requirement.ENCRYPTION,
        ("repro.xmlenc.Encryptor",
         "repro.player.LocalStorage.write_encrypted"),
    ),
    Threat(
        "T06", StrideCategory.SPOOFING, "cryptographic keys",
        "Illegal creation, exchange, replacement or usage of the keys "
        "used for authentication and encryption (§3.1).",
        Requirement.KEY_MANAGEMENT,
        ("repro.xkms.TrustServer", "repro.certs.CertificateAuthority",
         "repro.certs.RevocationList"),
    ),
    Threat(
        "T07", StrideCategory.REPUDIATION, "key registration",
        "A party repudiates having registered or revoked a key "
        "binding.",
        Requirement.KEY_MANAGEMENT,
        ("repro.xkms.server.authentication_proof",
         "repro.xkms.TrustServer.audit_log"),
    ),
    Threat(
        "T08", StrideCategory.ELEVATION_OF_PRIVILEGE,
        "player local storage",
        "A malicious application loaded from an external server "
        "corrupts the local storage of the player (§1).",
        Requirement.ACCESS_CONTROL,
        ("repro.permissions.PlatformPermissionPolicy",
         "repro.player.LocalStorage", "repro.xacml.PEP"),
    ),
    Threat(
        "T09", StrideCategory.ELEVATION_OF_PRIVILEGE,
        "protected content",
        "A user creates their own application and tries to access "
        "content where they have no access rights (§1).",
        Requirement.ACCESS_CONTROL,
        ("repro.xacml.PDP", "repro.permissions.GrantSet",
         "repro.core.PlaybackPipeline"),
    ),
    Threat(
        "T10", StrideCategory.DENIAL_OF_SERVICE, "player runtime",
        "A runaway or hostile script exhausts the player's CPU.",
        Requirement.ACCESS_CONTROL,
        ("repro.markup.Interpreter (instruction budget)",),
    ),
    Threat(
        "T11", StrideCategory.DENIAL_OF_SERVICE, "XML parser",
        "Entity-expansion bombs in downloaded markup exhaust memory.",
        Requirement.AUTHENTICATION_INTEGRITY,
        ("repro.xmlcore.parser (entity definitions rejected)",),
    ),
    Threat(
        "T13", StrideCategory.SPOOFING, "signed disc content",
        "Signature wrapping: injected content rides an otherwise "
        "authentic disc — granular signatures still verify, but the "
        "player is steered to execute an element no signature covers.",
        Requirement.AUTHENTICATION_INTEGRITY,
        ("repro.player.DiscSession.covers",
         "repro.player.DiscPlayer.launch_disc_application"),
    ),
    Threat(
        "T12", StrideCategory.SPOOFING, "content server",
        "A rogue server impersonates the legitimate content server "
        "toward the player.",
        Requirement.KEY_MANAGEMENT,
        ("repro.network.secure.SecureClient",
         "repro.certs.TrustStore"),
    ),
)


def threats_by_category(category: StrideCategory) -> list[Threat]:
    """Catalogue entries in one STRIDE category."""
    return [t for t in THREAT_CATALOG if t.category is category]


def threats_by_requirement(requirement: Requirement) -> list[Threat]:
    """Catalogue entries mapped to one §3.1 requirement bucket."""
    return [t for t in THREAT_CATALOG if t.requirement is requirement]


def coverage_report() -> dict[str, int]:
    """Threat counts per STRIDE category (the model's summary table)."""
    report: dict[str, int] = {c.value: 0 for c in StrideCategory}
    for threat in THREAT_CATALOG:
        report[threat.category.value] += 1
    return report
