"""Content-addressed C14N/digest cache with revision-based invalidation.

Canonicalizing and digesting a subtree is the player's hottest
verification path: the ABL-GRAN sweep shows verify cost growing
linearly with the number of signed sub-markups because every
``ds:Reference`` re-canonicalizes its target from scratch.  This cache
memoizes those octets/digests, keyed by::

    (subtree identity, c14n parameters, digest algorithm)

**Security invariant** (the signature-wrapping literature's warning,
made explicit): *a cached result is bound to the exact canonicalized
bytes it was computed over, and can never be served for a mutated
tree.*  The binding is the revision stamp from
:mod:`repro.xmlcore.tree`: every mutation anywhere in a tree gives the
mutated node **and all its ancestors** a fresh, process-unique stamp.
A cache key therefore includes both the target's and the tree root's
``revision`` — the root stamp changes on *any* mutation in the
document (including ancestor namespace re-declarations that alter the
target's inherited c14n context), so stale entries simply never match
again.  Entry identity is additionally pinned by weak references to
the exact node objects, guarding against ``id()`` reuse after garbage
collection.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

from repro.perf import metrics


def _subtree_key(root, target) -> tuple:
    return (id(root), root.revision, id(target), target.revision)


def _certificate_key(certificate) -> tuple:
    """Value identity of a certificate (every signed/checked field)."""
    return (
        certificate.subject, certificate.issuer, certificate.serial,
        certificate.public_key.n, certificate.public_key.e,
        certificate.not_before, certificate.not_after,
        certificate.is_ca, certificate.key_usage,
        certificate.signature, certificate.signature_digest,
    )


class C14NDigestCache:
    """Bounded LRU cache of canonical octets and reference digests.

    Args:
        max_entries: LRU bound per table (c14n octets and digests are
            cached in separate tables so a digest entry does not pin
            the usually much larger octet string).
        cache_octets: also memoize raw canonical octets (digests alone
            are far smaller; octet caching helps signing flows that
            re-canonicalize, at a memory cost).
    """

    def __init__(self, max_entries: int = 4096, *,
                 cache_octets: bool = True):
        self.max_entries = max_entries
        self.cache_octets = cache_octets
        self._digests: OrderedDict[tuple, tuple] = OrderedDict()
        self._octets: OrderedDict[tuple, tuple] = OrderedDict()
        self._chains: OrderedDict[tuple, tuple] = OrderedDict()
        self._sigchecks: OrderedDict[tuple, bool] = OrderedDict()
        self._ids: OrderedDict[tuple, tuple] = OrderedDict()
        self._lock = threading.Lock()
        # Single-flight ledger: memo key -> Event set by the context
        # currently computing that key, so concurrent misses wait for
        # one RSA verification instead of all redoing it.
        self._inflight: dict[tuple, threading.Event] = {}

    # -- generic keyed lookup ---------------------------------------------------

    def _get(self, table: OrderedDict, key: tuple, root, target,
             what: str):
        with self._lock:
            entry = table.get(key)
            if entry is None:
                metrics.counter(f"perf.cache.{what}.miss").increment()
                return None
            root_ref, target_ref, value = entry
            # id() can be reused once the original objects are garbage
            # collected; the weakrefs pin identity to the exact nodes.
            if root_ref() is not root or target_ref() is not target:
                del table[key]
                metrics.counter(f"perf.cache.{what}.miss").increment()
                return None
            table.move_to_end(key)
            metrics.counter(f"perf.cache.{what}.hit").increment()
            return value

    def _put(self, table: OrderedDict, key: tuple, root, target,
             value) -> None:
        try:
            entry = (weakref.ref(root), weakref.ref(target), value)
        except TypeError:  # un-weakref-able stand-ins (tests)
            return
        with self._lock:
            table[key] = entry
            table.move_to_end(key)
            while len(table) > self.max_entries:
                table.popitem(last=False)

    # -- public API -------------------------------------------------------------

    def canonical_octets(self, root, target, algorithm: str,
                         inclusive_prefixes: tuple[str, ...],
                         compute) -> bytes:
        """Canonical octets of *target* within *root*'s tree.

        *compute* is a zero-argument callable producing the octets on a
        miss.
        """
        if not self.cache_octets:
            return compute()
        key = _subtree_key(root, target) + (
            algorithm, inclusive_prefixes,
        )
        value = self._get(self._octets, key, root, target, "c14n")
        if value is None:
            value = compute()
            self._put(self._octets, key, root, target, value)
        return value

    def peek_canonical_octets(self, root, target, algorithm: str,
                              inclusive_prefixes: tuple[str, ...],
                              ) -> bytes | None:
        """Already-cached canonical octets, or ``None`` — never computes.

        The streaming reference path digests cached octets when a warm
        entry exists (same key shape as :meth:`canonical_octets`, so
        warm-path behaviour is unchanged) and otherwise streams the
        digest without materialising — which is exactly why it must
        not force octets into existence here.
        """
        if not self.cache_octets:
            return None
        key = _subtree_key(root, target) + (
            algorithm, inclusive_prefixes,
        )
        return self._get(self._octets, key, root, target, "c14n")

    def reference_digest(self, root, target, algorithm: str,
                         inclusive_prefixes: tuple[str, ...],
                         digest_method: str, compute) -> bytes:
        """Digest of *target*'s canonical octets under *digest_method*."""
        key = _subtree_key(root, target) + (
            algorithm, inclusive_prefixes, digest_method,
        )
        value = self._get(self._digests, key, root, target, "digest")
        if value is None:
            value = compute()
            self._put(self._digests, key, root, target, value)
        return value

    def chain_validation(self, store, chain, now: float, usage,
                         compute):
        """Memoized :meth:`repro.certs.store.TrustStore.validate_chain`.

        Sound because the key captures everything the validation reads:
        the full value of every supplied certificate, the evaluation
        time, the usage constraint, and the store's ``generation``
        stamp — which changes on any anchor/intermediate addition or
        revocation, so a revoked chain can never be served from cache.
        """
        key = (
            id(store), getattr(store, "generation", None), now, usage,
            tuple(_certificate_key(c) for c in chain),
        )
        value = self._get(self._chains, key, store, store, "chain")
        if value is None:
            value = compute()
            self._put(self._chains, key, store, store, value)
        return value

    def signature_verification(self, algorithm: str, key, octets: bytes,
                               signature_value: bytes, compute) -> bool:
        """Memoized public-key signature check.

        Verification of ``(algorithm, public key, octets, signature)``
        is a pure function, so identical inputs — the common case when
        the same signed subtree is checked repeatedly — skip the
        digest-and-RSA work entirely.  Secret-keyed (HMAC) checks are
        never memoized: their key material stays out of cache keys.
        """
        modulus = getattr(key, "n", None)
        exponent = getattr(key, "e", None)
        if modulus is None or exponent is None:
            return compute()
        memo_key = (algorithm, modulus, exponent, octets, signature_value)
        waited = False
        while True:
            with self._lock:
                if memo_key in self._sigchecks:
                    self._sigchecks.move_to_end(memo_key)
                    metrics.counter("perf.cache.sigverify.hit").increment()
                    if waited:
                        metrics.counter(
                            "perf.cache.singleflight.dedup"
                        ).increment()
                    return self._sigchecks[memo_key]
                leader = self._inflight.get(memo_key)
                if leader is None:
                    # This context computes; everyone else waits on the
                    # event and re-fetches.
                    done = threading.Event()
                    self._inflight[memo_key] = done
                    metrics.counter("perf.cache.sigverify.miss").increment()
                    break
            leader.wait()
            # Re-fetch under the lock: normally a hit now.  If the
            # leader's compute raised, the entry is absent and this
            # context takes over as the new leader.
            waited = True
        try:
            value = bool(compute())
            with self._lock:
                self._sigchecks[memo_key] = value
                self._sigchecks.move_to_end(memo_key)
                while len(self._sigchecks) > self.max_entries:
                    self._sigchecks.popitem(last=False)
            return value
        finally:
            # Store-then-release ordering: followers woken by set()
            # must observe the stored value (or its absence, on error)
            # with no window where neither is true.
            with self._lock:
                self._inflight.pop(memo_key, None)
            done.set()

    def element_by_id(self, root, value: str, compute):
        """The unique element carrying Id *value* in *root*'s tree.

        *compute* resolves the Id on a miss — including the duplicate
        scan of the wrapping defence — and may raise; only successful
        unique resolutions are cached.  Revision-keyed like everything
        else: any mutation in the document re-runs the full scan, so a
        cached resolution can never mask a freshly planted duplicate.
        """
        key = (id(root), root.revision, value)
        with self._lock:
            entry = self._ids.get(key)
            if entry is not None:
                root_ref, target_ref = entry
                target = target_ref()
                if root_ref() is root and target is not None:
                    self._ids.move_to_end(key)
                    metrics.counter("perf.cache.id.hit").increment()
                    return target
                del self._ids[key]
            metrics.counter("perf.cache.id.miss").increment()
        target = compute()
        try:
            entry = (weakref.ref(root), weakref.ref(target))
        except TypeError:  # un-weakref-able stand-ins (tests)
            return target
        with self._lock:
            self._ids[key] = entry
            self._ids.move_to_end(key)
            while len(self._ids) > self.max_entries:
                self._ids.popitem(last=False)
        return target

    # -- maintenance ------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return (len(self._digests) + len(self._octets)
                    + len(self._chains) + len(self._sigchecks)
                    + len(self._ids))

    def clear(self) -> None:
        with self._lock:
            self._digests.clear()
            self._octets.clear()
            self._chains.clear()
            self._sigchecks.clear()
            self._ids.clear()


class NullCache(C14NDigestCache):
    """A cache that never stores anything (sequential baseline)."""

    def __init__(self):
        super().__init__(max_entries=0, cache_octets=False)

    def canonical_octets(self, root, target, algorithm,
                         inclusive_prefixes, compute) -> bytes:
        return compute()

    def reference_digest(self, root, target, algorithm,
                         inclusive_prefixes, digest_method,
                         compute) -> bytes:
        return compute()

    def chain_validation(self, store, chain, now, usage, compute):
        return compute()

    def signature_verification(self, algorithm, key, octets,
                               signature_value, compute) -> bool:
        return compute()

    def element_by_id(self, root, value, compute):
        return compute()


_default_cache = C14NDigestCache()
_default_lock = threading.Lock()


def get_default_cache() -> C14NDigestCache:
    """The process-wide shared cache (used by verifiers by default)."""
    return _default_cache


def set_default_cache(cache: C14NDigestCache) -> C14NDigestCache:
    """Replace the process-wide cache; returns the previous one."""
    global _default_cache
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
    return previous
