"""Batch verification engine: dedup shared subtrees, fan out workers.

``verify_signatures`` walks a cluster's signatures one by one; every
``ds:Reference`` re-canonicalizes and re-digests its subtree from
scratch, so player-side verify cost grows linearly with the number of
signed sub-markups (the ABL-GRAN sweep).  The batch engine instead:

1. collects every ``ds:Signature`` directly under a root (a cluster,
   a track group, or a manifest-carrying element);
2. **deduplicates** references that resolve to the same subtree with
   the same canonicalization parameters and digest algorithm, and
   pre-computes each unique digest exactly once into the shared
   :class:`~repro.perf.cache.C14NDigestCache`;
3. verifies the signatures across a ``concurrent.futures`` worker
   pool (thread-backed by default, process-backed on request,
   auto-sized to the machine) and fans the per-reference verdicts back
   into ordinary :class:`~repro.dsig.verifier.VerificationReport`
   objects.

Results are byte-for-byte the same verdicts the sequential path
produces — the cache's revision-stamp invariant guarantees a digest is
never reused across a mutation.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ReproError, SignatureError
from repro.perf import metrics
from repro.xmlcore import DSIG_NS
from repro.xmlcore.tree import Element
from repro.dsig.reference import (
    ReferenceContext, _fast_path_target, compute_reference_digest,
)
from repro.dsig.signedinfo import SignedInfo
from repro.dsig.verifier import VerificationReport, Verifier


def auto_worker_count(jobs: int | None = None) -> int:
    """Pool size: bounded by the CPU count and the number of jobs."""
    workers = min(8, os.cpu_count() or 2)
    if jobs is not None:
        workers = min(workers, jobs)
    return max(1, workers)


@dataclass
class BatchOutcome:
    """Everything a batch run produced.

    Attributes:
        reports: per-signature reports keyed like
            :func:`repro.core.granularity.verify_signatures` — the
            signature's first reference URI (``""`` for
            whole-document signatures).
        total_references: references seen across all signatures.
        deduplicated: references whose digest was shared with an
            earlier identical reference instead of recomputed.
        workers: pool size used.
        mode: ``"thread"``, ``"process"`` or ``"sequential"``.
    """

    reports: dict[str, VerificationReport] = field(default_factory=dict)
    total_references: int = 0
    deduplicated: int = 0
    workers: int = 1
    mode: str = "thread"

    @property
    def all_valid(self) -> bool:
        return bool(self.reports) and all(
            report.valid for report in self.reports.values()
        )


class BatchVerifier:
    """Verifies all signatures under a root through a worker pool.

    Args:
        verifier: the configured :class:`Verifier` whose policy (trust
            store, key handling, cache) every worker applies.
        max_workers: pool size; ``None`` auto-sizes to the machine.
        mode: ``"thread"`` (default; shares the live tree and cache),
            ``"process"`` (isolates workers in subprocesses — the tree
            is re-serialized to each worker, so the cache does not
            carry over, but CPU-bound verification escapes the GIL) or
            ``"sequential"`` (no pool; dedup and cache still apply).
    """

    def __init__(self, verifier: Verifier, *,
                 max_workers: int | None = None,
                 mode: str = "thread"):
        if mode not in ("thread", "process", "sequential"):
            raise ReproError(f"unknown batch mode {mode!r}")
        self.verifier = verifier
        self.max_workers = max_workers
        self.mode = mode

    # -- public API -------------------------------------------------------------

    def verify_all(self, root: Element, *, decryptor=None,
                   namespaces: dict[str, str] | None = None
                   ) -> BatchOutcome:
        """Verify every ds:Signature directly under *root*."""
        with metrics.timer("dsig.batch.verify_all"):
            return self._verify_all(root, decryptor=decryptor,
                                    namespaces=namespaces)

    def _verify_all(self, root: Element, *, decryptor,
                    namespaces) -> BatchOutcome:
        signatures = [
            child for child in root.child_elements()
            if child.local == "Signature" and child.ns_uri == DSIG_NS
        ]
        outcome = BatchOutcome(mode=self.mode)
        if not signatures:
            return outcome

        outcome.total_references, outcome.deduplicated = \
            self._precompute_unique_digests(root, signatures)
        metrics.counter("dsig.batch.references").increment(
            outcome.total_references
        )
        metrics.counter("dsig.batch.deduplicated").increment(
            outcome.deduplicated
        )

        if self.mode == "process":
            reports = self._run_process(root, signatures)
        elif self.mode == "thread" and len(signatures) > 1:
            reports = self._run_threads(root, signatures, decryptor,
                                        namespaces)
        else:
            reports = [
                self.verifier.verify(signature, document_root=root,
                                     decryptor=decryptor,
                                     namespaces=namespaces)
                for signature in signatures
            ]
            outcome.workers = 1

        for signature, report in zip(signatures, reports):
            outcome.reports[_first_reference_uri(signature)] = report
        if self.mode != "sequential" and len(signatures) > 1:
            outcome.workers = auto_worker_count(len(signatures)) \
                if self.max_workers is None else self.max_workers
        return outcome

    # -- dedup pre-pass ----------------------------------------------------------

    def _precompute_unique_digests(self, root: Element,
                                   signatures: list[Element]
                                   ) -> tuple[int, int]:
        """Compute each unique cacheable reference digest exactly once.

        Returns ``(total_references, deduplicated)``.  Only references
        eligible for the cached fast path participate; the rest are
        computed by their own signature's verification as usual.
        """
        cache = self.verifier.cache
        context = ReferenceContext(root=root, cache=cache)
        total = 0
        unique = {}
        for signature in signatures:
            signed_info_el = signature.first_child("SignedInfo", DSIG_NS)
            if signed_info_el is None:
                continue
            try:
                signed_info = SignedInfo.from_element(signed_info_el)
            except SignatureError:
                continue  # the per-signature verify reports the error
            for reference in signed_info.references:
                total += 1
                target = _fast_path_target(reference, context)
                if target is None:
                    continue
                transforms = reference.transforms
                algorithm = transforms[0].algorithm if transforms \
                    else None
                prefixes = transforms[0].inclusive_prefixes \
                    if transforms else ()
                key = (id(target), algorithm, prefixes,
                       reference.digest_method)
                unique.setdefault(key, reference)
        duplicates = total - len(unique) if unique else 0

        def warm(reference) -> None:
            try:
                compute_reference_digest(reference, context,
                                         self.verifier.provider)
            except Exception:
                pass  # the owning signature's verify reports it

        jobs = list(unique.values())
        if self.mode == "thread" and len(jobs) > 1:
            workers = self.max_workers or auto_worker_count(len(jobs))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                list(pool.map(warm, jobs))
        else:
            for reference in jobs:
                warm(reference)
        return total, max(0, duplicates)

    # -- execution backends -------------------------------------------------------

    def _run_threads(self, root, signatures, decryptor,
                     namespaces) -> list[VerificationReport]:
        workers = self.max_workers or auto_worker_count(len(signatures))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(self.verifier.verify, signature,
                            document_root=root, decryptor=decryptor,
                            namespaces=namespaces)
                for signature in signatures
            ]
            return [future.result() for future in futures]

    def _run_process(self, root, signatures) -> list[VerificationReport]:
        """Subprocess-backed verification.

        The tree is serialized once and re-parsed per worker, so this
        only pays off for CPU-heavy verification of large clusters.
        Resolver/decryptor/key-locator hooks are process-local and
        unsupported here.
        """
        from repro.xmlcore import serialize_bytes
        if self.verifier.resolver is not None \
                or self.verifier.key_locator is not None:
            raise SignatureError(
                "process-backed batch verification does not support "
                "resolver or key-locator hooks; use mode='thread'"
            )
        payload = serialize_bytes(root)
        spec = {
            "trust_store": self.verifier.trust_store,
            "require_trusted_key": self.verifier.require_trusted_key,
            "max_references": self.verifier.max_references,
            "now": self.verifier.now,
        }
        workers = self.max_workers or auto_worker_count(len(signatures))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_process_verify_one, payload, index, spec)
                for index in range(len(signatures))
            ]
            return [future.result() for future in futures]


def _first_reference_uri(signature: Element) -> str:
    reference = signature.find("Reference", DSIG_NS)
    if reference is None:
        return ""
    return reference.get("URI") or ""


def _process_verify_one(payload: bytes, index: int,
                        spec: dict) -> VerificationReport:
    """Worker entry point for process-backed batch verification."""
    from repro.resilience.limits import ResourceGuard
    from repro.xmlcore import parse_element
    root = parse_element(payload, guard=ResourceGuard.default())
    signatures = [
        child for child in root.child_elements()
        if child.local == "Signature" and child.ns_uri == DSIG_NS
    ]
    verifier = Verifier(
        trust_store=spec["trust_store"],
        require_trusted_key=spec["require_trusted_key"],
        max_references=spec["max_references"],
        now=spec["now"],
    )
    return verifier.verify(signatures[index], document_root=root)
