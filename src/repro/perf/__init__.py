"""Performance subsystem: metrics, the C14N/digest cache, batch verify.

Three layers, from passive to active:

* :mod:`repro.perf.metrics` — counters, timers and hit/miss ratios
  threaded through c14n, digesting, signing, verification,
  encryption/decryption and the playback pipeline;
* :mod:`repro.perf.cache` — a content-addressed C14N/digest cache with
  revision-based invalidation (a cached digest can never validate a
  tampered subtree);
* :mod:`repro.perf.batch` — a batch verification engine that collects
  all signatures under a root, deduplicates shared subtree digests and
  fans verification out over a worker pool.
"""

from repro.perf import metrics
from repro.perf.cache import (
    C14NDigestCache,
    NullCache,
    get_default_cache,
    set_default_cache,
)

__all__ = [
    "metrics",
    "C14NDigestCache",
    "NullCache",
    "get_default_cache",
    "set_default_cache",
    "BatchVerifier",
    "BatchOutcome",
]


def __getattr__(name):
    # Lazy: batch imports the verifier, which imports the cache; eager
    # re-export here would make the package initialization circular.
    if name in ("BatchVerifier", "BatchOutcome"):
        from repro.perf import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
