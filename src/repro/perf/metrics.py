"""Perf counters and timers for the security stack's hot paths.

The ROADMAP north-star asks for hot paths "as fast as the hardware
allows"; you cannot optimize what you cannot see.  This module is the
seeing part: a tiny, thread-safe registry of named counters and timers
that c14n, digesting, signing, verification, encryption/decryption and
the playback pipeline report into.

Design constraints:

* **Near-zero overhead** — a counter increment is one lock + one int
  add; a timer is two ``perf_counter`` calls.  The instrumented
  operations (canonicalizing a subtree, an RSA exponentiation) dwarf
  both.
* **No repro dependencies** — every layer may import this module
  without cycles.
* **Process-global by default** — instrumentation points use the
  default registry; tests and the CLI may swap in a scoped one via
  :func:`push_registry` / :func:`pop_registry`.

Usage::

    from repro.perf import metrics

    metrics.counter("dsig.verify.calls").increment()
    with metrics.timer("c14n.canonicalize"):
        ...
    print("\n".join(metrics.report_lines()))
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


@dataclass
class TimerSummary:
    """Histogram-style summary of one timer's samples."""

    name: str
    count: int
    total_s: float
    min_s: float
    max_s: float
    mean_s: float
    p50_s: float
    p95_s: float


class Timer:
    """Accumulates wall-clock samples for one named operation.

    A bounded reservoir of the most recent samples backs the
    percentile summary, so long-running processes keep constant
    memory.
    """

    __slots__ = ("name", "_count", "_total", "_min", "_max",
                 "_samples", "_max_samples", "_lock", "_t0")

    def __init__(self, name: str, max_samples: int = 2048):
        self.name = name
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = 0.0
        self._samples: list[float] = []
        self._max_samples = max_samples
        self._lock = threading.Lock()

    def record(self, elapsed_s: float) -> None:
        with self._lock:
            self._count += 1
            self._total += elapsed_s
            if elapsed_s < self._min:
                self._min = elapsed_s
            if elapsed_s > self._max:
                self._max = elapsed_s
            if len(self._samples) >= self._max_samples:
                # Drop the oldest half; recent samples matter most.
                del self._samples[: self._max_samples // 2]
            self._samples.append(elapsed_s)

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.record(time.perf_counter() - self._t0)

    def time(self) -> "_TimerContext":
        """A re-entrant/thread-safe timing context for this timer."""
        return _TimerContext(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total_s(self) -> float:
        return self._total

    def summary(self) -> TimerSummary:
        with self._lock:
            count = self._count
            total = self._total
            samples = sorted(self._samples)
        if not count:
            return TimerSummary(self.name, 0, 0.0, 0.0, 0.0, 0.0, 0.0,
                                0.0)

        def percentile(q: float) -> float:
            if not samples:
                return 0.0
            index = min(len(samples) - 1,
                        int(round(q * (len(samples) - 1))))
            return samples[index]

        return TimerSummary(
            name=self.name, count=count, total_s=total,
            min_s=self._min if count else 0.0, max_s=self._max,
            mean_s=total / count,
            p50_s=percentile(0.50), p95_s=percentile(0.95),
        )


class _TimerContext:
    """One timing span; safe for concurrent use of the same Timer."""

    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: Timer):
        self._timer = timer

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer.record(time.perf_counter() - self._t0)


@dataclass
class RatioSnapshot:
    """A hit/miss style ratio derived from two counters."""

    name: str
    hits: int
    misses: int

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def ratio(self) -> float:
        return self.hits / self.total if self.total else 0.0


class PerfRegistry:
    """A namespace of counters and timers.

    Counters and timers are created on first use and live for the
    registry's lifetime; lookups are lock-protected and cheap.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._lock = threading.Lock()

    # -- access -----------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            with self._lock:
                timer = self._timers.setdefault(name, Timer(name))
        return timer

    def ratio(self, name: str) -> RatioSnapshot:
        """The ``<name>.hit`` / ``<name>.miss`` counter pair as a ratio."""
        return RatioSnapshot(
            name,
            hits=self.counter(name + ".hit").value,
            misses=self.counter(name + ".miss").value,
        )

    # -- reporting --------------------------------------------------------------

    def snapshot(self) -> dict:
        """All metrics as a plain JSON-serializable dict."""
        counters = {
            name: counter.value
            for name, counter in sorted(self._counters.items())
        }
        timers = {}
        for name, timer in sorted(self._timers.items()):
            summary = timer.summary()
            timers[name] = {
                "count": summary.count,
                "total_ms": summary.total_s * 1e3,
                "mean_ms": summary.mean_s * 1e3,
                "min_ms": summary.min_s * 1e3,
                "max_ms": summary.max_s * 1e3,
                "p50_ms": summary.p50_s * 1e3,
                "p95_ms": summary.p95_s * 1e3,
            }
        ratios = {}
        seen = set()
        for name in counters:
            if name.endswith(".hit"):
                base = name[: -len(".hit")]
            elif name.endswith(".miss"):
                base = name[: -len(".miss")]
            else:
                continue
            if base in seen:
                continue
            seen.add(base)
            ratios[base] = self.ratio(base).ratio
        return {"counters": counters, "timers": timers, "ratios": ratios}

    def report_lines(self) -> list[str]:
        """Human-readable dump, one metric per line."""
        snap = self.snapshot()
        lines: list[str] = []
        if snap["counters"]:
            lines.append("counters:")
            lines.extend(
                f"  {name:<42s} {value:>12d}"
                for name, value in snap["counters"].items()
            )
        if snap["ratios"]:
            lines.append("hit ratios:")
            lines.extend(
                f"  {name:<42s} {ratio:>11.1%}"
                for name, ratio in snap["ratios"].items()
            )
        if snap["timers"]:
            lines.append("timers (count / total / mean / p50 / p95 ms):")
            for name, t in snap["timers"].items():
                lines.append(
                    f"  {name:<42s} {t['count']:>7d} "
                    f"{t['total_ms']:>9.2f} {t['mean_ms']:>8.3f} "
                    f"{t['p50_ms']:>8.3f} {t['p95_ms']:>8.3f}"
                )
        return lines or ["(no metrics recorded)"]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()


# -- default registry stack ----------------------------------------------------

_registry_stack: list[PerfRegistry] = [PerfRegistry()]
_stack_lock = threading.Lock()


def get_registry() -> PerfRegistry:
    """The active registry (top of the stack)."""
    return _registry_stack[-1]


def push_registry(registry: PerfRegistry | None = None) -> PerfRegistry:
    """Activate a fresh (or given) registry; returns it."""
    registry = registry or PerfRegistry()
    with _stack_lock:
        _registry_stack.append(registry)
    return registry


def pop_registry() -> PerfRegistry:
    """Deactivate the top registry (the base registry always remains)."""
    with _stack_lock:
        if len(_registry_stack) <= 1:
            raise RuntimeError("cannot pop the base perf registry")
        return _registry_stack.pop()


def counter(name: str) -> Counter:
    return get_registry().counter(name)


def timer(name: str) -> _TimerContext:
    """A timing context on the active registry's timer *name*."""
    return get_registry().timer(name).time()


def ratio(name: str) -> RatioSnapshot:
    return get_registry().ratio(name)


def snapshot() -> dict:
    return get_registry().snapshot()


def report_lines() -> list[str]:
    return get_registry().report_lines()


def reset() -> None:
    get_registry().reset()
