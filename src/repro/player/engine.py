"""The Interactive Application Engine (Fig 11).

"The Interactive Application Engine is the main component, which has
access to the Interactive Cluster and is responsible for getting the
application contents decrypted, if encrypted, and verified, if signed."

The engine wires together the layered components of Fig 11 — Verifier,
Decryptor (via :class:`repro.core.PlaybackPipeline`), the script
interpreter, the SMIL presentation scheduler and the permission-gated
platform API — and executes applications in a sandbox whose only
outward surface is the host objects registered here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.playback_pipeline import PlaybackPipeline, VerifiedApplication
from repro.disc.manifest import ApplicationManifest
from repro.errors import (
    ApplicationRejectedError, NetworkError, PermissionDeniedError,
    ScriptError,
)
from repro.resilience.degradation import DegradationEvent, DegradationLog
from repro.markup.script_interp import HostObject, Interpreter
from repro.markup.smil import Presentation, ScheduledItem, parse_smil
from repro.permissions.request_file import (
    GrantSet, PERM_LOCAL_STORAGE, PERM_NETWORK, PERM_RETURN_CHANNEL,
)
from repro.player.localstorage import LocalStorage
from repro.primitives.keys import SymmetricKey


@dataclass
class ApplicationSession:
    """The observable outcome of executing an application."""

    app_name: str
    trusted: bool
    grants: GrantSet
    console: list[str] = field(default_factory=list)
    timeline: list[ScheduledItem] = field(default_factory=list)
    script_globals: dict[str, object] = field(default_factory=dict)
    instructions: int = 0
    storage_ops: list[str] = field(default_factory=list)
    network_ops: list[str] = field(default_factory=list)
    denied_ops: list[str] = field(default_factory=list)
    degradations: list[DegradationEvent] = field(default_factory=list)
    _interpreter: Interpreter | None = None

    def dispatch(self, handler: str, *args):
        """Invoke a script-defined event handler (``onKey`` etc.)."""
        if self._interpreter is None:
            raise ScriptError("session has no live interpreter")
        return self._interpreter.call_function(handler, *args)


class InteractiveApplicationEngine:
    """Loads, verifies, decrypts and executes interactive applications.

    Args:
        pipeline: the security pipeline (verifier + decryptor +
            permission policy).
        storage: player local storage.
        storage_key: player-secret key for encrypted storage slots.
        network_fetch: optional ``(host, path) -> bytes`` callable the
            ``network`` host object delegates to (grant-gated).
        clip_durations: ``src -> seconds`` used to resolve intrinsic
            media durations when scheduling.
        max_instructions: script runaway budget.
    """

    def __init__(self, pipeline: PlaybackPipeline, *,
                 storage: LocalStorage | None = None,
                 storage_key: SymmetricKey | None = None,
                 network_fetch=None,
                 clip_durations: dict[str, float] | None = None,
                 max_instructions: int = 1_000_000,
                 model: str = "RBD-1000"):
        self.pipeline = pipeline
        self.storage = storage or LocalStorage()
        self.storage_key = storage_key
        self.network_fetch = network_fetch
        self.clip_durations = dict(clip_durations or {})
        self.max_instructions = max_instructions
        self.model = model
        self.degradation = DegradationLog()

    # -- loading ---------------------------------------------------------------------

    def load_package(self, data: bytes) -> VerifiedApplication:
        """Verify/decrypt a downloaded application package (Fig 3)."""
        return self.pipeline.open_package(data)

    # -- presentation ------------------------------------------------------------------

    def build_presentation(self, manifest: ApplicationManifest
                           ) -> Presentation:
        """Assemble the SMIL presentation from layout/timing sub-markups."""
        presentation = Presentation()
        layout_sub = manifest.submarkup("layout")
        if layout_sub is not None:
            presentation.layout = parse_smil(layout_sub.body).layout
        timing_sub = manifest.submarkup("timing")
        if timing_sub is not None:
            presentation.body = parse_smil(timing_sub.body).body
        return presentation

    # -- execution ---------------------------------------------------------------------

    def execute(self, application: VerifiedApplication, *,
                events: list[tuple] | None = None) -> ApplicationSession:
        """Run an application's scripts and schedule its presentation.

        Args:
            application: a verified application from the pipeline.
            events: ``(handler_name, *args)`` tuples dispatched after
                the scripts' top-level code ran.
        """
        manifest = application.manifest
        session = ApplicationSession(
            app_name=manifest.name,
            trusted=application.trusted,
            grants=application.grants,
            degradations=list(application.degradations),
        )
        presentation = self.build_presentation(manifest)
        missing = presentation.validate_regions()
        if missing:
            raise ApplicationRejectedError(
                f"application references undefined regions: {missing}"
            )
        session.timeline = presentation.schedule(self.clip_durations)

        interpreter = Interpreter(
            self._host_objects(session, presentation),
            max_instructions=self.max_instructions,
        )
        session._interpreter = interpreter
        for script in manifest.scripts:
            if script.language != "ecmascript":
                raise ApplicationRejectedError(
                    f"unsupported script language {script.language!r}"
                )
            result = interpreter.run(script.source)
            session.instructions += result.instructions
            session.script_globals.update(result.globals)
        for event in events or []:
            handler, *args = event
            interpreter.call_function(handler, *args)
        from repro.markup.script_interp import ScriptFunction
        session.script_globals = {
            name: value
            for name, value in interpreter.globals.values.items()
            if isinstance(value, ScriptFunction)
            or not (isinstance(value, HostObject) or callable(value))
        }
        return session

    # -- host API ------------------------------------------------------------------------

    def _host_objects(self, session: ApplicationSession,
                      presentation: Presentation) -> dict[str, HostObject]:
        app_id = session.grants.app_id

        def guarded(op_name: str, permission: str, host=None):
            def check():
                try:
                    session.grants.check(permission, host=host)
                except PermissionDeniedError:
                    session.denied_ops.append(op_name)
                    raise
            return check

        def storage_write(key, value):
            guarded(f"storage.write({key})", PERM_LOCAL_STORAGE)()
            payload = _to_bytes(value)
            grant = session.grants.grant(PERM_LOCAL_STORAGE)
            if grant is not None and grant.quota_bytes:
                used = self.storage.used_bytes(app_id)
                if used + len(payload) > grant.quota_bytes:
                    session.denied_ops.append(f"storage.write({key})")
                    raise PermissionDeniedError(
                        f"application quota exceeded for {app_id!r}"
                    )
            self.storage.write(app_id, str(key), payload)
            session.storage_ops.append(f"write:{key}")

        def storage_write_secure(key, value):
            guarded(f"storage.writeSecure({key})", PERM_LOCAL_STORAGE)()
            if self.storage_key is None:
                raise PermissionDeniedError(
                    "player has no storage encryption key"
                )
            self.storage.write_encrypted(
                app_id, str(key), _to_bytes(value), self.storage_key,
            )
            session.storage_ops.append(f"writeSecure:{key}")

        def storage_read(key):
            guarded(f"storage.read({key})", PERM_LOCAL_STORAGE)()
            session.storage_ops.append(f"read:{key}")
            try:
                blob = self.storage.read(app_id, str(key))
            except Exception:
                return None
            if blob.startswith((b"ENC1", b"ENC2")):
                if self.storage_key is None:
                    return None
                blob = self.storage.read_encrypted(
                    app_id, str(key), self.storage_key,
                )
            return _from_bytes(blob)

        def network_get(host, path):
            try:
                session.grants.check(PERM_RETURN_CHANNEL, host=str(host))
            except PermissionDeniedError:
                try:
                    session.grants.check(PERM_NETWORK, host=str(host))
                except PermissionDeniedError:
                    session.denied_ops.append(f"network.get({host}{path})")
                    raise
            if self.network_fetch is None:
                raise PermissionDeniedError("player is offline")
            session.network_ops.append(f"get:{host}{path}")
            try:
                data = self.network_fetch(str(host), str(path))
            except NetworkError as exc:
                # Graceful degradation: a dead or exhausted link bars
                # this one resource (the script sees null), it does not
                # abort the application or the disc.
                event = self.degradation.record(
                    "network-api", f"{host}{path}", exc,
                )
                session.degradations.append(event)
                return None
            return data.decode("utf-8")

        player = HostObject("player", methods={
            "log": lambda message: session.console.append(
                _stringish(message)
            ),
        }, properties={"model": self.model})
        storage = HostObject("storage", methods={
            "write": storage_write,
            "writeSecure": storage_write_secure,
            "read": storage_read,
            "remove": lambda key: self.storage.delete(app_id, str(key)),
        })
        network = HostObject("network", methods={"get": network_get})
        presentation_host = HostObject("presentation", methods={
            "regionCount": lambda: float(
                len(presentation.layout.regions)
            ),
            "duration": lambda: presentation.duration(
                self.clip_durations
            ),
        }, properties={
            "width": float(presentation.layout.width),
            "height": float(presentation.layout.height),
        })
        return {
            "player": player, "storage": storage,
            "network": network, "presentation": presentation_host,
        }


def _to_bytes(value) -> bytes:
    return _stringish(value).encode("utf-8")


def _from_bytes(blob: bytes):
    text = blob.decode("utf-8", "replace")
    try:
        return float(text)
    except ValueError:
        return text


def _stringish(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    return str(value)
