"""The next-generation optical disc player (the device of Figs 1 and 11).

Combines the engine with disc handling and the download path:

* **Disc applications** — "inherently trusted since they were authored
  into the disc by the content providers — provided the disc is
  authenticated" (§5.1).  Disc authentication is modelled by verifying
  the signatures carried on the Interactive Cluster against the
  player's root store (the AACS substrate of ref. [29] reduced to its
  chain-of-trust essence).
* **Downloaded applications** — "the real security issue" (§5.1):
  fetched from a content server (optionally over the TLS-like channel)
  and passed through the full verification pipeline; failures bar
  execution (Fig 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.certs.store import TrustStore
from repro.core.playback_pipeline import PlaybackPipeline, VerifiedApplication
from repro.core.granularity import verify_signatures
from repro.disc.hierarchy import InteractiveCluster
from repro.disc.image import DiscImage
from repro.disc.manifest import ApplicationManifest
from repro.errors import ApplicationRejectedError, DiscError, PlayerError
from repro.markup.smil import ScheduledItem
from repro.network.server import DownloadClient
from repro.permissions.request_file import (
    PermissionRequestFile, PlatformPermissionPolicy,
)
from repro.player.engine import ApplicationSession, InteractiveApplicationEngine
from repro.player.localstorage import LocalStorage
from repro.primitives.keys import RSAPrivateKey, SymmetricKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.resilience.degradation import DegradationLog
from repro.xmlcore import DISC_NS
from repro.xmlenc.decryptor import Decryptor


@dataclass
class DiscSession:
    """State of an inserted disc."""

    image: DiscImage
    cluster: InteractiveCluster
    cluster_element: object
    authenticated: bool
    signature_reports: dict = field(default_factory=dict)
    manifest_validations: dict = field(default_factory=dict)
    # Signature coverage: which fragment Ids valid signatures vouch
    # for, and whether any valid signature covers the whole document.
    # Used to defeat signature-wrapping: injected content that no
    # signature covers must not run as trusted.
    signed_ids: set = field(default_factory=set)
    whole_document_signed: bool = False

    def covers(self, element) -> bool:
        """True if *element* is inside a signed region of this disc."""
        if self.whole_document_signed:
            return True
        from repro.xmlcore.tree import Element
        node = element
        while isinstance(node, Element):
            for attr in node.attrs:
                if attr.local in ("Id", "ID", "id") \
                        and attr.value in self.signed_ids:
                    return True
            node = node.parent
        return False


@dataclass
class PlaybackReport:
    """Result of playing an A/V title."""

    playlist: str
    items: list[ScheduledItem]
    total_packets: int
    duration_s: float


class DiscPlayer:
    """A consumer optical-disc player with the full security stack.

    Args:
        trust_store: manufacturer-installed root certificates.
        device_key: the player's RSA key pair (content key transport).
        key_slots: named symmetric keys (disc keys, shared KEKs).
        permission_policy: platform permission stance.
        require_signed_downloads: Fig 3 policy for network content.
        allow_unauthenticated_disc_apps: whether apps from an
            unauthenticated disc may run (as untrusted).
        key_locator: XKMS locate hook for ``ds:KeyName`` signatures;
            when the trust service is unreachable the pipeline degrades
            to untrusted execution instead of aborting (the reasons
            land in :attr:`degradation`).
        now: simulation clock for certificate validity.
    """

    def __init__(self, trust_store: TrustStore, *,
                 device_key: RSAPrivateKey | None = None,
                 key_slots: dict[str, SymmetricKey] | None = None,
                 permission_policy: PlatformPermissionPolicy | None = None,
                 require_signed_downloads: bool = True,
                 allow_unauthenticated_disc_apps: bool = True,
                 storage: LocalStorage | None = None,
                 storage_key: SymmetricKey | None = None,
                 network_fetch=None,
                 key_locator=None,
                 provider: CryptoProvider | None = None,
                 model: str = "RBD-1000",
                 now: float = 0.0):
        self.trust_store = trust_store
        self.device_key = device_key
        self.key_slots = dict(key_slots or {})
        self.permission_policy = (permission_policy
                                  or PlatformPermissionPolicy())
        self.allow_unauthenticated_disc_apps = \
            allow_unauthenticated_disc_apps
        self.provider = provider or get_provider()
        self.now = now
        self.model = model
        self.degradation = DegradationLog()
        self.pipeline = PlaybackPipeline(
            trust_store=trust_store, device_key=device_key,
            key_slots=self.key_slots,
            permission_policy=self.permission_policy,
            require_signature=require_signed_downloads,
            key_locator=key_locator,
            degradation=self.degradation,
            provider=self.provider, now=now,
        )
        self.engine = InteractiveApplicationEngine(
            self.pipeline, storage=storage, storage_key=storage_key,
            network_fetch=network_fetch, model=model,
        )
        self._session: DiscSession | None = None

    # -- disc handling ---------------------------------------------------------------

    def insert_disc(self, image: DiscImage) -> DiscSession:
        """Load a disc and authenticate it (verify cluster signatures).

        Signature verification runs through the batch engine: shared
        subtree digests across the cluster's signatures are
        deduplicated into the C14N/digest cache, which later selective
        per-track checks at playback time then hit.
        """
        from repro.perf import metrics
        with metrics.timer("player.insert_disc"):
            return self._insert_disc(image)

    def _insert_disc(self, image: DiscImage) -> DiscSession:
        problems = image.validate_structure()
        if problems:
            raise DiscError(
                "disc rejected: " + "; ".join(problems)
            )
        cluster_element = image.cluster_element()
        from repro.dsig.verifier import Verifier
        verifier = Verifier(
            trust_store=self.trust_store, require_trusted_key=True,
            resolver=image.resolver, provider=self.provider, now=self.now,
        )
        reports = verify_signatures(
            cluster_element, verifier, decryptor=self._decryptor(),
            batch=True,
        )
        authenticated = bool(reports) and all(
            report.valid for report in reports.values()
        )
        # Manifest-signed discs (ds:Manifest): core validation covered
        # the reference list; check the listed entries too for full
        # disc authentication.  (Applications may additionally do
        # selective per-track checks at playback time.)
        manifest_validations = {}
        if authenticated:
            from repro.dsig.manifest import (
                find_manifest, validate_manifest_references,
            )
            from repro.xmlcore import DSIG_NS
            for child in cluster_element.child_elements():
                if child.local != "Signature" or child.ns_uri != DSIG_NS:
                    continue
                if find_manifest(child) is None:
                    continue
                validation = validate_manifest_references(
                    child, resolver=image.resolver,
                    decryptor=self._decryptor(),
                    provider=self.provider,
                )
                manifest_validations[child.get("Id") or "?"] = validation
                if not validation.all_valid:
                    authenticated = False
        # Resolve clip durations for the scheduler.
        durations: dict[str, float] = {}
        cluster = InteractiveCluster.from_element(cluster_element)
        extension = image.layout.clipinfo_extension
        for path in image.paths():
            if path.endswith(extension):
                clip_id = path.split("/")[-1][: -len(extension)]
                info = image.clip_info(clip_id)
                durations[info.stream_uri] = info.duration_s
                durations[info.clip_id] = info.duration_s
        self.engine.clip_durations = durations
        # Signature coverage map (wrapping-attack defence): collect the
        # fragment Ids that *valid* signatures and manifest entries
        # actually vouch for.
        signed_ids: set[str] = set()
        whole_document_signed = False
        for report in reports.values():
            if not report.valid:
                continue
            for result in report.references:
                if result.uri == "":
                    whole_document_signed = True
                elif result.uri and result.uri.startswith("#"):
                    signed_ids.add(result.uri[1:])
        for validation in manifest_validations.values():
            for result in validation.results:
                if result.valid and result.uri \
                        and result.uri.startswith("#"):
                    signed_ids.add(result.uri[1:])

        self._session = DiscSession(
            image=image, cluster=cluster,
            cluster_element=cluster_element,
            authenticated=authenticated, signature_reports=reports,
            manifest_validations=manifest_validations,
            signed_ids=signed_ids,
            whole_document_signed=whole_document_signed,
        )
        return self._session

    def eject(self) -> None:
        self._session = None

    @property
    def disc(self) -> DiscSession:
        if self._session is None:
            raise PlayerError("no disc inserted")
        return self._session

    def _decryptor(self) -> Decryptor:
        decryptor = Decryptor(provider=self.provider)
        for name, key in self.key_slots.items():
            decryptor.add_key(name, key)
        if self.device_key is not None:
            decryptor.add_rsa_key(self.device_key)
        return decryptor

    # -- A/V playback -----------------------------------------------------------------

    def play_title(self, playlist_name: str) -> PlaybackReport:
        """Play (simulate) an A/V title: resolve clips, count packets."""
        session = self.disc
        for track in session.cluster.av_tracks():
            playlist = track.playlist
            assert playlist is not None
            if playlist.name != playlist_name:
                continue
            items: list[ScheduledItem] = []
            cursor = 0.0
            total_packets = 0
            for play_item in playlist.items:
                info = session.image.clip_info(play_item.clip_ref)
                stream = session.image.stream(play_item.clip_ref)
                from repro.disc.tsgen import inspect_transport_stream
                ts_info = inspect_transport_stream(stream)
                total_packets += ts_info.packets
                end = play_item.out_time or info.duration_s
                items.append(ScheduledItem(
                    start=cursor, end=cursor + (end - play_item.in_time),
                    kind="video", src=info.stream_uri, region="main",
                ))
                cursor += end - play_item.in_time
            return PlaybackReport(
                playlist=playlist_name, items=items,
                total_packets=total_packets, duration_s=cursor,
            )
        raise PlayerError(f"no playlist named {playlist_name!r}")

    # -- disc applications ---------------------------------------------------------------

    def launch_disc_application(self, name: str, *,
                                events: list[tuple] | None = None
                                ) -> ApplicationSession:
        """Launch an application authored on the disc.

        Trust follows §5.1: authenticated disc ⇒ trusted application.
        Encrypted manifests are unlocked with the player's key slots.
        """
        session = self.disc
        if not session.authenticated \
                and not self.allow_unauthenticated_disc_apps:
            raise ApplicationRejectedError(
                "disc is not authenticated; applications barred"
            )
        cluster_element = session.cluster_element
        manifest_element = None
        for candidate in cluster_element.iter("manifest", DISC_NS):
            if candidate.get("name") == name:
                manifest_element = candidate
                break
        if manifest_element is None:
            # The manifest may be encrypted: decrypt a working copy.
            working = cluster_element.copy()
            self._decryptor().decrypt_in_place(working)
            for candidate in working.iter("manifest", DISC_NS):
                if candidate.get("name") == name:
                    manifest_element = candidate
                    break
        if manifest_element is None:
            raise PlayerError(f"disc has no application named {name!r}")
        if session.authenticated and not session.covers(manifest_element):
            # The disc authenticates, but THIS manifest is outside every
            # signed region — injected content riding an otherwise-valid
            # disc (signature wrapping).  Bar it.
            raise ApplicationRejectedError(
                f"application {name!r} is not covered by any disc "
                "signature (wrapping attack suspected)"
            )
        working_manifest = manifest_element.detached_copy()
        self._decryptor().decrypt_in_place(working_manifest)
        manifest = ApplicationManifest.from_element(working_manifest)

        permission_file = self._disc_permission_file(session, name)
        grants = self.permission_policy.decide(
            permission_file, trusted=session.authenticated,
        )
        application = VerifiedApplication(
            manifest=manifest, grants=grants,
            trusted=session.authenticated,
        )
        return self.engine.execute(application, events=events)

    def _disc_permission_file(self, session: DiscSession,
                              name: str) -> PermissionRequestFile:
        path = session.image.layout.auxdata_path(f"{name}.prf")
        if session.image.exists(path):
            return PermissionRequestFile.from_xml(
                session.image.read(path)
            )
        return PermissionRequestFile(app_id=name, org_id="")

    # -- downloaded applications ------------------------------------------------------------

    def download_application(self, client: DownloadClient, path: str, *,
                             secure: bool = True,
                             optional: bool = False
                             ) -> VerifiedApplication | None:
        """Fetch and verify an application package (Figs 1 and 3).

        With ``optional=True`` the download degrades gracefully: a
        transport failure (the client's retry policy already did its
        best) or a barred package records a degradation event and
        returns ``None`` — the disc keeps playing with that bonus
        application barred.  Mandatory downloads re-raise.
        """
        from repro.errors import NetworkError, ResourceLimitExceeded
        try:
            data = client.fetch(path, secure=secure)
            return self.engine.load_package(data)
        except (NetworkError, ApplicationRejectedError,
                ResourceLimitExceeded) as exc:
            # ResourceLimitExceeded covers quota trips surfacing
            # outside the pipeline's own handling (e.g. an oversized
            # response frame refused by the download client).
            if not optional:
                raise
            self.degradation.record("download", path, exc)
            return None

    def download_bonus_content(self, client: DownloadClient,
                               paths: list[str], *,
                               secure: bool = True) -> dict[str, bytes]:
        """Fetch optional bonus resources; failures bar, never abort.

        Returns the resources that arrived intact.  Every failed path
        is recorded in :attr:`degradation` with its failure-mode code
        and playback continues without it.
        """
        from repro.errors import NetworkError, ResourceLimitExceeded
        fetched: dict[str, bytes] = {}
        for path in paths:
            try:
                fetched[path] = client.fetch(path, secure=secure)
            except (NetworkError, ResourceLimitExceeded) as exc:
                self.degradation.record("download", path, exc)
        return fetched

    def run_application(self, application: VerifiedApplication, *,
                        events: list[tuple] | None = None
                        ) -> ApplicationSession:
        return self.engine.execute(application, events=events)
