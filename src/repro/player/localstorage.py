"""Player local storage with per-application namespaces and quotas.

The threat model's example: "a malicious application loaded from an
external server that could corrupt the local storage of the player"
(§1).  Storage is namespaced per application and quota-limited; the
engine additionally gates access behind the ``local-storage``
permission grant.  Values can be stored encrypted — the paper's game
high-scores scenario (§4): "a Player can encrypt and store the high
scores of a game in local storage while keeping the general
application markup unencrypted."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LocalStorageError
from repro.primitives.keys import SymmetricKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.primitives.random import RandomSource, default_random
from repro.xmlenc import algorithms as xenc_algorithms


@dataclass
class LocalStorage:
    """Quota-limited key/value storage, namespaced by application id."""

    quota_bytes: int = 1 << 20
    _data: dict[str, dict[str, bytes]] = field(default_factory=dict)
    provider: CryptoProvider | None = None
    rng: RandomSource | None = None

    def __post_init__(self):
        self.provider = self.provider or get_provider()
        self.rng = self.rng or default_random()

    # -- plain storage ---------------------------------------------------------------

    def used_bytes(self, app_id: str) -> int:
        space = self._data.get(app_id, {})
        return sum(len(k.encode()) + len(v) for k, v in space.items())

    def write(self, app_id: str, key: str, value: bytes) -> None:
        space = self._data.setdefault(app_id, {})
        projected = (self.used_bytes(app_id)
                     - len(space.get(key, b""))
                     + len(key.encode()) + len(value))
        if projected > self.quota_bytes:
            raise LocalStorageError(
                f"quota exceeded for {app_id!r}: {projected} > "
                f"{self.quota_bytes} bytes"
            )
        space[key] = bytes(value)

    def read(self, app_id: str, key: str) -> bytes:
        space = self._data.get(app_id, {})
        try:
            return space[key]
        except KeyError:
            raise LocalStorageError(
                f"{app_id!r} has no stored value {key!r}"
            ) from None

    def delete(self, app_id: str, key: str) -> bool:
        space = self._data.get(app_id, {})
        return space.pop(key, None) is not None

    def keys(self, app_id: str) -> list[str]:
        return sorted(self._data.get(app_id, {}))

    def wipe(self, app_id: str) -> None:
        self._data.pop(app_id, None)

    # -- persistence (the player's flash survives power cycles) ---------------------------

    def save_to_directory(self, directory: str) -> None:
        """Persist all slots under *directory* (one file per slot)."""
        import os
        from repro.primitives.encoding import hexencode
        for app_id, space in self._data.items():
            app_dir = os.path.join(directory, hexencode(
                app_id.encode("utf-8")
            ))
            os.makedirs(app_dir, exist_ok=True)
            for key, value in space.items():
                path = os.path.join(app_dir, hexencode(
                    key.encode("utf-8")
                ))
                with open(path, "wb") as handle:
                    handle.write(value)

    @classmethod
    def load_from_directory(cls, directory: str,
                            quota_bytes: int = 1 << 20) -> "LocalStorage":
        """Restore storage previously saved with
        :meth:`save_to_directory`."""
        import os
        from repro.primitives.encoding import hexdecode
        storage = cls(quota_bytes=quota_bytes)
        if not os.path.isdir(directory):
            return storage
        for app_hex in os.listdir(directory):
            app_dir = os.path.join(directory, app_hex)
            if not os.path.isdir(app_dir):
                continue
            app_id = hexdecode(app_hex).decode("utf-8")
            for key_hex in os.listdir(app_dir):
                key = hexdecode(key_hex).decode("utf-8")
                with open(os.path.join(app_dir, key_hex), "rb") as handle:
                    storage._data.setdefault(app_id, {})[key] = \
                        handle.read()
        return storage

    # -- encrypted storage (the high-scores scenario) ------------------------------------

    def write_encrypted(self, app_id: str, key: str, value: bytes,
                        storage_key: SymmetricKey) -> None:
        """Encrypt *value* under the player's storage key, then store."""
        ciphertext = xenc_algorithms.encrypt_block_data(
            xenc_algorithms.AES128_CBC, storage_key, value,
            self.provider, self.rng,
        )
        self.write(app_id, key, b"ENC1" + ciphertext)

    def read_encrypted(self, app_id: str, key: str,
                       storage_key: SymmetricKey) -> bytes:
        blob = self.read(app_id, key)
        if not blob.startswith(b"ENC1"):
            raise LocalStorageError(
                f"{key!r} is not an encrypted slot"
            )
        return xenc_algorithms.decrypt_block_data(
            xenc_algorithms.AES128_CBC, storage_key, blob[4:],
            self.provider,
        )

    def is_encrypted(self, app_id: str, key: str) -> bool:
        return self.read(app_id, key).startswith(b"ENC1")
