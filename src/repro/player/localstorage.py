"""Player local storage with per-application namespaces and quotas.

The threat model's example: "a malicious application loaded from an
external server that could corrupt the local storage of the player"
(§1).  Storage is namespaced per application and quota-limited; the
engine additionally gates access behind the ``local-storage``
permission grant.  Values can be stored encrypted — the paper's game
high-scores scenario (§4): "a Player can encrypt and store the high
scores of a game in local storage while keeping the general
application markup unencrypted."

Two persistence backends exist.  The legacy one-file-per-slot layout
(:meth:`LocalStorage.save_to_directory`) writes each slot through the
durable layer's :func:`~repro.resilience.durable.atomic_write`, so a
power cut leaves whole old values or whole new values, never torn
ones.  The journaled backend (:meth:`LocalStorage.open_durable`)
attaches a :class:`~repro.resilience.durable.DurableStore`: every
mutation is committed to the checksummed write-ahead journal before it
is acknowledged, and reopening after a crash recovers exactly the
acknowledged slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecryptionError, LocalStorageError, PaddingError
from repro.primitives.hmac import constant_time_equal
from repro.primitives.keys import SymmetricKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.primitives.random import RandomSource, default_random
from repro.resilience.crashfs import Filesystem
from repro.resilience.degradation import DegradationLog
from repro.resilience.durable import DurableStore, atomic_write
from repro.xmlenc import algorithms as xenc_algorithms


@dataclass
class LocalStorage:
    """Quota-limited key/value storage, namespaced by application id."""

    quota_bytes: int = 1 << 20
    _data: dict[str, dict[str, bytes]] = field(default_factory=dict)
    provider: CryptoProvider | None = None
    rng: RandomSource | None = None
    #: journaled backend; ``None`` means in-memory / legacy directory.
    _durable: DurableStore | None = field(default=None, repr=False)

    def __post_init__(self):
        self.provider = self.provider or get_provider()
        self.rng = self.rng or default_random()

    # -- plain storage ---------------------------------------------------------------

    def used_bytes(self, app_id: str) -> int:
        space = self._data.get(app_id, {})
        return sum(len(k.encode()) + len(v) for k, v in space.items())

    def write(self, app_id: str, key: str, value: bytes) -> None:
        space = self._data.setdefault(app_id, {})
        projected = (self.used_bytes(app_id)
                     - len(space.get(key, b""))
                     + len(key.encode()) + len(value))
        if projected > self.quota_bytes:
            raise LocalStorageError(
                f"quota exceeded for {app_id!r}: {projected} > "
                f"{self.quota_bytes} bytes"
            )
        if self._durable is not None:
            # Journal first: the commit's fsync is the acknowledgement,
            # and the in-memory view only changes once it returns.
            self._durable.set(app_id, key, bytes(value))
            self._durable.commit()
        space[key] = bytes(value)

    def read(self, app_id: str, key: str) -> bytes:
        space = self._data.get(app_id, {})
        try:
            return space[key]
        except KeyError:
            raise LocalStorageError(
                f"{app_id!r} has no stored value {key!r}"
            ) from None

    def delete(self, app_id: str, key: str) -> bool:
        space = self._data.get(app_id, {})
        if key not in space:
            return False
        if self._durable is not None:
            self._durable.delete(app_id, key)
            self._durable.commit()
        del space[key]
        return True

    def keys(self, app_id: str) -> list[str]:
        return sorted(self._data.get(app_id, {}))

    def wipe(self, app_id: str) -> None:
        if self._durable is not None and app_id in self._data:
            self._durable.wipe(app_id)
            self._durable.commit()
        self._data.pop(app_id, None)

    # -- persistence (the player's flash survives power cycles) ---------------------------

    def save_to_directory(self, directory: str) -> None:
        """Persist all slots under *directory* (one file per slot).

        Slots deleted since the last save are removed from disk too —
        a stale file left behind would resurrect the deleted value on
        the next :meth:`load_from_directory`.  Each slot file is
        written through :func:`~repro.resilience.durable.atomic_write`,
        so power loss mid-save never leaves a torn value.
        """
        import os
        from repro.primitives.encoding import hexencode
        os.makedirs(directory, exist_ok=True)
        live_apps = {hexencode(app_id.encode("utf-8")): app_id
                     for app_id, space in self._data.items() if space}
        for entry in os.listdir(directory):
            app_dir = os.path.join(directory, entry)
            if not os.path.isdir(app_dir):
                continue
            if entry not in live_apps:
                for name in os.listdir(app_dir):
                    os.remove(os.path.join(app_dir, name))
                os.rmdir(app_dir)
                continue
            live_keys = {
                hexencode(key.encode("utf-8"))
                for key in self._data[live_apps[entry]]
            }
            for name in os.listdir(app_dir):
                if name not in live_keys:
                    os.remove(os.path.join(app_dir, name))
        for app_id, space in self._data.items():
            if not space:
                continue
            app_dir = os.path.join(directory, hexencode(
                app_id.encode("utf-8")
            ))
            os.makedirs(app_dir, exist_ok=True)
            for key, value in space.items():
                path = os.path.join(app_dir, hexencode(
                    key.encode("utf-8")
                ))
                atomic_write(path, value)

    @classmethod
    def load_from_directory(cls, directory: str,
                            quota_bytes: int = 1 << 20) -> "LocalStorage":
        """Restore storage previously saved with
        :meth:`save_to_directory`.

        The quota is enforced on load as well as on write: flash
        contents are attacker-reachable state, and restoring an
        over-quota application would let a crafted image bypass the
        per-application budget entirely.

        Raises:
            LocalStorageError: when a restored application exceeds
                *quota_bytes*.
        """
        import os
        from repro.primitives.encoding import hexdecode
        storage = cls(quota_bytes=quota_bytes)
        if not os.path.isdir(directory):
            return storage
        for app_hex in os.listdir(directory):
            app_dir = os.path.join(directory, app_hex)
            if not os.path.isdir(app_dir):
                continue
            app_id = hexdecode(app_hex).decode("utf-8")
            used = 0
            for key_hex in os.listdir(app_dir):
                if key_hex.endswith(".tmp"):
                    continue  # torn atomic_write leftovers
                key = hexdecode(key_hex).decode("utf-8")
                with open(os.path.join(app_dir, key_hex), "rb") as handle:
                    value = handle.read()
                used += len(key.encode()) + len(value)
                if used > quota_bytes:
                    raise LocalStorageError(
                        f"stored data for {app_id!r} exceeds the "
                        f"{quota_bytes}-byte quota on load"
                    )
                storage._data.setdefault(app_id, {})[key] = value
        return storage

    # -- journaled backend (crash-safe, acknowledged commits) ----------------------------

    @classmethod
    def open_durable(cls, directory: str, quota_bytes: int = 1 << 20, *,
                     fs: Filesystem | None = None,
                     integrity_key: bytes | None = None,
                     provider: CryptoProvider | None = None,
                     rng: RandomSource | None = None,
                     degradation: DegradationLog | None = None,
                     ) -> "LocalStorage":
        """Open storage backed by a crash-safe
        :class:`~repro.resilience.durable.DurableStore`.

        Recovery runs here: torn journal tails are truncated back to
        the last acknowledged commit (reported on *degradation* under
        the ``recovery`` code), interior tampering raises a typed
        :class:`~repro.errors.DurableStateError`.  Every subsequent
        :meth:`write`/:meth:`delete`/:meth:`wipe` is journaled and
        fsynced before it returns.

        Raises:
            DurableStateError: when acknowledged journal history or
                the snapshot fails its integrity checks.
            LocalStorageError: when a recovered application exceeds
                *quota_bytes*.
        """
        store = DurableStore(
            directory, fs=fs, integrity_key=integrity_key,
            provider=provider, degradation=degradation,
        )
        storage = cls(quota_bytes=quota_bytes, provider=provider,
                      rng=rng)
        for app_id in store.namespaces():
            space = dict(store.items(app_id))
            used = sum(len(k.encode()) + len(v)
                       for k, v in space.items())
            if used > quota_bytes:
                raise LocalStorageError(
                    f"recovered data for {app_id!r} exceeds the "
                    f"{quota_bytes}-byte quota"
                )
            storage._data[app_id] = space
        storage._durable = store
        return storage

    @property
    def durable(self) -> DurableStore | None:
        """The attached journaled backend, if any."""
        return self._durable

    def compact(self) -> int:
        """Fold the journal into a snapshot (journaled backend only)."""
        if self._durable is None:
            raise LocalStorageError(
                "compact() requires the journaled backend; open the "
                "storage with open_durable()"
            )
        return self._durable.compact()

    # -- encrypted storage (the high-scores scenario) ------------------------------------

    def _slot_mac(self, storage_key: SymmetricKey,
                  ciphertext: bytes) -> bytes:
        # The MAC key is derived from the storage key under a fixed
        # label, so the CBC key is never used directly for both jobs.
        mac_key = self.provider.hmac(
            "sha256", storage_key.data, b"localstorage-slot-mac")
        return self.provider.hmac("sha256", mac_key, ciphertext)

    def write_encrypted(self, app_id: str, key: str, value: bytes,
                        storage_key: SymmetricKey) -> None:
        """Encrypt *value* under the player's storage key, then store.

        Slots are written encrypt-then-MAC (``ENC2``): a 32-byte
        HMAC-SHA256 tag over the ciphertext precedes it, so a torn
        write, tampered blob, or wrong storage key is *deterministic*
        — never dependent on whether garbage happens to unpad.
        """
        ciphertext = xenc_algorithms.encrypt_block_data(
            xenc_algorithms.AES128_CBC, storage_key, value,
            self.provider, self.rng,
        )
        tag = self._slot_mac(storage_key, ciphertext)
        self.write(app_id, key, b"ENC2" + tag + ciphertext)

    def read_encrypted(self, app_id: str, key: str,
                       storage_key: SymmetricKey) -> bytes:
        blob = self.read(app_id, key)
        if blob.startswith(b"ENC2"):
            tag, ciphertext = blob[4:36], blob[36:]
            if not constant_time_equal(
                    tag, self._slot_mac(storage_key, ciphertext)):
                raise LocalStorageError(
                    f"encrypted slot {key!r} failed to decrypt (torn "
                    "write, tampering, or wrong storage key)"
                )
        elif blob.startswith(b"ENC1"):
            # Legacy unauthenticated slot: decrypt best-effort, with
            # padding failure as the only tamper signal.
            ciphertext = blob[4:]
        else:
            raise LocalStorageError(
                f"{key!r} is not an encrypted slot"
            )
        try:
            return xenc_algorithms.decrypt_block_data(
                xenc_algorithms.AES128_CBC, storage_key, ciphertext,
                self.provider,
            )
        except (PaddingError, DecryptionError) as error:
            # A torn flash write or tampered blob must surface as the
            # storage layer's typed failure, never a raw crypto
            # traceback from inside the slot format.
            raise LocalStorageError(
                f"encrypted slot {key!r} failed to decrypt (torn "
                "write, tampering, or wrong storage key)"
            ) from error

    def is_encrypted(self, app_id: str, key: str) -> bool:
        return self.read(app_id, key).startswith((b"ENC1", b"ENC2"))
