"""The player: engine, local storage, and the device facade."""

from repro.player.engine import (
    ApplicationSession, InteractiveApplicationEngine,
)
from repro.player.localstorage import LocalStorage
from repro.player.player import DiscPlayer, DiscSession, PlaybackReport

__all__ = [
    "DiscPlayer", "DiscSession", "PlaybackReport",
    "InteractiveApplicationEngine", "ApplicationSession", "LocalStorage",
]
