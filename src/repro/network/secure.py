"""A TLS-like secure channel built from the library's own primitives.

§7: "SSL/TLS mechanisms could be used for mutual authentication and
secrecy between server and the player when applications are
transmitted over the network."  This module implements the shape of a
TLS-RSA handshake over a :class:`repro.network.channel.Channel`:

1. ``ClientHello``: client nonce;
2. ``ServerHello``: server nonce + certificate chain (XML);
3. client validates the chain against its trust store, then sends the
   RSA-encrypted premaster secret;
4. both sides derive directional AES/HMAC keys from the premaster and
   nonces (HMAC-SHA256 KDF) and exchange ``Finished`` records that MAC
   the handshake transcript — any in-flight tampering is caught here;
5. application records are AES-CBC, encrypt-then-MAC, with sequence
   numbers (replay/reorder detection).

As the paper notes, TLS protects data *in transit only* — the
persistent-protection argument for XML security (§4) is demonstrated by
tests that show TLS-delivered content carries no protection at rest.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass

from repro.errors import ChannelSecurityError, TimeoutError
from repro.certs.authority import SigningIdentity
from repro.certs.certificate import Certificate
from repro.certs.store import TrustStore
from repro.primitives import rsa
from repro.primitives.hmac import constant_time_equal
from repro.primitives.padding import pkcs7_pad, pkcs7_unpad
from repro.primitives.provider import CryptoProvider, get_provider
from repro.primitives.random import RandomSource, default_random
from repro.network.channel import Channel
from repro.resilience.limits import ResourceGuard
from repro.xmlcore import element, parse_element, serialize_bytes

_NONCE = 32
_PREMASTER = 48

MSG_CLIENT_HELLO = 1
MSG_SERVER_HELLO = 2
MSG_KEY_EXCHANGE = 3
MSG_FINISHED = 4
MSG_RECORD = 5


def _frame(kind: int, payload: bytes) -> bytes:
    return struct.pack(">BI", kind, len(payload)) + payload


def _unframe(message: bytes, expected_kind: int) -> bytes:
    if len(message) < 5:
        raise ChannelSecurityError("truncated handshake message")
    kind, length = struct.unpack_from(">BI", message)
    if kind != expected_kind:
        raise ChannelSecurityError(
            f"unexpected message kind {kind} (wanted {expected_kind})"
        )
    payload = message[5:]
    if len(payload) != length:
        raise ChannelSecurityError("handshake message length mismatch")
    return payload


@dataclass
class SessionKeys:
    """Directional key material derived from the handshake."""

    enc_key: bytes
    mac_key: bytes


class SecureSession:
    """One endpoint of an established secure channel."""

    def __init__(self, send_keys: SessionKeys, recv_keys: SessionKeys,
                 provider: CryptoProvider, rng: RandomSource,
                 peer_certificate: Certificate | None = None):
        self._send_keys = send_keys
        self._recv_keys = recv_keys
        self._provider = provider
        self._rng = rng
        self._send_seq = 0
        self._recv_seq = 0
        self.peer_certificate = peer_certificate

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt-then-MAC one application record."""
        iv = self._rng.read(16)
        ciphertext = self._provider.aes_cbc_encrypt(
            self._send_keys.enc_key, iv, pkcs7_pad(plaintext, 16),
        )
        header = struct.pack(">Q", self._send_seq)
        mac = self._provider.hmac(
            "sha256", self._send_keys.mac_key, header + iv + ciphertext,
        )
        self._send_seq += 1
        return _frame(MSG_RECORD, header + iv + ciphertext + mac)

    def open(self, record: bytes) -> bytes:
        """Verify and decrypt one application record.

        Raises:
            ChannelSecurityError: on MAC failure, replay or reordering.
        """
        payload = _unframe(record, MSG_RECORD)
        if len(payload) < 8 + 16 + 32:
            raise ChannelSecurityError("record too short")
        header, iv = payload[:8], payload[8:24]
        ciphertext, mac = payload[24:-32], payload[-32:]
        expected = self._provider.hmac(
            "sha256", self._recv_keys.mac_key, header + iv + ciphertext,
        )
        if not constant_time_equal(mac, expected):
            raise ChannelSecurityError(
                "record MAC failure: tampering detected in transit"
            )
        (seq,) = struct.unpack(">Q", header)
        if seq != self._recv_seq:
            raise ChannelSecurityError(
                f"record replay/reorder detected (seq {seq}, "
                f"expected {self._recv_seq})"
            )
        self._recv_seq += 1
        padded = self._provider.aes_cbc_decrypt(
            self._recv_keys.enc_key, iv, ciphertext,
        )
        return pkcs7_unpad(padded, 16)


def _kdf(provider: CryptoProvider, premaster: bytes, client_nonce: bytes,
         server_nonce: bytes) -> tuple[SessionKeys, SessionKeys]:
    """Derive client→server and server→client key pairs."""
    def block(label: bytes) -> bytes:
        return provider.hmac(
            "sha256", premaster, label + client_nonce + server_nonce,
        )

    c2s = SessionKeys(enc_key=block(b"c2s-enc")[:16],
                      mac_key=block(b"c2s-mac"))
    s2c = SessionKeys(enc_key=block(b"s2c-enc")[:16],
                      mac_key=block(b"s2c-mac"))
    return c2s, s2c


def _chain_to_xml(chain: list[Certificate]) -> bytes:
    holder = element("chain", None)
    for certificate in chain:
        holder.append(certificate.to_element())
    return serialize_bytes(holder)


def _chain_from_xml(payload: bytes) -> list[Certificate]:
    # Handshake payloads arrive before any authentication, so the
    # certificate chain XML is parsed under default resource quotas.
    holder = parse_element(payload, guard=ResourceGuard.default())
    return [
        Certificate.from_element(child)
        for child in holder.child_elements()
        if child.local == "Certificate"
    ]


class SecureServer:
    """The server side of the handshake (a content server's identity)."""

    def __init__(self, identity: SigningIdentity,
                 provider: CryptoProvider | None = None,
                 rng: RandomSource | None = None):
        self.identity = identity
        self.provider = provider or get_provider()
        self.rng = rng or default_random()


class SecureClient:
    """The player side: validates the server chain before keying."""

    def __init__(self, trust_store: TrustStore,
                 provider: CryptoProvider | None = None,
                 rng: RandomSource | None = None,
                 now: float = 0.0):
        self.trust_store = trust_store
        self.provider = provider or get_provider()
        self.rng = rng or default_random()
        self.now = now


def establish(client: SecureClient, server: SecureServer,
              channel: Channel, *,
              retry_policy=None) -> tuple[SecureSession, SecureSession]:
    """Run the handshake over *channel*.

    Returns ``(client_session, server_session)``.

    With a *retry_policy* (:class:`repro.resilience.RetryPolicy`), a
    handshake torn down by a transient fault — dropped flight,
    truncated record, tampering detected in the Finished exchange — is
    restarted from ClientHello under the policy's backoff/deadline
    budget.  Nonces and keys are fresh on every attempt.

    Raises:
        ChannelSecurityError: when certificate validation fails or the
            transcript was tampered with in transit.
    """
    if retry_policy is not None:
        return retry_policy.execute(
            lambda: _establish_once(client, server, channel),
            describe="secure handshake",
        )
    return _establish_once(client, server, channel)


def _establish_once(client: SecureClient, server: SecureServer,
                    channel: Channel) -> tuple[SecureSession, SecureSession]:
    provider = client.provider
    transcript_client: list[bytes] = []
    transcript_server: list[bytes] = []

    # 1. ClientHello --------------------------------------------------------------
    client_nonce = client.rng.read(_NONCE)
    m1 = _frame(MSG_CLIENT_HELLO, client_nonce)
    transcript_client.append(m1)
    m1_wire = channel.transfer(m1)
    transcript_server.append(m1_wire)
    server_view_client_nonce = _unframe(m1_wire, MSG_CLIENT_HELLO)

    # 2. ServerHello with certificate chain ----------------------------------------
    server_nonce = server.rng.read(_NONCE)
    chain_xml = _chain_to_xml(server.identity.chain)
    m2 = _frame(MSG_SERVER_HELLO,
                server_nonce + struct.pack(">I", len(chain_xml)) + chain_xml)
    transcript_server.append(m2)
    m2_wire = channel.transfer(m2)
    transcript_client.append(m2_wire)
    payload = _unframe(m2_wire, MSG_SERVER_HELLO)
    client_view_server_nonce = payload[:_NONCE]
    (chain_len,) = struct.unpack_from(">I", payload, _NONCE)
    try:
        chain = _chain_from_xml(payload[_NONCE + 4:_NONCE + 4 + chain_len])
    except Exception as exc:
        raise ChannelSecurityError(
            f"server certificate chain unreadable: {exc}"
        ) from exc

    # 3. Chain validation (player refuses untrusted servers) -------------------------
    validation = client.trust_store.validate_chain(chain, now=client.now)
    if not validation.valid:
        raise ChannelSecurityError(
            f"server certificate rejected: {validation.reason}"
        )
    server_certificate = chain[0]

    # 4. Key exchange ---------------------------------------------------------------
    premaster = client.rng.read(_PREMASTER)
    encrypted = rsa.encrypt(server_certificate.public_key, premaster,
                            client.rng)
    m3 = _frame(MSG_KEY_EXCHANGE, encrypted)
    transcript_client.append(m3)
    m3_wire = channel.transfer(m3)
    transcript_server.append(m3_wire)
    try:
        server_premaster = rsa.decrypt(
            server.identity.key, _unframe(m3_wire, MSG_KEY_EXCHANGE),
        )
    except Exception as exc:
        raise ChannelSecurityError(
            f"key exchange failed: {exc}"
        ) from exc

    # 5. Key derivation (both sides, from their own view) ------------------------------
    client_c2s, client_s2c = _kdf(provider, premaster, client_nonce,
                                  client_view_server_nonce)
    server_c2s, server_s2c = _kdf(provider, server_premaster,
                                  server_view_client_nonce, server_nonce)

    client_session = SecureSession(client_c2s, client_s2c, provider,
                                   client.rng,
                                   peer_certificate=server_certificate)
    server_session = SecureSession(server_s2c, server_c2s,
                                   server.provider, server.rng)

    # 6. Finished exchange: MAC the transcript both ways --------------------------------
    client_fin = provider.hmac(
        "sha256", premaster, b"finished:" + b"".join(transcript_client),
    )
    fin_wire = channel.transfer(client_session.seal(client_fin))
    server_expected = server.provider.hmac(
        "sha256", server_premaster,
        b"finished:" + b"".join(transcript_server),
    )
    if not constant_time_equal(server_session.open(fin_wire),
                               server_expected):
        raise ChannelSecurityError(
            "handshake transcript mismatch: tampering detected"
        )
    server_fin = server.provider.hmac(
        "sha256", server_premaster,
        b"server-finished:" + b"".join(transcript_server),
    )
    fin2_wire = channel.transfer(server_session.seal(server_fin))
    client_expected = provider.hmac(
        "sha256", premaster, b"server-finished:" + b"".join(transcript_client),
    )
    if not constant_time_equal(client_session.open(fin2_wire),
                               client_expected):
        raise ChannelSecurityError(
            "handshake transcript mismatch: tampering detected"
        )
    return client_session, server_session


def secure_transfer(client: SecureClient, server: SecureServer,
                    channel: Channel, payload: bytes) -> bytes:
    """Handshake + one protected round trip; returns what the server got."""
    client_session, server_session = establish(client, server, channel)
    wire = channel.transfer(client_session.seal(payload))
    return server_session.open(wire)


# -- async handshake ------------------------------------------------------------


async def _flight(sender, receiver, message: bytes, at: float, clock):
    """One handshake flight over an async channel, with a deadline.

    The async pipe swallows dropped messages instead of raising at the
    sender, so a lockstep handshake needs its own clock: a flight whose
    answer never arrives surfaces as a typed
    :class:`~repro.errors.TimeoutError` (retryable) rather than a hang.
    """
    await sender.send(message)
    arrival = asyncio.ensure_future(receiver.recv())
    try:
        return await clock.wait_until(arrival, at)
    except TimeoutError:
        arrival.cancel()
        raise


async def establish_async(client: SecureClient, server: SecureServer,
                          channel, *, timeout_s: float = 30.0,
                          retry_policy=None):
    """:func:`establish` over an :class:`~repro.network.channel.AsyncChannel`.

    Same five-flight transcript and the same
    :class:`ChannelSecurityError` tamper guarantees; each flight is
    bounded by *timeout_s* on the channel's virtual clock so injected
    drops degrade into typed timeouts.  With a *retry_policy*, torn
    handshakes restart from ClientHello (fresh nonces every attempt)
    under the policy's backoff/deadline budget.
    """
    if retry_policy is not None:
        return await retry_policy.execute_async(
            lambda: _establish_once_async(client, server, channel,
                                          timeout_s),
            describe="secure handshake",
        )
    return await _establish_once_async(client, server, channel,
                                       timeout_s)


async def _establish_once_async(client: SecureClient,
                                server: SecureServer, channel,
                                timeout_s: float):
    provider = client.provider
    clock = channel.clock
    deadline_at = clock.now() + timeout_s
    transcript_client: list[bytes] = []
    transcript_server: list[bytes] = []
    to_server = (channel.client, channel.server)
    to_client = (channel.server, channel.client)

    # 1. ClientHello --------------------------------------------------------------
    client_nonce = client.rng.read(_NONCE)
    m1 = _frame(MSG_CLIENT_HELLO, client_nonce)
    transcript_client.append(m1)
    m1_wire = await _flight(*to_server, m1, deadline_at, clock)
    transcript_server.append(m1_wire)
    server_view_client_nonce = _unframe(m1_wire, MSG_CLIENT_HELLO)

    # 2. ServerHello with certificate chain ----------------------------------------
    server_nonce = server.rng.read(_NONCE)
    chain_xml = _chain_to_xml(server.identity.chain)
    m2 = _frame(MSG_SERVER_HELLO,
                server_nonce + struct.pack(">I", len(chain_xml)) +
                chain_xml)
    transcript_server.append(m2)
    m2_wire = await _flight(*to_client, m2, deadline_at, clock)
    transcript_client.append(m2_wire)
    payload = _unframe(m2_wire, MSG_SERVER_HELLO)
    client_view_server_nonce = payload[:_NONCE]
    (chain_len,) = struct.unpack_from(">I", payload, _NONCE)
    try:
        chain = _chain_from_xml(
            payload[_NONCE + 4:_NONCE + 4 + chain_len])
    except Exception as exc:
        raise ChannelSecurityError(
            f"server certificate chain unreadable: {exc}"
        ) from exc

    # 3. Chain validation (player refuses untrusted servers) -------------------------
    validation = client.trust_store.validate_chain(chain, now=client.now)
    if not validation.valid:
        raise ChannelSecurityError(
            f"server certificate rejected: {validation.reason}"
        )
    server_certificate = chain[0]

    # 4. Key exchange ---------------------------------------------------------------
    premaster = client.rng.read(_PREMASTER)
    encrypted = rsa.encrypt(server_certificate.public_key, premaster,
                            client.rng)
    m3 = _frame(MSG_KEY_EXCHANGE, encrypted)
    transcript_client.append(m3)
    m3_wire = await _flight(*to_server, m3, deadline_at, clock)
    transcript_server.append(m3_wire)
    try:
        server_premaster = rsa.decrypt(
            server.identity.key, _unframe(m3_wire, MSG_KEY_EXCHANGE),
        )
    except Exception as exc:
        raise ChannelSecurityError(
            f"key exchange failed: {exc}"
        ) from exc

    # 5. Key derivation (both sides, from their own view) ------------------------------
    client_c2s, client_s2c = _kdf(provider, premaster, client_nonce,
                                  client_view_server_nonce)
    server_c2s, server_s2c = _kdf(provider, server_premaster,
                                  server_view_client_nonce, server_nonce)

    client_session = SecureSession(client_c2s, client_s2c, provider,
                                   client.rng,
                                   peer_certificate=server_certificate)
    server_session = SecureSession(server_s2c, server_c2s,
                                   server.provider, server.rng)

    # 6. Finished exchange: MAC the transcript both ways --------------------------------
    client_fin = provider.hmac(
        "sha256", premaster, b"finished:" + b"".join(transcript_client),
    )
    fin_wire = await _flight(*to_server, client_session.seal(client_fin),
                             deadline_at, clock)
    server_expected = server.provider.hmac(
        "sha256", server_premaster,
        b"finished:" + b"".join(transcript_server),
    )
    if not constant_time_equal(server_session.open(fin_wire),
                               server_expected):
        raise ChannelSecurityError(
            "handshake transcript mismatch: tampering detected"
        )
    server_fin = server.provider.hmac(
        "sha256", server_premaster,
        b"server-finished:" + b"".join(transcript_server),
    )
    fin2_wire = await _flight(*to_client,
                              server_session.seal(server_fin),
                              deadline_at, clock)
    client_expected = provider.hmac(
        "sha256", premaster,
        b"server-finished:" + b"".join(transcript_client),
    )
    if not constant_time_equal(client_session.open(fin2_wire),
                               client_expected):
        raise ChannelSecurityError(
            "handshake transcript mismatch: tampering detected"
        )
    return client_session, server_session
