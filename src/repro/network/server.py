"""The content server of the end-to-end usage model (Fig 1, Fig 3).

Hosts downloadable application packages and resources ("bonus
materials, clips etc could be downloaded from a content server", §1)
plus callable services (the XKMS trust service).  A
:class:`DownloadClient` fetches resources across a :class:`Channel`,
either in the clear or through the TLS-like secure channel.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError, ResourceLimitExceeded
from repro.certs.authority import SigningIdentity
from repro.certs.store import TrustStore
from repro.network.channel import Channel
from repro.network.secure import SecureClient, SecureServer, establish
from repro.resilience.limits import ResourceGuard, ResourceLimits
from repro.resilience.retry import CircuitBreaker, RetryPolicy

_REQ = 0x10
_RESP_OK = 0x20
_RESP_ERR = 0x21
_CALL = 0x30


def _encode(kind: int, *parts: bytes) -> bytes:
    body = b"".join(struct.pack(">I", len(p)) + p for p in parts)
    return struct.pack(">B", kind) + body


def _decode(message: bytes, *,
            max_bytes: int | None = None) -> tuple[int, list[bytes]]:
    if not message:
        raise NetworkError("empty message")
    if max_bytes is not None and len(message) > max_bytes:
        # Cap enforced before any part is materialized, so an
        # oversized frame costs one length check, not a copy.
        raise ResourceLimitExceeded(
            "max_frame_bytes", limit=max_bytes, actual=len(message),
        )
    kind = message[0]
    parts: list[bytes] = []
    offset = 1
    while offset < len(message):
        if offset + 4 > len(message):
            raise NetworkError("truncated message")
        (length,) = struct.unpack_from(">I", message, offset)
        offset += 4
        if offset + length > len(message):
            # A declared length past the end of the buffer means the
            # message was cut short in transit; yielding the short
            # slice would hand corrupted data to the caller.
            raise NetworkError("truncated message")
        parts.append(message[offset:offset + length])
        offset += length
    return kind, parts


@dataclass
class ContentServer:
    """Hosts resources (bytes) and services (callables).

    Args:
        identity: certificate identity for secure-channel serving.
        limits: resource quotas for incoming frames; a frame larger
            than ``limits.max_frame_bytes`` (or one that fails to
            decode) is answered with a protocol error frame — the
            server never raises at a hostile peer's behest.
    """

    identity: SigningIdentity | None = None
    resources: dict[str, bytes] = field(default_factory=dict)
    services: dict[str, Callable[[str], str]] = field(default_factory=dict)
    request_log: list[str] = field(default_factory=list)
    limits: ResourceLimits = field(default_factory=ResourceLimits.default)

    def publish(self, path: str, data: bytes) -> None:
        self.resources[path] = bytes(data)

    def publish_service(self, name: str,
                        handler: Callable[[str], str]) -> None:
        self.services[name] = handler

    def handle(self, message: bytes) -> bytes:
        """Process one request message (already off the wire).

        Always returns a response frame: malformed, oversized or
        undecodable requests get a ``400``/``413`` error frame instead
        of an exception the transport would surface as a crash.
        """
        try:
            kind, parts = _decode(
                message, max_bytes=self.limits.max_frame_bytes,
            )
        except ResourceLimitExceeded as exc:
            self.request_log.append("OVERSIZED")
            return _encode(_RESP_ERR, f"413 frame too large: {exc}".encode())
        except NetworkError as exc:
            self.request_log.append("MALFORMED")
            return _encode(_RESP_ERR, f"400 malformed frame: {exc}".encode())
        if kind == _REQ and len(parts) == 1:
            try:
                path = parts[0].decode("utf-8")
            except UnicodeDecodeError:
                return _encode(_RESP_ERR, b"400 bad path encoding")
            self.request_log.append(f"GET {path}")
            data = self.resources.get(path)
            if data is None:
                return _encode(_RESP_ERR, f"404 {path}".encode())
            return _encode(_RESP_OK, data)
        if kind == _CALL and len(parts) == 2:
            try:
                name = parts[0].decode("utf-8")
                payload = parts[1].decode("utf-8")
            except UnicodeDecodeError:
                return _encode(_RESP_ERR, b"400 bad request encoding")
            self.request_log.append(f"CALL {name}")
            service = self.services.get(name)
            if service is None:
                return _encode(_RESP_ERR, f"404 service {name}".encode())
            try:
                result = service(payload)
            except Exception as exc:
                return _encode(_RESP_ERR, f"500 {exc}".encode())
            return _encode(_RESP_OK, result.encode("utf-8"))
        return _encode(_RESP_ERR, b"400 bad request")


@dataclass
class DownloadClient:
    """Fetches from a :class:`ContentServer` over a channel.

    With a *trust_store* the client can open a secure (TLS-like)
    session; without one, transfers are cleartext and at the mercy of
    whatever adversary sits on the channel.

    With a *retry_policy*, each fetch/call retries the full round trip
    (including the secure handshake) on transient
    :class:`NetworkError`\\ s; an optional *circuit_breaker* stops
    hammering a dead server across calls.

    Responses are untrusted input: a frame larger than
    ``limits.max_frame_bytes`` is refused with a typed
    :class:`~repro.errors.ResourceLimitExceeded` before any part of
    it is decoded.
    """

    server: ContentServer
    channel: Channel = field(default_factory=Channel)
    trust_store: TrustStore | None = None
    retry_policy: RetryPolicy | None = None
    circuit_breaker: CircuitBreaker | None = None
    limits: ResourceLimits = field(default_factory=ResourceLimits.default)

    def _execute(self, operation, describe: str) -> bytes:
        if self.retry_policy is not None:
            return self.retry_policy.execute(
                operation, breaker=self.circuit_breaker,
                describe=describe,
            )
        if self.circuit_breaker is not None:
            return self.circuit_breaker.call(operation)
        return operation()

    def _roundtrip_plain(self, request: bytes) -> bytes:
        wire_request = self.channel.transfer(request)
        response = self.server.handle(wire_request)
        return self.channel.transfer(response)

    def _roundtrip_secure(self, request: bytes) -> bytes:
        if self.trust_store is None:
            raise NetworkError("secure fetch needs a trust store")
        if self.server.identity is None:
            raise NetworkError("server has no identity for TLS")
        client = SecureClient(self.trust_store)
        secure_server = SecureServer(self.server.identity)
        client_session, server_session = establish(
            client, secure_server, self.channel,
        )
        wire = self.channel.transfer(client_session.seal(request))
        response = self.server.handle(server_session.open(wire))
        wire = self.channel.transfer(server_session.seal(response))
        return client_session.open(wire)

    def _parse_response(self, response: bytes) -> bytes:
        guard = ResourceGuard(self.limits)
        guard.check_frame_size(len(response))
        kind, parts = _decode(response)
        if kind == _RESP_OK and parts:
            return parts[0]
        detail = parts[0].decode("utf-8", "replace") if parts else "?"
        raise NetworkError(f"server error: {detail}")

    def fetch(self, path: str, *, secure: bool = False) -> bytes:
        """Download a resource (retried under the installed policy)."""
        request = _encode(_REQ, path.encode("utf-8"))
        roundtrip = self._roundtrip_secure if secure \
            else self._roundtrip_plain
        return self._execute(
            lambda: self._parse_response(roundtrip(request)),
            describe=f"fetch {path}",
        )

    def call(self, service: str, payload: str, *,
             secure: bool = False) -> str:
        """Invoke a hosted service (e.g. the XKMS responder)."""
        request = _encode(_CALL, service.encode("utf-8"),
                          payload.encode("utf-8"))
        roundtrip = self._roundtrip_secure if secure \
            else self._roundtrip_plain
        return self._execute(
            lambda: self._parse_response(roundtrip(request)),
            describe=f"call {service}",
        ).decode("utf-8")
