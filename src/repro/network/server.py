"""The content server of the end-to-end usage model (Fig 1, Fig 3).

Hosts downloadable application packages and resources ("bonus
materials, clips etc could be downloaded from a content server", §1)
plus callable services (the XKMS trust service).  A
:class:`DownloadClient` fetches resources across a :class:`Channel`,
either in the clear or through the TLS-like secure channel.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    ChannelClosedError, NetworkError, ReproError,
    ResourceLimitExceeded, ServiceOverloadError, TimeoutError,
)
from repro.certs.authority import SigningIdentity
from repro.certs.store import TrustStore
from repro.network.channel import AsyncChannel, Channel
from repro.network.secure import SecureClient, SecureServer, establish
from repro.resilience.limits import ResourceGuard, ResourceLimits
from repro.resilience.retry import CircuitBreaker, RetryPolicy
from repro.resilience.service import Deadline, OverloadShield
from repro.resilience.vclock import NO_DEADLINE

_REQ = 0x10
_RESP_OK = 0x20
_RESP_ERR = 0x21
_CALL = 0x30

# Multiplexed async frames: many in-flight request streams share one
# connection, matched by stream id.  The header also carries the
# request's absolute deadline on the shared injected clock — deadline
# propagation is a number in the frame, enforced at every await point
# on the far side.
MUX_REQ = 0x50
MUX_RESP = 0x51
MUX_FAULT = 0x52
MUX_ERR = 0x53

_MUX_KINDS = frozenset({MUX_REQ, MUX_RESP, MUX_FAULT, MUX_ERR})


def _encode(kind: int, *parts: bytes) -> bytes:
    body = b"".join(struct.pack(">I", len(p)) + p for p in parts)
    return struct.pack(">B", kind) + body


def _decode(message: bytes, *,
            max_bytes: int | None = None) -> tuple[int, list[bytes]]:
    if not message:
        raise NetworkError("empty message")
    if max_bytes is not None and len(message) > max_bytes:
        # Cap enforced before any part is materialized, so an
        # oversized frame costs one length check, not a copy.
        raise ResourceLimitExceeded(
            "max_frame_bytes", limit=max_bytes, actual=len(message),
        )
    kind = message[0]
    parts: list[bytes] = []
    offset = 1
    while offset < len(message):
        if offset + 4 > len(message):
            raise NetworkError("truncated message")
        (length,) = struct.unpack_from(">I", message, offset)
        offset += 4
        if offset + length > len(message):
            # A declared length past the end of the buffer means the
            # message was cut short in transit; yielding the short
            # slice would hand corrupted data to the caller.
            raise NetworkError("truncated message")
        parts.append(message[offset:offset + length])
        offset += length
    return kind, parts


@dataclass
class ContentServer:
    """Hosts resources (bytes) and services (callables).

    Args:
        identity: certificate identity for secure-channel serving.
        limits: resource quotas for incoming frames; a frame larger
            than ``limits.max_frame_bytes`` (or one that fails to
            decode) is answered with a protocol error frame — the
            server never raises at a hostile peer's behest.
    """

    identity: SigningIdentity | None = None
    resources: dict[str, bytes] = field(default_factory=dict)
    services: dict[str, Callable[[str], str]] = field(default_factory=dict)
    request_log: list[str] = field(default_factory=list)
    limits: ResourceLimits = field(default_factory=ResourceLimits.default)

    def publish(self, path: str, data: bytes) -> None:
        self.resources[path] = bytes(data)

    def publish_service(self, name: str,
                        handler: Callable[[str], str]) -> None:
        self.services[name] = handler

    def handle(self, message: bytes) -> bytes:
        """Process one request message (already off the wire).

        Always returns a response frame: malformed, oversized or
        undecodable requests get a ``400``/``413`` error frame instead
        of an exception the transport would surface as a crash.
        """
        try:
            kind, parts = _decode(
                message, max_bytes=self.limits.max_frame_bytes,
            )
        except ResourceLimitExceeded as exc:
            self.request_log.append("OVERSIZED")
            return _encode(_RESP_ERR, f"413 frame too large: {exc}".encode())
        except NetworkError as exc:
            self.request_log.append("MALFORMED")
            return _encode(_RESP_ERR, f"400 malformed frame: {exc}".encode())
        if kind == _REQ and len(parts) == 1:
            try:
                path = parts[0].decode("utf-8")
            except UnicodeDecodeError:
                return _encode(_RESP_ERR, b"400 bad path encoding")
            self.request_log.append(f"GET {path}")
            data = self.resources.get(path)
            if data is None:
                return _encode(_RESP_ERR, f"404 {path}".encode())
            return _encode(_RESP_OK, data)
        if kind == _CALL and len(parts) == 2:
            try:
                name = parts[0].decode("utf-8")
                payload = parts[1].decode("utf-8")
            except UnicodeDecodeError:
                return _encode(_RESP_ERR, b"400 bad request encoding")
            self.request_log.append(f"CALL {name}")
            service = self.services.get(name)
            if service is None:
                return _encode(_RESP_ERR, f"404 service {name}".encode())
            try:
                result = service(payload)
            except Exception as exc:
                return _encode(_RESP_ERR, f"500 {exc}".encode())
            return _encode(_RESP_OK, result.encode("utf-8"))
        return _encode(_RESP_ERR, b"400 bad request")


@dataclass
class DownloadClient:
    """Fetches from a :class:`ContentServer` over a channel.

    With a *trust_store* the client can open a secure (TLS-like)
    session; without one, transfers are cleartext and at the mercy of
    whatever adversary sits on the channel.

    With a *retry_policy*, each fetch/call retries the full round trip
    (including the secure handshake) on transient
    :class:`NetworkError`\\ s; an optional *circuit_breaker* stops
    hammering a dead server across calls.

    Responses are untrusted input: a frame larger than
    ``limits.max_frame_bytes`` is refused with a typed
    :class:`~repro.errors.ResourceLimitExceeded` before any part of
    it is decoded.
    """

    server: ContentServer
    channel: Channel = field(default_factory=Channel)
    trust_store: TrustStore | None = None
    retry_policy: RetryPolicy | None = None
    circuit_breaker: CircuitBreaker | None = None
    limits: ResourceLimits = field(default_factory=ResourceLimits.default)

    def _execute(self, operation, describe: str) -> bytes:
        if self.retry_policy is not None:
            return self.retry_policy.execute(
                operation, breaker=self.circuit_breaker,
                describe=describe,
            )
        if self.circuit_breaker is not None:
            return self.circuit_breaker.call(operation)
        return operation()

    def _roundtrip_plain(self, request: bytes) -> bytes:
        wire_request = self.channel.transfer(request)
        response = self.server.handle(wire_request)
        return self.channel.transfer(response)

    def _roundtrip_secure(self, request: bytes) -> bytes:
        if self.trust_store is None:
            raise NetworkError("secure fetch needs a trust store")
        if self.server.identity is None:
            raise NetworkError("server has no identity for TLS")
        client = SecureClient(self.trust_store)
        secure_server = SecureServer(self.server.identity)
        client_session, server_session = establish(
            client, secure_server, self.channel,
        )
        wire = self.channel.transfer(client_session.seal(request))
        response = self.server.handle(server_session.open(wire))
        wire = self.channel.transfer(server_session.seal(response))
        return client_session.open(wire)

    def _parse_response(self, response: bytes) -> bytes:
        guard = ResourceGuard(self.limits)
        guard.check_frame_size(len(response))
        kind, parts = _decode(response)
        if kind == _RESP_OK and parts:
            return parts[0]
        detail = parts[0].decode("utf-8", "replace") if parts else "?"
        raise NetworkError(f"server error: {detail}")

    def fetch(self, path: str, *, secure: bool = False) -> bytes:
        """Download a resource (retried under the installed policy)."""
        request = _encode(_REQ, path.encode("utf-8"))
        roundtrip = self._roundtrip_secure if secure \
            else self._roundtrip_plain
        return self._execute(
            lambda: self._parse_response(roundtrip(request)),
            describe=f"fetch {path}",
        )

    def call(self, service: str, payload: str, *,
             secure: bool = False) -> str:
        """Invoke a hosted service (e.g. the XKMS responder)."""
        request = _encode(_CALL, service.encode("utf-8"),
                          payload.encode("utf-8"))
        roundtrip = self._roundtrip_secure if secure \
            else self._roundtrip_plain
        return self._execute(
            lambda: self._parse_response(roundtrip(request)),
            describe=f"call {service}",
        ).decode("utf-8")


# -- multiplexed async transport ------------------------------------------------


@dataclass(frozen=True)
class MuxFrame:
    """One multiplexed message: routing header + opaque payload."""

    kind: int
    stream_id: int
    deadline_at: float
    tenant: str
    payload: bytes

    def encode(self) -> bytes:
        header = struct.pack(">Id", self.stream_id, self.deadline_at)
        return _encode(self.kind, header,
                       self.tenant.encode("utf-8"), self.payload)


def decode_mux(message: bytes, *,
               max_bytes: int | None = None) -> MuxFrame:
    """Parse one mux frame (size-capped *before* any part decodes).

    Raises:
        NetworkError: malformed, truncated or non-mux frames.
        ResourceLimitExceeded: frame larger than *max_bytes*.
    """
    kind, parts = _decode(message, max_bytes=max_bytes)
    if kind not in _MUX_KINDS:
        raise NetworkError(f"not a mux frame (kind 0x{kind:02x})")
    if len(parts) != 3 or len(parts[0]) != 12:
        raise NetworkError("malformed mux frame")
    stream_id, deadline_at = struct.unpack(">Id", parts[0])
    try:
        tenant = parts[1].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise NetworkError("bad tenant encoding") from exc
    return MuxFrame(kind, stream_id, deadline_at, tenant, parts[2])


@dataclass(frozen=True)
class RequestContext:
    """What a handler knows about the request it is serving."""

    tenant: str
    deadline: Deadline
    stream_id: int


@dataclass
class MuxServerStats:
    requests: int = 0
    responses: int = 0
    faults_answered: int = 0
    sheds_answered: int = 0
    protocol_errors: int = 0
    internal_errors: int = 0
    conn_lost_answers: int = 0


class AsyncServiceServer:
    """Serves multiplexed async requests behind an overload shield.

    *handler* is ``async (payload: bytes, RequestContext) -> bytes``.
    Every request — well-formed or hostile, served or shed — gets an
    answer frame: results as ``MUX_RESP``, typed failures as
    ``MUX_FAULT`` through *fault_encoder* (the structured-busy path),
    garbage as ``MUX_ERR``.  The server never raises at a hostile
    peer's behest and never silently drops an admitted request.
    """

    def __init__(self, handler, *, clock,
                 shield: OverloadShield | None = None,
                 fault_encoder: Callable | None = None,
                 limits: ResourceLimits | None = None):
        self.handler = handler
        self.clock = clock
        self.shield = shield
        self.fault_encoder = fault_encoder or self._default_fault
        self.limits = limits or ResourceLimits.default()
        self.stats = MuxServerStats()
        self._tasks: set = set()

    @staticmethod
    def _default_fault(error: BaseException,
                       frame: MuxFrame) -> bytes:
        return f"busy {type(error).__name__}".encode("utf-8")

    async def serve(self, channel: AsyncChannel) -> None:
        """Serve one connection until its channel closes."""
        endpoint = channel.server
        try:
            while True:
                message = await endpoint.recv()
                frame = self._accept(message)
                if frame is None:
                    await self._answer_protocol_error(endpoint)
                    continue
                self.stats.requests += 1
                task = asyncio.ensure_future(
                    self._dispatch(endpoint, frame))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
                self.clock.bump()
        except ChannelClosedError:
            return

    def _accept(self, message: bytes) -> MuxFrame | None:
        try:
            frame = decode_mux(
                message, max_bytes=self.limits.max_frame_bytes)
        except (NetworkError, ResourceLimitExceeded):
            self.stats.protocol_errors += 1
            return None
        if frame.kind != MUX_REQ:
            self.stats.protocol_errors += 1
            return None
        return frame

    async def aclose(self) -> None:
        """Cancel and await every in-flight dispatch task.

        ``serve`` parks each admitted request's task on ``_tasks``;
        shutdown must not return with work still in flight, or
        exceptions from the strays vanish after the server is gone.
        """
        tasks = [task for task in self._tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._tasks.clear()

    async def _answer_protocol_error(self, endpoint) -> None:
        reply = MuxFrame(MUX_ERR, 0, NO_DEADLINE, "",
                         b"400 malformed frame")
        try:
            await endpoint.send(reply.encode())
        except ChannelClosedError:
            self.stats.conn_lost_answers += 1

    async def _dispatch(self, endpoint, frame: MuxFrame) -> None:
        deadline = Deadline(at=frame.deadline_at, clock=self.clock)
        context = RequestContext(frame.tenant, deadline,
                                 frame.stream_id)
        shed = False
        try:
            if self.shield is not None:
                payload = await self.shield.run(
                    frame.tenant, deadline,
                    lambda: self.handler(frame.payload, context))
            else:
                payload = await self.handler(frame.payload, context)
            kind = MUX_RESP
        except asyncio.CancelledError:
            # Cancellation (server shutdown) must propagate — turning
            # it into a MUX_FAULT answer would leave the canceller
            # waiting on a task that "handled" its own cancellation.
            raise
        except (ServiceOverloadError, TimeoutError) as exc:
            payload = self.fault_encoder(exc, frame)
            kind = MUX_FAULT
            shed = True
        except ReproError as exc:
            payload = self.fault_encoder(exc, frame)
            kind = MUX_FAULT
        except Exception as exc:  # noqa: BLE001 - answered, counted
            # A handler bug must not kill the connection; it becomes a
            # structured Receiver-style fault and a counter the tests
            # watch (the chaos invariant is "typed or structured").
            payload = self.fault_encoder(exc, frame)
            kind = MUX_FAULT
            self.stats.internal_errors += 1
        reply = MuxFrame(kind, frame.stream_id, frame.deadline_at,
                         frame.tenant, payload)
        try:
            await endpoint.send(reply.encode())
        except ChannelClosedError:
            self.stats.conn_lost_answers += 1
            return
        if kind == MUX_RESP:
            self.stats.responses += 1
        else:
            self.stats.faults_answered += 1
            if shed:
                self.stats.sheds_answered += 1


@dataclass
class MuxClientStats:
    calls: int = 0
    responses: int = 0
    faults: int = 0
    timeouts: int = 0
    stale_responses: int = 0
    garbage_frames: int = 0


class AsyncServiceClient:
    """The client half of the multiplexed transport.

    Any number of concurrent :meth:`call`\\ s share the connection;
    responses are matched back by stream id.  A call's deadline is both
    propagated in the frame header *and* enforced locally, so a dropped
    response (or a server that died mid-request) surfaces as a typed
    :class:`~repro.errors.TimeoutError`, never a hang.
    """

    def __init__(self, channel: AsyncChannel, *, clock=None,
                 tenant: str = "default",
                 limits: ResourceLimits | None = None):
        self.channel = channel
        self.clock = clock if clock is not None else channel.clock
        self.tenant = tenant
        self.limits = limits or ResourceLimits.default()
        self.stats = MuxClientStats()
        self._pending: dict = {}
        self._next_stream = 0
        self._reader: asyncio.Task | None = None

    def _ensure_reader(self) -> None:
        if self._reader is None or self._reader.done():
            self._reader = asyncio.ensure_future(self._read_loop())
            self.clock.bump()

    async def call(self, payload: bytes, *,
                   tenant: str | None = None,
                   deadline: Deadline | None = None) -> MuxFrame:
        """One request/response exchange; returns the answer frame."""
        self._ensure_reader()
        if deadline is None:
            deadline = Deadline.none(self.clock)
        self._next_stream += 1
        stream_id = self._next_stream
        future = asyncio.get_running_loop().create_future()
        self._pending[stream_id] = future
        frame = MuxFrame(MUX_REQ, stream_id, deadline.at,
                         tenant if tenant is not None else self.tenant,
                         payload)
        self.stats.calls += 1
        try:
            await self.channel.client.send(frame.encode())
            reply = await self.clock.wait_until(future, deadline.at)
        except TimeoutError:
            self.stats.timeouts += 1
            raise
        finally:
            self._pending.pop(stream_id, None)
        if reply.kind == MUX_RESP:
            self.stats.responses += 1
        else:
            self.stats.faults += 1
        return reply

    async def _read_loop(self) -> None:
        endpoint = self.channel.client
        try:
            while True:
                message = await endpoint.recv()
                try:
                    reply = decode_mux(
                        message,
                        max_bytes=self.limits.max_frame_bytes)
                except (NetworkError, ResourceLimitExceeded):
                    # An unparseable answer matches no stream; the
                    # stream it was meant for times out instead.
                    self.stats.garbage_frames += 1
                    continue
                future = self._pending.pop(reply.stream_id, None)
                if future is None or future.done():
                    self.stats.stale_responses += 1
                    continue
                future.set_result(reply)
                self.clock.bump()
        except ChannelClosedError:
            pending, self._pending = self._pending, {}
            for future in pending.values():
                if not future.done():
                    future.set_exception(ChannelClosedError(
                        "connection closed with the call in flight"))
            self.clock.bump()

    async def aclose(self) -> None:
        if self._reader is not None and not self._reader.done():
            self._reader.cancel()
            try:
                await self._reader
            except (asyncio.CancelledError, ChannelClosedError):
                pass
        self._reader = None
