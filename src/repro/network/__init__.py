"""Simulated network: channels, adversaries, content server, TLS-like SCP."""

from repro.network.broadcast import (
    Carousel, CarouselObject, CarouselReceiver, Section,
    broadcast_until_received,
)
from repro.network.channel import (
    ActiveTamperer, Adversary, AsyncChannel, AsyncEndpoint, Channel,
    Dropper, PassiveWiretap, Replacer,
)
from repro.network.secure import (
    SecureClient, SecureServer, SecureSession, establish,
    establish_async, secure_transfer,
)
from repro.network.server import (
    MUX_ERR, MUX_FAULT, MUX_REQ, MUX_RESP,
    AsyncServiceClient, AsyncServiceServer, ContentServer,
    DownloadClient, MuxFrame, RequestContext, decode_mux,
)

__all__ = [
    "Channel", "Adversary", "PassiveWiretap", "ActiveTamperer", "Replacer",
    "Dropper", "SecureClient", "SecureServer", "SecureSession",
    "establish", "secure_transfer", "ContentServer", "DownloadClient",
    "AsyncChannel", "AsyncEndpoint", "AsyncServiceServer",
    "AsyncServiceClient", "MuxFrame", "RequestContext", "decode_mux",
    "MUX_REQ", "MUX_RESP", "MUX_FAULT", "MUX_ERR", "establish_async",
    "Carousel", "CarouselReceiver", "CarouselObject", "Section",
    "broadcast_until_received",
]
