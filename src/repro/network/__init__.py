"""Simulated network: channels, adversaries, content server, TLS-like SCP."""

from repro.network.broadcast import (
    Carousel, CarouselObject, CarouselReceiver, Section,
    broadcast_until_received,
)
from repro.network.channel import (
    ActiveTamperer, Adversary, Channel, Dropper, PassiveWiretap, Replacer,
)
from repro.network.secure import (
    SecureClient, SecureServer, SecureSession, establish, secure_transfer,
)
from repro.network.server import ContentServer, DownloadClient

__all__ = [
    "Channel", "Adversary", "PassiveWiretap", "ActiveTamperer", "Replacer",
    "Dropper", "SecureClient", "SecureServer", "SecureSession",
    "establish", "secure_transfer", "ContentServer", "DownloadClient",
    "Carousel", "CarouselReceiver", "CarouselObject", "Section",
    "broadcast_until_received",
]
