"""Broadcast delivery: a DSM-CC-style object carousel.

Fig 1's other delivery path: "The movie companies distribute the HD
content via optical discs as medium **or via HD broadcast** and ...
additional application extensions such as bonus materials, clips etc
could be downloaded from a content server **or a set top box in a home
network**."  MHP (the paper's reference [8]) delivers applications over
DVB object carousels; this module models that transport:

* a :class:`Carousel` cyclically transmits fixed-size sections of its
  objects (no return channel — the receiver cannot ask for a resend,
  it just waits for the next cycle);
* a :class:`CarouselReceiver` tunes in mid-cycle, assembles sections,
  discards corrupted ones (CRC) and completes on a later cycle.

Security composes unchanged: what rides the carousel is the same
signed/encrypted application package, verified by the same player
pipeline on assembly — the paper's format/transport independence
argument (§8, §9).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import NetworkError

SECTION_PAYLOAD = 1024   # bytes of object data per section
_HEADER = struct.Struct(">HIHH")   # object-id, version, index, total


@dataclass(frozen=True)
class Section:
    """One broadcast section of a carousel object."""

    object_id: int
    version: int
    index: int
    total: int
    payload: bytes
    crc: int

    def to_bytes(self) -> bytes:
        return _HEADER.pack(self.object_id, self.version, self.index,
                            self.total) + \
            struct.pack(">I", self.crc) + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Section":
        if len(data) < _HEADER.size + 4:
            raise NetworkError("truncated carousel section")
        object_id, version, index, total = _HEADER.unpack_from(data)
        (crc,) = struct.unpack_from(">I", data, _HEADER.size)
        payload = data[_HEADER.size + 4:]
        return cls(object_id, version, index, total, payload, crc)

    @property
    def intact(self) -> bool:
        return zlib.crc32(self.payload) == self.crc


@dataclass
class CarouselObject:
    """A named object broadcast on the carousel."""

    object_id: int
    name: str
    data: bytes
    version: int = 1

    def sections(self) -> list[Section]:
        chunks = [
            self.data[i:i + SECTION_PAYLOAD]
            for i in range(0, max(1, len(self.data)), SECTION_PAYLOAD)
        ] or [b""]
        total = len(chunks)
        return [
            Section(self.object_id, self.version, index, total, chunk,
                    zlib.crc32(chunk))
            for index, chunk in enumerate(chunks)
        ]


class Carousel:
    """A cyclic broadcaster of objects.

    :meth:`transmit` yields the wire bytes of one full cycle; the
    head-end just repeats cycles forever.  Adversaries/noise are modelled
    by the channel the caller routes sections through.
    """

    def __init__(self):
        self._objects: dict[int, CarouselObject] = {}
        self._directory_dirty = True
        self._next_id = 1

    def publish(self, name: str, data: bytes) -> CarouselObject:
        """Add (or replace, bumping the version) a named object."""
        for existing in self._objects.values():
            if existing.name == name:
                updated = CarouselObject(existing.object_id, name,
                                         bytes(data),
                                         existing.version + 1)
                self._objects[existing.object_id] = updated
                return updated
        obj = CarouselObject(self._next_id, name, bytes(data))
        self._objects[self._next_id] = obj
        self._next_id += 1
        return obj

    def directory(self) -> dict[str, int]:
        """Service directory: object name → id (broadcast as object 0)."""
        return {obj.name: obj.object_id
                for obj in self._objects.values()}

    def one_cycle(self) -> list[bytes]:
        """The wire sections of one carousel cycle (directory first)."""
        directory_blob = "\n".join(
            f"{name}={object_id}"
            for name, object_id in sorted(self.directory().items())
        ).encode("utf-8")
        cycle: list[bytes] = [
            section.to_bytes()
            for section in CarouselObject(0, "<directory>",
                                          directory_blob).sections()
        ]
        for obj in self._objects.values():
            cycle.extend(s.to_bytes() for s in obj.sections())
        return cycle


class CarouselReceiver:
    """Assembles carousel objects from (possibly lossy) sections.

    Feed wire sections via :meth:`receive`; completed objects appear in
    :meth:`completed`.  Corrupted sections (CRC mismatch) are dropped —
    the missing pieces arrive on a later cycle.
    """

    def __init__(self):
        self._partial: dict[tuple[int, int], dict[int, bytes]] = {}
        self._totals: dict[tuple[int, int], int] = {}
        self._complete: dict[int, tuple[int, bytes]] = {}
        self.sections_received = 0
        self.sections_dropped = 0

    def receive(self, wire: bytes) -> None:
        """Process one wire section (silently dropping corrupt ones)."""
        self.sections_received += 1
        try:
            section = Section.from_bytes(wire)
        except NetworkError:
            self.sections_dropped += 1
            return
        if not section.intact:
            self.sections_dropped += 1
            return
        key = (section.object_id, section.version)
        existing_version = self._complete.get(section.object_id,
                                              (0, b""))[0]
        if section.version <= existing_version:
            return  # already have this (or a newer) version
        store = self._partial.setdefault(key, {})
        store[section.index] = section.payload
        self._totals[key] = section.total
        if len(store) == section.total:
            data = b"".join(store[i] for i in range(section.total))
            self._complete[section.object_id] = (section.version, data)
            del self._partial[key]

    def completed(self, object_id: int) -> bytes | None:
        entry = self._complete.get(object_id)
        return entry[1] if entry else None

    def directory(self) -> dict[str, int]:
        """The assembled service directory (object 0), if received."""
        blob = self.completed(0)
        if blob is None:
            return {}
        table: dict[str, int] = {}
        for line in blob.decode("utf-8").splitlines():
            name, _, object_id = line.partition("=")
            if object_id:
                table[name] = int(object_id)
        return table

    def fetch(self, name: str) -> bytes | None:
        """Look up a completed object by service-directory name."""
        object_id = self.directory().get(name)
        if object_id is None:
            return None
        return self.completed(object_id)


def broadcast_until_received(carousel: Carousel,
                             receiver: CarouselReceiver, name: str, *,
                             channel=None, max_cycles: int = 10,
                             start_offset: int = 0) -> bytes:
    """Run cycles until *name* assembles (tuning in mid-cycle allowed).

    *channel* (a :class:`repro.network.Channel`) may corrupt or drop
    sections; corrupted ones are recovered on later cycles.

    Raises:
        NetworkError: if the object does not assemble in *max_cycles*.
    """
    first = True
    for _cycle in range(max_cycles):
        sections = carousel.one_cycle()
        if first:
            sections = sections[start_offset % max(1, len(sections)):]
            first = False
        for wire in sections:
            if channel is not None:
                try:
                    wire = channel.transfer(wire)
                except NetworkError:
                    continue  # dropped in the air
            receiver.receive(wire)
        data = receiver.fetch(name)
        if data is not None:
            return data
    raise NetworkError(
        f"object {name!r} did not assemble in {max_cycles} cycles"
    )
