"""Simulated transport channels with pluggable adversaries.

The threat model worries about "wiretapping (man-in-the-van attack)"
(§3.1) on the path between content server and player.  A
:class:`Channel` moves byte messages between two parties; adversaries
attach to it to observe (:class:`PassiveWiretap`) or modify
(:class:`ActiveTamperer`) traffic, letting tests and benches
demonstrate exactly what each security mechanism does and does not
protect against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ChannelClosedError, NetworkError


class Adversary:
    """Base adversary: sees every message, may replace it."""

    def process(self, message: bytes) -> bytes:
        return message


@dataclass
class PassiveWiretap(Adversary):
    """Records traffic without modifying it (confidentiality threat)."""

    captured: list[bytes] = field(default_factory=list)

    def process(self, message: bytes) -> bytes:
        self.captured.append(message)
        return message

    def saw_plaintext(self, needle: bytes) -> bool:
        """Did any captured message contain *needle* in the clear?"""
        return any(needle in message for message in self.captured)


@dataclass
class ActiveTamperer(Adversary):
    """Flips a byte in messages matching a predicate (integrity threat)."""

    predicate: Callable[[bytes], bool] = lambda message: True
    offset: int = 0
    tampered_count: int = 0
    enabled: bool = True

    def process(self, message: bytes) -> bytes:
        if not self.enabled or not self.predicate(message):
            return message
        if not message:
            return message
        index = self.offset % len(message)
        mutated = bytearray(message)
        mutated[index] ^= 0x01
        self.tampered_count += 1
        return bytes(mutated)


@dataclass
class Replacer(Adversary):
    """Substitutes entire matching messages (spoofing threat)."""

    replacement: bytes = b""
    predicate: Callable[[bytes], bool] = lambda message: True

    def process(self, message: bytes) -> bytes:
        if self.predicate(message):
            return self.replacement
        return message


@dataclass
class Dropper(Adversary):
    """Drops matching messages (denial-of-service threat)."""

    predicate: Callable[[bytes], bool] = lambda message: True

    def process(self, message: bytes) -> bytes:
        if self.predicate(message):
            raise NetworkError("message dropped in transit")
        return message


class Channel:
    """A bidirectional message pipe with an adversary stack.

    Every transfer (either direction) passes through all attached
    adversaries in order.  Statistics are kept for the benches.
    """

    def __init__(self, adversaries: list[Adversary] | None = None):
        self.adversaries: list[Adversary] = list(adversaries or [])
        self.messages_transferred = 0
        self.bytes_transferred = 0
        self.closed = False

    def attach(self, adversary: Adversary) -> Adversary:
        self.adversaries.append(adversary)
        return adversary

    def close(self) -> None:
        """Tear the link down; subsequent transfers fail permanently."""
        self.closed = True

    def reopen(self) -> None:
        self.closed = False

    def transfer(self, message: bytes) -> bytes:
        """Carry one message across the channel."""
        if self.closed:
            raise ChannelClosedError("channel is closed")
        if not isinstance(message, (bytes, bytearray)):
            raise NetworkError("channel carries bytes only")
        self.messages_transferred += 1
        self.bytes_transferred += len(message)
        out = bytes(message)
        for adversary in self.adversaries:
            out = adversary.process(out)
        return out
