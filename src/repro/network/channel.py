"""Simulated transport channels with pluggable adversaries.

The threat model worries about "wiretapping (man-in-the-van attack)"
(§3.1) on the path between content server and player.  A
:class:`Channel` moves byte messages between two parties; adversaries
attach to it to observe (:class:`PassiveWiretap`) or modify
(:class:`ActiveTamperer`) traffic, letting tests and benches
demonstrate exactly what each security mechanism does and does not
protect against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ChannelClosedError, NetworkError


class Adversary:
    """Base adversary: sees every message, may replace it."""

    def process(self, message: bytes) -> bytes:
        return message

    async def aprocess(self, message: bytes) -> bytes:
        """Async-aware injection point for :class:`AsyncChannel`.

        The default defers to :meth:`process`, so every synchronous
        adversary (wiretaps, tamperers, PR 1 fault injectors) composes
        with the async transport unchanged; injectors that *spend time*
        override this to await the virtual clock instead of jumping it.
        """
        return self.process(message)


@dataclass
class PassiveWiretap(Adversary):
    """Records traffic without modifying it (confidentiality threat)."""

    captured: list[bytes] = field(default_factory=list)

    def process(self, message: bytes) -> bytes:
        self.captured.append(message)
        return message

    def saw_plaintext(self, needle: bytes) -> bool:
        """Did any captured message contain *needle* in the clear?"""
        return any(needle in message for message in self.captured)


@dataclass
class ActiveTamperer(Adversary):
    """Flips a byte in messages matching a predicate (integrity threat)."""

    predicate: Callable[[bytes], bool] = lambda message: True
    offset: int = 0
    tampered_count: int = 0
    enabled: bool = True

    def process(self, message: bytes) -> bytes:
        if not self.enabled or not self.predicate(message):
            return message
        if not message:
            return message
        index = self.offset % len(message)
        mutated = bytearray(message)
        mutated[index] ^= 0x01
        self.tampered_count += 1
        return bytes(mutated)


@dataclass
class Replacer(Adversary):
    """Substitutes entire matching messages (spoofing threat)."""

    replacement: bytes = b""
    predicate: Callable[[bytes], bool] = lambda message: True

    def process(self, message: bytes) -> bytes:
        if self.predicate(message):
            return self.replacement
        return message


@dataclass
class Dropper(Adversary):
    """Drops matching messages (denial-of-service threat)."""

    predicate: Callable[[bytes], bool] = lambda message: True

    def process(self, message: bytes) -> bytes:
        if self.predicate(message):
            raise NetworkError("message dropped in transit")
        return message


class Channel:
    """A bidirectional message pipe with an adversary stack.

    Every transfer (either direction) passes through all attached
    adversaries in order.  Statistics are kept for the benches.
    """

    def __init__(self, adversaries: list[Adversary] | None = None):
        self.adversaries: list[Adversary] = list(adversaries or [])
        self.messages_transferred = 0
        self.bytes_transferred = 0
        self.closed = False

    def attach(self, adversary: Adversary) -> Adversary:
        self.adversaries.append(adversary)
        return adversary

    def close(self) -> None:
        """Tear the link down; subsequent transfers fail permanently."""
        self.closed = True

    def reopen(self) -> None:
        self.closed = False

    def transfer(self, message: bytes) -> bytes:
        """Carry one message across the channel."""
        if self.closed:
            raise ChannelClosedError("channel is closed")
        if not isinstance(message, (bytes, bytearray)):
            raise NetworkError("channel carries bytes only")
        self.messages_transferred += 1
        self.bytes_transferred += len(message)
        out = bytes(message)
        for adversary in self.adversaries:
            out = adversary.process(out)
        return out


class AsyncEndpoint:
    """One side of an :class:`AsyncChannel` (send/recv half-pair)."""

    def __init__(self, channel: "AsyncChannel", outbound, inbound):
        self._channel = channel
        self._outbound = outbound
        self._inbound = inbound

    async def send(self, message: bytes) -> None:
        await self._channel._deliver(message, self._outbound)

    async def recv(self) -> bytes:
        """Next inbound message; :class:`ChannelClosedError` when the
        channel is torn down."""
        return await self._inbound.get()


class AsyncChannel:
    """A full-duplex message pipe for the asyncio transport.

    Unlike the synchronous :class:`Channel` (one blocking transfer at
    a time), both directions carry any number of in-flight messages,
    which is what lets one connection multiplex many request streams.
    The same adversary stack applies to every message in either
    direction via :meth:`Adversary.aprocess`.

    Fault semantics differ from the sync pipe in one deliberate way: a
    dropped message (an adversary raising :class:`NetworkError`)
    vanishes from the wire instead of raising at the sender — real
    networks do not tell the sender about the drop.  Deadline
    propagation upstairs converts the silence into a typed timeout.
    """

    def __init__(self, adversaries: list[Adversary] | None = None, *,
                 clock=None):
        from repro.resilience.vclock import VirtualClock, VQueue
        self.clock = clock if clock is not None else VirtualClock()
        self.adversaries: list[Adversary] = list(adversaries or [])
        self.messages_transferred = 0
        self.bytes_transferred = 0
        self.dropped = 0
        self.closed = False
        self._c2s = VQueue(self.clock)
        self._s2c = VQueue(self.clock)
        self.client = AsyncEndpoint(self, self._c2s, self._s2c)
        self.server = AsyncEndpoint(self, self._s2c, self._c2s)

    def attach(self, adversary: Adversary) -> Adversary:
        self.adversaries.append(adversary)
        return adversary

    def close(self) -> None:
        """Tear the link down; receivers fail, senders fail."""
        self.closed = True
        self._c2s.close()
        self._s2c.close()

    async def _deliver(self, message: bytes, queue) -> None:
        if self.closed:
            raise ChannelClosedError("channel is closed")
        if not isinstance(message, (bytes, bytearray)):
            raise NetworkError("channel carries bytes only")
        self.messages_transferred += 1
        self.bytes_transferred += len(message)
        out = bytes(message)
        try:
            for adversary in self.adversaries:
                out = await adversary.aprocess(out)
        except ChannelClosedError:
            raise
        except NetworkError:
            # Lost in transit: the receiver never sees it and the
            # sender is none the wiser (deadlines notice upstairs).
            self.dropped += 1
            return
        queue.put_nowait(out)
