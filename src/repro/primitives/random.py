"""Random sources for key generation, IVs and nonces.

Two sources are provided:

* :class:`SystemRandomSource` — wraps :func:`os.urandom`; the default
  for real key material.
* :class:`DeterministicRandomSource` — a SHA-256-based
  counter DRBG seeded from a caller-supplied value.  Used by the test
  suite and the benchmark harness so that every run reproduces the same
  keys, IVs and synthetic content.

The DRBG follows the classic hash-counter construction: block *i* of
output is ``SHA256(seed || counter_i)``.  It is *not* offered as a
cryptographically vetted DRBG — it exists so experiments are replayable.
"""

from __future__ import annotations

import os

from repro.primitives.encoding import int_to_bytes
from repro.primitives.sha import SHA256


class RandomSource:
    """Abstract source of random bytes."""

    def read(self, n: int) -> bytes:
        """Return *n* random bytes."""
        raise NotImplementedError

    def randint_below(self, upper: int) -> int:
        """Return a uniformly distributed integer in ``[0, upper)``.

        Uses rejection sampling over the minimal byte width so the
        distribution is exactly uniform.
        """
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        nbytes = (upper.bit_length() + 7) // 8
        limit = (1 << (8 * nbytes)) - (1 << (8 * nbytes)) % upper
        while True:
            candidate = int.from_bytes(self.read(nbytes), "big")
            if candidate < limit:
                return candidate % upper

    def randint_bits(self, bits: int) -> int:
        """Return an integer with exactly *bits* bits (top bit set)."""
        if bits <= 0:
            raise ValueError("bit count must be positive")
        nbytes = (bits + 7) // 8
        raw = bytearray(self.read(nbytes))
        excess = 8 * nbytes - bits
        raw[0] &= 0xFF >> excess
        raw[0] |= 1 << (7 - excess)
        return int.from_bytes(bytes(raw), "big")


class SystemRandomSource(RandomSource):
    """Operating-system entropy via :func:`os.urandom`."""

    def read(self, n: int) -> bytes:
        return os.urandom(n)


class DeterministicRandomSource(RandomSource):
    """Reproducible SHA-256 counter DRBG for tests and benchmarks."""

    def __init__(self, seed: bytes | str | int):
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        elif isinstance(seed, int):
            seed = int_to_bytes(seed)
        self._seed = bytes(seed)
        self._counter = 0
        self._buffer = b""

    def read(self, n: int) -> bytes:
        while len(self._buffer) < n:
            block = SHA256(
                self._seed + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out


_default_source: RandomSource = SystemRandomSource()


def default_random() -> RandomSource:
    """Return the process-wide default random source."""
    return _default_source


def set_default_random(source: RandomSource) -> RandomSource:
    """Replace the process-wide default random source.

    Returns the previous source so callers can restore it.
    """
    global _default_source
    previous = _default_source
    _default_source = source
    return previous
