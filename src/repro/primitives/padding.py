"""Block-cipher padding schemes.

Two schemes appear in the XML security stack:

* **PKCS#7** (RFC 5652 §6.3) — the scheme the rest of this library uses
  by default, and the one the OMA DCF baseline container uses.
* **XMLEnc ISO-10126-style padding** (XML Encryption §5.2) — the final
  octet carries the pad length, the remaining pad octets are arbitrary.
  We emit zeros for the arbitrary octets (deterministic output) and, per
  the spec, ignore their values when unpadding.
"""

from __future__ import annotations

from repro.errors import PaddingError


def pkcs7_pad(data: bytes, block_size: int = 16) -> bytes:
    """Append PKCS#7 padding to reach a whole number of blocks."""
    if not 1 <= block_size <= 255:
        raise PaddingError(f"unsupported block size {block_size}")
    pad_len = block_size - len(data) % block_size
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip and validate PKCS#7 padding.

    Raises:
        PaddingError: on empty input, ragged length, or inconsistent
            pad bytes — the classic symptom of a wrong key or a
            tampered ciphertext.
    """
    if not data or len(data) % block_size != 0:
        raise PaddingError("padded data length is not a whole block count")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        # The observed pad byte is a function of the decryption key and
        # the ciphertext; echoing it in the error would hand a padding
        # oracle to whoever reads the fault text (TNT203).
        raise PaddingError("invalid pad length")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("inconsistent PKCS#7 pad bytes")
    return data[:-pad_len]


def xmlenc_pad(data: bytes, block_size: int = 16) -> bytes:
    """Apply XML Encryption §5.2 block padding (length in final octet)."""
    if not 1 <= block_size <= 255:
        raise PaddingError(f"unsupported block size {block_size}")
    pad_len = block_size - len(data) % block_size
    return data + b"\x00" * (pad_len - 1) + bytes([pad_len])


def xmlenc_unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip XML Encryption padding; only the final octet is inspected."""
    if not data or len(data) % block_size != 0:
        raise PaddingError("padded data length is not a whole block count")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        # The observed pad byte is a function of the decryption key and
        # the ciphertext; echoing it in the error would hand a padding
        # oracle to whoever reads the fault text (TNT203).
        raise PaddingError("invalid pad length")
    return data[:-pad_len]
