"""Pure-Python SHA-1 and SHA-256 (FIPS 180-4).

These are the two digest algorithms mandated by XMLDSig Core
(``xmldsig#sha1``) and in wide use by its successors
(``xmlenc#sha256``).  Both classes follow the familiar
``update()/digest()/hexdigest()`` shape of :mod:`hashlib` objects and
are cross-validated against :mod:`hashlib` in the test suite.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF


def _rotl32(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK32


def _rotr32(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK32


class _MDHash:
    """Shared Merkle–Damgård machinery for the SHA family."""

    block_size = 64
    digest_size = 0
    name = ""

    def __init__(self, data: bytes = b""):
        self._state = list(self._initial_state())
        self._length = 0
        self._pending = b""
        if data:
            self.update(data)

    # -- subclass hooks ----------------------------------------------------

    def _initial_state(self) -> tuple[int, ...]:
        raise NotImplementedError

    def _compress(self, block: bytes) -> None:
        raise NotImplementedError

    # -- public interface ---------------------------------------------------

    def update(self, data: bytes) -> None:
        """Feed *data* into the hash."""
        self._length += len(data)
        buf = self._pending + data
        offset = 0
        for offset in range(0, len(buf) - len(buf) % 64, 64):
            self._compress(buf[offset:offset + 64])
        self._pending = buf[len(buf) - len(buf) % 64:]

    def digest(self) -> bytes:
        """Return the digest of all data fed so far (non-destructive)."""
        clone = self.copy()
        bit_length = clone._length * 8
        clone.update(b"\x80")
        while clone._length % 64 != 56:
            clone.update(b"\x00")
        clone._length += 8  # keep invariant, though no more digests follow
        clone._compress(clone._pending + struct.pack(">Q", bit_length))
        return b"".join(
            struct.pack(">I", w) for w in clone._state[: self.digest_size // 4]
        )

    def hexdigest(self) -> str:
        """Return :meth:`digest` as lowercase hex."""
        return self.digest().hex()

    def copy(self):
        """Return an independent copy of the running hash state."""
        clone = type(self)()
        clone._state = list(self._state)
        clone._length = self._length
        clone._pending = self._pending
        return clone


class SHA1(_MDHash):
    """SHA-1 (160-bit digest)."""

    digest_size = 20
    name = "sha1"

    def _initial_state(self):
        return (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for t in range(16, 80):
            w.append(_rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = self._state
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl32(a, 5) + f + e + k + w[t]) & _MASK32
            e, d, c, b, a = d, c, _rotl32(b, 30), a, temp
        self._state = [
            (s + v) & _MASK32 for s, v in zip(self._state, (a, b, c, d, e))
        ]


_SHA256_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)


class SHA256(_MDHash):
    """SHA-256 (256-bit digest)."""

    digest_size = 32
    name = "sha256"

    def _initial_state(self):
        return (
            0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
            0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
        )

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for t in range(16, 64):
            s0 = _rotr32(w[t - 15], 7) ^ _rotr32(w[t - 15], 18) ^ (w[t - 15] >> 3)
            s1 = _rotr32(w[t - 2], 17) ^ _rotr32(w[t - 2], 19) ^ (w[t - 2] >> 10)
            w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK32)
        a, b, c, d, e, f, g, h = self._state
        for t in range(64):
            big_s1 = _rotr32(e, 6) ^ _rotr32(e, 11) ^ _rotr32(e, 25)
            ch = (e & f) ^ (~e & g)
            t1 = (h + big_s1 + ch + _SHA256_K[t] + w[t]) & _MASK32
            big_s0 = _rotr32(a, 2) ^ _rotr32(a, 13) ^ _rotr32(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            t2 = (big_s0 + maj) & _MASK32
            h, g, f, e, d, c, b, a = (
                g, f, e, (d + t1) & _MASK32, c, b, a, (t1 + t2) & _MASK32,
            )
        self._state = [
            (s + v) & _MASK32
            for s, v in zip(self._state, (a, b, c, d, e, f, g, h))
        ]


_DIGESTS = {"sha1": SHA1, "sha256": SHA256}


def new(name: str, data: bytes = b"") -> _MDHash:
    """Create a hash object by name (``"sha1"`` or ``"sha256"``)."""
    try:
        return _DIGESTS[name.lower()](data)
    except KeyError:
        raise ValueError(f"unknown digest algorithm {name!r}") from None


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest of *data*."""
    return SHA1(data).digest()


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256 digest of *data*."""
    return SHA256(data).digest()
