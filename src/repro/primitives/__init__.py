"""Cryptographic substrate: hashes, MACs, AES, RSA and providers.

This package is the reproduction of the JCE layer under the paper's
prototype — every algorithm the XML security stack needs, implemented
from scratch in Python, behind a JCE-style provider registry
(:mod:`repro.primitives.provider`).
"""

from repro.primitives.aes import AES
from repro.primitives.des import DES, TripleDES
from repro.primitives.encoding import (
    b64decode, b64encode, bytes_to_int, hexdecode, hexencode, int_to_bytes,
)
from repro.primitives.hmac import HMAC, constant_time_equal
from repro.primitives.keys import RSAPrivateKey, RSAPublicKey, SymmetricKey
from repro.primitives.keywrap import unwrap_key, wrap_key
from repro.primitives.prime import generate_prime, is_probable_prime
from repro.primitives.provider import (
    AcceleratedProvider, CryptoProvider, PurePythonProvider,
    available_providers, get_provider, register_provider,
    set_default_provider,
)
from repro.primitives.random import (
    DeterministicRandomSource, RandomSource, SystemRandomSource,
    default_random, set_default_random,
)
from repro.primitives.rsa import generate_keypair
from repro.primitives.sha import SHA1, SHA256, sha1, sha256

__all__ = [
    "AES", "DES", "TripleDES", "HMAC", "SHA1", "SHA256",
    "RSAPrivateKey", "RSAPublicKey", "SymmetricKey",
    "CryptoProvider", "PurePythonProvider", "AcceleratedProvider",
    "RandomSource", "SystemRandomSource", "DeterministicRandomSource",
    "available_providers", "get_provider", "register_provider",
    "set_default_provider", "default_random", "set_default_random",
    "generate_keypair", "generate_prime", "is_probable_prime",
    "b64encode", "b64decode", "hexencode", "hexdecode",
    "int_to_bytes", "bytes_to_int", "sha1", "sha256",
    "wrap_key", "unwrap_key", "constant_time_equal",
]
