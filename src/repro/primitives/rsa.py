"""RSA key generation, PKCS#1 v1.5 signatures and encryption.

XMLDSig Core requires ``rsa-sha1`` (RSASSA-PKCS1-v1_5 with SHA-1) and
XML Encryption names ``rsa-1_5`` (RSAES-PKCS1-v1_5) for key transport;
``rsa-sha256`` is registered as the modern companion.  Everything here
is implemented from the PKCS#1 v2.1 description: EMSA-PKCS1-v1_5
encoding with the standard DigestInfo prefixes, EME-PKCS1-v1_5 with
random non-zero padding, and a CRT-accelerated private-key operation.
"""

from __future__ import annotations

from repro.errors import CryptoError, DecryptionError, KeyError_
from repro.primitives import sha
from repro.primitives.encoding import bytes_to_int, int_to_bytes
from repro.primitives.keys import RSAPrivateKey, RSAPublicKey
from repro.primitives.prime import generate_prime
from repro.primitives.random import RandomSource, default_random

# DER-encoded DigestInfo prefixes (AlgorithmIdentifier + OCTET STRING tag)
# from PKCS#1 v2.1 §9.2 note 1.
_DIGEST_INFO_PREFIX = {
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
}

_MIN_KEY_BITS = 512  # floor so tests can use small-but-functional keys


def generate_keypair(bits: int = 1024,
                     rng: RandomSource | None = None,
                     public_exponent: int = 65537) -> RSAPrivateKey:
    """Generate an RSA key pair with a modulus of exactly *bits* bits."""
    if bits < _MIN_KEY_BITS:
        raise KeyError_(f"RSA modulus must be at least {_MIN_KEY_BITS} bits")
    if bits % 2:
        raise KeyError_("RSA modulus bit size must be even")
    rng = rng or default_random()
    e = public_exponent
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; pick new primes
        return RSAPrivateKey(n=n, e=e, d=d, p=max(p, q), q=min(p, q))


def _private_op(key: RSAPrivateKey, value: int) -> int:
    """Compute ``value^d mod n`` (CRT-accelerated when p, q are known)."""
    if value >= key.n:
        raise CryptoError("RSA input out of range")
    if key.p and key.q:
        dp = key.d % (key.p - 1)
        dq = key.d % (key.q - 1)
        q_inv = pow(key.q, -1, key.p)
        m1 = pow(value % key.p, dp, key.p)
        m2 = pow(value % key.q, dq, key.q)
        h = (q_inv * (m1 - m2)) % key.p
        return m2 + h * key.q
    return pow(value, key.d, key.n)


def _emsa_pkcs1_v15(digest: bytes, digest_name: str, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding (PKCS#1 v2.1 §9.2)."""
    try:
        prefix = _DIGEST_INFO_PREFIX[digest_name]
    except KeyError:
        raise CryptoError(
            f"no DigestInfo prefix for {digest_name!r}"
        ) from None
    t = prefix + digest
    if em_len < len(t) + 11:
        raise CryptoError("RSA modulus too small for this digest")
    ps = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t


def sign(key: RSAPrivateKey, message: bytes,
         digest_name: str = "sha1") -> bytes:
    """RSASSA-PKCS1-v1_5 signature over *message*."""
    digest = sha.new(digest_name, message).digest()
    return sign_digest(key, digest, digest_name)


def sign_digest(key: RSAPrivateKey, digest: bytes,
                digest_name: str = "sha1") -> bytes:
    """Sign a precomputed digest (the XMLDSig core operates on digests)."""
    em = _emsa_pkcs1_v15(digest, digest_name, key.byte_length)
    signature = _private_op(key, bytes_to_int(em))
    return int_to_bytes(signature, key.byte_length)


def verify(key: RSAPublicKey, message: bytes, signature: bytes,
           digest_name: str = "sha1") -> bool:
    """Verify an RSASSA-PKCS1-v1_5 signature; returns ``True``/``False``."""
    digest = sha.new(digest_name, message).digest()
    return verify_digest(key, digest, signature, digest_name)


def verify_digest(key: RSAPublicKey, digest: bytes, signature: bytes,
                  digest_name: str = "sha1") -> bool:
    """Verify a signature against a precomputed digest.

    Re-encodes the expected EM and compares byte-for-byte — the
    encoding-side comparison recommended to avoid Bleichenbacher-style
    lenient-parsing bugs.
    """
    if len(signature) != key.byte_length:
        return False
    value = bytes_to_int(signature)
    if value >= key.n:
        return False
    em = int_to_bytes(pow(value, key.e, key.n), key.byte_length)
    try:
        expected = _emsa_pkcs1_v15(digest, digest_name, key.byte_length)
    except CryptoError:
        return False
    return em == expected


def encrypt(key: RSAPublicKey, plaintext: bytes,
            rng: RandomSource | None = None) -> bytes:
    """RSAES-PKCS1-v1_5 encryption (XMLEnc ``rsa-1_5`` key transport)."""
    rng = rng or default_random()
    k = key.byte_length
    if len(plaintext) > k - 11:
        raise CryptoError(
            f"plaintext too long for {key.bit_length}-bit RSA key"
        )
    ps = bytearray()
    while len(ps) < k - len(plaintext) - 3:
        byte = rng.read(1)
        if byte != b"\x00":
            ps += byte
    em = b"\x00\x02" + bytes(ps) + b"\x00" + plaintext
    ciphertext = pow(bytes_to_int(em), key.e, key.n)
    return int_to_bytes(ciphertext, k)


def decrypt(key: RSAPrivateKey, ciphertext: bytes) -> bytes:
    """RSAES-PKCS1-v1_5 decryption.

    Raises:
        DecryptionError: when the decrypted block is not a valid
            EME-PKCS1-v1_5 encoding (wrong key or corrupted ciphertext).
    """
    k = key.byte_length
    if len(ciphertext) != k:
        raise DecryptionError("RSA ciphertext has wrong length")
    value = bytes_to_int(ciphertext)
    if value >= key.n:
        raise DecryptionError(
            "RSA ciphertext out of range (wrong key?)"
        )
    em = int_to_bytes(_private_op(key, value), k)
    if em[0] != 0 or em[1] != 2:
        raise DecryptionError("invalid RSA encryption block")
    try:
        sep = em.index(b"\x00", 2)
    except ValueError:
        raise DecryptionError("invalid RSA encryption block") from None
    if sep < 10:
        raise DecryptionError("invalid RSA encryption block")
    return em[sep + 1:]
