"""Key material objects shared across the security stack.

RSA keys are plain dataclasses over their integer components, which is
exactly what XMLDSig's ``<KeyValue><RSAKeyValue>`` carries (modulus and
exponent as base64 CryptoBinary values).  Symmetric keys wrap raw bytes
with a declared algorithm family.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KeyError_
from repro.primitives.encoding import b64decode, b64encode, int_to_bytes


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bit_length(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def to_dict(self) -> dict[str, str]:
        """Serialize as the base64 fields of an RSAKeyValue element."""
        return {
            "Modulus": b64encode(int_to_bytes(self.n)),
            "Exponent": b64encode(int_to_bytes(self.e)),
        }

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "RSAPublicKey":
        try:
            n = int.from_bytes(b64decode(data["Modulus"]), "big")
            e = int.from_bytes(b64decode(data["Exponent"]), "big")
        except KeyError as exc:
            raise KeyError_(f"RSAKeyValue missing field {exc}") from None
        return cls(n=n, e=e)

    def fingerprint(self) -> str:
        """Stable identifier for the key (hex SHA-256 of n||e)."""
        from repro.primitives.sha import sha256
        return sha256(int_to_bytes(self.n) + int_to_bytes(self.e)).hex()[:32]


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key with CRT components.

    ``p``/``q`` are retained for CRT acceleration of the private-key
    operation; ``d`` alone is sufficient for correctness.
    """

    n: int
    e: int
    d: int = field(repr=False)
    p: int = field(default=0, repr=False)
    q: int = field(default=0, repr=False)

    @property
    def bit_length(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> RSAPublicKey:
        """Return the matching public key."""
        return RSAPublicKey(n=self.n, e=self.e)

    def fingerprint(self) -> str:
        """Stable identifier of the *public* half — safe to log."""
        return self.public_key().fingerprint()

    def __repr__(self) -> str:
        return (f"RSAPrivateKey({self.bit_length}-bit, "
                f"fingerprint={self.fingerprint()}, <redacted>)")


@dataclass(frozen=True)
class SymmetricKey:
    """Raw symmetric key bytes tagged with an algorithm family.

    ``algorithm`` is a short family name (``"aes"`` or ``"hmac"``); the
    concrete mode/size is chosen by the operation that consumes the key.
    """

    data: bytes = field(repr=False)
    algorithm: str = "aes"

    def __post_init__(self):
        if not self.data:
            raise KeyError_("symmetric key must not be empty")

    @property
    def bit_length(self) -> int:
        return len(self.data) * 8

    def fingerprint(self) -> str:
        """Stable identifier (hex SHA-256 prefix) — safe to log."""
        from repro.primitives.sha import sha256
        return sha256(self.data).hex()[:32]

    def __repr__(self) -> str:
        return (f"SymmetricKey({self.algorithm}, {self.bit_length}-bit, "
                f"fingerprint={self.fingerprint()}, <redacted>)")
