"""Byte/text encodings used throughout the XML security stack.

Base64 is the transfer encoding mandated by XMLDSig and XMLEnc for
``DigestValue``, ``SignatureValue`` and ``CipherValue`` content; this
module implements it from first principles (table-driven, no
:mod:`base64` import) together with hexadecimal helpers and the
big-endian integer conversions used by the RSA code.
"""

from __future__ import annotations

from repro.errors import CryptoError

_B64_ALPHABET = (
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
)
_B64_DECODE = {c: i for i, c in enumerate(_B64_ALPHABET)}


def b64encode(data: bytes) -> str:
    """Encode *data* as standard (RFC 4648) base64 without line breaks."""
    out = []
    for i in range(0, len(data) - len(data) % 3, 3):
        n = data[i] << 16 | data[i + 1] << 8 | data[i + 2]
        out.append(_B64_ALPHABET[n >> 18])
        out.append(_B64_ALPHABET[(n >> 12) & 0x3F])
        out.append(_B64_ALPHABET[(n >> 6) & 0x3F])
        out.append(_B64_ALPHABET[n & 0x3F])
    rem = len(data) % 3
    if rem == 1:
        n = data[-1] << 16
        out.append(_B64_ALPHABET[n >> 18])
        out.append(_B64_ALPHABET[(n >> 12) & 0x3F])
        out.append("==")
    elif rem == 2:
        n = data[-2] << 16 | data[-1] << 8
        out.append(_B64_ALPHABET[n >> 18])
        out.append(_B64_ALPHABET[(n >> 12) & 0x3F])
        out.append(_B64_ALPHABET[(n >> 6) & 0x3F])
        out.append("=")
    return "".join(out)


def b64decode(text: str) -> bytes:
    """Decode base64 *text*, tolerating embedded whitespace.

    XMLDSig explicitly allows whitespace inside base64 element content,
    so all XML whitespace characters are stripped before decoding.

    Raises:
        CryptoError: if *text* contains non-alphabet characters or has
            an impossible length/padding combination.
    """
    compact = "".join(text.split())
    if len(compact) % 4 != 0:
        raise CryptoError(f"base64 length {len(compact)} is not a multiple of 4")
    if not compact:
        return b""
    pad = 0
    if compact.endswith("=="):
        pad = 2
    elif compact.endswith("="):
        pad = 1
    body = compact[: len(compact) - pad] if pad else compact
    out = bytearray()
    acc = 0
    nbits = 0
    for ch in body:
        try:
            acc = (acc << 6) | _B64_DECODE[ch]
        except KeyError:
            raise CryptoError(f"invalid base64 character {ch!r}") from None
        nbits += 6
        if nbits >= 8:
            nbits -= 8
            out.append((acc >> nbits) & 0xFF)
    if pad == 1 and nbits != 2:
        raise CryptoError("invalid base64 padding")
    if pad == 2 and nbits != 4:
        raise CryptoError("invalid base64 padding")
    return bytes(out)


def hexencode(data: bytes) -> str:
    """Encode *data* as lowercase hexadecimal text."""
    return data.hex()


def hexdecode(text: str) -> bytes:
    """Decode hexadecimal *text* (case-insensitive) to bytes."""
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise CryptoError(f"invalid hex string: {exc}") from None


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Convert a non-negative integer to big-endian bytes.

    With *length* omitted, the minimal representation is produced
    (``0`` encodes to a single zero byte, matching XMLDSig CryptoBinary
    semantics after sign-stripping).
    """
    if value < 0:
        raise CryptoError("cannot encode negative integer")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    try:
        return value.to_bytes(length, "big")
    except OverflowError:
        # Deliberately value-free: the requested width can be derived
        # from key material (modulus size, CRT components) and must not
        # appear in exception text (TNT203).
        raise CryptoError(
            "integer does not fit in the requested length"
        ) from None


def bytes_to_int(data: bytes) -> int:
    """Convert big-endian bytes to a non-negative integer."""
    return int.from_bytes(data, "big")
