"""Byte/text encodings used throughout the XML security stack.

Base64 is the transfer encoding mandated by XMLDSig and XMLEnc for
``DigestValue``, ``SignatureValue`` and ``CipherValue`` content; this
module implements it from first principles (table-driven, no
:mod:`base64` import) together with hexadecimal helpers and the
big-endian integer conversions used by the RSA code.
"""

from __future__ import annotations

from repro.errors import CryptoError

_B64_ALPHABET = (
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
)
_B64_DECODE = {c: i for i, c in enumerate(_B64_ALPHABET)}

# Pair tables: one lookup per 12 bits instead of one per 6.  Base64 is
# on the signing hot path (every DigestValue/SignatureValue), so the
# 4096-entry tables halve the per-byte work while staying table-driven.
_E_PAIR = [a + b for a in _B64_ALPHABET for b in _B64_ALPHABET]
_D_PAIR = {
    a + b: i << 6 | j
    for i, a in enumerate(_B64_ALPHABET)
    for j, b in enumerate(_B64_ALPHABET)
}


def b64encode(data: bytes) -> str:
    """Encode *data* as standard (RFC 4648) base64 without line breaks."""
    pair = _E_PAIR
    out = []
    append = out.append
    for i in range(0, len(data) - len(data) % 3, 3):
        n = data[i] << 16 | data[i + 1] << 8 | data[i + 2]
        append(pair[n >> 12])
        append(pair[n & 0xFFF])
    rem = len(data) % 3
    if rem == 1:
        append(pair[data[-1] << 4])
        append("==")
    elif rem == 2:
        n = data[-2] << 16 | data[-1] << 8
        append(pair[n >> 12])
        append(_B64_ALPHABET[(n >> 6) & 0x3F])
        append("=")
    return "".join(out)


def b64decode(text: str) -> bytes:
    """Decode base64 *text*, tolerating embedded whitespace.

    XMLDSig explicitly allows whitespace inside base64 element content,
    so all XML whitespace characters are stripped before decoding.

    Raises:
        CryptoError: if *text* contains non-alphabet characters or has
            an impossible length/padding combination.
    """
    compact = "".join(text.split())
    if len(compact) % 4 != 0:
        raise CryptoError(f"base64 length {len(compact)} is not a multiple of 4")
    if not compact:
        return b""
    pad = 0
    if compact.endswith("=="):
        pad = 2
    elif compact.endswith("="):
        pad = 1
    body = compact[: len(compact) - pad] if pad else compact
    pair = _D_PAIR
    out = bytearray()
    full = len(body) - len(body) % 4
    try:
        for i in range(0, full, 4):
            n = pair[body[i:i + 2]] << 12 | pair[body[i + 2:i + 4]]
            out += n.to_bytes(3, "big")
        rem = body[full:]
        # ``compact`` is a multiple of 4, so after stripping padding the
        # remainder is 3 chars (pad "="), 2 chars (pad "==") or empty.
        if len(rem) == 3:
            n = pair[rem[:2]] << 6 | _B64_DECODE[rem[2]]
            # The two leftover bits are ignored, as in RFC 4648 decoders
            # that accept non-canonical trailing bits.
            out += (n >> 2).to_bytes(2, "big")
        elif len(rem) == 2:
            out.append(pair[rem] >> 4)
    except KeyError:
        for ch in body:
            if ch not in _B64_DECODE:
                raise CryptoError(
                    f"invalid base64 character {ch!r}"
                ) from None
        raise  # pragma: no cover - every KeyError names a bad char
    return bytes(out)


def hexencode(data: bytes) -> str:
    """Encode *data* as lowercase hexadecimal text."""
    return data.hex()


def hexdecode(text: str) -> bytes:
    """Decode hexadecimal *text* (case-insensitive) to bytes."""
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise CryptoError(f"invalid hex string: {exc}") from None


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Convert a non-negative integer to big-endian bytes.

    With *length* omitted, the minimal representation is produced
    (``0`` encodes to a single zero byte, matching XMLDSig CryptoBinary
    semantics after sign-stripping).
    """
    if value < 0:
        raise CryptoError("cannot encode negative integer")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    try:
        return value.to_bytes(length, "big")
    except OverflowError:
        # Deliberately value-free: the requested width can be derived
        # from key material (modulus size, CRT components) and must not
        # appear in exception text (TNT203).
        raise CryptoError(
            "integer does not fit in the requested length"
        ) from None


def bytes_to_int(data: bytes) -> int:
    """Convert big-endian bytes to a non-negative integer."""
    return int.from_bytes(data, "big")
