"""Pure-Python AES block cipher (FIPS 197) for 128/192/256-bit keys.

AES-CBC with 128/192/256-bit keys is the block-cipher family required
by XML Encryption (``xmlenc#aes128-cbc`` etc.), and the AES key wrap is
built on the raw block operation.  The implementation is table-driven
(S-box plus the four T-tables) which keeps the per-block work to a few
hundred Python operations — slow next to native code, but fast enough
for disc-application payloads; the provider architecture
(:mod:`repro.primitives.provider`) lets callers swap in an accelerated
backend with identical semantics.
"""

from __future__ import annotations

from repro.errors import KeyError_

_BLOCK_SIZE = 16


def _build_sbox() -> tuple[list[int], list[int]]:
    """Compute the AES S-box from the GF(2^8) inverse + affine transform."""

    def gf_mul(a: int, b: int) -> int:
        p = 0
        for _ in range(8):
            if b & 1:
                p ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return p

    # Build inverses via exponentiation tables on generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = gf_mul(x, 3)
    exp[255] = exp[0]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        s = inv
        for _ in range(4):
            inv = ((inv << 1) | (inv >> 7)) & 0xFF
            s ^= inv
        s ^= 0x63
        sbox[value] = s
        inv_sbox[s] = value
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a = (a ^ 0x1B) & 0xFF
    return a


def _gmul(a: int, b: int) -> int:
    p = 0
    while b:
        if b & 1:
            p ^= a
        a = _xtime(a)
        b >>= 1
    return p


def _build_tables():
    """Build the encryption T-tables and decryption Td-tables."""
    te = [[0] * 256 for _ in range(4)]
    td = [[0] * 256 for _ in range(4)]
    for i in range(256):
        s = _SBOX[i]
        word = (
            (_gmul(s, 2) << 24) | (s << 16) | (s << 8) | _gmul(s, 3)
        )
        for t in range(4):
            te[t][i] = ((word >> (8 * t)) | (word << (32 - 8 * t))) & 0xFFFFFFFF
        si = _INV_SBOX[i]
        word = (
            (_gmul(si, 14) << 24)
            | (_gmul(si, 9) << 16)
            | (_gmul(si, 13) << 8)
            | _gmul(si, 11)
        )
        for t in range(4):
            td[t][i] = ((word >> (8 * t)) | (word << (32 - 8 * t))) & 0xFFFFFFFF
    return te, td


(_TE, _TD) = _build_tables()
_TE0, _TE1, _TE2, _TE3 = _TE
_TD0, _TD1, _TD2, _TD3 = _TD

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class AES:
    """The raw AES block transformation for a fixed key.

    Accepts 16-, 24- or 32-byte keys.  Only whole-block operations are
    exposed; chaining modes live in :mod:`repro.primitives.modes`.
    """

    block_size = _BLOCK_SIZE

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise KeyError_(
                f"AES key must be 16/24/32 bytes, got {len(key)}"
            )
        self.key_size = len(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._enc_keys = self._expand_key(key)
        self._dec_keys = self._invert_key_schedule(self._enc_keys)

    # -- key schedule --------------------------------------------------------

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = [
            int.from_bytes(key[4 * i:4 * i + 4], "big") for i in range(nk)
        ]
        total = 4 * (self._rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def _invert_key_schedule(self, enc: list[int]) -> list[int]:
        rounds = self._rounds
        dec = [0] * len(enc)
        for i in range(0, len(enc), 4):
            dec[i:i + 4] = enc[len(enc) - 4 - i:len(enc) - i]
        # InvMixColumns on all round keys except the first and last.
        for i in range(4, 4 * rounds):
            w = dec[i]
            b = w.to_bytes(4, "big")
            mixed = bytes(
                _gmul(b[0], m0) ^ _gmul(b[1], m1) ^ _gmul(b[2], m2)
                ^ _gmul(b[3], m3)
                for m0, m1, m2, m3 in (
                    (14, 11, 13, 9),
                    (9, 14, 11, 13),
                    (13, 9, 14, 11),
                    (11, 13, 9, 14),
                )
            )
            dec[i] = int.from_bytes(mixed, "big")
        return dec

    # -- block operations -----------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._enc_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        k = 4
        for _ in range(self._rounds - 1):
            t0 = (
                _TE0[(s0 >> 24) & 0xFF] ^ _TE1[(s1 >> 16) & 0xFF]
                ^ _TE2[(s2 >> 8) & 0xFF] ^ _TE3[s3 & 0xFF] ^ rk[k]
            )
            t1 = (
                _TE0[(s1 >> 24) & 0xFF] ^ _TE1[(s2 >> 16) & 0xFF]
                ^ _TE2[(s3 >> 8) & 0xFF] ^ _TE3[s0 & 0xFF] ^ rk[k + 1]
            )
            t2 = (
                _TE0[(s2 >> 24) & 0xFF] ^ _TE1[(s3 >> 16) & 0xFF]
                ^ _TE2[(s0 >> 8) & 0xFF] ^ _TE3[s1 & 0xFF] ^ rk[k + 2]
            )
            t3 = (
                _TE0[(s3 >> 24) & 0xFF] ^ _TE1[(s0 >> 16) & 0xFF]
                ^ _TE2[(s1 >> 8) & 0xFF] ^ _TE3[s2 & 0xFF] ^ rk[k + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4
        out = bytearray(16)
        for col, s_a, s_b, s_c, s_d in (
            (0, s0, s1, s2, s3),
            (4, s1, s2, s3, s0),
            (8, s2, s3, s0, s1),
            (12, s3, s0, s1, s2),
        ):
            word = (
                (_SBOX[(s_a >> 24) & 0xFF] << 24)
                | (_SBOX[(s_b >> 16) & 0xFF] << 16)
                | (_SBOX[(s_c >> 8) & 0xFF] << 8)
                | _SBOX[s_d & 0xFF]
            ) ^ rk[k + col // 4]
            out[col:col + 4] = word.to_bytes(4, "big")
        return bytes(out)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._dec_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        k = 4
        for _ in range(self._rounds - 1):
            t0 = (
                _TD0[(s0 >> 24) & 0xFF] ^ _TD1[(s3 >> 16) & 0xFF]
                ^ _TD2[(s2 >> 8) & 0xFF] ^ _TD3[s1 & 0xFF] ^ rk[k]
            )
            t1 = (
                _TD0[(s1 >> 24) & 0xFF] ^ _TD1[(s0 >> 16) & 0xFF]
                ^ _TD2[(s3 >> 8) & 0xFF] ^ _TD3[s2 & 0xFF] ^ rk[k + 1]
            )
            t2 = (
                _TD0[(s2 >> 24) & 0xFF] ^ _TD1[(s1 >> 16) & 0xFF]
                ^ _TD2[(s0 >> 8) & 0xFF] ^ _TD3[s3 & 0xFF] ^ rk[k + 2]
            )
            t3 = (
                _TD0[(s3 >> 24) & 0xFF] ^ _TD1[(s2 >> 16) & 0xFF]
                ^ _TD2[(s1 >> 8) & 0xFF] ^ _TD3[s0 & 0xFF] ^ rk[k + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4
        out = bytearray(16)
        for col, s_a, s_b, s_c, s_d in (
            (0, s0, s3, s2, s1),
            (4, s1, s0, s3, s2),
            (8, s2, s1, s0, s3),
            (12, s3, s2, s1, s0),
        ):
            word = (
                (_INV_SBOX[(s_a >> 24) & 0xFF] << 24)
                | (_INV_SBOX[(s_b >> 16) & 0xFF] << 16)
                | (_INV_SBOX[(s_c >> 8) & 0xFF] << 8)
                | _INV_SBOX[s_d & 0xFF]
            ) ^ rk[k + col // 4]
            out[col:col + 4] = word.to_bytes(4, "big")
        return bytes(out)
