"""AES key wrap (RFC 3394), as required by XML Encryption.

XMLEnc's ``kw-aes128``/``kw-aes192``/``kw-aes256`` algorithms protect a
symmetric content-encryption key under a key-encryption key inside an
``<EncryptedKey>`` element.  This is the RFC 3394 construction with the
default initial value ``A6A6A6A6A6A6A6A6``.
"""

from __future__ import annotations

from repro.errors import CryptoError, DecryptionError
from repro.primitives.aes import AES

_DEFAULT_IV = b"\xA6" * 8


def wrap_key(kek: bytes, key_data: bytes) -> bytes:
    """Wrap *key_data* (≥16 bytes, multiple of 8) under the KEK."""
    if len(key_data) < 16 or len(key_data) % 8:
        raise CryptoError(
            "key data for AES key wrap must be a multiple of 8 bytes, "
            f"at least 16; got {len(key_data)}"
        )
    cipher = AES(kek)
    n = len(key_data) // 8
    a = _DEFAULT_IV
    r = [key_data[8 * i:8 * i + 8] for i in range(n)]
    for j in range(6):
        for i in range(n):
            block = cipher.encrypt_block(a + r[i])
            t = n * j + i + 1
            a = bytes(
                x ^ y for x, y in zip(block[:8], t.to_bytes(8, "big"))
            )
            r[i] = block[8:]
    return a + b"".join(r)


def unwrap_key(kek: bytes, wrapped: bytes) -> bytes:
    """Unwrap and integrity-check a key wrapped with :func:`wrap_key`.

    Raises:
        DecryptionError: when the integrity check fails (wrong KEK or
            tampered wrapped key).
    """
    if len(wrapped) < 24 or len(wrapped) % 8:
        raise CryptoError(
            f"wrapped key length {len(wrapped)} is invalid for AES key wrap"
        )
    cipher = AES(kek)
    n = len(wrapped) // 8 - 1
    a = wrapped[:8]
    r = [wrapped[8 * (i + 1):8 * (i + 2)] for i in range(n)]
    for j in range(5, -1, -1):
        for i in range(n - 1, -1, -1):
            t = n * j + i + 1
            a_masked = bytes(
                x ^ y for x, y in zip(a, t.to_bytes(8, "big"))
            )
            block = cipher.decrypt_block(a_masked + r[i])
            a = block[:8]
            r[i] = block[8:]
    if a != _DEFAULT_IV:
        raise DecryptionError("AES key unwrap integrity check failed")
    return b"".join(r)
