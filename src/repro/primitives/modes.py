"""Block-cipher chaining modes over the raw AES block operation.

CBC is the mode required by XML Encryption; CTR is used by the OMA DCF
baseline container (mirroring OMA DRM v2's AES_128_CTR content
encryption); ECB exists only as the building block for the AES key wrap
and for test vectors.
"""

from __future__ import annotations

from repro.errors import CryptoError


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def ecb_encrypt(cipher, plaintext: bytes) -> bytes:
    """ECB-encrypt a whole number of blocks (no padding applied)."""
    bs = cipher.block_size
    if len(plaintext) % bs:
        raise CryptoError("ECB input must be a whole number of blocks")
    return b"".join(
        cipher.encrypt_block(plaintext[i:i + bs])
        for i in range(0, len(plaintext), bs)
    )


def ecb_decrypt(cipher, ciphertext: bytes) -> bytes:
    """ECB-decrypt a whole number of blocks."""
    bs = cipher.block_size
    if len(ciphertext) % bs:
        raise CryptoError("ECB input must be a whole number of blocks")
    return b"".join(
        cipher.decrypt_block(ciphertext[i:i + bs])
        for i in range(0, len(ciphertext), bs)
    )


def cbc_encrypt(cipher, plaintext: bytes, iv: bytes) -> bytes:
    """CBC-encrypt a pre-padded plaintext under the given IV."""
    bs = cipher.block_size
    if len(iv) != bs:
        raise CryptoError(f"IV must be {bs} bytes")
    if len(plaintext) % bs:
        raise CryptoError("CBC input must be padded to the block size")
    out = []
    previous = iv
    for i in range(0, len(plaintext), bs):
        block = cipher.encrypt_block(_xor(plaintext[i:i + bs], previous))
        out.append(block)
        previous = block
    return b"".join(out)


def cbc_decrypt(cipher, ciphertext: bytes, iv: bytes) -> bytes:
    """CBC-decrypt; the caller is responsible for removing padding."""
    bs = cipher.block_size
    if len(iv) != bs:
        raise CryptoError(f"IV must be {bs} bytes")
    if len(ciphertext) % bs:
        raise CryptoError("CBC ciphertext must be a whole number of blocks")
    out = []
    previous = iv
    for i in range(0, len(ciphertext), bs):
        block = ciphertext[i:i + bs]
        out.append(_xor(cipher.decrypt_block(block), previous))
        previous = block
    return b"".join(out)


def ctr_transform(cipher, data: bytes, nonce: bytes) -> bytes:
    """CTR-mode keystream XOR (encryption and decryption are identical).

    The 16-byte counter block is ``nonce || counter`` where *nonce*
    occupies the leading bytes and the big-endian counter fills the rest,
    starting at zero.
    """
    bs = cipher.block_size
    if len(nonce) >= bs:
        raise CryptoError(f"CTR nonce must be shorter than {bs} bytes")
    counter_width = bs - len(nonce)
    out = bytearray()
    counter = 0
    for i in range(0, len(data), bs):
        block = nonce + counter.to_bytes(counter_width, "big")
        keystream = cipher.encrypt_block(block)
        chunk = data[i:i + bs]
        out.extend(x ^ y for x, y in zip(chunk, keystream))
        counter += 1
    return bytes(out)
