"""HMAC (RFC 2104) over the pure-Python SHA family.

XMLDSig names ``hmac-sha1`` as a required signature algorithm; the
library also registers ``hmac-sha256``.  The implementation follows
RFC 2104 exactly: keys longer than the block size are hashed first and
all keys are zero-padded to the block size.
"""

from __future__ import annotations

from repro.primitives import sha


class HMAC:
    """Incremental HMAC with a :mod:`hashlib`-like interface."""

    def __init__(self, key: bytes, digest_name: str = "sha1",
                 data: bytes = b""):
        hash_cls = type(sha.new(digest_name))
        self._hash_cls = hash_cls
        block_size = hash_cls.block_size
        if len(key) > block_size:
            key = hash_cls(key).digest()
        key = key.ljust(block_size, b"\x00")
        self._outer_key = bytes(b ^ 0x5C for b in key)
        self._inner = hash_cls(bytes(b ^ 0x36 for b in key))
        if data:
            self.update(data)

    @property
    def digest_size(self) -> int:
        return self._hash_cls.digest_size

    def __repr__(self) -> str:
        # Never expose the (derived) key blocks held in _outer_key /
        # _inner state.
        return (f"HMAC({self._hash_cls.__name__.lower()}, "
                "<key redacted>)")

    def update(self, data: bytes) -> None:
        """Feed *data* into the MAC."""
        self._inner.update(data)

    def digest(self) -> bytes:
        """Return the MAC of all data fed so far (non-destructive)."""
        return self._hash_cls(self._outer_key + self._inner.digest()).digest()

    def hexdigest(self) -> str:
        """Return :meth:`digest` as lowercase hex."""
        return self.digest().hex()


def hmac_sha1(key: bytes, data: bytes) -> bytes:
    """One-shot HMAC-SHA1."""
    return HMAC(key, "sha1", data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """One-shot HMAC-SHA256."""
    return HMAC(key, "sha256", data).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without data-dependent early exit.

    Used for MAC and digest comparisons so verification time does not
    leak the position of the first mismatching byte.
    """
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
