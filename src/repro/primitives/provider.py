"""Pluggable crypto providers, mirroring the JCE provider architecture.

The paper's prototype sat Apache XML Security on top of the Java
Cryptography Extension with the bundled Sun provider.  This module
reproduces that layering: every digest, MAC, cipher and RSA operation
used by the XMLDSig/XMLEnc layers is routed through a
:class:`CryptoProvider`, and providers are interchangeable at run time.

Two providers ship with the library:

* ``"pure"`` — :class:`PurePythonProvider`, the from-scratch
  implementations in this package.  The default, and the reference
  semantics.
* ``"accelerated"`` — :class:`AcceleratedProvider`, which delegates
  digests/HMAC to :mod:`hashlib` and AES plus the RSA sign/verify
  primitives to the ``cryptography`` package when importable (RSA
  encrypt/decrypt stay pure: those paths take an injected RNG for
  deterministic tests).  Registered only when its backends import
  cleanly.

Selection is threaded end-to-end: the ``REPRO_PROVIDER`` environment
variable picks the process-wide default at import time (``pure``,
``accelerated``, or ``auto`` for best-available), and
:func:`set_default_provider` / :func:`detect_best_provider` switch it
at run time.  Signer, verifier, batch verifier and XMLEnc all resolve
the default lazily, so a switch takes effect everywhere at once.

The PROTO feasibility benchmark ablates the two providers against the
paper's CE startup budget.
"""

from __future__ import annotations

import os
import threading

from repro.errors import ProviderError, UnknownAlgorithmError
from repro.primitives import hmac as hmac_mod
from repro.primitives import keywrap, modes, rsa, sha
from repro.primitives.aes import AES
from repro.primitives.keys import RSAPrivateKey, RSAPublicKey
from repro.primitives.random import RandomSource, default_random

_DIGEST_NAMES = ("sha1", "sha256")


class CryptoProvider:
    """Interface every provider implements.

    All byte-level semantics (padding, IV handling) are owned by the
    callers; providers perform only the raw algorithm.
    """

    name = "abstract"

    # -- digests / MACs ------------------------------------------------------

    def digest(self, algorithm: str, data: bytes) -> bytes:
        raise NotImplementedError

    def hmac(self, algorithm: str, key: bytes, data: bytes) -> bytes:
        raise NotImplementedError

    def hash_context(self, algorithm: str):
        """Return an incremental hash context (``update``/``digest``).

        The streaming C14N digest path feeds canonical chunks into the
        returned context, so whole canonical strings never need to be
        materialised just to be hashed.
        """
        raise NotImplementedError

    def hmac_context(self, algorithm: str, key: bytes):
        """Return an incremental HMAC context (``update``/``digest``)."""
        raise NotImplementedError

    # -- AES -----------------------------------------------------------------

    def aes_cbc_encrypt(self, key: bytes, iv: bytes,
                        padded_plaintext: bytes) -> bytes:
        raise NotImplementedError

    def aes_cbc_decrypt(self, key: bytes, iv: bytes,
                        ciphertext: bytes) -> bytes:
        raise NotImplementedError

    def aes_ctr(self, key: bytes, nonce: bytes, data: bytes) -> bytes:
        raise NotImplementedError

    # -- Triple-DES (XMLEnc's required block algorithm) ------------------------

    def tripledes_cbc_encrypt(self, key: bytes, iv: bytes,
                              padded_plaintext: bytes) -> bytes:
        raise NotImplementedError

    def tripledes_cbc_decrypt(self, key: bytes, iv: bytes,
                              ciphertext: bytes) -> bytes:
        raise NotImplementedError

    def wrap_key(self, kek: bytes, key_data: bytes) -> bytes:
        raise NotImplementedError

    def unwrap_key(self, kek: bytes, wrapped: bytes) -> bytes:
        raise NotImplementedError

    # -- RSA -----------------------------------------------------------------

    def rsa_sign_digest(self, key: RSAPrivateKey, digest: bytes,
                        digest_name: str) -> bytes:
        raise NotImplementedError

    def rsa_verify_digest(self, key: RSAPublicKey, digest: bytes,
                          signature: bytes, digest_name: str) -> bool:
        raise NotImplementedError

    def rsa_encrypt(self, key: RSAPublicKey, plaintext: bytes,
                    rng: RandomSource | None = None) -> bytes:
        raise NotImplementedError

    def rsa_decrypt(self, key: RSAPrivateKey, ciphertext: bytes) -> bytes:
        raise NotImplementedError


class PurePythonProvider(CryptoProvider):
    """The from-scratch implementations in :mod:`repro.primitives`."""

    name = "pure"

    def digest(self, algorithm, data):
        if algorithm not in _DIGEST_NAMES:
            raise UnknownAlgorithmError(f"unknown digest {algorithm!r}")
        return sha.new(algorithm, data).digest()

    def hmac(self, algorithm, key, data):
        if algorithm not in _DIGEST_NAMES:
            raise UnknownAlgorithmError(f"unknown digest {algorithm!r}")
        return hmac_mod.HMAC(key, algorithm, data).digest()

    def hash_context(self, algorithm):
        if algorithm not in _DIGEST_NAMES:
            raise UnknownAlgorithmError(f"unknown digest {algorithm!r}")
        return sha.new(algorithm)

    def hmac_context(self, algorithm, key):
        if algorithm not in _DIGEST_NAMES:
            raise UnknownAlgorithmError(f"unknown digest {algorithm!r}")
        return hmac_mod.HMAC(key, algorithm)

    def aes_cbc_encrypt(self, key, iv, padded_plaintext):
        return modes.cbc_encrypt(AES(key), padded_plaintext, iv)

    def aes_cbc_decrypt(self, key, iv, ciphertext):
        return modes.cbc_decrypt(AES(key), ciphertext, iv)

    def aes_ctr(self, key, nonce, data):
        return modes.ctr_transform(AES(key), data, nonce)

    def tripledes_cbc_encrypt(self, key, iv, padded_plaintext):
        from repro.primitives.des import TripleDES
        return modes.cbc_encrypt(TripleDES(key), padded_plaintext, iv)

    def tripledes_cbc_decrypt(self, key, iv, ciphertext):
        from repro.primitives.des import TripleDES
        return modes.cbc_decrypt(TripleDES(key), ciphertext, iv)

    def wrap_key(self, kek, key_data):
        return keywrap.wrap_key(kek, key_data)

    def unwrap_key(self, kek, wrapped):
        return keywrap.unwrap_key(kek, wrapped)

    def rsa_sign_digest(self, key, digest, digest_name):
        return rsa.sign_digest(key, digest, digest_name)

    def rsa_verify_digest(self, key, digest, signature, digest_name):
        return rsa.verify_digest(key, digest, signature, digest_name)

    def rsa_encrypt(self, key, plaintext, rng=None):
        return rsa.encrypt(key, plaintext, rng or default_random())

    def rsa_decrypt(self, key, ciphertext):
        return rsa.decrypt(key, ciphertext)


class AcceleratedProvider(PurePythonProvider):
    """Native-backed digests, AES and RSA sign/verify.

    Digests and HMAC ride :mod:`hashlib`; AES and the RSA signature
    primitives ride ``cryptography`` (PKCS#1 v1.5 with ``Prehashed``,
    bit-identical to the pure encoding).  RSA encrypt/decrypt stay
    pure so the injected-RNG determinism of the XMLEnc tests holds
    under every provider.  Raises :class:`ProviderError` at
    construction when the native backends are unavailable, so the
    registry can skip registration.
    """

    name = "accelerated"

    def __init__(self):
        try:
            import hashlib
            import hmac as std_hmac
            from cryptography.exceptions import InvalidSignature
            from cryptography.hazmat.primitives import hashes
            from cryptography.hazmat.primitives.asymmetric import (
                padding as c_padding, rsa as c_rsa, utils as c_utils,
            )
            from cryptography.hazmat.primitives.ciphers import (
                Cipher, algorithms, modes as c_modes,
            )
        except ImportError as exc:  # pragma: no cover - env dependent
            raise ProviderError(
                f"accelerated backends unavailable: {exc}"
            ) from exc
        self._hashlib = hashlib
        self._std_hmac = std_hmac
        self._cipher_cls = Cipher
        self._algorithms = algorithms
        self._modes = c_modes
        self._c_rsa = c_rsa
        self._pkcs1v15 = c_padding.PKCS1v15()
        self._prehashed = c_utils.Prehashed
        self._invalid_signature = InvalidSignature
        self._hash_algs = {"sha1": hashes.SHA1(), "sha256": hashes.SHA256()}
        # Converted-key memos: the frozen key dataclasses hash by value,
        # so repeated sign/verify calls with the same key skip the
        # (validated, expensive) numbers->native-key construction.
        self._private_keys: dict[RSAPrivateKey, object] = {}
        self._public_keys: dict[RSAPublicKey, object] = {}

    def digest(self, algorithm, data):
        if algorithm not in _DIGEST_NAMES:
            raise UnknownAlgorithmError(f"unknown digest {algorithm!r}")
        return self._hashlib.new(algorithm, data).digest()

    def hmac(self, algorithm, key, data):
        if algorithm not in _DIGEST_NAMES:
            raise UnknownAlgorithmError(f"unknown digest {algorithm!r}")
        return self._std_hmac.new(key, data, algorithm).digest()

    def hash_context(self, algorithm):
        if algorithm not in _DIGEST_NAMES:
            raise UnknownAlgorithmError(f"unknown digest {algorithm!r}")
        return self._hashlib.new(algorithm)

    def hmac_context(self, algorithm, key):
        if algorithm not in _DIGEST_NAMES:
            raise UnknownAlgorithmError(f"unknown digest {algorithm!r}")
        return self._std_hmac.new(key, digestmod=algorithm)

    # -- RSA (cryptography-backed sign/verify) --------------------------------

    def _native_private_key(self, key: RSAPrivateKey):
        """Convert (and memoize) *key*; ``None`` if CRT parts missing."""
        native = self._private_keys.get(key)
        if native is None:
            if not key.p or not key.q:
                return None
            public = self._c_rsa.RSAPublicNumbers(key.e, key.n)
            numbers = self._c_rsa.RSAPrivateNumbers(
                p=key.p,
                q=key.q,
                d=key.d,
                dmp1=key.d % (key.p - 1),
                dmq1=key.d % (key.q - 1),
                iqmp=pow(key.q, -1, key.p),
                public_numbers=public,
            )
            native = numbers.private_key()
            if len(self._private_keys) >= 64:
                self._private_keys.clear()
            self._private_keys[key] = native
        return native

    def _native_public_key(self, key: RSAPublicKey):
        native = self._public_keys.get(key)
        if native is None:
            native = self._c_rsa.RSAPublicNumbers(key.e, key.n).public_key()
            if len(self._public_keys) >= 256:
                self._public_keys.clear()
            self._public_keys[key] = native
        return native

    def rsa_sign_digest(self, key, digest, digest_name):
        hash_alg = self._hash_algs.get(digest_name)
        if hash_alg is None or len(digest) != hash_alg.digest_size:
            # Unknown DigestInfo family or truncated digest: defer to the
            # pure encoder, which owns those error semantics.
            return rsa.sign_digest(key, digest, digest_name)
        native = self._native_private_key(key)
        if native is None:
            return rsa.sign_digest(key, digest, digest_name)
        return native.sign(
            digest, self._pkcs1v15, self._prehashed(hash_alg)
        )

    def rsa_verify_digest(self, key, digest, signature, digest_name):
        hash_alg = self._hash_algs.get(digest_name)
        if hash_alg is None or len(digest) != hash_alg.digest_size:
            return rsa.verify_digest(key, digest, signature, digest_name)
        if len(signature) != key.byte_length:
            # The pure re-encode comparison treats a wrong-length
            # signature as a plain mismatch; mirror that.
            return rsa.verify_digest(key, digest, signature, digest_name)
        native = self._native_public_key(key)
        try:
            native.verify(
                signature, digest, self._pkcs1v15, self._prehashed(hash_alg)
            )
        except (self._invalid_signature, ValueError):
            return False
        return True

    def _cipher(self, key, mode):
        return self._cipher_cls(self._algorithms.AES(key), mode)

    def aes_cbc_encrypt(self, key, iv, padded_plaintext):
        enc = self._cipher(key, self._modes.CBC(iv)).encryptor()
        return enc.update(padded_plaintext) + enc.finalize()

    def aes_cbc_decrypt(self, key, iv, ciphertext):
        dec = self._cipher(key, self._modes.CBC(iv)).decryptor()
        return dec.update(ciphertext) + dec.finalize()

    def aes_ctr(self, key, nonce, data):
        counter_block = nonce + b"\x00" * (16 - len(nonce))
        enc = self._cipher(key, self._modes.CTR(counter_block)).encryptor()
        return enc.update(data) + enc.finalize()


_providers: dict[str, CryptoProvider] = {}
_default_name = "pure"
# Guards registry writes; lookups stay lock-free (a dict read of a
# published provider is atomic under the GIL, and swaps only ever
# replace whole entries).
_registry_lock = threading.Lock()


def register_provider(provider: CryptoProvider) -> None:
    """Add *provider* to the registry (replacing any same-named one)."""
    with _registry_lock:
        _providers[provider.name] = provider


def get_provider(name: str | None = None) -> CryptoProvider:
    """Look up a provider by name; ``None`` returns the default."""
    key = name or _default_name
    try:
        return _providers[key]
    except KeyError:
        raise ProviderError(f"no crypto provider named {key!r}") from None


def available_providers() -> list[str]:
    """Names of all registered providers."""
    return sorted(_providers)


def set_default_provider(name: str) -> str:
    """Make *name* the default provider; returns the previous default."""
    global _default_name
    with _registry_lock:
        if name not in _providers:
            raise ProviderError(f"no crypto provider named {name!r}")
        previous = _default_name
        _default_name = name
    return previous


def detect_best_provider() -> str:
    """Name of the fastest registered provider (``accelerated`` if up)."""
    return "accelerated" if "accelerated" in _providers else "pure"


def _apply_env_override() -> None:
    """Honour ``REPRO_PROVIDER`` (a name, or ``auto``) at import time.

    An unknown name fails loudly: silently falling back to the pure
    provider would make a mistyped CI matrix leg measure the wrong
    implementation while appearing green.
    """
    name = os.environ.get("REPRO_PROVIDER", "").strip()
    if not name:
        return
    if name == "auto":
        name = detect_best_provider()
    set_default_provider(name)


register_provider(PurePythonProvider())
try:
    register_provider(AcceleratedProvider())
except ProviderError:  # pragma: no cover - env dependent
    pass
_apply_env_override()
