"""Prime generation and primality testing for RSA key generation.

Miller–Rabin with a deterministic small-prime sieve in front.  The
witness count (40 rounds) gives an error bound far below 2^-80 for the
key sizes used here.
"""

from __future__ import annotations

from repro.primitives.random import RandomSource, default_random

# Primes below 1000 for fast trial division.
_SMALL_PRIMES: list[int] = []


def _build_small_primes(limit: int = 1000) -> list[int]:
    sieve = bytearray([1]) * limit
    sieve[0:2] = b"\x00\x00"
    for p in range(2, int(limit ** 0.5) + 1):
        if sieve[p]:
            sieve[p * p::p] = b"\x00" * len(sieve[p * p::p])
    return [i for i in range(limit) if sieve[i]]


_SMALL_PRIMES = _build_small_primes()


def is_probable_prime(n: int, rounds: int = 40,
                      rng: RandomSource | None = None) -> bool:
    """Miller–Rabin primality test.

    Deterministically correct for n < 1000 via the sieve; probabilistic
    (error < 4^-rounds) above that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or default_random()
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + rng.randint_below(n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: RandomSource | None = None) -> int:
    """Generate a random prime with exactly *bits* bits.

    The candidate always has its two top bits set (so the product of two
    such primes has exactly ``2*bits`` bits) and is forced odd.
    """
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    rng = rng or default_random()
    while True:
        candidate = rng.randint_bits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate
