"""Clocks for the resilience layer.

Every time-dependent component (retry backoff, circuit-breaker
cool-downs, injected latency) takes a clock object so tests and benches
run on a :class:`SimulatedClock` — deterministic, instant, and shared
between the fault injectors that *spend* time and the policies that
*budget* it.  Production paths use :class:`SystemClock`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class SystemClock:
    """Wall-clock time (monotonic) with real sleeping."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


@dataclass
class SimulatedClock:
    """A manually-advanced clock.

    ``sleep`` advances simulated time instantly, so a retry schedule
    with seconds of backoff executes in microseconds of real time while
    deadline arithmetic stays exact.  Every sleep is recorded for
    assertions on backoff schedules.
    """

    _now: float = 0.0
    sleeps: list[float] = field(default_factory=list)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds
        self.sleeps.append(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep (external delay)."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self._now += seconds
