"""Filesystem abstraction + power-loss fault adversary for durable state.

The durable layer (:mod:`repro.resilience.durable`) never touches
``os``/``open`` directly — every byte goes through a
:class:`Filesystem`, so the same journal code runs against the real
flash (:class:`OsFilesystem`) and against the deterministic, seeded
:class:`CrashableFilesystem` that models what a consumer player's
flash actually does under power loss:

* buffered writes are *visible* immediately but become *durable* only
  on ``fsync`` — pulling the plug drops everything un-synced;
* a crash can cut an in-flight flush at byte *k* (a torn write), so a
  journal tail may end mid-frame;
* directory operations (rename, remove) are themselves buffered until
  ``fsync_dir`` and may be re-ordered or dropped by a crash.

Crash scheduling composes with the PR 1/PR 4 injector idiom: every
mutating operation is one numbered *injection point*, and a harness
schedules a kill at op *k* by constructing the filesystem with
``crash_at=k`` — the op raises :class:`SimulatedCrash` *before* taking
effect (an ``fsync`` interrupted by the crash flushes only a seeded
torn prefix).  The same ``(seed, crash_at)`` pair always reproduces
the same post-crash flash image.

One deliberate modelling choice keeps the recovery contract testable:
the final byte of an un-synced delta is never durable.  A write the
caller was never acknowledged for can therefore survive only as a
*torn prefix*, which the journal's frame checksums detect — so
"acknowledged commits are durable, unacknowledged commits vanish" is
an exact invariant, not a probabilistic one.
"""

from __future__ import annotations

import os
import random


class SimulatedCrash(Exception):
    """Power loss injected by :class:`CrashableFilesystem`.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a crash is
    not an error the stack should catch and degrade on — it kills the
    process.  Only the chaos harness catches it, at the top of a run.
    """


class Filesystem:
    """The byte-level surface the durable layer is written against."""

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def read(self, path: str) -> bytes:
        raise NotImplementedError

    def write(self, path: str, data: bytes) -> None:
        """Create/truncate *path* with *data* (buffered)."""
        raise NotImplementedError

    def append(self, path: str, data: bytes) -> None:
        """Append *data* to *path* (buffered), creating it if absent."""
        raise NotImplementedError

    def truncate(self, path: str, size: int) -> None:
        """Cut *path* down to *size* bytes (buffered)."""
        raise NotImplementedError

    def fsync(self, path: str) -> None:
        """Make *path*'s current content durable."""
        raise NotImplementedError

    def replace(self, source: str, destination: str) -> None:
        """Atomically rename *source* over *destination* (buffered
        until the parent directory is synced)."""
        raise NotImplementedError

    def remove(self, path: str) -> None:
        raise NotImplementedError

    def fsync_dir(self, path: str) -> None:
        """Make pending directory operations under *path* durable."""
        raise NotImplementedError

    def makedirs(self, path: str) -> None:
        raise NotImplementedError

    def listdir(self, path: str) -> list[str]:
        raise NotImplementedError


class OsFilesystem(Filesystem):
    """The real thing: ``os``-level calls with explicit fsyncs."""

    def exists(self, path):
        return os.path.exists(path)

    def read(self, path):
        with open(path, "rb") as handle:
            return handle.read()

    def write(self, path, data):
        with open(path, "wb") as handle:
            handle.write(data)

    def append(self, path, data):
        with open(path, "ab") as handle:
            handle.write(data)

    def truncate(self, path, size):
        with open(path, "r+b") as handle:
            handle.truncate(size)

    def fsync(self, path):
        fd = os.open(path, os.O_RDWR)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(self, source, destination):
        os.replace(source, destination)

    def remove(self, path):
        os.remove(path)

    def fsync_dir(self, path):
        # Windows cannot open directories; directory durability is
        # best-effort there, which matches its rename semantics.
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def makedirs(self, path):
        os.makedirs(path, exist_ok=True)

    def listdir(self, path):
        return sorted(os.listdir(path)) if os.path.isdir(path) else []


class CrashableFilesystem(Filesystem):
    """In-memory flash model with seeded power-loss injection.

    Attributes:
        op_count: mutating operations performed so far — the number of
            injection points a completed run exposes.
        crash_at: 0-based op index at which to raise
            :class:`SimulatedCrash` (``None`` = never).
        crashed: set once a scheduled or explicit crash has happened.
    """

    def __init__(self, *, seed: int = 0, crash_at: int | None = None):
        self._visible: dict[str, bytes] = {}
        self._durable: dict[str, bytes] = {}
        self._dirs: set[str] = {""}
        self._synced: set[str] = set()
        self._pending_dir_ops: list[tuple[str, str, str | None]] = []
        self._rng = random.Random(f"crashfs:{seed}")
        self.op_count = 0
        self.crash_at = crash_at
        self.crashed = False
        self.op_labels: list[str] = []

    # -- crash machinery ---------------------------------------------------------

    def _injection_point(self, label: str) -> None:
        """One numbered injection point; fires the scheduled crash
        *before* the operation takes effect."""
        index = self.op_count
        self.op_count += 1
        self.op_labels.append(label)
        if self.crash_at is not None and index == self.crash_at:
            raise SimulatedCrash(f"power loss at op {index} ({label})")

    def crash(self) -> None:
        """Simulate the power cut: un-synced data is torn or dropped.

        For every file whose visible content has un-synced bytes, a
        seeded torn prefix of the delta (never the final byte) becomes
        durable.  Pending directory operations are shuffled and only a
        seeded prefix of them survives — the re-ordering adversary.
        Afterwards the filesystem presents the durable state, as a
        rebooted player would see it.
        """
        survivors: dict[str, bytes] = {}
        # Files touched by a pending rename/remove are governed by the
        # directory-op lottery below, not the torn-write logic: a
        # rename is atomic, so its destination either reverts to its
        # old durable content or receives the source's durable bytes —
        # never a torn mixture of the two.
        pending_paths = set()
        for _kind, source, destination in self._pending_dir_ops:
            pending_paths.add(source)
            if destination is not None:
                pending_paths.add(destination)
        for path, visible in self._visible.items():
            if path in pending_paths:
                continue
            durable = self._durable.get(path)
            if durable is not None and visible.startswith(durable):
                delta = visible[len(durable):]
                if delta:
                    keep = self._rng.randrange(len(delta))
                    survivors[path] = durable + delta[:keep]
                else:
                    survivors[path] = durable
            elif durable is not None:
                # Rewritten in place (write/truncate): the old durable
                # content survives; the un-synced rewrite is lost.
                survivors[path] = durable
            else:
                # Never synced at all: at most a torn prefix survives.
                if visible and self._rng.random() < 0.5:
                    keep = self._rng.randrange(len(visible))
                    if keep:
                        survivors[path] = visible[:keep]
        for path, durable in self._durable.items():
            survivors.setdefault(path, durable)
        ops = list(self._pending_dir_ops)
        self._rng.shuffle(ops)
        kept = ops[:self._rng.randint(0, len(ops))] if ops else []
        for kind, source, destination in kept:
            if kind == "replace":
                if source in survivors:
                    survivors[destination] = survivors.pop(source)
            elif kind == "remove" and source in survivors:
                del survivors[source]
        self._durable = dict(survivors)
        self._visible = dict(survivors)
        self._synced = set(survivors)
        self._pending_dir_ops.clear()
        self.crashed = True
        self.crash_at = None

    # -- filesystem surface ------------------------------------------------------

    def exists(self, path):
        return path in self._visible

    def read(self, path):
        if path not in self._visible:
            raise FileNotFoundError(path)
        return self._visible[path]

    def write(self, path, data):
        self._injection_point(f"write:{path}")
        self._visible[path] = bytes(data)

    def append(self, path, data):
        self._injection_point(f"append:{path}")
        self._visible[path] = self._visible.get(path, b"") + bytes(data)

    def truncate(self, path, size):
        self._injection_point(f"truncate:{path}")
        if path not in self._visible:
            raise FileNotFoundError(path)
        self._visible[path] = self._visible[path][:size]

    def fsync(self, path):
        if path not in self._visible:
            raise FileNotFoundError(path)
        visible = self._visible[path]
        durable = self._durable.get(path)
        try:
            self._injection_point(f"fsync:{path}")
        except SimulatedCrash:
            # The interrupted flush got a torn prefix of the new bytes
            # out — but never all of them (see the module contract).
            if durable is not None and visible.startswith(durable):
                delta = visible[len(durable):]
                if delta:
                    keep = self._rng.randrange(len(delta))
                    self._durable[path] = durable + delta[:keep]
            elif durable is None and visible:
                keep = self._rng.randrange(len(visible))
                if keep:
                    self._durable[path] = visible[:keep]
            raise
        self._durable[path] = visible
        self._synced.add(path)

    def replace(self, source, destination):
        if source not in self._visible:
            raise FileNotFoundError(source)
        self._injection_point(f"replace:{source}->{destination}")
        self._visible[destination] = self._visible.pop(source)
        self._pending_dir_ops.append(("replace", source, destination))

    def remove(self, path):
        if path not in self._visible:
            raise FileNotFoundError(path)
        self._injection_point(f"remove:{path}")
        del self._visible[path]
        self._pending_dir_ops.append(("remove", path, None))

    def fsync_dir(self, path):
        self._injection_point(f"fsync_dir:{path}")
        prefix = path.rstrip("/")
        remaining: list[tuple[str, str, str | None]] = []
        for kind, source, destination in self._pending_dir_ops:
            target_dir = os.path.dirname(destination or source)
            if target_dir.rstrip("/") != prefix:
                remaining.append((kind, source, destination))
                continue
            if kind == "replace":
                if source in self._durable:
                    self._durable[destination] = self._durable.pop(source)
                elif destination in self._visible:
                    # Source was never synced; the rename itself is
                    # durable but carries whatever bytes were flushed.
                    self._durable[destination] = \
                        self._durable.get(destination, b"")
            elif kind == "remove" and source in self._durable:
                del self._durable[source]
        self._pending_dir_ops = remaining

    def makedirs(self, path):
        self._dirs.add(path.rstrip("/"))

    def listdir(self, path):
        prefix = path.rstrip("/") + "/"
        names = {
            p[len(prefix):].split("/", 1)[0]
            for p in self._visible if p.startswith(prefix)
        }
        return sorted(names)
