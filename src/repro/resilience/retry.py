"""Retry policies and circuit breaking for the download/XKMS paths.

A :class:`RetryPolicy` re-runs an operation on transient
:class:`~repro.errors.NetworkError`\\ s with exponential backoff and
deterministic jitter, bounded by an attempt count and an optional
total-time deadline; a :class:`CircuitBreaker` trips after consecutive
failures so a dead service is short-circuited instead of hammered, and
half-opens after a cool-down to probe for recovery.

All timing runs on a pluggable clock (see
:mod:`repro.resilience.clock`), so tests execute second-scale backoff
schedules instantly and deterministically.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    CircuitOpenError, NetworkError, RetryExhaustedError, TimeoutError,
)
from repro.resilience.clock import SimulatedClock

#: Control-flow errors a policy must never swallow and retry, even
#: though they subclass NetworkError (a nested policy or breaker
#: already gave up on the caller's behalf).
NON_RETRYABLE = (RetryExhaustedError, CircuitOpenError)

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Trips open after *failure_threshold* consecutive failures.

    While open, :meth:`before_call` raises
    :class:`~repro.errors.CircuitOpenError` without touching the wire.
    After *cooldown* simulated seconds the breaker half-opens: one
    probe call is allowed through — success closes the circuit,
    failure re-opens it for another cool-down.
    """

    failure_threshold: int = 5
    cooldown: float = 30.0
    clock: object = field(default_factory=SimulatedClock)
    state: str = STATE_CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    times_opened: int = 0
    short_circuits: int = 0
    # One breaker gates calls from every in-flight session; state
    # transitions must be atomic or concurrent failures lose counts
    # and the open/half-open step tears (CON301/CON302).
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    def before_call(self) -> None:
        """Gate a call; raises :class:`CircuitOpenError` while open."""
        with self._lock:
            if self.state != STATE_OPEN:
                return
            remaining = self.opened_at + self.cooldown \
                - self.clock.now()
            if remaining > 0:
                self.short_circuits += 1
                raise CircuitOpenError(
                    f"circuit open after {self.consecutive_failures} "
                    f"consecutive failures; half-opens in "
                    f"{remaining:g}s",
                    attempts=self.consecutive_failures,
                    retry_after=remaining,
                )
            self.state = STATE_HALF_OPEN

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if self.state == STATE_HALF_OPEN or \
                    self.consecutive_failures >= self.failure_threshold:
                if self.state != STATE_OPEN:
                    self.times_opened += 1
                self.state = STATE_OPEN
                self.opened_at = self.clock.now()

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self.state = STATE_CLOSED

    def call(self, operation: Callable):
        """Run one gated, recorded call (no retries)."""
        self.before_call()
        try:
            result = operation()
        except NetworkError:
            self.record_failure()
            raise
        self.record_success()
        return result


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter and budgets.

    Args:
        max_attempts: total tries before giving up.
        base_delay: backoff before the second attempt (seconds).
        multiplier: backoff growth factor per attempt.
        max_delay: backoff ceiling.
        jitter: extra random fraction (0.1 = up to +10%) added to each
            backoff; drawn from a PRNG seeded with *seed*, so schedules
            are fully reproducible.
        deadline: total simulated-time budget; exceeded →
            :class:`RetryExhaustedError`.
        attempt_timeout: per-attempt latency budget (measured on the
            shared clock); a slower attempt is discarded and counted as
            a :class:`TimeoutError` failure.
        retryable: exception classes worth retrying.
        clock: time source shared with fault injectors and breakers.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 10.0
    jitter: float = 0.1
    deadline: float | None = None
    attempt_timeout: float | None = None
    retryable: tuple = (NetworkError,)
    seed: int = 0
    clock: object = field(default_factory=SimulatedClock)

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Backoff after failed *attempt* (1-based)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def delays(self) -> list[float]:
        """The full backoff schedule this policy would use (for tests)."""
        rng = random.Random(self.seed)
        return [self.backoff(attempt, rng)
                for attempt in range(1, self.max_attempts)]

    def execute(self, operation: Callable, *,
                breaker: CircuitBreaker | None = None,
                describe: str = "operation"):
        """Run *operation* under this policy.

        Raises:
            RetryExhaustedError: attempts or deadline exhausted; carries
                the attempt count and the last underlying error.
            CircuitOpenError: *breaker* is open (short-circuited).
        """
        rng = random.Random(self.seed)
        start = self.clock.now()
        attempts = 0
        last_error: BaseException | None = None
        while attempts < self.max_attempts:
            if breaker is not None:
                breaker.before_call()
            attempts += 1
            attempt_start = self.clock.now()
            try:
                result = operation()
            except NON_RETRYABLE:
                raise
            except self.retryable as exc:
                last_error = exc
                if breaker is not None:
                    breaker.record_failure()
            else:
                took = self.clock.now() - attempt_start
                if self.attempt_timeout is not None \
                        and took > self.attempt_timeout:
                    # The caller would have hung up before the answer
                    # arrived: discard it and count a timeout.
                    last_error = TimeoutError(
                        f"{describe}: attempt {attempts} took {took:g}s "
                        f"(timeout {self.attempt_timeout:g}s)",
                        attempts=attempts,
                        elapsed=self.clock.now() - start,
                    )
                    if breaker is not None:
                        breaker.record_failure()
                else:
                    if breaker is not None:
                        breaker.record_success()
                    return result
            if attempts >= self.max_attempts:
                break
            delay = self.backoff(attempts, rng)
            elapsed = self.clock.now() - start
            if self.deadline is not None \
                    and elapsed + delay > self.deadline:
                raise RetryExhaustedError(
                    f"{describe}: deadline of {self.deadline:g}s "
                    f"exhausted after {attempts} attempt(s): {last_error}",
                    attempts=attempts, elapsed=elapsed,
                    last_error=last_error,
                )
            self.clock.sleep(delay)
        elapsed = self.clock.now() - start
        cause = f": {last_error}" if last_error is not None else ""
        raise RetryExhaustedError(
            f"{describe}: gave up after {attempts} attempt(s) "
            f"in {elapsed:g}s{cause}",
            attempts=attempts, elapsed=elapsed, last_error=last_error,
        )
