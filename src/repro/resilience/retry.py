"""Retry policies and circuit breaking for the download/XKMS paths.

A :class:`RetryPolicy` re-runs an operation on transient
:class:`~repro.errors.NetworkError`\\ s with exponential backoff and
deterministic jitter, bounded by an attempt count and an optional
total-time deadline; a :class:`CircuitBreaker` trips after consecutive
failures so a dead service is short-circuited instead of hammered, and
half-opens after a cool-down to probe for recovery.

All timing runs on a pluggable clock (see
:mod:`repro.resilience.clock`), so tests execute second-scale backoff
schedules instantly and deterministically.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    CircuitOpenError, NetworkError, RetryExhaustedError, TimeoutError,
)
from repro.resilience.clock import SimulatedClock

#: Control-flow errors a policy must never swallow and retry, even
#: though they subclass NetworkError (a nested policy or breaker
#: already gave up on the caller's behalf).
NON_RETRYABLE = (RetryExhaustedError, CircuitOpenError)

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Trips open after *failure_threshold* consecutive failures.

    While open, :meth:`before_call` raises
    :class:`~repro.errors.CircuitOpenError` without touching the wire.
    After *cooldown* simulated seconds the breaker half-opens: one
    probe call is allowed through — success closes the circuit,
    failure re-opens it for another cool-down.
    """

    failure_threshold: int = 5
    cooldown: float = 30.0
    clock: object = field(default_factory=SimulatedClock)
    state: str = STATE_CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    times_opened: int = 0
    short_circuits: int = 0
    probes: int = 0
    # One breaker gates calls from every in-flight session; state
    # transitions must be atomic or concurrent failures lose counts
    # and the open/half-open step tears (CON301/CON302).
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    def before_call(self) -> None:
        """Gate a call; raises :class:`CircuitOpenError` while open.

        The open→half-open transition admits **exactly one** probe: the
        caller that performs the transition owns it.  Every other caller
        — including a barrier-start stampede arriving in the same
        instant the cooldown elapses — stays on the fast-fail path until
        the probe's outcome (:meth:`record_success`,
        :meth:`record_failure` or :meth:`abandon_probe`) resolves the
        state, so a recovering service sees one request, not a herd.
        """
        with self._lock:
            if self.state == STATE_CLOSED:
                return
            if self.state == STATE_HALF_OPEN:
                # A probe is already in flight; joining it would turn
                # the half-open state back into a thundering herd.
                self.short_circuits += 1
                raise CircuitOpenError(
                    "circuit half-open: recovery probe in flight",
                    attempts=self.consecutive_failures,
                    retry_after=0.0,
                )
            remaining = self.opened_at + self.cooldown \
                - self.clock.now()
            if remaining > 0:
                self.short_circuits += 1
                raise CircuitOpenError(
                    f"circuit open after {self.consecutive_failures} "
                    f"consecutive failures; half-opens in "
                    f"{remaining:g}s",
                    attempts=self.consecutive_failures,
                    retry_after=remaining,
                )
            self.state = STATE_HALF_OPEN
            self.probes += 1

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if self.state == STATE_HALF_OPEN or \
                    self.consecutive_failures >= self.failure_threshold:
                if self.state != STATE_OPEN:
                    self.times_opened += 1
                self.state = STATE_OPEN
                self.opened_at = self.clock.now()

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self.state = STATE_CLOSED

    def abandon_probe(self) -> None:
        """Release a half-open probe whose outcome never arrived.

        A probe that dies to a non-network exception (or a cancelled
        caller) said nothing about the service's health; without this
        release the half-open state — and its fast-fail path — would
        stick forever.  The breaker re-opens with its original
        ``opened_at``, so the remaining cooldown is not restarted.
        """
        with self._lock:
            if self.state == STATE_HALF_OPEN:
                self.state = STATE_OPEN

    def call(self, operation: Callable):
        """Run one gated, recorded call (no retries)."""
        self.before_call()
        try:
            result = operation()
        except NetworkError:
            self.record_failure()
            raise
        except BaseException:
            self.abandon_probe()
            raise
        self.record_success()
        return result


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter and budgets.

    Args:
        max_attempts: total tries before giving up.
        base_delay: backoff before the second attempt (seconds).
        multiplier: backoff growth factor per attempt.
        max_delay: backoff ceiling.
        jitter: extra random fraction (0.1 = up to +10%) added to each
            backoff; drawn from a PRNG seeded with *seed*, so schedules
            are fully reproducible.
        deadline: total simulated-time budget; exceeded →
            :class:`RetryExhaustedError`.
        attempt_timeout: per-attempt latency budget (measured on the
            shared clock); a slower attempt is discarded and counted as
            a :class:`TimeoutError` failure.
        retryable: exception classes worth retrying.
        clock: time source shared with fault injectors and breakers.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 10.0
    jitter: float = 0.1
    deadline: float | None = None
    attempt_timeout: float | None = None
    retryable: tuple = (NetworkError,)
    seed: int = 0
    clock: object = field(default_factory=SimulatedClock)

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Backoff after failed *attempt* (1-based)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def delays(self) -> list[float]:
        """The full backoff schedule this policy would use (for tests)."""
        rng = random.Random(self.seed)
        return [self.backoff(attempt, rng)
                for attempt in range(1, self.max_attempts)]

    def _check_entry(self, until: float | None, attempts: int,
                     start: float, describe: str) -> None:
        """An attempt must not start past the propagated deadline."""
        if until is not None and self.clock.now() >= until:
            raise TimeoutError(
                f"{describe}: deadline expired before attempt "
                f"{attempts + 1}",
                attempts=attempts,
                elapsed=self.clock.now() - start,
            )

    def _settle_attempt(self, breaker: CircuitBreaker | None,
                        attempts: int, start: float, describe: str,
                        attempt_start: float):
        """Post-success bookkeeping: ``(keep_result, timeout_error)``."""
        took = self.clock.now() - attempt_start
        if self.attempt_timeout is not None \
                and took > self.attempt_timeout:
            # The caller would have hung up before the answer
            # arrived: discard it and count a timeout.
            error = TimeoutError(
                f"{describe}: attempt {attempts} took {took:g}s "
                f"(timeout {self.attempt_timeout:g}s)",
                attempts=attempts,
                elapsed=self.clock.now() - start,
            )
            if breaker is not None:
                breaker.record_failure()
            return False, error
        if breaker is not None:
            breaker.record_success()
        return True, None

    def _next_delay(self, attempts: int, rng: random.Random,
                    start: float, until: float | None, describe: str,
                    last_error: BaseException | None) -> float:
        """The next backoff, clipped against every remaining budget.

        A backoff that would sleep the remaining deadline dry buys
        nothing — there is no room left for the attempt it precedes —
        so the policy fails *before* sleeping instead of waking up at
        (or past) the deadline just to fail then.
        """
        delay = self.backoff(attempts, rng)
        now = self.clock.now()
        budgets = []
        if self.deadline is not None:
            budgets.append(start + self.deadline - now)
        if until is not None:
            budgets.append(until - now)
        if budgets and delay >= min(budgets):
            raise RetryExhaustedError(
                f"{describe}: retry deadline exhausted after "
                f"{attempts} attempt(s): {last_error}",
                attempts=attempts, elapsed=now - start,
                last_error=last_error,
            )
        return delay

    def _exhausted(self, attempts: int, start: float, describe: str,
                   last_error: BaseException | None) -> RetryExhaustedError:
        elapsed = self.clock.now() - start
        cause = f": {last_error}" if last_error is not None else ""
        return RetryExhaustedError(
            f"{describe}: gave up after {attempts} attempt(s) "
            f"in {elapsed:g}s{cause}",
            attempts=attempts, elapsed=elapsed, last_error=last_error,
        )

    def execute(self, operation: Callable, *,
                breaker: CircuitBreaker | None = None,
                describe: str = "operation",
                until: float | None = None):
        """Run *operation* under this policy.

        Args:
            until: absolute clock instant (a propagated request
                deadline) past which no attempt starts and no backoff
                sleeps.

        Raises:
            RetryExhaustedError: attempts or deadline exhausted; carries
                the attempt count and the last underlying error.
            TimeoutError: *until* passed before an attempt could start.
            CircuitOpenError: *breaker* is open (short-circuited).
        """
        rng = random.Random(self.seed)
        start = self.clock.now()
        attempts = 0
        last_error: BaseException | None = None
        while attempts < self.max_attempts:
            self._check_entry(until, attempts, start, describe)
            if breaker is not None:
                breaker.before_call()
            attempts += 1
            attempt_start = self.clock.now()
            try:
                result = operation()
            except NON_RETRYABLE:
                if breaker is not None:
                    breaker.abandon_probe()
                raise
            except self.retryable as exc:
                last_error = exc
                if breaker is not None:
                    breaker.record_failure()
            except BaseException:
                # Not a service-health signal: a half-open probe that
                # dies here must not leave the breaker stuck.
                if breaker is not None:
                    breaker.abandon_probe()
                raise
            else:
                keep, timeout = self._settle_attempt(
                    breaker, attempts, start, describe, attempt_start)
                if keep:
                    return result
                last_error = timeout
            if attempts >= self.max_attempts:
                break
            delay = self._next_delay(attempts, rng, start, until,
                                     describe, last_error)
            self.clock.sleep(delay)
        raise self._exhausted(attempts, start, describe, last_error)

    async def _asleep(self, seconds: float) -> None:
        asleep = getattr(self.clock, "asleep", None)
        if asleep is not None:
            await asleep(seconds)
        else:
            self.clock.sleep(seconds)

    async def execute_async(self, operation: Callable, *,
                            breaker: CircuitBreaker | None = None,
                            describe: str = "operation",
                            until: float | None = None):
        """:meth:`execute` for coroutine operations.

        Identical semantics; backoff awaits the clock's ``asleep`` (a
        :class:`~repro.resilience.vclock.VirtualClock`) so other
        sessions on the event loop keep running while this one backs
        off.
        """
        rng = random.Random(self.seed)
        start = self.clock.now()
        attempts = 0
        last_error: BaseException | None = None
        while attempts < self.max_attempts:
            self._check_entry(until, attempts, start, describe)
            if breaker is not None:
                breaker.before_call()
            attempts += 1
            attempt_start = self.clock.now()
            try:
                result = await operation()
            except NON_RETRYABLE:
                if breaker is not None:
                    breaker.abandon_probe()
                raise
            except self.retryable as exc:
                last_error = exc
                if breaker is not None:
                    breaker.record_failure()
            except BaseException:
                if breaker is not None:
                    breaker.abandon_probe()
                raise
            else:
                keep, timeout = self._settle_attempt(
                    breaker, attempts, start, describe, attempt_start)
                if keep:
                    return result
                last_error = timeout
            if attempts >= self.max_attempts:
                break
            delay = self._next_delay(attempts, rng, start, until,
                                     describe, last_error)
            await self._asleep(delay)
        raise self._exhausted(attempts, start, describe, last_error)
