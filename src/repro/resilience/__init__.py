"""Resilience layer: fault injection, retry/backoff, degradation.

Three pieces, threaded through the network, XKMS and player layers:

* :mod:`~repro.resilience.faults` — deterministic, composable fault
  injectors for the simulated channel (drop, delay, duplicate,
  truncate, reorder, flaky services), driven by seeded
  :class:`FaultSchedule`\\ s so every failure is replayable;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` (exponential
  backoff + jitter + deadline budgets) and :class:`CircuitBreaker`;
* :mod:`~repro.resilience.degradation` — the failure-mode taxonomy and
  the :class:`DegradationLog` the player keeps when it bars a resource
  or downgrades trust instead of aborting playback;
* :mod:`~repro.resilience.limits` — :class:`ResourceLimits` quotas and
  the per-document :class:`ResourceGuard` meter that turn
  resource-exhaustion attacks into typed
  :class:`~repro.errors.ResourceLimitExceeded` failures;
* :mod:`~repro.resilience.chaos` — the seeded adversarial chaos
  harness that drives full pipelines under fault injection and a
  resource-attack corpus, asserting containment invariants;
* :mod:`~repro.resilience.crashfs` — the :class:`Filesystem`
  abstraction plus the seeded :class:`CrashableFilesystem` power-loss
  adversary (torn writes, dropped un-fsynced data, re-ordered
  directory operations);
* :mod:`~repro.resilience.durable` — the crash-safe persistence layer:
  checksummed write-ahead :class:`Journal`, snapshot + compaction, and
  the :class:`DurableStore` that localstorage, the XKMS server and the
  trust-store CRL persist through;
* :mod:`~repro.resilience.durablechaos` — crash-recovery chaos: a kill
  scheduled at every filesystem injection point across full
  store→crash→recover→verify cycles.
"""

from repro.resilience.clock import SimulatedClock, SystemClock
from repro.resilience.crashfs import (
    CrashableFilesystem, Filesystem, OsFilesystem, SimulatedCrash,
)
from repro.resilience.degradation import (
    REASON_CIRCUIT_OPEN, REASON_ERROR, REASON_INTEGRITY, REASON_RECOVERY,
    REASON_REJECTED, REASON_RESOURCE, REASON_RETRY_EXHAUSTED,
    REASON_TIMEOUT, REASON_UNREACHABLE, DegradationEvent, DegradationLog,
    classify_failure,
)
from repro.resilience.durable import (
    DurableInspection, DurableStore, Journal, RecoveryReport,
    atomic_write, verify_directory,
)
from repro.resilience.limits import ResourceGuard, ResourceLimits
from repro.resilience.faults import (
    DelayFault, DropFault, DuplicateFault, FaultInjector, FaultSchedule,
    FlakyService, ReorderFault, TruncateFault, flaky_link,
)
from repro.resilience.retry import (
    NON_RETRYABLE, STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN,
    CircuitBreaker, RetryPolicy,
)
from repro.resilience.service import (
    AdmissionController, AIMDLimiter, Deadline, OverloadShield,
    TenantPolicy,
)
from repro.resilience.vclock import NO_DEADLINE, VirtualClock, VQueue

__all__ = [
    "SimulatedClock", "SystemClock",
    "VirtualClock", "VQueue", "NO_DEADLINE",
    "Deadline", "TenantPolicy", "AdmissionController", "AIMDLimiter",
    "OverloadShield",
    "FaultSchedule", "FaultInjector", "DropFault", "DelayFault",
    "DuplicateFault", "TruncateFault", "ReorderFault", "FlakyService",
    "flaky_link",
    "RetryPolicy", "CircuitBreaker", "NON_RETRYABLE",
    "STATE_CLOSED", "STATE_OPEN", "STATE_HALF_OPEN",
    "DegradationEvent", "DegradationLog", "classify_failure",
    "REASON_UNREACHABLE", "REASON_TIMEOUT", "REASON_RETRY_EXHAUSTED",
    "REASON_CIRCUIT_OPEN", "REASON_INTEGRITY", "REASON_REJECTED",
    "REASON_RESOURCE", "REASON_RECOVERY", "REASON_ERROR",
    "ResourceGuard", "ResourceLimits",
    "Filesystem", "OsFilesystem", "CrashableFilesystem", "SimulatedCrash",
    "Journal", "DurableStore", "DurableInspection", "RecoveryReport",
    "atomic_write", "verify_directory",
]
