"""Resource-exhaustion quotas for every untrusted-input entry point.

The paper's STRIDE analysis lists Denial of Service against the CE
player as a first-class threat: a hostile disc or network peer does
not need to break a signature when it can crash the verifier with a
100k-deep element tree, a million attributes, or an EncryptedData
whose plaintext is 1000x its ciphertext.  This module gives the stack
one vocabulary for bounding that work:

* :class:`ResourceLimits` — a frozen bag of quotas (``None`` means
  unlimited).  The defaults model a constrained CE device: single-digit
  megabytes of input, a shallow element tree, bounded per-signature
  reference fan-out.
* :class:`ResourceGuard` — a stateful meter constructed per untrusted
  document / session.  Entry points (parser, c14n, dsig verification,
  xmlenc decryption, XKMS message handling, network frame decoding,
  the playback pipeline) call its ``check_*``/``charge_*`` methods and
  a violation raises the typed
  :class:`~repro.errors.ResourceLimitExceeded`.

Counters are charged check-before-commit, so a guard's recorded usage
never exceeds its limits — the chaos harness asserts exactly that.
Wall-clock budgets run on an injected clock (see
:mod:`repro.resilience.clock`), so tests and the chaos harness can
exercise deadline trips deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import ResourceLimitExceeded
from repro.resilience.clock import SystemClock


@dataclass(frozen=True)
class ResourceLimits:
    """Quota configuration; every field may be ``None`` (unlimited).

    Sizes are octets of the *decoded* input (or output, for the
    decrypt/c14n quotas).  Depth counts open elements, so a document
    with a single root has depth 1.
    """

    #: Total size of one untrusted XML input (document or fragment).
    max_input_bytes: int | None = 8 * 1024 * 1024
    #: Open-element nesting depth; a policy decision now that the
    #: parser is iterative, not a Python stack limit.
    max_element_depth: int | None = 200
    #: Total parsed nodes (elements, text, comments, PIs) per document.
    max_node_count: int | None = 250_000
    #: Attributes (incl. namespace declarations) on one start tag.
    max_attributes_per_element: int | None = 256
    #: Size of one text node, CDATA section or attribute value.
    max_text_bytes: int | None = 1024 * 1024
    #: ds:Reference elements in one ds:SignedInfo.
    max_references_per_signature: int | None = 64
    #: Transforms in one ds:Reference chain.
    max_transforms_per_reference: int | None = 8
    #: Total canonical octets produced for one guarded document.
    max_c14n_output_bytes: int | None = 32 * 1024 * 1024
    #: Total decrypted plaintext produced for one guarded document.
    max_decrypt_output_bytes: int | None = 16 * 1024 * 1024
    #: Plaintext may be at most this multiple of its ciphertext.
    max_expansion_ratio: float | None = 100.0
    #: One length-prefixed network frame (request or response).
    max_frame_bytes: int | None = 4 * 1024 * 1024
    #: Wall-clock budget in (injected-clock) seconds for one guarded
    #: operation; ``None`` disables deadline checks entirely.
    wall_clock_budget_s: float | None = None

    @classmethod
    def default(cls) -> "ResourceLimits":
        """The documented CE-device envelope (see DESIGN.md §9)."""
        return cls()

    @classmethod
    def unlimited(cls) -> "ResourceLimits":
        """No quotas at all — for benchmarking the guard's overhead."""
        return cls(**{f.name: None for f in fields(cls)})

    def replace(self, **overrides) -> "ResourceLimits":
        """A copy with some limits overridden."""
        return replace(self, **overrides)


class ResourceGuard:
    """Stateful quota meter for one untrusted document or session.

    A guard is cheap to construct; mint a fresh one per untrusted
    input so cumulative quotas (nodes, decrypt output, c14n output)
    meter that input alone.  Sharing one guard across inputs is
    deliberate tightening — the quotas then bound the whole session.
    """

    def __init__(self, limits: ResourceLimits | None = None, *,
                 clock: object | None = None):
        self.limits = limits if limits is not None else ResourceLimits.default()
        self.clock = clock if clock is not None else SystemClock()
        self.node_count = 0
        self.decrypt_output_bytes = 0
        self.c14n_output_bytes = 0
        self.trips: list[ResourceLimitExceeded] = []
        self.started_at = (
            self.clock.now()
            if self.limits.wall_clock_budget_s is not None else None
        )

    @classmethod
    def default(cls) -> "ResourceGuard":
        """A fresh guard with the default CE-device limits."""
        return cls()

    @classmethod
    def unlimited(cls) -> "ResourceGuard":
        return cls(ResourceLimits.unlimited())

    # -- internals ----------------------------------------------------------------

    def _trip(self, limit_name: str, limit: float, actual: float,
              detail: str = "") -> None:
        error = ResourceLimitExceeded(
            limit_name, limit=limit, actual=actual, detail=detail,
        )
        self.trips.append(error)
        raise error

    # -- one-shot checks ----------------------------------------------------------

    def check_input_size(self, size: int) -> None:
        limit = self.limits.max_input_bytes
        if limit is not None and size > limit:
            self._trip("max_input_bytes", limit, size)

    def check_depth(self, depth: int) -> None:
        limit = self.limits.max_element_depth
        if limit is not None and depth > limit:
            self._trip("max_element_depth", limit, depth)

    def check_attribute_count(self, count: int) -> None:
        limit = self.limits.max_attributes_per_element
        if limit is not None and count > limit:
            self._trip("max_attributes_per_element", limit, count)

    def check_text_size(self, size: int) -> None:
        limit = self.limits.max_text_bytes
        if limit is not None and size > limit:
            self._trip("max_text_bytes", limit, size)

    def check_reference_count(self, count: int) -> None:
        limit = self.limits.max_references_per_signature
        if limit is not None and count > limit:
            self._trip("max_references_per_signature", limit, count)

    def check_transform_count(self, count: int) -> None:
        limit = self.limits.max_transforms_per_reference
        if limit is not None and count > limit:
            self._trip("max_transforms_per_reference", limit, count)

    def check_frame_size(self, size: int) -> None:
        limit = self.limits.max_frame_bytes
        if limit is not None and size > limit:
            self._trip("max_frame_bytes", limit, size)

    def check_deadline(self) -> None:
        budget = self.limits.wall_clock_budget_s
        if budget is None or self.started_at is None:
            return
        elapsed = self.clock.now() - self.started_at
        if elapsed > budget:
            self._trip("wall_clock_budget_s", budget, elapsed)

    # -- cumulative charges (check-before-commit) ---------------------------------

    def charge_nodes(self, count: int = 1) -> None:
        total = self.node_count + count
        limit = self.limits.max_node_count
        if limit is not None and total > limit:
            self._trip("max_node_count", limit, total)
        self.node_count = total

    def charge_c14n_output(self, size: int) -> None:
        total = self.c14n_output_bytes + size
        limit = self.limits.max_c14n_output_bytes
        if limit is not None and total > limit:
            self._trip("max_c14n_output_bytes", limit, total)
        self.c14n_output_bytes = total

    def charge_decrypt_output(self, plaintext_size: int,
                              ciphertext_size: int | None = None) -> None:
        """Meter decrypted plaintext, with an expansion-ratio cap.

        The ratio check catches per-item blow-ups (a tiny ciphertext
        decompressing or super-encrypting into a huge plaintext) even
        when the absolute quota still has headroom.
        """
        ratio_limit = self.limits.max_expansion_ratio
        if (ratio_limit is not None and ciphertext_size is not None
                and ciphertext_size > 0
                and plaintext_size > ciphertext_size * ratio_limit):
            self._trip(
                "max_expansion_ratio", ratio_limit,
                plaintext_size / ciphertext_size,
                detail=f"{plaintext_size} plaintext octets from "
                       f"{ciphertext_size} ciphertext octets",
            )
        total = self.decrypt_output_bytes + plaintext_size
        limit = self.limits.max_decrypt_output_bytes
        if limit is not None and total > limit:
            self._trip("max_decrypt_output_bytes", limit, total)
        self.decrypt_output_bytes = total

    # -- introspection ------------------------------------------------------------

    def within_limits(self) -> bool:
        """True while every recorded counter respects its limit.

        Charges are check-before-commit, so this holds even after a
        trip — the chaos harness asserts it as an invariant.
        """
        limits = self.limits
        checks = (
            (self.node_count, limits.max_node_count),
            (self.decrypt_output_bytes, limits.max_decrypt_output_bytes),
            (self.c14n_output_bytes, limits.max_c14n_output_bytes),
        )
        return all(
            limit is None or value <= limit for value, limit in checks
        )
