"""Composable, deterministic fault injection for the simulated network.

The adversaries in :mod:`repro.network.channel` model *malice*; the
injectors here model *unreliability* — the dropped, delayed, duplicated,
truncated and reordered messages of a hostile consumer link (Fig 1's
path between content server and player).  Each injector is an
:class:`~repro.network.channel.Adversary`, so they stack on a
:class:`~repro.network.channel.Channel` alongside wiretaps and
tamperers, and each one fires according to a :class:`FaultSchedule` so
failures are deterministic and replayable: the same schedule (or seed)
always produces the same fault sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError
from repro.network.channel import Adversary
from repro.resilience.clock import SimulatedClock


class FaultSchedule:
    """Decides, per matching-message index (0-based), whether to fire."""

    def __init__(self, fire: Callable[[int], bool]):
        self._fire = fire

    def fires(self, index: int) -> bool:
        return bool(self._fire(index))

    # -- constructors ------------------------------------------------------------

    @classmethod
    def always(cls) -> "FaultSchedule":
        """Fire on every message (a permanently dead/degraded link)."""
        return cls(lambda index: True)

    @classmethod
    def never(cls) -> "FaultSchedule":
        return cls(lambda index: False)

    @classmethod
    def at(cls, *indices: int) -> "FaultSchedule":
        """Fire exactly on the given message indices."""
        wanted = frozenset(indices)
        return cls(lambda index: index in wanted)

    @classmethod
    def first(cls, count: int) -> "FaultSchedule":
        """Fire on the first *count* messages, then recover (flaky link)."""
        return cls(lambda index: index < count)

    @classmethod
    def after(cls, count: int) -> "FaultSchedule":
        """Pass the first *count* messages, then fire forever (link dies)."""
        return cls(lambda index: index >= count)

    @classmethod
    def every(cls, period: int, offset: int = 0) -> "FaultSchedule":
        """Fire on every *period*-th message starting at *offset*."""
        if period < 1:
            raise ValueError("period must be >= 1")
        return cls(lambda index: index >= offset
                   and (index - offset) % period == 0)

    @classmethod
    def probability(cls, p: float, seed: int = 0) -> "FaultSchedule":
        """Fire with probability *p*, deterministically per (seed, index).

        The decision for message *i* depends only on the seed and *i*,
        never on call order, so replays reproduce the exact fault
        pattern.
        """
        def fire(index: int) -> bool:
            return random.Random(f"{seed}:{index}").random() < p
        return cls(fire)


@dataclass
class FaultInjector(Adversary):
    """Base injector: counts matching messages, fires per schedule.

    Attributes:
        schedule: when to fire (default: every matching message).
        predicate: which messages the injector considers at all.
        calls: matching messages seen.
        fired: faults actually injected.
    """

    schedule: FaultSchedule = field(default_factory=FaultSchedule.always)
    predicate: Callable[[bytes], bool] = lambda message: True
    calls: int = 0
    fired: int = 0

    def process(self, message: bytes) -> bytes:
        if not self.predicate(message):
            return message
        index = self.calls
        self.calls += 1
        if not self.schedule.fires(index):
            return self.passthrough(message)
        self.fired += 1
        return self.inject(message)

    async def aprocess(self, message: bytes) -> bytes:
        """Async injection point: same schedule, awaitable faults.

        Bookkeeping is identical to :meth:`process` (one shared
        ``calls`` index, so a schedule fires the same pattern whichever
        transport carries the message); the fault itself goes through
        :meth:`ainject` so time-spending injectors can await the
        virtual clock instead of jumping it.
        """
        if not self.predicate(message):
            return message
        index = self.calls
        self.calls += 1
        if not self.schedule.fires(index):
            return self.passthrough(message)
        self.fired += 1
        return await self.ainject(message)

    def passthrough(self, message: bytes) -> bytes:
        """Called for matching messages the schedule lets through."""
        return message

    def inject(self, message: bytes) -> bytes:
        raise NotImplementedError

    async def ainject(self, message: bytes) -> bytes:
        """Async fault application; defaults to the sync :meth:`inject`."""
        return self.inject(message)


@dataclass
class DropFault(FaultInjector):
    """Loses the message in transit (the receiver never sees it)."""

    def inject(self, message: bytes) -> bytes:
        raise NetworkError(
            f"fault injected: message dropped (fault #{self.fired})"
        )


@dataclass
class DelayFault(FaultInjector):
    """Adds link latency on the shared simulated clock.

    The message still arrives, but the clock that retry deadlines and
    attempt timeouts are budgeted against has moved by *delay_s* — a
    slow link spends the caller's time budget.
    """

    delay_s: float = 1.0
    clock: SimulatedClock = field(default_factory=SimulatedClock)

    def inject(self, message: bytes) -> bytes:
        self.clock.advance(self.delay_s)
        return message

    async def ainject(self, message: bytes) -> bytes:
        """On the async transport the latency is *awaited*: only this
        message is late, concurrent streams keep flowing — which is
        exactly what lets slow-peer attacks meet admission control
        instead of stalling the loop."""
        asleep = getattr(self.clock, "asleep", None)
        if asleep is not None:
            await asleep(self.delay_s)
        else:
            self.clock.advance(self.delay_s)
        return message


@dataclass
class TruncateFault(FaultInjector):
    """Cuts the message short (interrupted transfer).

    Either a fixed *keep_bytes* prefix or a *keep_fraction* of the
    original length survives.
    """

    keep_bytes: int | None = None
    keep_fraction: float = 0.5

    def inject(self, message: bytes) -> bytes:
        if self.keep_bytes is not None:
            keep = self.keep_bytes
        else:
            keep = int(len(message) * self.keep_fraction)
        return message[:max(0, keep)]


@dataclass
class DuplicateFault(FaultInjector):
    """Re-delivers a message: the next transfer repeats this one.

    When the schedule fires on message *i*, a copy is stashed and
    delivered *again* in place of message *i+1* (the retransmitted
    stale copy crowds out the fresh message).  Sequence-numbered
    protocols detect this as a replay.
    """

    _replay: bytes | None = field(default=None, repr=False)

    def passthrough(self, message: bytes) -> bytes:
        if self._replay is not None:
            stale, self._replay = self._replay, None
            return stale
        return message

    def inject(self, message: bytes) -> bytes:
        self._replay = bytes(message)
        return message


@dataclass
class ReorderFault(FaultInjector):
    """Delivers the *previous* message in place of the current one.

    Models out-of-order arrival on a synchronous pipe: the current
    message is held (arrives late, i.e. replaces the next firing) and
    the receiver sees its predecessor instead.  With no predecessor yet
    the message passes unharmed.  Sequence-numbered protocols detect
    this as reordering.
    """

    _previous: bytes | None = field(default=None, repr=False)

    def passthrough(self, message: bytes) -> bytes:
        self._previous = bytes(message)
        return message

    def inject(self, message: bytes) -> bytes:
        if self._previous is None:
            return message
        stale = self._previous
        self._previous = bytes(message)
        return stale


def flaky_link(failures: int) -> DropFault:
    """A link that drops the first *failures* messages, then recovers."""
    return DropFault(schedule=FaultSchedule.first(failures))


@dataclass
class FlakyService:
    """Server-side flakiness: fail the first *failures* calls, then recover.

    Wraps any callable (a :class:`~repro.network.server.ContentServer`
    service handler, an XKMS transport) so the *service* — not the link
    — is the unreliable party.  The content server converts the raised
    :class:`NetworkError` into a 500 response, which the client's retry
    policy treats as transient.
    """

    handler: Callable
    failures: int = 1
    calls: int = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise NetworkError(
                f"fault injected: service unavailable "
                f"(call {self.calls}/{self.failures} of outage)"
            )
        return self.handler(*args, **kwargs)
